//! # mbpe — maximal k-biplex enumeration (umbrella crate)
//!
//! This crate re-exports the whole workspace behind a single dependency and
//! hosts the runnable examples (`examples/`) and the cross-crate
//! integration tests (`tests/`). The implementation reproduces
//! *"Efficient Algorithms for Maximal k-Biplex Enumeration"* (SIGMOD 2022);
//! see `README.md` for the project overview, `DESIGN.md` for the system
//! inventory and `EXPERIMENTS.md` for the reproduction of every table and
//! figure.
//!
//! ```
//! use mbpe::prelude::*;
//!
//! let g = BipartiteGraph::from_edges(3, 3, &[(0, 0), (0, 1), (1, 0), (1, 1), (2, 2)]).unwrap();
//! let mut sink = CollectSink::new();
//! Enumerator::new(&g).k(1).run(&mut sink).unwrap();
//! let mbps = sink.into_sorted();
//! assert!(mbps.iter().all(|b| is_maximal_k_biplex(&g, &b.left, &b.right, 1)));
//! ```

#![forbid(unsafe_code)]

pub use baselines;
pub use bigraph;
pub use cohesive;
pub use frauddet;
pub use kbiplex;
pub use kplex;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use bigraph::{
        BipartiteBuilder, BipartiteGraph, DynamicBipartiteGraph, IncrementalCore, Side, VertexRef,
    };
    pub use kbiplex::{
        is_asym_biplex, is_k_biplex, is_maximal_k_biplex, Algorithm, Anchor, ApiError, Biplex,
        CollectSink, ConcurrentSeenSet, Control, CountingSink, DelayRecorder, DynamicConfig,
        DynamicEnumerator, DynamicError, EmitMode, Engine, EngineStats, EnumKind, Enumerator,
        FirstN, Json, JsonError, KPair, Kernel, LargeMbpParams, MaintainStats, ParallelConfig,
        ParallelEngine, QuerySpec, RunReport, SolutionSink, SolutionStream, StopReason,
        TraversalConfig, UpdateDiff, VertexOrder,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_is_usable() {
        let g = BipartiteGraph::from_edges(2, 2, &[(0, 0), (0, 1), (1, 0), (1, 1)]).unwrap();
        let mut sink = CollectSink::new();
        let report = Enumerator::new(&g).k(1).run(&mut sink).unwrap();
        assert_eq!(report.stop, StopReason::Exhausted);
        let all = sink.into_sorted();
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].num_vertices(), 4);
    }
}
