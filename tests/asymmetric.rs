//! Cross-crate integration tests for the asymmetric (k_L, k_R) extension.

use mbpe::bigraph::gen::er::er_bipartite;
use mbpe::cohesive::{collect_maximal_bicliques, BicliqueConfig};
use mbpe::kbiplex::asym::{brute_force_asym_mbps, is_maximal_asym_biplex};
use mbpe::prelude::*;

/// Canonically sorted asymmetric enumeration through the facade.
fn collect_asym_mbps(g: &BipartiteGraph, kp: KPair) -> Vec<Biplex> {
    Enumerator::new(g)
        .algorithm(Algorithm::Asym)
        .k_pair(kp)
        .collect()
        .expect("valid facade configuration")
}

#[test]
fn asymmetric_enumeration_matches_brute_force_on_random_graphs() {
    for seed in 0..8u64 {
        let g = er_bipartite(5, 5, 12 + seed % 5, seed);
        for (kl, kr) in [(0, 1), (1, 0), (1, 2), (2, 1)] {
            let kp = KPair::new(kl, kr);
            let expected = brute_force_asym_mbps(&g, kp);
            let got = collect_asym_mbps(&g, kp);
            assert_eq!(got, expected, "seed {seed} budgets ({kl},{kr})");
        }
    }
}

#[test]
fn symmetric_budgets_reduce_to_the_paper_algorithm() {
    for seed in 0..5u64 {
        let g = er_bipartite(8, 8, 30, 100 + seed);
        for k in 0..=2usize {
            assert_eq!(
                collect_asym_mbps(&g, KPair::symmetric(k)),
                Enumerator::new(&g).k(k).collect().expect("valid facade configuration"),
                "seed {seed} k {k}"
            );
        }
    }
}

#[test]
fn zero_budgets_agree_with_the_maximal_biclique_enumerator() {
    // (0,0)-biplexes are exactly bicliques, so the asymmetric enumerator with
    // zero budgets must agree with the dedicated biclique enumerator, modulo
    // the degenerate single-sided solutions that bicliques exclude.
    for seed in 0..5u64 {
        let g = er_bipartite(7, 7, 22, seed);
        let asym: Vec<Biplex> = collect_asym_mbps(&g, KPair::new(0, 0))
            .into_iter()
            .filter(|b| !b.left.is_empty() && !b.right.is_empty())
            .collect();
        let mut bicliques =
            collect_maximal_bicliques(&g, &BicliqueConfig::default().with_min_sizes(1, 1));
        bicliques.sort();
        // Every non-degenerate asymmetric solution is a maximal biclique.
        for b in &asym {
            assert!(
                bicliques.binary_search(b).is_ok(),
                "seed {seed}: {:?} missing from biclique enumeration",
                b
            );
        }
    }
}

#[test]
fn budgets_are_monotone_in_solution_coverage() {
    // Raising either budget can only allow *larger* subgraphs: every maximal
    // (k_L, k_R)-biplex is contained in some maximal (k_L', k_R')-biplex when
    // k_L' >= k_L and k_R' >= k_R.
    let g = er_bipartite(10, 10, 45, 17);
    let small = collect_asym_mbps(&g, KPair::new(1, 0));
    let large = collect_asym_mbps(&g, KPair::new(2, 1));
    for b in &small {
        assert!(
            large.iter().any(|big| b.is_subgraph_of(big)),
            "{b:?} is not covered by any larger-budget solution"
        );
    }
}

#[test]
fn every_solution_is_maximal_for_its_budgets() {
    let g = er_bipartite(12, 9, 50, 23);
    for (kl, kr) in [(1, 2), (2, 1), (3, 0)] {
        let kp = KPair::new(kl, kr);
        let solutions = collect_asym_mbps(&g, kp);
        assert!(!solutions.is_empty());
        for b in &solutions {
            assert!(is_maximal_asym_biplex(&g, &b.left, &b.right, kp), "budgets ({kl},{kr})");
        }
    }
}
