//! Correctness battery for the dynamic maintenance layer
//! (`kbiplex::dynamic`): random edit scripts checked against the
//! brute-force oracle at every prefix, plus incremental ≡ rebuild
//! equivalence across k values and both parallel engines.

use mbpe::kbiplex::bruteforce::brute_force_large_mbps;
use mbpe::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One edit operation: toggle-insert or toggle-delete of `(v % nl, u % nr)`.
type Op = (bool, u32, u32);

/// Strategy: a small random bipartite graph plus a random edit script.
fn script_strategy() -> impl Strategy<Value = (BipartiteGraph, Vec<Op>)> {
    (3u32..7, 3u32..7)
        .prop_flat_map(|(nl, nr)| {
            let m = (nl * nr) as usize;
            (
                Just(nl),
                Just(nr),
                proptest::collection::vec(any::<bool>(), m),
                proptest::collection::vec((any::<bool>(), 0u32..nl, 0u32..nr), 1..14),
            )
        })
        .prop_map(|(nl, nr, bits, script)| {
            let mut edges = Vec::new();
            for v in 0..nl {
                for u in 0..nr {
                    if bits[(v * nr + u) as usize] {
                        edges.push((v, u));
                    }
                }
            }
            (BipartiteGraph::from_edges(nl, nr, &edges).unwrap(), script)
        })
}

/// Applies the script op by op and asserts after EVERY prefix that the
/// maintained set equals the brute-force oracle run on a fresh snapshot.
fn check_against_oracle(
    g: &BipartiteGraph,
    script: &[Op],
    cfg: DynamicConfig,
) -> Result<(), TestCaseError> {
    let k = cfg.k;
    let (tl, tr) = (cfg.theta_left, cfg.theta_right);
    let mut m = DynamicEnumerator::new(g, cfg).unwrap();
    let oracle0 = brute_force_large_mbps(g, k, tl, tr);
    prop_assert_eq!(m.solutions(), oracle0, "seed enumeration diverged from oracle");
    for &(insert, v, u) in script {
        let diff = if insert { m.insert_edge(v, u) } else { m.delete_edge(v, u) };
        let diff = diff.unwrap();
        let snapshot = m.snapshot();
        let oracle = brute_force_large_mbps(&snapshot, k, tl, tr);
        prop_assert_eq!(
            m.solutions(),
            oracle,
            "maintained set diverged after {} ({}, {}) [diff {:?}]",
            if insert { "insert" } else { "delete" },
            v,
            u,
            diff
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Fallback path (θ = 0 is never localizable): incremental ≡ oracle for
    /// every prefix of a random edit script.
    #[test]
    fn fallback_matches_oracle_on_random_scripts(
        (g, script) in script_strategy(),
        k in 0usize..3,
    ) {
        let cfg = DynamicConfig { k, ..DynamicConfig::default() };
        check_against_oracle(&g, &script, cfg)?;
    }

    /// Localized path (θ_L = θ_R = 3 > 2k for k = 1): incremental ≡ oracle
    /// for every prefix of a random edit script.
    #[test]
    fn localized_matches_oracle_on_random_scripts((g, script) in script_strategy()) {
        let cfg = DynamicConfig { k: 1, theta_left: 3, theta_right: 3, ..DynamicConfig::default() };
        check_against_oracle(&g, &script, cfg)?;
    }

    /// The per-update diffs replayed over the seed set reconstruct the final
    /// maintained set exactly (no missing or duplicate diff entries).
    #[test]
    fn diffs_replay_to_final_set((g, script) in script_strategy()) {
        let cfg = DynamicConfig { k: 1, theta_left: 3, theta_right: 3, ..DynamicConfig::default() };
        let mut m = DynamicEnumerator::new(&g, cfg).unwrap();
        let mut replay: std::collections::BTreeSet<Biplex> =
            m.solutions().into_iter().collect();
        for &(insert, v, u) in &script {
            let diff =
                if insert { m.insert_edge(v, u) } else { m.delete_edge(v, u) }.unwrap();
            for b in &diff.removed {
                prop_assert!(replay.remove(b), "diff removed an untracked solution");
            }
            for b in &diff.added {
                prop_assert!(replay.insert(b.clone()), "diff re-added a tracked solution");
            }
        }
        prop_assert_eq!(replay.into_iter().collect::<Vec<_>>(), m.solutions());
    }
}

/// Deterministic mid-size equivalence sweep: a Chung–Lu graph with a random
/// edit script, incremental ≡ rebuild at every step, across k and across all
/// three engines (the re-enumerations must agree regardless of scheduler).
#[test]
fn chung_lu_incremental_matches_rebuild_across_engines() {
    // k = 2 (θ = 5) only runs sequentially: its rebuild baseline dominates
    // the cost and the engine sweep is already covered at k = 1.
    let configs: &[(usize, Engine)] = &[
        (1, Engine::Sequential),
        (1, Engine::WorkSteal),
        (1, Engine::GlobalQueue),
        (2, Engine::Sequential),
    ];
    for &(k, engine) in configs {
        let theta = 2 * k + 1; // smallest localizable thresholds
        let cfg = DynamicConfig {
            k,
            theta_left: theta,
            theta_right: theta,
            engine,
            threads: if engine == Engine::Sequential { 0 } else { 2 },
        };
        let g = mbpe::bigraph::gen::chung_lu_bipartite(22, 22, 110, 2.0, 42);
        let mut m = DynamicEnumerator::new(&g, cfg).unwrap();
        assert!(m.is_localized());
        let mut rng = StdRng::seed_from_u64(0xD15C0 ^ k as u64);
        for step in 0..10 {
            let v = rng.gen_range(0..22);
            let u = rng.gen_range(0..22);
            if m.graph().has_edge(v, u) {
                m.delete_edge(v, u).unwrap();
            } else {
                m.insert_edge(v, u).unwrap();
            }
            let rebuilt = m.rebuild().unwrap();
            assert_eq!(m.solutions(), rebuilt, "k={k} engine={engine:?} diverged at step {step}");
        }
        assert_eq!(m.stats().fallback_updates, 0);
        assert!(m.stats().localized_updates + m.stats().noop_updates == 10);
    }
}

/// Deleting every edge drains the maintained set; re-inserting them restores
/// the original solutions (full round-trip through the localized path).
#[test]
fn drain_and_refill_round_trip() {
    let g = mbpe::bigraph::gen::chung_lu_bipartite(12, 12, 70, 2.0, 5);
    let cfg = DynamicConfig { k: 1, theta_left: 3, theta_right: 3, ..DynamicConfig::default() };
    let mut m = DynamicEnumerator::new(&g, cfg).unwrap();
    let initial = m.solutions();

    let mut edges = Vec::new();
    for v in 0..12u32 {
        for &u in g.left_neighbors(v) {
            edges.push((v, u));
        }
    }
    for &(v, u) in &edges {
        m.delete_edge(v, u).unwrap();
    }
    assert!(m.is_empty(), "no edges → no solutions above θ = 3");
    assert_eq!(m.graph().num_edges(), 0);

    for &(v, u) in &edges {
        m.insert_edge(v, u).unwrap();
    }
    assert_eq!(m.solutions(), initial, "re-inserting all edges must restore the set");
}
