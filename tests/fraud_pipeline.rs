//! End-to-end test of the fraud-detection case study pipeline (a smaller
//! version of the Figure 13 experiment).

use mbpe::frauddet::{run_detector, CamouflageScenario, Detector, ScenarioParams};

fn scenario() -> CamouflageScenario {
    CamouflageScenario::generate(ScenarioParams {
        real_users: 600,
        real_products: 300,
        real_reviews: 1_800,
        fake_users: 60,
        fake_products: 60,
        fake_comments: 720,
        camouflage_comments: 720,
        seed: 99,
    })
}

#[test]
fn biplex_detector_beats_biclique_recall_at_higher_thresholds() {
    let s = scenario();
    let theta_l = 4;
    let theta_r = 5;
    let biplex = run_detector(&s, Detector::KBiplex { k: 1 }, theta_l, theta_r);
    let biclique = run_detector(&s, Detector::Biclique, theta_l, theta_r);
    assert!(
        biplex.recall >= biclique.recall,
        "1-biplex recall {} should be at least biclique recall {}",
        biplex.recall,
        biclique.recall
    );
    assert!(biplex.recall > 0.5, "1-biplex should recover most of the block: {biplex:?}");
}

#[test]
fn alpha_beta_core_trades_precision_for_recall() {
    // The (α,β)-core is a single coarse subgraph: it recovers the fraud
    // block (decent recall) but also sweeps up well-connected genuine
    // users, so its precision stays low — the qualitative finding of the
    // paper's Figure 13. The exact numbers depend on the synthetic
    // background, so the assertions are deliberately loose.
    let s = scenario();
    let core = run_detector(&s, Detector::AlphaBetaCore, 4, 5);
    assert!(core.recall >= 0.3, "core should recover a chunk of the block: {core:?}");
    if let Some(pc) = core.precision {
        assert!(pc <= 0.9, "the core should not be laser-precise: {core:?}");
    }
}

#[test]
fn metrics_are_well_formed_for_every_detector() {
    let s = scenario();
    for det in [
        Detector::Biclique,
        Detector::KBiplex { k: 1 },
        Detector::AlphaBetaCore,
        Detector::DeltaQuasiBiclique { delta: 0.2 },
    ] {
        let m = run_detector(&s, det, 4, 4);
        assert!((0.0..=1.0).contains(&m.recall), "{det:?} recall {m:?}");
        if let Some(p) = m.precision {
            assert!((0.0..=1.0).contains(&p), "{det:?} precision {m:?}");
        }
        if let Some(f1) = m.f1 {
            assert!((0.0..=1.0).contains(&f1), "{det:?} f1 {m:?}");
        }
    }
}
