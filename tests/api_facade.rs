//! Equivalence matrix for the `Enumerator` facade: across algorithm ×
//! engine × vertex order, the facade must report the *exact* canonical
//! solution set of the legacy free-function entry points it replaced, and
//! its stopping rules (limit, cancellation) must be deterministic and
//! sound.

// The legacy side of every comparison goes through the deprecated wrappers
// on purpose — that is the contract under test.
#![allow(deprecated)]

use std::time::Duration;

use mbpe::bigraph::gen::chung_lu::chung_lu_bipartite;
use mbpe::kbiplex::{bruteforce::brute_force_mbps, LargeMbpReport, TraversalConfig};
use mbpe::prelude::*;

/// Canonically sorted facade output (the `collect` terminal).
fn facade(e: &Enumerator<'_>) -> Vec<Biplex> {
    e.collect().expect("valid facade configuration")
}

/// Canonically sorted legacy traversal output.
fn legacy(g: &BipartiteGraph, cfg: &TraversalConfig) -> Vec<Biplex> {
    let mut sink = CollectSink::new();
    enumerate_mbps(g, cfg, &mut sink);
    sink.into_sorted()
}

fn chung_lu(seed: u64) -> BipartiteGraph {
    let nl = 9 + (seed % 3) as u32;
    let nr = 8 + (seed % 2) as u32;
    let edges = 3 * (nl as u64 + nr as u64) / 2;
    chung_lu_bipartite(nl, nr, edges, 2.2, seed)
}

const ORDERS: [VertexOrder; 3] = [VertexOrder::Input, VertexOrder::Degree, VertexOrder::Degeneracy];

#[test]
fn sequential_algorithms_match_their_legacy_configs() {
    for seed in 0..4u64 {
        let g = chung_lu(seed);
        for k in 1..=2usize {
            let pairs: [(Algorithm, TraversalConfig); 4] = [
                (Algorithm::ITraversal, TraversalConfig::itraversal(k)),
                (Algorithm::ITraversalNoExclusion, TraversalConfig::itraversal_no_exclusion(k)),
                (Algorithm::LeftAnchoredOnly, TraversalConfig::itraversal_left_anchored_only(k)),
                (Algorithm::BTraversal, TraversalConfig::btraversal(k)),
            ];
            for (algorithm, cfg) in pairs {
                for order in ORDERS {
                    let expected = legacy(&g, &cfg.clone().with_order(order));
                    let got = facade(&Enumerator::new(&g).k(k).algorithm(algorithm).order(order));
                    assert_eq!(got, expected, "seed {seed} k {k} {algorithm:?} {order}");
                }
            }
            // The right-anchored variant (Section 6.2) through the anchor
            // override.
            let expected = legacy(&g, &TraversalConfig::itraversal(k).with_anchor(Anchor::Right));
            let got = facade(&Enumerator::new(&g).k(k).anchor(Anchor::Right));
            assert_eq!(got, expected, "seed {seed} k {k} right-anchored");
        }
    }
}

#[test]
fn parallel_engines_match_the_legacy_parallel_entry_point() {
    for seed in 0..3u64 {
        let g = chung_lu(seed);
        for k in 1..=2usize {
            for engine in [Engine::WorkSteal, Engine::GlobalQueue] {
                let legacy_engine = match engine {
                    Engine::WorkSteal => ParallelEngine::WorkSteal,
                    Engine::GlobalQueue => ParallelEngine::GlobalQueue,
                    Engine::Sequential => unreachable!(),
                };
                for order in ORDERS {
                    let cfg = ParallelConfig::new(k)
                        .with_threads(3)
                        .with_engine(legacy_engine)
                        .with_order(order);
                    let (mut expected, _) = par_enumerate_mbps(&g, &cfg);
                    expected.sort();
                    let got =
                        facade(&Enumerator::new(&g).k(k).engine(engine).threads(3).order(order));
                    assert_eq!(got, expected, "seed {seed} k {k} {engine:?} {order}");
                }
            }
        }
    }
}

#[test]
fn large_pipeline_matches_the_legacy_collectors_on_both_engines() {
    for seed in 0..3u64 {
        let g = chung_lu(seed + 10);
        let k = 1;
        for (tl, tr) in [(2, 2), (3, 2)] {
            for core in [true, false] {
                let params = mbpe::kbiplex::LargeMbpParams {
                    k,
                    theta_left: tl,
                    theta_right: tr,
                    core_reduction: core,
                };
                let expected =
                    mbpe::kbiplex::collect_large_mbps(&g, &params, &TraversalConfig::itraversal(k));
                let sequential = facade(
                    &Enumerator::new(&g)
                        .k(k)
                        .algorithm(Algorithm::Large)
                        .thresholds(tl, tr)
                        .core_reduction(core),
                );
                assert_eq!(sequential, expected, "seed {seed} θ=({tl},{tr}) core {core}");

                let (par_expected, _) = mbpe::kbiplex::par_collect_large_mbps(
                    &g,
                    &params,
                    &ParallelConfig::new(k).with_threads(3),
                );
                assert_eq!(par_expected, expected, "legacy parallel agrees");
                let parallel = facade(
                    &Enumerator::new(&g)
                        .k(k)
                        .algorithm(Algorithm::Large)
                        .thresholds(tl, tr)
                        .core_reduction(core)
                        .engine(Engine::WorkSteal)
                        .threads(3),
                );
                assert_eq!(parallel, expected, "seed {seed} θ=({tl},{tr}) core {core} steal");
            }
        }
    }
}

#[test]
fn asym_and_brute_force_match_their_legacy_oracles() {
    for seed in 0..3u64 {
        let g = chung_lu(seed + 20);
        for (kl, kr) in [(1, 1), (1, 2), (2, 1)] {
            let kp = KPair::new(kl, kr);
            let expected = collect_asym_mbps(&g, kp);
            let got = facade(&Enumerator::new(&g).algorithm(Algorithm::Asym).k_pair(kp));
            assert_eq!(got, expected, "seed {seed} k=({kl},{kr})");
        }
        for k in 1..=2usize {
            let expected = brute_force_mbps(&g, k);
            let got = facade(&Enumerator::new(&g).k(k).algorithm(Algorithm::BruteForce));
            assert_eq!(got, expected, "seed {seed} k {k} oracle");
            assert_eq!(facade(&Enumerator::new(&g).k(k)), expected, "iTraversal vs oracle");
        }
    }
}

#[test]
fn limit_n_returns_exactly_n_valid_mbps_deterministically() {
    let g = chung_lu(31);
    let k = 1;
    let total = facade(&Enumerator::new(&g).k(k)).len() as u64;
    assert!(total > 5, "fixture must have enough solutions, got {total}");
    for engine in [Engine::Sequential, Engine::WorkSteal, Engine::GlobalQueue] {
        for limit in [1u64, 3, 5] {
            // Repeat each run: the *count* must be deterministic even where
            // the parallel delivery order is not.
            for round in 0..3 {
                let mut sink = CollectSink::new();
                let mut e = Enumerator::new(&g).k(k).limit(limit);
                if engine != Engine::Sequential {
                    e = e.engine(engine).threads(4);
                }
                let report = e.run(&mut sink).expect("valid facade configuration");
                assert_eq!(
                    sink.solutions.len() as u64,
                    limit,
                    "{engine:?} limit {limit} round {round}"
                );
                assert_eq!(report.solutions, limit);
                assert_eq!(report.stop, StopReason::LimitReached);
                for b in &sink.solutions {
                    assert!(
                        is_maximal_k_biplex(&g, &b.left, &b.right, k),
                        "{engine:?} delivered a non-maximal solution"
                    );
                }
            }
        }
        // A limit beyond the solution count ends by exhaustion.
        let mut sink = CountingSink::new();
        let mut e = Enumerator::new(&g).k(k).limit(total + 100);
        if engine != Engine::Sequential {
            e = e.engine(engine).threads(4);
        }
        let report = e.run(&mut sink).expect("valid facade configuration");
        assert_eq!(report.stop, StopReason::Exhausted, "{engine:?}");
        assert_eq!(sink.count, total, "{engine:?}");
    }
}

#[test]
fn work_steal_cancellation_marks_the_run_stopped_early() {
    let g = chung_lu(33);
    let mut sink = CollectSink::new();
    let report = Enumerator::new(&g)
        .k(2)
        .engine(Engine::WorkSteal)
        .threads(4)
        .limit(2)
        .run(&mut sink)
        .expect("valid facade configuration");
    assert_eq!(report.stop, StopReason::LimitReached);
    let EngineStats::Parallel(stats) = &report.stats else {
        panic!("work-steal runs report parallel stats");
    };
    assert!(stats.stopped_early, "cooperative cancellation must reach the workers");
}

#[test]
fn stream_collection_agrees_with_legacy_collect_byte_for_byte() {
    for seed in 0..3u64 {
        let g = chung_lu(seed + 40);
        let k = 1;
        let expected = enumerate_all(&g, k);
        for engine in [Engine::Sequential, Engine::WorkSteal, Engine::GlobalQueue] {
            let mut e = Enumerator::new(&g).k(k);
            if engine != Engine::Sequential {
                e = e.engine(engine).threads(3);
            }
            let mut sink = CollectSink::new();
            for b in e.stream().expect("valid facade configuration") {
                sink.on_solution(&b);
            }
            // `into_sorted` dedups defensively, so stream collection and the
            // legacy collect agree byte-for-byte.
            assert_eq!(sink.into_sorted(), expected, "seed {seed} {engine:?}");
        }
    }
}

#[test]
fn time_budget_stops_within_the_run() {
    let g = chung_lu(51);
    for engine in [Engine::Sequential, Engine::WorkSteal] {
        let mut e = Enumerator::new(&g).k(2).time_budget(Duration::ZERO);
        if engine != Engine::Sequential {
            e = e.engine(engine).threads(2);
        }
        let mut sink = CountingSink::new();
        let report = e.run(&mut sink).expect("valid facade configuration");
        assert_eq!(report.stop, StopReason::TimeBudget, "{engine:?}");
        assert_eq!(sink.count, 0, "{engine:?}");
        // A generous budget never fires.
        let mut e = Enumerator::new(&g).k(1).time_budget(Duration::from_secs(3600));
        if engine != Engine::Sequential {
            e = e.engine(engine).threads(2);
        }
        let report = e.run(&mut CountingSink::new()).expect("valid facade configuration");
        assert_eq!(report.stop, StopReason::Exhausted, "{engine:?}");
    }
}

#[test]
fn deprecated_wrappers_still_agree_with_the_facade() {
    // The thin wrappers must stay exact aliases of the facade paths.
    let g = chung_lu(60);
    let k = 1;
    let via_facade = facade(&Enumerator::new(&g).k(k));
    assert_eq!(enumerate_all(&g, k), via_facade);
    assert_eq!(par_collect_mbps(&g, k, 3), via_facade);

    let report: LargeMbpReport = {
        let mut sink = CollectSink::new();
        mbpe::kbiplex::enumerate_large_mbps(
            &g,
            &mbpe::kbiplex::LargeMbpParams::symmetric(k, 2),
            &TraversalConfig::itraversal(k),
            &mut sink,
        )
    };
    assert!(report.reduced_size.0 <= g.num_left());
}
