//! Equivalence matrix for the `Enumerator` facade: across algorithm ×
//! engine × vertex order, every configuration must report the *exact*
//! canonical solution set of the brute-force oracle, and the stopping
//! rules (limit, cancellation) must be deterministic and sound.

use std::time::Duration;

use mbpe::bigraph::gen::chung_lu::chung_lu_bipartite;
use mbpe::kbiplex::asym::brute_force_asym_mbps;
use mbpe::kbiplex::bruteforce::brute_force_mbps;
use mbpe::prelude::*;

/// Canonically sorted facade output (the `collect` terminal).
fn facade(e: &Enumerator<'_>) -> Vec<Biplex> {
    e.collect().expect("valid facade configuration")
}

fn chung_lu(seed: u64) -> BipartiteGraph {
    let nl = 9 + (seed % 3) as u32;
    let nr = 8 + (seed % 2) as u32;
    let edges = 3 * (nl as u64 + nr as u64) / 2;
    chung_lu_bipartite(nl, nr, edges, 2.2, seed)
}

const ORDERS: [VertexOrder; 3] = [VertexOrder::Input, VertexOrder::Degree, VertexOrder::Degeneracy];

#[test]
fn sequential_algorithms_match_the_oracle_across_orders() {
    for seed in 0..4u64 {
        let g = chung_lu(seed);
        for k in 1..=2usize {
            let expected = brute_force_mbps(&g, k);
            for algorithm in [
                Algorithm::ITraversal,
                Algorithm::ITraversalNoExclusion,
                Algorithm::LeftAnchoredOnly,
                Algorithm::BTraversal,
            ] {
                for order in ORDERS {
                    let got = facade(&Enumerator::new(&g).k(k).algorithm(algorithm).order(order));
                    assert_eq!(got, expected, "seed {seed} k {k} {algorithm:?} {order}");
                }
            }
            // The right-anchored variant (Section 6.2) through the anchor
            // override.
            let got = facade(&Enumerator::new(&g).k(k).anchor(Anchor::Right));
            assert_eq!(got, expected, "seed {seed} k {k} right-anchored");
        }
    }
}

#[test]
fn parallel_engines_match_the_sequential_path() {
    for seed in 0..3u64 {
        let g = chung_lu(seed);
        for k in 1..=2usize {
            let expected = facade(&Enumerator::new(&g).k(k));
            for engine in [Engine::WorkSteal, Engine::GlobalQueue] {
                for order in ORDERS {
                    let got =
                        facade(&Enumerator::new(&g).k(k).engine(engine).threads(3).order(order));
                    assert_eq!(got, expected, "seed {seed} k {k} {engine:?} {order}");
                }
            }
        }
    }
}

#[test]
fn large_pipeline_matches_the_filtered_full_enumeration_on_both_engines() {
    for seed in 0..3u64 {
        let g = chung_lu(seed + 10);
        let k = 1;
        for (tl, tr) in [(2, 2), (3, 2)] {
            let expected: Vec<Biplex> = facade(&Enumerator::new(&g).k(k))
                .into_iter()
                .filter(|b| b.left.len() >= tl && b.right.len() >= tr)
                .collect();
            for core in [true, false] {
                let sequential = facade(
                    &Enumerator::new(&g)
                        .k(k)
                        .algorithm(Algorithm::Large)
                        .thresholds(tl, tr)
                        .core_reduction(core),
                );
                assert_eq!(sequential, expected, "seed {seed} θ=({tl},{tr}) core {core}");

                let parallel = facade(
                    &Enumerator::new(&g)
                        .k(k)
                        .algorithm(Algorithm::Large)
                        .thresholds(tl, tr)
                        .core_reduction(core)
                        .engine(Engine::WorkSteal)
                        .threads(3),
                );
                assert_eq!(parallel, expected, "seed {seed} θ=({tl},{tr}) core {core} steal");
            }
        }
    }
}

#[test]
fn asym_and_brute_force_match_their_oracles() {
    for seed in 0..3u64 {
        let g = chung_lu(seed + 20);
        for (kl, kr) in [(1, 1), (1, 2), (2, 1)] {
            let kp = KPair::new(kl, kr);
            let expected = brute_force_asym_mbps(&g, kp);
            let got = facade(&Enumerator::new(&g).algorithm(Algorithm::Asym).k_pair(kp));
            assert_eq!(got, expected, "seed {seed} k=({kl},{kr})");
        }
        for k in 1..=2usize {
            let expected = brute_force_mbps(&g, k);
            let got = facade(&Enumerator::new(&g).k(k).algorithm(Algorithm::BruteForce));
            assert_eq!(got, expected, "seed {seed} k {k} oracle");
            assert_eq!(facade(&Enumerator::new(&g).k(k)), expected, "iTraversal vs oracle");
        }
    }
}

#[test]
fn limit_n_returns_exactly_n_valid_mbps_deterministically() {
    let g = chung_lu(31);
    let k = 1;
    let total = facade(&Enumerator::new(&g).k(k)).len() as u64;
    assert!(total > 5, "fixture must have enough solutions, got {total}");
    for engine in [Engine::Sequential, Engine::WorkSteal, Engine::GlobalQueue] {
        for limit in [1u64, 3, 5] {
            // Repeat each run: the *count* must be deterministic even where
            // the parallel delivery order is not.
            for round in 0..3 {
                let mut sink = CollectSink::new();
                let mut e = Enumerator::new(&g).k(k).limit(limit);
                if engine != Engine::Sequential {
                    e = e.engine(engine).threads(4);
                }
                let report = e.run(&mut sink).expect("valid facade configuration");
                assert_eq!(
                    sink.solutions.len() as u64,
                    limit,
                    "{engine:?} limit {limit} round {round}"
                );
                assert_eq!(report.solutions, limit);
                assert_eq!(report.stop, StopReason::LimitReached);
                for b in &sink.solutions {
                    assert!(
                        is_maximal_k_biplex(&g, &b.left, &b.right, k),
                        "{engine:?} delivered a non-maximal solution"
                    );
                }
            }
        }
        // A limit beyond the solution count ends by exhaustion.
        let mut sink = CountingSink::new();
        let mut e = Enumerator::new(&g).k(k).limit(total + 100);
        if engine != Engine::Sequential {
            e = e.engine(engine).threads(4);
        }
        let report = e.run(&mut sink).expect("valid facade configuration");
        assert_eq!(report.stop, StopReason::Exhausted, "{engine:?}");
        assert_eq!(sink.count, total, "{engine:?}");
    }
}

#[test]
fn work_steal_cancellation_marks_the_run_stopped_early() {
    let g = chung_lu(33);
    let mut sink = CollectSink::new();
    let report = Enumerator::new(&g)
        .k(2)
        .engine(Engine::WorkSteal)
        .threads(4)
        .limit(2)
        .run(&mut sink)
        .expect("valid facade configuration");
    assert_eq!(report.stop, StopReason::LimitReached);
    let EngineStats::Parallel(stats) = &report.stats else {
        panic!("work-steal runs report parallel stats");
    };
    assert!(stats.stopped_early, "cooperative cancellation must reach the workers");
}

#[test]
fn stream_collection_agrees_with_collect_byte_for_byte() {
    for seed in 0..3u64 {
        let g = chung_lu(seed + 40);
        let k = 1;
        let expected = facade(&Enumerator::new(&g).k(k));
        for engine in [Engine::Sequential, Engine::WorkSteal, Engine::GlobalQueue] {
            let mut e = Enumerator::new(&g).k(k);
            if engine != Engine::Sequential {
                e = e.engine(engine).threads(3);
            }
            let mut sink = CollectSink::new();
            for b in e.stream().expect("valid facade configuration") {
                sink.on_solution(&b);
            }
            // `into_sorted` dedups defensively, so stream collection and the
            // direct collect agree byte-for-byte.
            assert_eq!(sink.into_sorted(), expected, "seed {seed} {engine:?}");
        }
    }
}

#[test]
fn time_budget_stops_within_the_run() {
    let g = chung_lu(51);
    for engine in [Engine::Sequential, Engine::WorkSteal] {
        let mut e = Enumerator::new(&g).k(2).time_budget(Duration::ZERO);
        if engine != Engine::Sequential {
            e = e.engine(engine).threads(2);
        }
        let mut sink = CountingSink::new();
        let report = e.run(&mut sink).expect("valid facade configuration");
        assert_eq!(report.stop, StopReason::TimeBudget, "{engine:?}");
        assert_eq!(sink.count, 0, "{engine:?}");
        // A generous budget never fires.
        let mut e = Enumerator::new(&g).k(1).time_budget(Duration::from_secs(3600));
        if engine != Engine::Sequential {
            e = e.engine(engine).threads(2);
        }
        let report = e.run(&mut CountingSink::new()).expect("valid facade configuration");
        assert_eq!(report.stop, StopReason::Exhausted, "{engine:?}");
    }
}

#[test]
fn spec_round_trip_reproduces_the_run() {
    // An enumerator rebuilt from its own spec (directly or through the JSON
    // wire shape) is the same query.
    let g = chung_lu(60);
    for e in [
        Enumerator::new(&g).k(1),
        Enumerator::new(&g).k(2).engine(Engine::WorkSteal).threads(3).limit(7),
        Enumerator::new(&g).algorithm(Algorithm::Asym).k_pair(KPair::new(1, 2)),
        Enumerator::new(&g).k(1).algorithm(Algorithm::Large).thresholds(2, 2),
    ] {
        let spec = e.to_spec();
        let direct = facade(&e);
        assert_eq!(facade(&Enumerator::from_spec(&g, &spec)), direct);
        let wire = QuerySpec::from_json_str(&spec.to_json_string()).expect("wire round-trip");
        assert_eq!(wire, spec);
        assert_eq!(facade(&Enumerator::from_spec(&g, &wire)), direct);
    }
}
