//! Property-based tests over the serializable query surface: a random
//! [`QuerySpec`] must survive a JSON round-trip bit-for-bit, the facade's
//! `from_spec`/`to_spec` must be a lossless pair, and the codec's edge
//! cases (defaults omitted, `null` resets, unknown keys, malformed
//! durations) must behave as documented.

use std::time::Duration;

use mbpe::prelude::*;
use proptest::prelude::*;

fn algorithm_strategy() -> impl Strategy<Value = Algorithm> {
    prop_oneof![
        Just(Algorithm::ITraversal),
        Just(Algorithm::ITraversalNoExclusion),
        Just(Algorithm::LeftAnchoredOnly),
        Just(Algorithm::BTraversal),
        Just(Algorithm::Large),
        Just(Algorithm::Asym),
        Just(Algorithm::BruteForce),
    ]
}

fn engine_strategy() -> impl Strategy<Value = Engine> {
    prop_oneof![Just(Engine::Sequential), Just(Engine::GlobalQueue), Just(Engine::WorkSteal)]
}

fn order_strategy() -> impl Strategy<Value = VertexOrder> {
    prop_oneof![Just(VertexOrder::Input), Just(VertexOrder::Degree), Just(VertexOrder::Degeneracy)]
}

fn enum_kind_strategy() -> impl Strategy<Value = EnumKind> {
    prop_oneof![
        Just(EnumKind::L1R1),
        Just(EnumKind::L1R2),
        Just(EnumKind::L2R1),
        Just(EnumKind::L2R2),
        Just(EnumKind::Inflation),
    ]
}

fn emit_strategy() -> impl Strategy<Value = EmitMode> {
    prop_oneof![Just(EmitMode::Immediate), Just(EmitMode::Alternating)]
}

fn anchor_strategy() -> impl Strategy<Value = Anchor> {
    prop_oneof![Just(Anchor::Left), Just(Anchor::Right), Just(Anchor::Arbitrary)]
}

fn kernel_strategy() -> impl Strategy<Value = Kernel> {
    prop_oneof![
        Just(Kernel::Auto),
        Just(Kernel::Merge),
        Just(Kernel::Gallop),
        Just(Kernel::Chunked),
        Just(Kernel::Bitset),
    ]
}

fn duration_strategy() -> impl Strategy<Value = Duration> {
    (0u64..10_000, 0u32..1_000_000_000).prop_map(|(secs, nanos)| Duration::new(secs, nanos))
}

/// An arbitrary [`QuerySpec`] exercising every one of its fields, including
/// values equal to the defaults (which the encoder omits) and extreme
/// optionals. The spec need not be *runnable* — `to_json`/`from_json` and
/// `from_spec`/`to_spec` are pure data transport and must not care.
fn spec_strategy() -> impl Strategy<Value = QuerySpec> {
    let first = (
        0usize..5,
        proptest::option::of((0usize..4, 0usize..4)),
        algorithm_strategy(),
        engine_strategy(),
        order_strategy(),
        enum_kind_strategy(),
        emit_strategy(),
        proptest::option::of(anchor_strategy()),
    );
    let second = (
        0usize..6,
        0usize..6,
        proptest::option::of(any::<bool>()),
        0usize..9,
        0usize..17,
        any::<bool>(),
        proptest::option::of(any::<u64>()),
        proptest::option::of(duration_strategy()),
        1usize..2048,
        kernel_strategy(),
    );
    (first, second).prop_map(
        |(
            (k, k_pair, algorithm, engine, order, enum_kind, emit_mode, anchor),
            (
                theta_left,
                theta_right,
                core_reduction,
                threads,
                seen_segments,
                steal_adaptive,
                limit,
                time_budget,
                stream_buffer,
                kernel,
            ),
        )| QuerySpec {
            k,
            k_pair: k_pair.map(|(left, right)| KPair { left, right }),
            algorithm,
            engine,
            order,
            enum_kind,
            emit_mode,
            anchor,
            theta_left,
            theta_right,
            core_reduction,
            threads,
            seen_segments,
            steal_adaptive,
            limit,
            time_budget,
            stream_buffer,
            kernel,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// JSON encode → decode is the identity on every field.
    #[test]
    fn json_round_trip_is_lossless(spec in spec_strategy()) {
        let text = spec.to_json_string();
        let back = QuerySpec::from_json_str(&text).expect("own encoding parses");
        prop_assert_eq!(back, spec, "document was {}", text);
    }

    /// The document and its re-encoding are byte-identical (the encoder is
    /// canonical: fixed key order, defaults omitted, no whitespace).
    #[test]
    fn encoding_is_canonical(spec in spec_strategy()) {
        let text = spec.to_json_string();
        let back = QuerySpec::from_json_str(&text).unwrap();
        prop_assert_eq!(back.to_json_string(), text);
    }

    /// `Enumerator::from_spec` followed by `to_spec` returns the same spec:
    /// the builder holds no state outside the serializable surface.
    #[test]
    fn facade_spec_round_trip_is_lossless(spec in spec_strategy()) {
        let g = BipartiteGraph::from_edges(2, 2, &[(0, 0), (1, 1)]).unwrap();
        prop_assert_eq!(Enumerator::from_spec(&g, &spec).to_spec(), spec);
    }

    /// The builder methods and the spec literal agree field by field.
    #[test]
    fn builder_and_spec_literal_agree(spec in spec_strategy()) {
        let g = BipartiteGraph::from_edges(2, 2, &[(0, 0), (1, 1)]).unwrap();
        let mut e = Enumerator::new(&g)
            .k(spec.k)
            .algorithm(spec.algorithm)
            .engine(spec.engine)
            .order(spec.order)
            .enum_kind(spec.enum_kind)
            .emit(spec.emit_mode)
            .thresholds(spec.theta_left, spec.theta_right)
            .threads(spec.threads)
            .seen_segments(spec.seen_segments)
            .steal_adaptive(spec.steal_adaptive)
            .stream_buffer(spec.stream_buffer)
            .kernel(spec.kernel);
        if let Some(kp) = spec.k_pair {
            e = e.k_pair(kp);
        }
        if let Some(a) = spec.anchor {
            e = e.anchor(a);
        }
        if let Some(c) = spec.core_reduction {
            e = e.core_reduction(c);
        }
        if let Some(n) = spec.limit {
            e = e.limit(n);
        }
        if let Some(b) = spec.time_budget {
            e = e.time_budget(b);
        }
        prop_assert_eq!(e.to_spec(), spec);
    }
}

#[test]
fn default_spec_encodes_to_the_empty_document() {
    assert_eq!(QuerySpec::default().to_json_string(), "{}");
    assert_eq!(QuerySpec::from_json_str("{}").unwrap(), QuerySpec::default());
}

#[test]
fn null_resets_the_optional_fields() {
    let spec = QuerySpec::from_json_str(
        r#"{"k_pair":null,"anchor":null,"core_reduction":null,"limit":null,"time_budget":null}"#,
    )
    .unwrap();
    assert_eq!(spec, QuerySpec::default());
}

#[test]
fn unknown_keys_are_rejected() {
    let err = QuerySpec::from_json_str(r#"{"ka":2}"#).unwrap_err();
    assert!(err.to_string().contains("unknown key"), "{err}");
    assert!(QuerySpec::from_json_str(r#"{"k":2,"Limit":3}"#).is_err());
}

#[test]
fn wrong_shapes_are_rejected() {
    // Enum codes are exact strings.
    assert!(QuerySpec::from_json_str(r#"{"algorithm":"iTraversal"}"#).is_err());
    assert!(QuerySpec::from_json_str(r#"{"engine":"parallel"}"#).is_err());
    // Numbers where strings belong, and vice versa.
    assert!(QuerySpec::from_json_str(r#"{"k":"2"}"#).is_err());
    assert!(QuerySpec::from_json_str(r#"{"order":1}"#).is_err());
    // k_pair needs both sides.
    assert!(QuerySpec::from_json_str(r#"{"k_pair":{"left":1}}"#).is_err());
    // Durations are {secs, nanos} with nanos < 1e9.
    assert!(QuerySpec::from_json_str(r#"{"time_budget":{"secs":1,"nanos":1000000000}}"#).is_err());
    assert!(QuerySpec::from_json_str(r#"{"time_budget":1.5}"#).is_err());
    // The document must be an object.
    assert!(QuerySpec::from_json_str("[1,2]").is_err());
    assert!(QuerySpec::from_json_str("not json at all").is_err());
}

#[test]
fn enum_codes_round_trip_through_their_display_form() {
    let spec = QuerySpec {
        algorithm: Algorithm::LeftAnchoredOnly,
        engine: Engine::WorkSteal,
        order: VertexOrder::Degeneracy,
        anchor: Some(Anchor::Arbitrary),
        kernel: Kernel::Bitset,
        ..QuerySpec::default()
    };
    let text = spec.to_json_string();
    assert!(text.contains(r#""algorithm":"itraversal-es-rs""#), "{text}");
    assert!(text.contains(r#""engine":"steal""#), "{text}");
    assert!(text.contains(r#""order":"degeneracy""#), "{text}");
    assert!(text.contains(r#""kernel":"bitset""#), "{text}");
    assert_eq!(QuerySpec::from_json_str(&text).unwrap(), spec);
}
