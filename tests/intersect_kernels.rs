//! Property-based equivalence battery over the intersection kernels:
//! scalar merge ≡ galloping ≡ branchless chunked ≡ bitset on arbitrary
//! strictly-sorted inputs across every length ratio and density (including
//! one or both sides empty), plus engine-level cross-validation that a
//! forced `--kernel` override never changes the enumerated solution set.

use bigraph::intersect::{dispatch_with, intersection_into, intersects, set_thread_kernel};
use mbpe::prelude::*;
use proptest::prelude::*;

/// Reference implementation: the obvious quadratic-free two-pointer walk,
/// written independently of the kernels under test.
fn naive_len(a: &[u32], b: &[u32]) -> usize {
    let (mut i, mut j, mut n) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

fn naive_set(a: &[u32], b: &[u32]) -> Vec<u32> {
    a.iter().copied().filter(|x| b.binary_search(x).is_ok()).collect()
}

/// Strategy: a strictly sorted, deduplicated id list whose length and
/// density both vary wildly — `max_gap` spans contiguous runs (bitset
/// territory) to sparse scatters (gallop/merge territory), and `len` spans
/// empty through several chunked blocks.
fn sorted_ids_strategy() -> impl Strategy<Value = Vec<u32>> {
    (0usize..80, 1u32..200, 0u32..100).prop_flat_map(|(len, max_gap, start)| {
        proptest::collection::vec(1u32..max_gap + 1, len).prop_map(move |gaps| {
            let mut v = Vec::with_capacity(gaps.len());
            let mut next = start;
            for g in gaps {
                v.push(next);
                next += g;
            }
            v
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Every kernel (and the crossover heuristic) agrees with the naive
    /// reference on arbitrary sorted inputs, in both argument orders.
    #[test]
    fn all_kernels_match_the_naive_reference(
        a in sorted_ids_strategy(),
        b in sorted_ids_strategy(),
    ) {
        let expected = naive_len(&a, &b);
        for kernel in Kernel::ALL {
            prop_assert_eq!(dispatch_with(kernel, &a, &b), expected, "kernel {}", kernel);
            prop_assert_eq!(dispatch_with(kernel, &b, &a), expected, "kernel {} swapped", kernel);
        }
    }

    /// `intersection_into` produces the exact sorted set (not just the
    /// count), and `intersects` agrees with emptiness — on the same wild
    /// ratio/density mix.
    #[test]
    fn set_and_emptiness_agree_with_the_reference(
        a in sorted_ids_strategy(),
        b in sorted_ids_strategy(),
    ) {
        let expected = naive_set(&a, &b);
        let mut out = vec![42u32]; // must be cleared
        intersection_into(&a, &b, &mut out);
        prop_assert_eq!(&out, &expected);
        intersection_into(&b, &a, &mut out);
        prop_assert_eq!(&out, &expected);
        prop_assert_eq!(intersects(&a, &b), !expected.is_empty());
        prop_assert_eq!(intersects(&b, &a), !expected.is_empty());
    }

    /// A thread-kernel override changes which code path `dispatch` takes,
    /// never its answer.
    #[test]
    fn thread_override_never_changes_dispatch(
        a in sorted_ids_strategy(),
        b in sorted_ids_strategy(),
    ) {
        let expected = naive_len(&a, &b);
        for kernel in Kernel::ALL {
            let _guard = set_thread_kernel(kernel);
            prop_assert_eq!(bigraph::intersect::dispatch(&a, &b), expected, "kernel {}", kernel);
        }
    }
}

/// Extreme length-ratio sweep the random strategy is unlikely to hit: a
/// handful of probes against a long stride grid, exercising the galloping
/// probe windows at every power-of-two boundary.
#[test]
fn extreme_ratio_grid() {
    let long: Vec<u32> = (0..5000u32).map(|i| i * 3).collect();
    for probe in [0u32, 1, 2, 3, 7_499, 7_500, 7_501, 14_994, 14_997, 15_000] {
        let short = vec![probe];
        let expected = naive_len(&short, &long);
        for kernel in Kernel::ALL {
            assert_eq!(dispatch_with(kernel, &short, &long), expected, "probe {probe} {kernel}");
        }
    }
    // Both-empty and one-empty stay total for every kernel.
    for kernel in Kernel::ALL {
        assert_eq!(dispatch_with(kernel, &[], &[]), 0);
        assert_eq!(dispatch_with(kernel, &[], &long), 0);
        assert_eq!(dispatch_with(kernel, &long, &[]), 0);
    }
}

/// Engine-level cross-validation: forcing any kernel through the public
/// query surface (`QuerySpec.kernel` — the CLI's `--kernel`) reproduces the
/// default solution set exactly, on every engine.
#[test]
fn kernel_override_never_changes_the_solution_set() {
    let mut state = 0xd1b5_4a32_d192_ed03u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for trial in 0..4u32 {
        let (nl, nr) = (8u32, 8u32);
        let mut edges = Vec::new();
        for l in 0..nl {
            for r in 0..nr {
                if next() % 100 < 55 {
                    edges.push((l, r));
                }
            }
        }
        let g = BipartiteGraph::from_edges(nl, nr, &edges).unwrap();
        for k in 1..=2usize {
            let baseline = {
                let mut v = Enumerator::new(&g).k(k).collect().expect("baseline run");
                v.sort();
                v
            };
            for engine in [Engine::Sequential, Engine::GlobalQueue, Engine::WorkSteal] {
                for kernel in Kernel::ALL {
                    let mut e = Enumerator::new(&g).k(k).engine(engine).kernel(kernel);
                    if engine != Engine::Sequential {
                        e = e.threads(2);
                    }
                    let mut v = e.collect().expect("kernel-forced run");
                    v.sort();
                    assert_eq!(
                        v, baseline,
                        "trial {trial} k {k} engine {engine:?} kernel {kernel} diverged"
                    );
                }
            }
        }
    }
}
