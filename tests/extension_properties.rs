//! Property-based tests (proptest) over the extension modules: asymmetric
//! budgets, the parallel engine and the extra on-disk formats.

use mbpe::bigraph::formats::{
    read_adjacency, read_konect, sniff_format, write_adjacency, write_konect, Format,
};
use mbpe::bigraph::io::{read_edge_list, write_edge_list};
use mbpe::kbiplex::asym::is_maximal_asym_biplex;
use mbpe::prelude::*;
use proptest::prelude::*;

/// Canonically sorted sequential enumeration through the facade.
fn enumerate_all(g: &BipartiteGraph, k: usize) -> Vec<Biplex> {
    Enumerator::new(g).k(k).collect().expect("valid facade configuration")
}

/// Canonically sorted asymmetric enumeration through the facade.
fn collect_asym_mbps(g: &BipartiteGraph, kp: KPair) -> Vec<Biplex> {
    Enumerator::new(g)
        .algorithm(Algorithm::Asym)
        .k_pair(kp)
        .collect()
        .expect("valid facade configuration")
}

/// Strategy: a small random bipartite graph given as (nl, nr, edge bitmap).
fn graph_strategy() -> impl Strategy<Value = BipartiteGraph> {
    (2u32..7, 2u32..7)
        .prop_flat_map(|(nl, nr)| {
            let m = (nl * nr) as usize;
            (Just(nl), Just(nr), proptest::collection::vec(any::<bool>(), m))
        })
        .prop_map(|(nl, nr, bits)| {
            let mut edges = Vec::new();
            for v in 0..nl {
                for u in 0..nr {
                    if bits[(v * nr + u) as usize] {
                        edges.push((v, u));
                    }
                }
            }
            BipartiteGraph::from_edges(nl, nr, &edges).unwrap()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The parallel enumeration returns exactly the sequential solution set
    /// regardless of the thread count.
    #[test]
    fn parallel_set_equals_sequential(g in graph_strategy(), k in 0usize..3, threads in 1usize..5) {
        let sequential = enumerate_all(&g, k);
        let parallel = Enumerator::new(&g)
            .k(k)
            .engine(Engine::WorkSteal)
            .threads(threads)
            .collect()
            .expect("valid facade configuration");
        prop_assert_eq!(parallel, sequential);
    }

    /// Asymmetric enumeration is sound (every output is a maximal
    /// (k_L, k_R)-biplex) and reduces to the symmetric algorithm when the
    /// budgets coincide.
    #[test]
    fn asymmetric_is_sound_and_generalises(g in graph_strategy(), kl in 0usize..3, kr in 0usize..3) {
        let kp = KPair::new(kl, kr);
        let solutions = collect_asym_mbps(&g, kp);
        for b in &solutions {
            prop_assert!(is_maximal_asym_biplex(&g, &b.left, &b.right, kp));
            prop_assert!(is_asym_biplex(&g, &b.left, &b.right, kp));
        }
        // No duplicates.
        let mut dedup = solutions.clone();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), solutions.len());
        if kl == kr {
            prop_assert_eq!(solutions, enumerate_all(&g, kl));
        }
    }

    /// Swapping the budgets and transposing the graph commute.
    #[test]
    fn asymmetric_transpose_symmetry(g in graph_strategy(), kl in 0usize..2, kr in 0usize..2) {
        let kp = KPair::new(kl, kr);
        let direct = collect_asym_mbps(&g, kp);
        let mut flipped: Vec<Biplex> = collect_asym_mbps(&g.transpose(), kp.transpose())
            .into_iter()
            .map(Biplex::transpose)
            .collect();
        flipped.sort();
        prop_assert_eq!(direct, flipped);
    }

    /// Every writer/reader pair is a lossless roundtrip for every graph, and
    /// the sniffer classifies each serialisation correctly.
    #[test]
    fn format_roundtrips_are_lossless(g in graph_strategy()) {
        // Edge list.
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        prop_assert_eq!(sniff_format(std::str::from_utf8(&buf).unwrap()), Format::EdgeList);
        let back = read_edge_list(&buf[..]).unwrap();
        prop_assert_eq!(collect_edges(&back), collect_edges(&g));
        prop_assert_eq!((back.num_left(), back.num_right()), (g.num_left(), g.num_right()));

        // KONECT (sizes are inferred, so only compare when no trailing
        // vertex is isolated — otherwise the inferred side may be smaller).
        let mut buf = Vec::new();
        write_konect(&g, &mut buf).unwrap();
        prop_assert_eq!(sniff_format(std::str::from_utf8(&buf).unwrap()), Format::Konect);
        let back = read_konect(&buf[..]).unwrap();
        prop_assert_eq!(collect_edges(&back), collect_edges(&g));

        // Adjacency.
        let mut buf = Vec::new();
        write_adjacency(&g, &mut buf).unwrap();
        prop_assert_eq!(sniff_format(std::str::from_utf8(&buf).unwrap()), Format::Adjacency);
        let back = read_adjacency(&buf[..]).unwrap();
        prop_assert_eq!(collect_edges(&back), collect_edges(&g));
        prop_assert_eq!((back.num_left(), back.num_right()), (g.num_left(), g.num_right()));
    }

    /// Large-MBP thresholds in the parallel engine equal post-filtering.
    #[test]
    fn parallel_thresholds_equal_post_filter(g in graph_strategy(), tl in 0usize..4, tr in 0usize..4) {
        let k = 1;
        let mut expected: Vec<Biplex> = enumerate_all(&g, k)
            .into_iter()
            .filter(|b| b.left.len() >= tl && b.right.len() >= tr)
            .collect();
        expected.sort();
        let got = Enumerator::new(&g)
            .k(k)
            .engine(Engine::WorkSteal)
            .threads(2)
            .thresholds(tl, tr)
            .collect()
            .expect("valid facade configuration");
        prop_assert_eq!(got, expected);
    }
}

fn collect_edges(g: &BipartiteGraph) -> Vec<(u32, u32)> {
    let mut edges: Vec<(u32, u32)> = g.edges().collect();
    edges.sort_unstable();
    edges
}
