//! Curated public-API snapshot of the `Enumerator` facade.
//!
//! The workspace has no `cargo public-api` dependency (offline build), so
//! this file pins the exported surface the cheap way: every facade symbol,
//! builder method and enum variant is referenced *by name and signature*
//! below. Renaming, removing or changing the signature of any of them
//! breaks this compile — which is exactly the review speed bump an API
//! snapshot is for. Extending the surface (new methods, new variants with
//! a wildcard-free match updated here) is the intended cheap path.

use std::time::Duration;

use kbiplex::api::{
    Algorithm, ApiError, Engine, EngineStats, Enumerator, QuerySpec, ReducedGraph, RunReport,
    SolutionStream, StopReason,
};
use kbiplex::{CollectSink, Json, JsonError};

/// The facade types are also re-exported at the crate root; keep both paths
/// alive.
#[allow(unused_imports)]
use kbiplex::{
    Algorithm as RootAlgorithm, ApiError as RootApiError, Engine as RootEngine,
    EngineStats as RootEngineStats, Enumerator as RootEnumerator, ReducedGraph as RootReducedGraph,
    RunReport as RootRunReport, SolutionStream as RootSolutionStream, StopReason as RootStopReason,
};

/// Signature pins: these function-pointer coercions fail to compile if a
/// builder method changes its shape. Never called — the test below takes
/// its address so the compiler keeps (and checks) it.
fn signature_pins<'g>(_g: &'g bigraph::BipartiteGraph) {
    let _new: fn(&'g bigraph::BipartiteGraph) -> Enumerator<'g> = Enumerator::new;
    let _from_spec: fn(&'g bigraph::BipartiteGraph, &QuerySpec) -> Enumerator<'g> =
        Enumerator::from_spec;
    let _to_spec: fn(&Enumerator<'g>) -> QuerySpec = Enumerator::to_spec;
    let _k: fn(Enumerator<'g>, usize) -> Enumerator<'g> = Enumerator::k;
    let _k_pair: fn(Enumerator<'g>, kbiplex::KPair) -> Enumerator<'g> = Enumerator::k_pair;
    let _algorithm: fn(Enumerator<'g>, Algorithm) -> Enumerator<'g> = Enumerator::algorithm;
    let _engine: fn(Enumerator<'g>, Engine) -> Enumerator<'g> = Enumerator::engine;
    let _order: fn(Enumerator<'g>, kbiplex::VertexOrder) -> Enumerator<'g> = Enumerator::order;
    let _enum_kind: fn(Enumerator<'g>, kbiplex::EnumKind) -> Enumerator<'g> = Enumerator::enum_kind;
    let _emit: fn(Enumerator<'g>, kbiplex::EmitMode) -> Enumerator<'g> = Enumerator::emit;
    let _anchor: fn(Enumerator<'g>, kbiplex::Anchor) -> Enumerator<'g> = Enumerator::anchor;
    let _thresholds: fn(Enumerator<'g>, usize, usize) -> Enumerator<'g> = Enumerator::thresholds;
    let _core_reduction: fn(Enumerator<'g>, bool) -> Enumerator<'g> = Enumerator::core_reduction;
    let _threads: fn(Enumerator<'g>, usize) -> Enumerator<'g> = Enumerator::threads;
    let _seen_segments: fn(Enumerator<'g>, usize) -> Enumerator<'g> = Enumerator::seen_segments;
    let _steal_adaptive: fn(Enumerator<'g>, bool) -> Enumerator<'g> = Enumerator::steal_adaptive;
    let _limit: fn(Enumerator<'g>, u64) -> Enumerator<'g> = Enumerator::limit;
    let _time_budget: fn(Enumerator<'g>, Duration) -> Enumerator<'g> = Enumerator::time_budget;
    let _stream_buffer: fn(Enumerator<'g>, usize) -> Enumerator<'g> = Enumerator::stream_buffer;
    let _kernel: fn(Enumerator<'g>, kbiplex::Kernel) -> Enumerator<'g> = Enumerator::kernel;
    let _validate: fn(&Enumerator<'g>) -> Result<(), ApiError> = Enumerator::validate;
    let _collect: fn(&Enumerator<'g>) -> Result<Vec<kbiplex::Biplex>, ApiError> =
        Enumerator::collect;
    let _run: fn(&Enumerator<'g>, &mut CollectSink) -> Result<RunReport, ApiError> =
        Enumerator::run::<CollectSink>;
    let _stream: fn(&Enumerator<'g>) -> Result<SolutionStream, ApiError> = Enumerator::stream;
    let _finish: fn(SolutionStream) -> RunReport = SolutionStream::finish;
    let _cancel: fn(&SolutionStream) = SolutionStream::cancel;

    // The wire codec (the serialization half of the query surface).
    let _spec_enc: fn(&QuerySpec) -> Json = QuerySpec::to_json;
    let _spec_dec: fn(&Json) -> Result<QuerySpec, JsonError> = QuerySpec::from_json;
    let _spec_enc_str: fn(&QuerySpec) -> String = QuerySpec::to_json_string;
    let _spec_dec_str: fn(&str) -> Result<QuerySpec, JsonError> = QuerySpec::from_json_str;
    let _biplex_enc: fn(&kbiplex::Biplex) -> Json = kbiplex::Biplex::to_json;
    let _biplex_dec: fn(&Json) -> Result<kbiplex::Biplex, JsonError> = kbiplex::Biplex::from_json;
    let _report_enc: fn(&RunReport) -> Json = RunReport::to_json;
    let _report_dec: fn(&Json) -> Result<RunReport, JsonError> = RunReport::from_json;
    let _stats_kind: fn(&EngineStats) -> &'static str = EngineStats::kind;
    let _stats_enc: fn(&EngineStats) -> Json = EngineStats::to_json;
    let _stats_dec: fn(&Json) -> Result<EngineStats, JsonError> = EngineStats::from_json;
    let _err_code: fn(&ApiError) -> &'static str = ApiError::code;
    let _err_message: fn(&ApiError) -> &str = ApiError::message;
    let _err_from_code: fn(&str, &str) -> Option<ApiError> = ApiError::from_code;
    let _err_enc: fn(&ApiError) -> Json = ApiError::to_json;
    let _err_dec: fn(&Json) -> Result<ApiError, JsonError> = ApiError::from_json;
}

#[test]
fn signature_pins_stay_checked() {
    // Coercing the pin function itself proves it still compiles and keeps
    // it from being dead code without any lint suppression.
    let _pins: fn(&bigraph::BipartiteGraph) = signature_pins;
}

/// Variant pins: wildcard-free matches fail to compile when a variant is
/// added (update the snapshot) or removed (the surface shrank — a breaking
/// change someone must have meant).
#[test]
fn enums_are_exactly_the_snapshot() {
    let algorithms = [
        Algorithm::ITraversal,
        Algorithm::ITraversalNoExclusion,
        Algorithm::LeftAnchoredOnly,
        Algorithm::BTraversal,
        Algorithm::Large,
        Algorithm::Asym,
        Algorithm::BruteForce,
    ];
    for a in algorithms {
        let name = match a {
            Algorithm::ITraversal => "itraversal",
            Algorithm::ITraversalNoExclusion => "itraversal-es",
            Algorithm::LeftAnchoredOnly => "itraversal-es-rs",
            Algorithm::BTraversal => "btraversal",
            Algorithm::Large => "large",
            Algorithm::Asym => "asym",
            Algorithm::BruteForce => "brute-force",
        };
        assert_eq!(a.to_string(), name);
        assert_eq!(name.parse::<Algorithm>().unwrap(), a);
    }

    for e in [Engine::Sequential, Engine::GlobalQueue, Engine::WorkSteal] {
        let name = match e {
            Engine::Sequential => "sequential",
            Engine::GlobalQueue => "global",
            Engine::WorkSteal => "steal",
        };
        assert_eq!(e.to_string(), name);
        assert_eq!(name.parse::<Engine>().unwrap(), e);
    }

    for k in kbiplex::Kernel::ALL {
        let name = match k {
            kbiplex::Kernel::Auto => "auto",
            kbiplex::Kernel::Merge => "merge",
            kbiplex::Kernel::Gallop => "gallop",
            kbiplex::Kernel::Chunked => "chunked",
            kbiplex::Kernel::Bitset => "bitset",
        };
        assert_eq!(k.to_string(), name);
        assert_eq!(name.parse::<kbiplex::Kernel>().unwrap(), k);
    }

    for s in [
        StopReason::Exhausted,
        StopReason::LimitReached,
        StopReason::TimeBudget,
        StopReason::SinkStopped,
        StopReason::Cancelled,
    ] {
        let name = match s {
            StopReason::Exhausted => "exhausted",
            StopReason::LimitReached => "limit-reached",
            StopReason::TimeBudget => "time-budget",
            StopReason::SinkStopped => "sink-stopped",
            StopReason::Cancelled => "cancelled",
        };
        assert_eq!(s.to_string(), name);
        assert_eq!(name.parse::<StopReason>().unwrap(), s);
    }
    assert!("paused".parse::<StopReason>().is_err());
}

/// The three [`ApiError`] variants carry stable codes that survive a
/// code+message round-trip; unknown codes are rejected.
#[test]
fn api_error_codes_are_the_snapshot() {
    let errors = [
        ApiError::Unsupported("a".to_string()),
        ApiError::InvalidConfig("b".to_string()),
        ApiError::Resource("c".to_string()),
    ];
    for err in errors {
        let code = match err {
            ApiError::Unsupported(_) => "unsupported",
            ApiError::InvalidConfig(_) => "invalid-config",
            ApiError::Resource(_) => "resource",
        };
        assert_eq!(err.code(), code);
        let back = ApiError::from_code(err.code(), err.message()).unwrap();
        assert_eq!(back, err);
        assert!(err.to_string().contains(err.message()));
    }
    assert!(ApiError::from_code("not-a-code", "x").is_none());
}

/// [`EngineStats::kind`] codes, pinned alongside a wildcard-free match.
#[test]
fn engine_stats_kinds_are_the_snapshot() {
    let stats = [
        EngineStats::Sequential(kbiplex::TraversalStats::default()),
        EngineStats::Parallel(kbiplex::ParallelStats::default()),
        EngineStats::Asym(kbiplex::asym::AsymStats::default()),
        EngineStats::Oracle,
    ];
    for s in stats {
        let kind = match s {
            EngineStats::Sequential(_) => "sequential",
            EngineStats::Parallel(_) => "parallel",
            EngineStats::Asym(_) => "asym",
            EngineStats::Oracle => "oracle",
        };
        assert_eq!(s.kind(), kind);
        assert_eq!(EngineStats::from_json(&s.to_json()).unwrap(), s);
    }
}

/// Full-field pin of [`QuerySpec`]: adding, removing or retyping a field
/// breaks this destructuring, which is the reminder to rev the wire format
/// (and its tests) deliberately.
#[test]
fn query_spec_fields_are_the_snapshot() {
    let QuerySpec {
        k,
        k_pair,
        algorithm,
        engine,
        order,
        enum_kind,
        emit_mode,
        anchor,
        theta_left,
        theta_right,
        core_reduction,
        threads,
        seen_segments,
        steal_adaptive,
        limit,
        time_budget,
        stream_buffer,
        kernel,
    } = QuerySpec::default();
    let _: usize = k;
    let _: Option<kbiplex::KPair> = k_pair;
    let _: Algorithm = algorithm;
    let _: Engine = engine;
    let _: kbiplex::VertexOrder = order;
    let _: kbiplex::EnumKind = enum_kind;
    let _: kbiplex::EmitMode = emit_mode;
    let _: Option<kbiplex::Anchor> = anchor;
    let _: (usize, usize) = (theta_left, theta_right);
    let _: Option<bool> = core_reduction;
    let _: (usize, usize, bool) = (threads, seen_segments, steal_adaptive);
    let _: Option<u64> = limit;
    let _: Option<Duration> = time_budget;
    let _: usize = stream_buffer;
    let _: kbiplex::Kernel = kernel;
}

/// Field pins for the report structs (removing or retyping a field breaks
/// the destructuring).
#[test]
fn report_shapes_are_the_snapshot() {
    let g = bigraph::BipartiteGraph::from_edges(2, 2, &[(0, 0), (0, 1), (1, 0), (1, 1)]).unwrap();
    let mut sink = CollectSink::new();
    let report = Enumerator::new(&g)
        .k(1)
        .algorithm(Algorithm::Large)
        .thresholds(1, 1)
        .run(&mut sink)
        .unwrap();
    let RunReport { solutions, stop, elapsed, stats, reduced } = report;
    let _: u64 = solutions;
    let _: StopReason = stop;
    let _: Duration = elapsed;
    match stats {
        EngineStats::Sequential(s) => {
            let _: kbiplex::TraversalStats = s;
        }
        EngineStats::Parallel(s) => {
            let _: kbiplex::ParallelStats = s;
        }
        EngineStats::Asym(_) | EngineStats::Oracle => {}
    }
    let ReducedGraph { left, right, edges } = reduced.expect("large runs report the reduction");
    let _: (u32, u32, u64) = (left, right, edges);

    // Both ApiError variants render through Display.
    for err in [ApiError::Unsupported("x".to_string()), ApiError::InvalidConfig("y".to_string())] {
        assert!(!err.to_string().is_empty());
    }
}
