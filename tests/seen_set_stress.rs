//! Concurrency battery for the segmented, growable seen-set: exactly-one
//! winner per key under thread storms, no lost inserts across segment
//! publications, and permutation-invariance of the final contents.
//!
//! Every scenario runs under three geometries: **fixed** (a directory
//! already at its maximum segment count — growth impossible), **pinned**
//! (growth disabled outright on a small directory, the retired
//! fixed-capacity design's exact behaviour) and **segmented** (a
//! one-segment start sized so the workload crosses several growth
//! thresholds mid-run).

use mbpe::kbiplex::parallel::seen::{ConcurrentSeenSet, MAX_SEGMENTS};
use proptest::prelude::*;

/// The geometries each scenario must survive. The tiny bucket counts keep
/// the growable set small enough that a few thousand keys force repeated
/// publications (and long chains in the non-growing sets).
fn geometries() -> [(&'static str, ConcurrentSeenSet); 3] {
    [
        ("fixed", ConcurrentSeenSet::with_geometry(MAX_SEGMENTS, 16)),
        ("pinned", ConcurrentSeenSet::with_geometry(1, 1024).pinned()),
        ("segmented", ConcurrentSeenSet::with_geometry(1, 64)),
    ]
}

/// Distinct key for index `i` (multi-word, so chain walks compare vectors).
fn key(i: u32) -> Vec<u32> {
    vec![i, i.wrapping_mul(0x9e37_79b9), !i]
}

/// Deterministic per-thread permutation of `0..n` (xorshift-seeded
/// Fisher–Yates), so every thread inserts the same keys in a different
/// interleaving.
fn permutation(n: u32, mut seed: u64) -> Vec<u32> {
    let mut order: Vec<u32> = (0..n).collect();
    for i in (1..order.len()).rev() {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        order.swap(i, (seed as usize) % (i + 1));
    }
    order
}

#[test]
fn thread_storm_claims_every_key_exactly_once() {
    let threads = 8;
    let keys = 4_000u32;
    for (label, set) in geometries() {
        let start_segments = set.segments();
        let claimed: u64 = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let set = &set;
                    scope.spawn(move || {
                        let mut wins = 0u64;
                        for &i in &permutation(keys, 0xc0ff_ee00 + t as u64) {
                            if set.insert(key(i)) {
                                wins += 1;
                            }
                        }
                        wins
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(claimed, keys as u64, "{label}: every key claimed exactly once");
        assert_eq!(set.len(), keys as u64, "{label}: len counts distinct keys");
        let mut got = set.keys();
        got.sort();
        let mut expected: Vec<Vec<u32>> = (0..keys).map(key).collect();
        expected.sort();
        assert_eq!(got, expected, "{label}: no insert lost, none duplicated");
        if label == "segmented" {
            assert!(
                set.segments() > start_segments,
                "the storm must cross the growth threshold (still {start_segments} segments)"
            );
        } else {
            assert_eq!(set.segments(), start_segments, "fixed geometry cannot grow");
        }
    }
}

#[test]
fn len_is_stable_across_the_growth_threshold() {
    // Single-threaded determinism: len must tick up exactly on wins and
    // re-inserting everything must change nothing, no matter how many
    // publications happen along the way.
    for (label, set) in geometries() {
        assert!(set.is_empty(), "{label}");
        let mut growth_events = 0;
        let mut segments = set.segments();
        for i in 0..3_000u32 {
            assert!(set.insert(key(i)), "{label}: first insert of {i} wins");
            assert!(!set.insert(key(i)), "{label}: immediate duplicate of {i} loses");
            assert_eq!(set.len(), (i + 1) as u64, "{label}: len ticks exactly on wins");
            if set.segments() != segments {
                segments = set.segments();
                growth_events += 1;
            }
        }
        for &i in &permutation(3_000, 7) {
            assert!(!set.insert(key(i)), "{label}: key {i} survives all publications");
        }
        assert_eq!(set.len(), 3_000, "{label}");
        if label == "segmented" {
            assert!(growth_events >= 3, "tiny segments must publish repeatedly");
        } else {
            assert_eq!(growth_events, 0, "fixed geometry cannot grow");
        }
    }
}

#[test]
fn concurrent_duplicates_of_one_hot_key_have_one_winner() {
    // All threads fight over the same tiny key set while a filler range
    // forces growth underneath — the worst case for an insert straddling a
    // publication.
    let threads = 8;
    for (label, set) in geometries() {
        let winners: u64 = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let set = &set;
                    scope.spawn(move || {
                        let mut wins = 0u64;
                        for round in 0..500u32 {
                            if set.insert(vec![round % 50]) {
                                wins += 1;
                            }
                            // Filler keys distinct per thread drive len
                            // over the growth threshold mid-fight.
                            set.insert(key(10_000 + t * 1_000 + round));
                        }
                        wins
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(winners, 50, "{label}: one winner per hot key");
        assert_eq!(set.len(), 50 + threads as u64 * 500, "{label}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Interleaved insert sequences are permutation-invariant: the same
    /// multiset of keys produces the same final key set, the same count
    /// and one win per distinct key, regardless of insertion order,
    /// initial segment count, or where the growth points fall.
    #[test]
    fn contents_are_permutation_invariant(
        raw in proptest::collection::vec((0u32..400, 0u32..4), 1..250),
        seed in any::<u64>(),
        initial_segments in 1usize..5,
    ) {
        let keys: Vec<Vec<u32>> = raw.iter().map(|&(a, b)| vec![a, b]).collect();
        let mut shuffled = keys.clone();
        let order = permutation(shuffled.len() as u32, seed);
        let reordered: Vec<Vec<u32>> =
            order.iter().map(|&i| shuffled[i as usize].clone()).collect();
        shuffled = reordered;

        // Tiny 8-bucket segments: 250 inserts cross several growth points,
        // and different orders/initial sizes move those points around.
        let forward = ConcurrentSeenSet::with_geometry(1, 8);
        let permuted = ConcurrentSeenSet::with_geometry(initial_segments, 8);
        let mut forward_wins = 0u64;
        for k in &keys {
            if forward.insert(k.clone()) {
                forward_wins += 1;
            }
        }
        let mut permuted_wins = 0u64;
        for k in &shuffled {
            if permuted.insert(k.clone()) {
                permuted_wins += 1;
            }
        }

        let mut expected: Vec<Vec<u32>> = keys.clone();
        expected.sort();
        expected.dedup();
        prop_assert_eq!(forward_wins, expected.len() as u64);
        prop_assert_eq!(permuted_wins, expected.len() as u64);
        prop_assert_eq!(forward.len(), permuted.len());
        let mut a = forward.keys();
        a.sort();
        let mut b = permuted.keys();
        b.sort();
        prop_assert_eq!(&a, &expected);
        prop_assert_eq!(&b, &expected);
    }
}
