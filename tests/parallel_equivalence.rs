//! Cross-crate integration tests: the parallel enumeration must agree with
//! the sequential frameworks and the baselines on every input we can afford
//! to cross-check exhaustively.

// These tests exercise the deprecated free-function entry points on
// purpose: they are the regression net that keeps the thin wrappers
// equivalent to the engines behind them. The `Enumerator` facade gets the
// same coverage in `tests/api_facade.rs`.
#![allow(deprecated)]

use mbpe::baselines::{collect_imb, ImbConfig};
use mbpe::bigraph::gen::chung_lu::chung_lu_bipartite;
use mbpe::bigraph::gen::er::er_bipartite;
use mbpe::bigraph::gen::planted::planted_biplexes;
use mbpe::bigraph::order::VertexOrder;
use mbpe::kbiplex::ParallelEngine;
use mbpe::prelude::*;

/// Property: for every random Chung–Lu graph, every miss budget, every
/// thread count, both scheduler engines, every relabeling pass and every
/// seen-set/steal-granularity knob, the parallel engine must return the
/// *exact* canonical solution set of the sequential `iTraversal`. This is
/// the scheduler-correctness contract: the work-stealing engine only
/// reorders expansions, and the seen-set de-duplication makes the result a
/// function of the graph alone.
#[test]
fn work_stealing_engine_matches_sequential_on_chung_lu_graphs() {
    for seed in 0..4u64 {
        // Skewed power-law degrees stress the dedup (hubs participate in
        // many overlapping MBPs) far more than uniform noise.
        let nl = 10 + (seed % 3) as u32;
        let nr = 9 + (seed % 2) as u32;
        let edges = 3 * (nl as u64 + nr as u64) / 2;
        let g = chung_lu_bipartite(nl, nr, edges, 2.2, seed);
        for k in 1..=2usize {
            let sequential = enumerate_all(&g, k);
            for threads in [1usize, 2, 4, 8] {
                for engine in [ParallelEngine::WorkSteal, ParallelEngine::GlobalQueue] {
                    let cfg = ParallelConfig::new(k).with_threads(threads).with_engine(engine);
                    let (mut got, stats) = par_enumerate_mbps(&g, &cfg);
                    got.sort();
                    assert_eq!(
                        got, sequential,
                        "seed {seed} k {k} threads {threads} engine {engine:?}"
                    );
                    assert_eq!(stats.solutions as usize, sequential.len());
                }
            }
            // The relabeling passes compose with the default engine.
            for order in [VertexOrder::Degree, VertexOrder::Degeneracy] {
                let cfg = ParallelConfig::new(k).with_threads(4).with_order(order);
                let (mut got, _) = par_enumerate_mbps(&g, &cfg);
                got.sort();
                assert_eq!(got, sequential, "seed {seed} k {k} order {order}");
            }
            // The seen-set directory geometry and the steal-granularity
            // policy are pure performance knobs: any combination must leave
            // the solution set untouched.
            for seen_segments in [0usize, 1, 2, 8] {
                for steal_adaptive in [false, true] {
                    let cfg = ParallelConfig::new(k)
                        .with_threads(4)
                        .with_seen_segments(seen_segments)
                        .with_steal_adaptive(steal_adaptive);
                    let (mut got, _) = par_enumerate_mbps(&g, &cfg);
                    got.sort();
                    assert_eq!(
                        got, sequential,
                        "seed {seed} k {k} seen-segments {seen_segments} \
                         steal-adaptive {steal_adaptive}"
                    );
                }
            }
        }
    }
}

/// Full cross of the new knobs with engines, orders and thread counts on
/// one dedup-heavy graph: the growable seen-set (starting from one segment
/// so it grows mid-run) and adaptive stealing compose with every scheduler
/// configuration.
#[test]
fn seen_and_steal_knobs_compose_with_engines_and_orders() {
    let g = chung_lu_bipartite(11, 10, 33, 2.2, 42);
    let k = 1;
    let sequential = enumerate_all(&g, k);
    for engine in [ParallelEngine::WorkSteal, ParallelEngine::GlobalQueue] {
        for order in [VertexOrder::Input, VertexOrder::Degree, VertexOrder::Degeneracy] {
            for threads in [2usize, 4] {
                for (seen_segments, steal_adaptive) in [(1, true), (1, false), (0, true)] {
                    let cfg = ParallelConfig::new(k)
                        .with_threads(threads)
                        .with_engine(engine)
                        .with_order(order)
                        .with_seen_segments(seen_segments)
                        .with_steal_adaptive(steal_adaptive);
                    let (mut got, _) = par_enumerate_mbps(&g, &cfg);
                    got.sort();
                    assert_eq!(
                        got, sequential,
                        "{engine:?} {order} threads {threads} seen-segments {seen_segments} \
                         steal-adaptive {steal_adaptive}"
                    );
                }
            }
        }
    }
}

#[test]
fn parallel_matches_sequential_and_imb_on_er_graphs() {
    for seed in 0..5u64 {
        let g = er_bipartite(10, 9, 32 + seed * 3, seed);
        for k in 1..=2usize {
            let sequential = enumerate_all(&g, k);
            let parallel = par_collect_mbps(&g, k, 4);
            assert_eq!(parallel, sequential, "seed {seed} k {k} (parallel vs sequential)");

            // iMB has exponential delay; keep its cross-check to k = 1.
            if k == 1 {
                let mut imb = collect_imb(&g, &ImbConfig::new(k));
                imb.sort();
                assert_eq!(imb, sequential, "seed {seed} k {k} (iMB vs sequential)");
            }
        }
    }
}

#[test]
fn parallel_matches_sequential_on_planted_dense_blocks() {
    // Planted quasi-biclique blocks produce many overlapping MBPs — a harder
    // dedup workload for the concurrent seen-set than uniform noise.
    let g = planted_biplexes(20, 20, 25, 2, 5, 5, 1, 99).graph;
    let k = 1;
    let sequential = enumerate_all(&g, k);
    for threads in [1, 3, 8] {
        let parallel = par_collect_mbps(&g, k, threads);
        assert_eq!(parallel, sequential, "threads {threads}");
    }
}

#[test]
fn parallel_thresholds_agree_with_sequential_large_mbp_enumeration() {
    let g = er_bipartite(20, 20, 120, 7);
    let k = 1;
    let (theta_l, theta_r) = (3, 3);

    let mut expected: Vec<Biplex> = enumerate_all(&g, k)
        .into_iter()
        .filter(|b| b.left.len() >= theta_l && b.right.len() >= theta_r)
        .collect();
    expected.sort();

    let cfg = ParallelConfig::new(k).with_threads(4).with_thresholds(theta_l, theta_r);
    let (mut got, stats) = par_enumerate_mbps(&g, &cfg);
    got.sort();
    assert_eq!(got, expected);
    assert_eq!(stats.reported as usize, expected.len());
}

#[test]
fn parallel_solutions_are_maximal_and_distinct() {
    let g = er_bipartite(25, 25, 140, 3);
    let k = 1;
    let (solutions, stats) = par_enumerate_mbps(&g, &ParallelConfig::new(k).with_threads(0));
    assert_eq!(stats.solutions as usize, solutions.len());
    let mut sorted = solutions.clone();
    sorted.sort();
    sorted.dedup();
    assert_eq!(sorted.len(), solutions.len(), "no duplicates may be reported");
    for b in &solutions {
        assert!(is_maximal_k_biplex(&g, &b.left, &b.right, k));
    }
}
