//! Cross-crate integration tests: the parallel enumeration must agree with
//! the sequential frameworks and the baselines on every input we can afford
//! to cross-check exhaustively.

use mbpe::baselines::{collect_imb, ImbConfig};
use mbpe::bigraph::gen::chung_lu::chung_lu_bipartite;
use mbpe::bigraph::gen::er::er_bipartite;
use mbpe::bigraph::gen::planted::planted_biplexes;
use mbpe::bigraph::order::VertexOrder;
use mbpe::kbiplex::ParallelStats;
use mbpe::prelude::*;

/// Canonically sorted sequential baseline.
fn enumerate_all(g: &BipartiteGraph, k: usize) -> Vec<Biplex> {
    Enumerator::new(g).k(k).collect().expect("valid facade configuration")
}

/// Runs a parallel facade configuration, returning the canonically sorted
/// solutions and the engine statistics.
fn par_run(e: &Enumerator<'_>) -> (Vec<Biplex>, ParallelStats) {
    let mut sink = CollectSink::new();
    let report = e.run(&mut sink).expect("valid facade configuration");
    let EngineStats::Parallel(stats) = report.stats else {
        panic!("parallel engines report parallel stats");
    };
    (sink.into_sorted(), stats)
}

/// Property: for every random Chung–Lu graph, every miss budget, every
/// thread count, both scheduler engines, every relabeling pass and every
/// seen-set/steal-granularity knob, the parallel engine must return the
/// *exact* canonical solution set of the sequential `iTraversal`. This is
/// the scheduler-correctness contract: the work-stealing engine only
/// reorders expansions, and the seen-set de-duplication makes the result a
/// function of the graph alone.
#[test]
fn work_stealing_engine_matches_sequential_on_chung_lu_graphs() {
    for seed in 0..4u64 {
        // Skewed power-law degrees stress the dedup (hubs participate in
        // many overlapping MBPs) far more than uniform noise.
        let nl = 10 + (seed % 3) as u32;
        let nr = 9 + (seed % 2) as u32;
        let edges = 3 * (nl as u64 + nr as u64) / 2;
        let g = chung_lu_bipartite(nl, nr, edges, 2.2, seed);
        for k in 1..=2usize {
            let sequential = enumerate_all(&g, k);
            for threads in [1usize, 2, 4, 8] {
                for engine in [Engine::WorkSteal, Engine::GlobalQueue] {
                    let (got, stats) =
                        par_run(&Enumerator::new(&g).k(k).engine(engine).threads(threads));
                    assert_eq!(
                        got, sequential,
                        "seed {seed} k {k} threads {threads} engine {engine:?}"
                    );
                    assert_eq!(stats.solutions as usize, sequential.len());
                }
            }
            // The relabeling passes compose with the default engine.
            for order in [VertexOrder::Degree, VertexOrder::Degeneracy] {
                let (got, _) = par_run(
                    &Enumerator::new(&g).k(k).engine(Engine::WorkSteal).threads(4).order(order),
                );
                assert_eq!(got, sequential, "seed {seed} k {k} order {order}");
            }
            // The seen-set directory geometry and the steal-granularity
            // policy are pure performance knobs: any combination must leave
            // the solution set untouched.
            for seen_segments in [0usize, 1, 2, 8] {
                for steal_adaptive in [false, true] {
                    let (got, _) = par_run(
                        &Enumerator::new(&g)
                            .k(k)
                            .engine(Engine::WorkSteal)
                            .threads(4)
                            .seen_segments(seen_segments)
                            .steal_adaptive(steal_adaptive),
                    );
                    assert_eq!(
                        got, sequential,
                        "seed {seed} k {k} seen-segments {seen_segments} \
                         steal-adaptive {steal_adaptive}"
                    );
                }
            }
        }
    }
}

/// Full cross of the new knobs with orders and thread counts on one
/// dedup-heavy graph: the growable seen-set (starting from one segment so
/// it grows mid-run) and adaptive stealing compose with every
/// work-stealing configuration, and the global-queue engine agrees across
/// the same orders.
#[test]
fn seen_and_steal_knobs_compose_with_engines_and_orders() {
    let g = chung_lu_bipartite(11, 10, 33, 2.2, 42);
    let k = 1;
    let sequential = enumerate_all(&g, k);
    for order in [VertexOrder::Input, VertexOrder::Degree, VertexOrder::Degeneracy] {
        for threads in [2usize, 4] {
            for (seen_segments, steal_adaptive) in [(1, true), (1, false), (0, true)] {
                let (got, _) = par_run(
                    &Enumerator::new(&g)
                        .k(k)
                        .engine(Engine::WorkSteal)
                        .threads(threads)
                        .order(order)
                        .seen_segments(seen_segments)
                        .steal_adaptive(steal_adaptive),
                );
                assert_eq!(
                    got, sequential,
                    "steal {order} threads {threads} seen-segments {seen_segments} \
                     steal-adaptive {steal_adaptive}"
                );
            }
            let (got, _) = par_run(
                &Enumerator::new(&g).k(k).engine(Engine::GlobalQueue).threads(threads).order(order),
            );
            assert_eq!(got, sequential, "global {order} threads {threads}");
        }
    }
}

#[test]
fn parallel_matches_sequential_and_imb_on_er_graphs() {
    for seed in 0..5u64 {
        let g = er_bipartite(10, 9, 32 + seed * 3, seed);
        for k in 1..=2usize {
            let sequential = enumerate_all(&g, k);
            let (parallel, _) =
                par_run(&Enumerator::new(&g).k(k).engine(Engine::WorkSteal).threads(4));
            assert_eq!(parallel, sequential, "seed {seed} k {k} (parallel vs sequential)");

            // iMB has exponential delay; keep its cross-check to k = 1.
            if k == 1 {
                let mut imb = collect_imb(&g, &ImbConfig::new(k));
                imb.sort();
                assert_eq!(imb, sequential, "seed {seed} k {k} (iMB vs sequential)");
            }
        }
    }
}

#[test]
fn parallel_matches_sequential_on_planted_dense_blocks() {
    // Planted quasi-biclique blocks produce many overlapping MBPs — a harder
    // dedup workload for the concurrent seen-set than uniform noise.
    let g = planted_biplexes(20, 20, 25, 2, 5, 5, 1, 99).graph;
    let k = 1;
    let sequential = enumerate_all(&g, k);
    for threads in [1, 3, 8] {
        let (parallel, _) =
            par_run(&Enumerator::new(&g).k(k).engine(Engine::WorkSteal).threads(threads));
        assert_eq!(parallel, sequential, "threads {threads}");
    }
}

#[test]
fn parallel_thresholds_agree_with_sequential_large_mbp_enumeration() {
    let g = er_bipartite(20, 20, 120, 7);
    let k = 1;
    let (theta_l, theta_r) = (3, 3);

    let mut expected: Vec<Biplex> = enumerate_all(&g, k)
        .into_iter()
        .filter(|b| b.left.len() >= theta_l && b.right.len() >= theta_r)
        .collect();
    expected.sort();

    let (got, stats) = par_run(
        &Enumerator::new(&g).k(k).engine(Engine::WorkSteal).threads(4).thresholds(theta_l, theta_r),
    );
    assert_eq!(got, expected);
    assert_eq!(stats.reported as usize, expected.len());
}

#[test]
fn parallel_solutions_are_maximal_and_distinct() {
    let g = er_bipartite(25, 25, 140, 3);
    let k = 1;
    // `threads` left at 0: the engine sizes the pool from the machine.
    let (solutions, stats) = par_run(&Enumerator::new(&g).k(k).engine(Engine::WorkSteal));
    assert_eq!(stats.solutions as usize, solutions.len());
    let mut sorted = solutions.clone();
    sorted.sort();
    sorted.dedup();
    assert_eq!(sorted.len(), solutions.len(), "no duplicates may be reported");
    for b in &solutions {
        assert!(is_maximal_k_biplex(&g, &b.left, &b.right, k));
    }
}
