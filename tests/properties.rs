//! Property-based tests (proptest) over the core data structures and the
//! enumeration invariants.

use mbpe::prelude::*;
use proptest::prelude::*;

/// Canonically sorted sequential enumeration through the facade.
fn enumerate_all(g: &BipartiteGraph, k: usize) -> Vec<Biplex> {
    Enumerator::new(g).k(k).collect().expect("valid facade configuration")
}

/// Strategy: a small random bipartite graph given as (nl, nr, edge bitmap).
fn graph_strategy() -> impl Strategy<Value = BipartiteGraph> {
    (2u32..7, 2u32..7)
        .prop_flat_map(|(nl, nr)| {
            let m = (nl * nr) as usize;
            (Just(nl), Just(nr), proptest::collection::vec(any::<bool>(), m))
        })
        .prop_map(|(nl, nr, bits)| {
            let mut edges = Vec::new();
            for v in 0..nl {
                for u in 0..nr {
                    if bits[(v * nr + u) as usize] {
                        edges.push((v, u));
                    }
                }
            }
            BipartiteGraph::from_edges(nl, nr, &edges).unwrap()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every solution reported by iTraversal is a maximal k-biplex, and the
    /// set matches bTraversal.
    #[test]
    fn itraversal_output_is_sound_and_matches_btraversal(g in graph_strategy(), k in 0usize..3) {
        let a = enumerate_all(&g, k);
        for b in &a {
            prop_assert!(is_maximal_k_biplex(&g, &b.left, &b.right, k));
        }
        let b = Enumerator::new(&g)
            .k(k)
            .algorithm(Algorithm::BTraversal)
            .collect()
            .expect("valid facade configuration");
        prop_assert_eq!(a, b);
    }

    /// The hereditary property (Lemma 2.2): any sub-pair of a k-biplex is a
    /// k-biplex.
    #[test]
    fn hereditary_property(g in graph_strategy(), k in 0usize..3, lmask in any::<u16>(), rmask in any::<u16>()) {
        let mbps = enumerate_all(&g, k);
        for b in mbps.iter().take(4) {
            let left: Vec<u32> = b.left.iter().enumerate()
                .filter(|(i, _)| lmask & (1 << (i % 16)) != 0)
                .map(|(_, &v)| v).collect();
            let right: Vec<u32> = b.right.iter().enumerate()
                .filter(|(i, _)| rmask & (1 << (i % 16)) != 0)
                .map(|(_, &u)| u).collect();
            prop_assert!(is_k_biplex(&g, &left, &right, k));
        }
    }

    /// Monotonicity in k: every maximal k-biplex is contained in some
    /// maximal (k+1)-biplex.
    #[test]
    fn monotone_in_k(g in graph_strategy(), k in 0usize..2) {
        let small = enumerate_all(&g, k);
        let big = enumerate_all(&g, k + 1);
        for s in &small {
            prop_assert!(big.iter().any(|b| s.is_subgraph_of(b)),
                "MBP {:?} for k={} not contained in any (k+1)-MBP", s, k);
        }
    }

    /// The transpose symmetry: MBPs of the transposed graph are the
    /// transposed MBPs.
    #[test]
    fn transpose_symmetry(g in graph_strategy(), k in 0usize..3) {
        let direct: Vec<Biplex> = enumerate_all(&g, k);
        let mut transposed: Vec<Biplex> = enumerate_all(&g.transpose(), k)
            .into_iter().map(|b| b.transpose()).collect();
        transposed.sort();
        prop_assert_eq!(direct, transposed);
    }

    /// Size thresholds inside the engine match post-filtering.
    #[test]
    fn thresholds_match_filtering(g in graph_strategy(), k in 0usize..3, theta in 1usize..4) {
        let all = enumerate_all(&g, k);
        let expected: Vec<Biplex> = all.into_iter()
            .filter(|b| b.left.len() >= theta && b.right.len() >= theta)
            .collect();
        let got = Enumerator::new(&g)
            .k(k)
            .thresholds(theta, theta)
            .collect()
            .expect("valid facade configuration");
        prop_assert_eq!(got, expected);
    }

    /// The bitset behaves like a reference set implementation.
    #[test]
    fn bitset_matches_btreeset(ops in proptest::collection::vec((any::<bool>(), 0usize..200), 0..100)) {
        use std::collections::BTreeSet;
        let mut bits = mbpe::bigraph::BitSet::new(200);
        let mut reference = BTreeSet::new();
        for (insert, idx) in ops {
            if insert {
                prop_assert_eq!(bits.insert(idx), reference.insert(idx));
            } else {
                prop_assert_eq!(bits.remove(idx), reference.remove(&idx));
            }
        }
        prop_assert_eq!(bits.len(), reference.len());
        let collected: Vec<usize> = bits.iter().collect();
        let expected: Vec<usize> = reference.into_iter().collect();
        prop_assert_eq!(collected, expected);
    }

    /// Graph construction invariants: adjacency is symmetric and sorted.
    #[test]
    fn graph_adjacency_invariants(g in graph_strategy()) {
        for v in 0..g.num_left() {
            let n = g.left_neighbors(v);
            prop_assert!(n.windows(2).all(|w| w[0] < w[1]));
            for &u in n {
                prop_assert!(g.has_edge(v, u));
                prop_assert!(g.right_neighbors(u).contains(&v));
            }
        }
        let total: usize = (0..g.num_left()).map(|v| g.left_degree(v)).sum();
        prop_assert_eq!(total as u64, g.num_edges());
    }
}
