//! Cross-crate integration tests: every algorithm in the workspace must
//! agree on the set of maximal k-biplexes, and that set must match the
//! brute-force oracle.

use mbpe::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_graph(nl: u32, nr: u32, p: f64, seed: u64) -> BipartiteGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::new();
    for v in 0..nl {
        for u in 0..nr {
            if rng.gen_bool(p) {
                edges.push((v, u));
            }
        }
    }
    BipartiteGraph::from_edges(nl, nr, &edges).unwrap()
}

fn enumerate_all(g: &BipartiteGraph, k: usize) -> Vec<Biplex> {
    Enumerator::new(g).k(k).collect().expect("valid facade configuration")
}

fn collect_large(g: &BipartiteGraph, k: usize, theta: usize) -> Vec<Biplex> {
    Enumerator::new(g)
        .k(k)
        .algorithm(Algorithm::Large)
        .thresholds(theta, theta)
        .collect()
        .expect("valid facade configuration")
}

#[test]
fn all_five_algorithms_agree_with_the_oracle() {
    for seed in 0..10u64 {
        let g = random_graph(5, 6, 0.5, seed);
        for k in 1..=2usize {
            let oracle = mbpe::kbiplex::bruteforce::brute_force_mbps(&g, k);

            let itraversal = enumerate_all(&g, k);
            let btraversal = Enumerator::new(&g)
                .k(k)
                .algorithm(Algorithm::BTraversal)
                .collect()
                .expect("valid facade configuration");
            let imb = mbpe::baselines::collect_imb(&g, &mbpe::baselines::ImbConfig::new(k));
            let faplexen =
                mbpe::baselines::collect_inflation(&g, &mbpe::baselines::InflationConfig::new(k));
            let right_anchored = Enumerator::new(&g)
                .k(k)
                .anchor(Anchor::Right)
                .collect()
                .expect("valid facade configuration");

            assert_eq!(itraversal, oracle, "iTraversal seed {seed} k {k}");
            assert_eq!(btraversal, oracle, "bTraversal seed {seed} k {k}");
            assert_eq!(imb, oracle, "iMB seed {seed} k {k}");
            assert_eq!(faplexen, oracle, "FaPlexen seed {seed} k {k}");
            assert_eq!(right_anchored, oracle, "right-anchored seed {seed} k {k}");
        }
    }
}

#[test]
fn planted_blocks_are_covered_by_some_mbp() {
    // Every planted k-biplex block must be contained in at least one
    // reported MBP (by maximality of the enumeration output).
    let planted = mbpe::bigraph::gen::planted::planted_biplexes(30, 30, 60, 2, 5, 5, 1, 9);
    let g = &planted.graph;
    let mbps = enumerate_all(g, 1);
    for block in &planted.blocks {
        let block_bp = Biplex::new(block.left.clone(), block.right.clone());
        assert!(
            mbps.iter().any(|m| block_bp.is_subgraph_of(m)),
            "planted block {:?} not covered",
            block_bp
        );
    }
}

#[test]
fn mbp_count_is_monotone_in_graph_size_of_solutions() {
    // Not a theorem about counts, but the output of every run must consist
    // of distinct, genuinely maximal k-biplexes.
    let g = random_graph(8, 8, 0.4, 77);
    for k in 0..=2usize {
        let mbps = enumerate_all(&g, k);
        let mut keys: Vec<Vec<u32>> = mbps.iter().map(|b| b.canonical_key()).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), mbps.len(), "duplicate solutions for k = {k}");
        for b in &mbps {
            assert!(is_maximal_k_biplex(&g, &b.left, &b.right, k));
        }
    }
}

#[test]
fn large_mbp_pipeline_agrees_with_post_filtering() {
    let g = random_graph(7, 7, 0.55, 5);
    let k = 1;
    let all = enumerate_all(&g, k);
    for theta in 2..=4usize {
        let expected: Vec<Biplex> = all
            .iter()
            .filter(|b| b.left.len() >= theta && b.right.len() >= theta)
            .cloned()
            .collect();
        let got = collect_large(&g, k, theta);
        assert_eq!(got, expected, "theta {theta}");
    }
}

#[test]
fn imb_with_thresholds_agrees_with_itraversal_large() {
    let g = random_graph(7, 6, 0.55, 13);
    let k = 1;
    let theta = 3;
    let imb = mbpe::baselines::collect_imb(
        &g,
        &mbpe::baselines::ImbConfig::new(k).with_thresholds(theta, theta),
    );
    let itr = collect_large(&g, k, theta);
    assert_eq!(imb, itr);
}

#[test]
fn bicliques_are_the_k0_mbps() {
    let g = random_graph(6, 6, 0.5, 21);
    let bicliques =
        mbpe::cohesive::collect_maximal_bicliques(&g, &mbpe::cohesive::BicliqueConfig::default());
    let zero_biplexes: Vec<Biplex> = enumerate_all(&g, 0)
        .into_iter()
        .filter(|b| !b.left.is_empty() && !b.right.is_empty())
        .collect();
    assert_eq!(bicliques, zero_biplexes);
}
