//! End-to-end smoke tests driving [`mbpe_cli::run`] exactly like the binary
//! does, against the tiny in-repo graph under `testdata/`.

use std::path::PathBuf;

/// Path of the committed fixture graph (`testdata/tiny.txt` at the repo root).
fn tiny_graph() -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../testdata/tiny.txt");
    path.to_str().expect("utf-8 path").to_string()
}

/// Runs the CLI with `tokens` and returns the captured stdout.
fn run(tokens: &[&str]) -> String {
    let raw: Vec<String> = tokens.iter().map(|s| s.to_string()).collect();
    let mut out = Vec::new();
    mbpe_cli::run(&raw, &mut out).unwrap_or_else(|e| panic!("cli failed for {tokens:?}: {e}"));
    String::from_utf8(out).expect("cli output is utf-8")
}

#[test]
fn stats_reads_the_in_repo_graph() {
    let text = run(&["stats", &tiny_graph()]);
    assert!(text.contains("|E|"), "stats prints an edge count: {text}");
    assert!(text.contains('6'), "the fixture has 6 edges: {text}");
}

#[test]
fn enumerate_counts_match_the_library() {
    let text = run(&["enumerate", &tiny_graph(), "--k", "1", "--count-only"]);
    let reported: usize = text
        .lines()
        .find_map(|l| l.strip_prefix("solutions: "))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or_else(|| panic!("no solution count in: {text}"));

    let g = bigraph::io::read_edge_list_file(tiny_graph()).expect("fixture parses");
    let expected = kbiplex::Enumerator::new(&g).k(1).collect().expect("facade run").len();
    assert_eq!(reported, expected, "CLI count equals the library count");
    assert!(reported > 0, "the fixture contains at least one maximal 1-biplex");
}

#[test]
fn enumerate_prints_well_formed_solutions() {
    let text = run(&["enumerate", &tiny_graph(), "--k", "1", "--limit", "2", "--print"]);
    let printed: Vec<&str> = text.lines().filter(|l| l.starts_with("L=")).collect();
    assert!(!printed.is_empty(), "--print emits solutions: {text}");
    assert!(printed.len() <= 2, "--limit 2 caps the printed solutions: {text}");
    assert!(text.contains("stop: limit-reached"), "the run header echoes the stop reason: {text}");
}

#[test]
fn first_is_a_deprecated_alias_of_limit() {
    // `--first N` must behave exactly like `--limit N`.
    let via_first = run(&["enumerate", &tiny_graph(), "--k", "1", "--first", "2", "--print"]);
    let via_limit = run(&["enumerate", &tiny_graph(), "--k", "1", "--limit", "2", "--print"]);
    let solutions = |text: &str| text.lines().filter(|l| l.starts_with("L=")).count();
    assert_eq!(solutions(&via_first), solutions(&via_limit), "--first maps onto --limit");
    assert!(
        via_first.contains("stop: limit-reached"),
        "the alias reaches the same stop reason: {via_first}"
    );

    // Passing both spellings at once is ambiguous and must be rejected as a
    // usage error, not silently resolved.
    let raw: Vec<String> = ["enumerate", &tiny_graph(), "--k", "1", "--first", "2", "--limit", "3"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut out = Vec::new();
    match mbpe_cli::run(&raw, &mut out) {
        Err(mbpe_cli::CliError::Usage(msg)) => {
            assert!(msg.contains("--first"), "the error names the deprecated flag: {msg}");
            assert!(msg.contains("--limit"), "the error names the canonical flag: {msg}");
        }
        other => panic!("--first + --limit must be a usage error, got {other:?}"),
    }
}

#[test]
fn parallel_seen_and_steal_flags_match_the_sequential_count() {
    let sequential = run(&["enumerate", &tiny_graph(), "--k", "1", "--count-only"]);
    let count = |text: &str| -> usize {
        text.lines()
            .find_map(|l| l.strip_prefix("solutions: "))
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or_else(|| panic!("no solution count in: {text}"))
    };
    for (segments, adaptive) in [("0", "on"), ("1", "off"), ("2", "on"), ("1", "on")] {
        let text = run(&[
            "enumerate",
            &tiny_graph(),
            "--k",
            "1",
            "--algo",
            "parallel",
            "--threads",
            "4",
            "--seen-segments",
            segments,
            "--steal-adaptive",
            adaptive,
            "--count-only",
        ]);
        assert_eq!(
            count(&text),
            count(&sequential),
            "--seen-segments {segments} --steal-adaptive {adaptive}: {text}"
        );
        assert!(
            text.contains(&format!("seen-segments = {segments}"))
                && text.contains(&format!("steal-adaptive = {adaptive}")),
            "run header echoes the knobs: {text}"
        );
    }
}

#[test]
fn kernel_override_matches_the_auto_count_end_to_end() {
    let count = |text: &str| -> usize {
        text.lines()
            .find_map(|l| l.strip_prefix("solutions: "))
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or_else(|| panic!("no solution count in: {text}"))
    };
    let auto = run(&["enumerate", &tiny_graph(), "--k", "1", "--count-only"]);
    for kernel in ["merge", "gallop", "chunked", "bitset"] {
        let text =
            run(&["enumerate", &tiny_graph(), "--k", "1", "--kernel", kernel, "--count-only"]);
        assert_eq!(count(&text), count(&auto), "--kernel {kernel}: {text}");
    }
}

#[test]
fn fractional_time_budget_is_accepted() {
    // `--time-budget 0.5` must parse as half a second, not be rejected or
    // truncated to zero. A zero-truncation bug would stop before the first
    // solution, so a non-zero count proves the fraction survived.
    let text = run(&["enumerate", &tiny_graph(), "--k", "1", "--time-budget", "0.5"]);
    let count: usize = text
        .lines()
        .find_map(|l| l.strip_prefix("solutions: "))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or_else(|| panic!("no solution count in: {text}"));
    assert!(count > 0, "a half-second budget must not stop before the first solution: {text}");
}

#[test]
fn generate_stats_enumerate_roundtrip() {
    let dir = std::env::temp_dir().join(format!("mbpe_cli_smoke_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("generated.txt");
    let path_str = path.to_str().unwrap().to_string();

    let text = run(&[
        "generate", "--er", "--left", "10", "--right", "10", "--edges", "40", "--seed", "5",
        "--out", &path_str,
    ]);
    assert!(text.contains("10"), "generate reports the sizes: {text}");

    let text = run(&["stats", &path_str]);
    assert!(text.contains("|E|"), "stats reads the generated file: {text}");

    let text = run(&["enumerate", &path_str, "--k", "1", "--count-only"]);
    assert!(text.contains("solutions"), "enumerate runs on the generated file: {text}");

    std::fs::remove_file(path).ok();
}
