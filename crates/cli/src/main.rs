//! `mbpe` — command-line front-end for the maximal k-biplex enumeration
//! workspace. All logic lives in the library crate so it can be tested; this
//! binary only wires stdin/stdout/exit codes.

#![forbid(unsafe_code)]

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout().lock();
    match mbpe_cli::run(&args, &mut stdout) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
