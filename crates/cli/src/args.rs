//! A minimal argument parser for the `mbpe` binary.
//!
//! The workspace deliberately avoids a CLI dependency: the option grammar is
//! small (long flags with at most one value, plus positional arguments), so
//! a ~100-line parser keeps the dependency tree identical to the library's.

use std::collections::BTreeMap;

use crate::CliError;

/// Parsed command-line arguments: long options (`--name [value]`) and the
/// remaining positional arguments, in order.
#[derive(Clone, Debug, Default)]
pub struct Args {
    options: BTreeMap<String, Vec<String>>,
    positionals: Vec<String>,
}

impl Args {
    /// Parses `raw` (everything after the subcommand name). `flag_names`
    /// lists options that take **no** value; every other `--name` consumes
    /// the following token as its value.
    pub fn parse(raw: &[String], flag_names: &[&str]) -> Result<Args, CliError> {
        let mut args = Args::default();
        let mut it = raw.iter().peekable();
        while let Some(tok) = it.next() {
            if let Some(name) = tok.strip_prefix("--") {
                if name.is_empty() {
                    // `--` terminates option parsing (everything after is
                    // positional).
                    for rest in it.by_ref() {
                        args.positionals.push(rest.clone());
                    }
                    break;
                }
                // `--name=value` form.
                if let Some((name, value)) = name.split_once('=') {
                    args.options.entry(name.to_string()).or_default().push(value.to_string());
                    continue;
                }
                if flag_names.contains(&name) {
                    args.options.entry(name.to_string()).or_default().push(String::new());
                    continue;
                }
                let value = it
                    .next()
                    .ok_or_else(|| CliError::Usage(format!("option --{name} requires a value")))?;
                args.options.entry(name.to_string()).or_default().push(value.clone());
            } else {
                args.positionals.push(tok.clone());
            }
        }
        Ok(args)
    }

    /// Positional arguments in order.
    pub fn positionals(&self) -> &[String] {
        &self.positionals
    }

    /// `true` when `--name` was given (with or without a value).
    pub fn flag(&self, name: &str) -> bool {
        self.options.contains_key(name)
    }

    /// Last value given for `--name`, if any.
    pub fn value(&self, name: &str) -> Option<&str> {
        self.options.get(name).and_then(|v| v.last()).map(String::as_str)
    }

    /// All values given for a repeatable option.
    pub fn values(&self, name: &str) -> &[String] {
        self.options.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Parses the value of `--name` as `T`, or returns `default` when the
    /// option is absent.
    pub fn parse_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, CliError> {
        match self.value(name) {
            None => Ok(default),
            Some(raw) => raw.parse::<T>().map_err(|_| {
                CliError::Usage(format!(
                    "option --{name} expects a value like the default, got {raw:?}"
                ))
            }),
        }
    }

    /// Parses the value of `--name` as `T`, failing when the option is
    /// missing.
    pub fn parse_required<T: std::str::FromStr>(&self, name: &str) -> Result<T, CliError> {
        let raw = self
            .value(name)
            .ok_or_else(|| CliError::Usage(format!("missing required option --{name}")))?;
        raw.parse::<T>()
            .map_err(|_| CliError::Usage(format!("could not parse --{name} value {raw:?}")))
    }

    /// Rejects any option not in `allowed` (typo protection).
    pub fn reject_unknown(&self, allowed: &[&str]) -> Result<(), CliError> {
        for name in self.options.keys() {
            if !allowed.contains(&name.as_str()) {
                return Err(CliError::Usage(format!("unknown option --{name}")));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(tokens: &[&str]) -> Vec<String> {
        tokens.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_options_values_and_positionals() {
        let args = Args::parse(&raw(&["--k", "2", "input.txt", "--first", "100"]), &[]).unwrap();
        assert_eq!(args.value("k"), Some("2"));
        assert_eq!(args.value("first"), Some("100"));
        assert_eq!(args.positionals(), &["input.txt".to_string()]);
    }

    #[test]
    fn parses_flags_and_equals_form() {
        let args = Args::parse(&raw(&["--count-only", "--k=3"]), &["count-only"]).unwrap();
        assert!(args.flag("count-only"));
        assert_eq!(args.value("k"), Some("3"));
        assert!(!args.flag("missing"));
    }

    #[test]
    fn double_dash_stops_option_parsing() {
        let args = Args::parse(&raw(&["--k", "1", "--", "--not-an-option"]), &[]).unwrap();
        assert_eq!(args.positionals(), &["--not-an-option".to_string()]);
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(Args::parse(&raw(&["--k"]), &[]).is_err());
    }

    #[test]
    fn parse_or_and_required() {
        let args = Args::parse(&raw(&["--k", "4"]), &[]).unwrap();
        assert_eq!(args.parse_or("k", 1usize).unwrap(), 4);
        assert_eq!(args.parse_or("theta", 7usize).unwrap(), 7);
        assert_eq!(args.parse_required::<usize>("k").unwrap(), 4);
        assert!(args.parse_required::<usize>("theta").is_err());
        let bad = Args::parse(&raw(&["--k", "four"]), &[]).unwrap();
        assert!(bad.parse_or("k", 1usize).is_err());
    }

    #[test]
    fn unknown_options_are_rejected() {
        let args = Args::parse(&raw(&["--frist", "10"]), &[]).unwrap();
        assert!(args.reject_unknown(&["first"]).is_err());
        let args = Args::parse(&raw(&["--first", "10"]), &[]).unwrap();
        assert!(args.reject_unknown(&["first"]).is_ok());
    }

    #[test]
    fn repeated_options_accumulate() {
        let args = Args::parse(&raw(&["--theta", "3", "--theta", "5"]), &[]).unwrap();
        assert_eq!(args.values("theta"), &["3".to_string(), "5".to_string()]);
        assert_eq!(args.value("theta"), Some("5"));
    }
}
