//! `mbpe update` — replay an edge-update script against the incremental
//! maintenance layer ([`kbiplex::dynamic::DynamicEnumerator`]), reporting
//! the per-update solution diffs and the localized/fallback statistics.

use std::io::Write;

use kbiplex::{DynamicConfig, DynamicEnumerator, Engine};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::args::Args;
use crate::commands::load_graph;
use crate::CliError;

/// Help text for `mbpe help update`.
pub const HELP: &str = "\
mbpe update — maintain maximal k-biplexes under edge updates

USAGE:
    mbpe update <FILE> --script <SCRIPT> [OPTIONS]
    mbpe update --dataset <NAME> --random <N> [OPTIONS]

Seeds the maintained solution set with a full enumeration, then applies the
edge updates one by one, printing each update's added/removed diff counts.
When both size thresholds exceed 2k, each update is confined to a core-
bounded region around the touched endpoints; otherwise the maintainer falls
back to a full re-enumeration per update.

SCRIPT FORMAT (one update per line, `#` comments):
    + <v> <u>       insert the edge (left v, right u)
    - <v> <u>       delete the edge (left v, right u)

OPTIONS:
    --script <FILE>     Update script to replay
    --random <N>        Instead of --script: N random toggle updates
                        (insert if absent, delete if present)
    --seed <S>          Seed for --random (default 1)
    --k <K>             Miss budget k (default 1)
    --theta-left <N>    Minimum left size of maintained solutions (default 0)
    --theta-right <N>   Minimum right size of maintained solutions (default 0)
    --engine <E>        Re-enumeration engine: seq (default) | steal | global
    --threads <T>       Worker threads for parallel engines (0 = auto)
    --print-diffs       Print every added/removed solution
    --verify            After every update, re-enumerate from scratch and
                        assert the maintained set matches (slow; for audits)
    --dataset/--scale/--full   Input selection, as for `mbpe stats`";

const OPTIONS: &[&str] = &[
    "script",
    "random",
    "seed",
    "k",
    "theta-left",
    "theta-right",
    "engine",
    "threads",
    "print-diffs",
    "verify",
    "dataset",
    "scale",
    "full",
];
const FLAGS: &[&str] = &["print-diffs", "verify", "full"];

/// One parsed update: insert? plus the edge endpoints.
type Update = (bool, u32, u32);

/// Parses a script file: `+ v u` / `- v u` lines, blank lines and `#`
/// comments ignored.
fn parse_script(text: &str) -> Result<Vec<Update>, CliError> {
    let mut updates = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let bad = || {
            CliError::Usage(format!(
                "script line {}: expected `+ v u` or `- v u`, got {line:?}",
                idx + 1
            ))
        };
        let op = parts.next().ok_or_else(bad)?;
        let insert = match op {
            "+" => true,
            "-" => false,
            _ => return Err(bad()),
        };
        let v: u32 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        let u: u32 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        if parts.next().is_some() {
            return Err(bad());
        }
        updates.push((insert, v, u));
    }
    Ok(updates)
}

/// Runs the command.
pub fn run(raw: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let args = Args::parse(raw, FLAGS)?;
    args.reject_unknown(OPTIONS)?;
    let (graph, label) = load_graph(&args)?;

    let k: usize = args.parse_or("k", 1)?;
    let theta_left: usize = args.parse_or("theta-left", 0)?;
    let theta_right: usize = args.parse_or("theta-right", 0)?;
    let threads: usize = args.parse_or("threads", 0)?;
    let engine = match args.value("engine") {
        None | Some("seq") | Some("sequential") => Engine::Sequential,
        Some("steal") => Engine::WorkSteal,
        Some("global") => Engine::GlobalQueue,
        Some(other) => {
            return Err(CliError::Usage(format!(
                "--engine expects seq, steal or global, got {other:?}"
            )))
        }
    };

    let updates: Vec<Update> = match (args.value("script"), args.value("random")) {
        (Some(_), Some(_)) => {
            return Err(CliError::Usage("give either --script or --random, not both".to_string()))
        }
        (Some(path), None) => parse_script(&std::fs::read_to_string(path)?)?,
        (None, Some(n)) => {
            let n: usize =
                n.parse().map_err(|_| CliError::Usage(format!("bad --random value {n:?}")))?;
            let seed: u64 = args.parse_or("seed", 1)?;
            let mut rng = StdRng::seed_from_u64(seed);
            // Toggle updates planned against a running edge view, so that a
            // planned delete always targets an existing edge.
            let mut view = bigraph::DynamicBipartiteGraph::from_graph(&graph);
            let mut script = Vec::with_capacity(n);
            for _ in 0..n {
                let v = rng.gen_range(0..graph.num_left());
                let u = rng.gen_range(0..graph.num_right());
                let insert = !view.has_edge(v, u);
                if insert {
                    view.insert_edge(v, u)?;
                } else {
                    view.delete_edge(v, u)?;
                }
                script.push((insert, v, u));
            }
            script
        }
        (None, None) => {
            return Err(CliError::Usage("expected --script <FILE> or --random <N>".to_string()))
        }
    };

    let cfg = DynamicConfig { k, theta_left, theta_right, engine, threads };
    let localizable = cfg.is_localizable();
    let mut m = DynamicEnumerator::new(&graph, cfg).map_err(|e| CliError::Usage(e.to_string()))?;

    writeln!(out, "graph: {label}  k = {k}  thresholds = ({theta_left}, {theta_right})")?;
    writeln!(
        out,
        "mode: {}  initial solutions: {}",
        if localizable { "localized" } else { "fallback (thresholds ≤ 2k)" },
        m.len()
    )?;

    let start = std::time::Instant::now();
    for (idx, &(insert, v, u)) in updates.iter().enumerate() {
        let diff = if insert { m.insert_edge(v, u) } else { m.delete_edge(v, u) }
            .map_err(|e| CliError::Usage(e.to_string()))?;
        writeln!(
            out,
            "#{:<4} {} ({v}, {u})  +{} -{}",
            idx + 1,
            if insert { "+" } else { "-" },
            diff.added.len(),
            diff.removed.len(),
        )?;
        if args.flag("print-diffs") {
            for b in &diff.added {
                writeln!(out, "    added   L={:?} R={:?}", b.left, b.right)?;
            }
            for b in &diff.removed {
                writeln!(out, "    removed L={:?} R={:?}", b.left, b.right)?;
            }
        }
        if args.flag("verify") {
            let rebuilt = m.rebuild().map_err(|e| CliError::Usage(e.to_string()))?;
            if m.solutions() != rebuilt {
                return Err(CliError::Usage(format!(
                    "verification FAILED after update #{}: maintained {} solutions, rebuild found {}",
                    idx + 1,
                    m.len(),
                    rebuilt.len()
                )));
            }
        }
    }
    let elapsed = start.elapsed();

    let stats = m.stats();
    writeln!(
        out,
        "updates: {}  (noop {}, localized {}, fallback {})",
        stats.updates, stats.noop_updates, stats.localized_updates, stats.fallback_updates
    )?;
    writeln!(out, "diff totals: +{} -{}", stats.added_total, stats.removed_total)?;
    if stats.localized_updates > 0 {
        writeln!(
            out,
            "region vertices: max {}  mean {:.1}",
            stats.max_region,
            stats.region_vertices_total as f64 / stats.localized_updates as f64
        )?;
    }
    writeln!(out, "final solutions: {}", m.len())?;
    writeln!(out, "elapsed: {:.3} s", elapsed.as_secs_f64())?;
    if args.flag("verify") {
        writeln!(out, "verified: every update against rebuild-from-scratch")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(tokens: &[&str]) -> Vec<String> {
        tokens.iter().map(|s| s.to_string()).collect()
    }

    fn capture(tokens: &[&str]) -> Result<String, CliError> {
        let mut sink = Vec::new();
        run(&raw(tokens), &mut sink)?;
        Ok(String::from_utf8(sink).unwrap())
    }

    #[test]
    fn script_parser_accepts_comments_and_rejects_garbage() {
        let ops = parse_script("# header\n+ 1 2\n\n- 3 4  # trailing\n").unwrap();
        assert_eq!(ops, vec![(true, 1, 2), (false, 3, 4)]);
        assert!(parse_script("* 1 2").is_err());
        assert!(parse_script("+ 1").is_err());
        assert!(parse_script("+ 1 2 3").is_err());
        assert!(parse_script("+ one 2").is_err());
    }

    #[test]
    fn random_updates_with_verification() {
        let text = capture(&[
            "--dataset",
            "Divorce",
            "--random",
            "8",
            "--seed",
            "3",
            "--k",
            "1",
            "--theta-left",
            "3",
            "--theta-right",
            "3",
            "--verify",
        ])
        .unwrap();
        assert!(text.contains("mode: localized"), "{text}");
        assert!(text.contains("updates: 8"), "{text}");
        assert!(text.contains("verified: every update"), "{text}");
    }

    #[test]
    fn script_file_replay_reports_diffs() {
        let dir = std::env::temp_dir().join("mbpe_cli_update_test");
        std::fs::create_dir_all(&dir).unwrap();
        let graph_path = dir.join("g.txt");
        let script_path = dir.join("ops.txt");
        // 3×3 biclique plus a pendant left vertex 3 attached to right 0.
        let mut edges = Vec::new();
        for v in 0..3u32 {
            for u in 0..3u32 {
                edges.push((v, u));
            }
        }
        edges.push((3, 0));
        let g = bigraph::BipartiteGraph::from_edges(4, 3, &edges).unwrap();
        bigraph::io::write_edge_list_file(&g, &graph_path).unwrap();
        std::fs::write(&script_path, "+ 3 1\n- 3 1\n").unwrap();

        let text = capture(&[
            graph_path.to_str().unwrap(),
            "--script",
            script_path.to_str().unwrap(),
            "--k",
            "1",
            "--theta-left",
            "3",
            "--theta-right",
            "3",
            "--print-diffs",
            "--verify",
        ])
        .unwrap();
        assert!(text.contains("#1    + (3, 1)  +1 -1"), "{text}");
        assert!(text.contains("#2    - (3, 1)  +1 -1"), "{text}");
        assert!(text.contains("added   L="), "{text}");
        assert!(text.contains("final solutions: 1"), "{text}");

        std::fs::remove_file(graph_path).ok();
        std::fs::remove_file(script_path).ok();
    }

    #[test]
    fn fallback_mode_is_reported() {
        let text = capture(&["--dataset", "Divorce", "--random", "2", "--k", "1"]).unwrap();
        assert!(text.contains("mode: fallback"), "{text}");
        assert!(text.contains("fallback 2)") || text.contains("noop"), "{text}");
    }

    #[test]
    fn usage_errors() {
        assert!(capture(&["--dataset", "Divorce"]).is_err(), "needs --script or --random");
        assert!(
            capture(&["--dataset", "Divorce", "--script", "a", "--random", "2"]).is_err(),
            "--script and --random are exclusive"
        );
        assert!(
            capture(&["--dataset", "Divorce", "--random", "1", "--engine", "warp"]).is_err(),
            "bad engine"
        );
    }
}
