//! `mbpe query` — send a [`kbiplex::QuerySpec`] to a running `mbpe serve`
//! daemon. The query surface is exactly the one `mbpe enumerate` uses
//! locally, so the same flags (or the same `--spec` document) work in both
//! places.

use std::io::Write;

use mbpe_serve::Client;

use crate::args::Args;
use crate::commands::spec;
use crate::CliError;

/// Help text for `mbpe help query`.
pub const HELP: &str = "\
mbpe query — query a running enumeration daemon

USAGE:
    mbpe query --addr <HOST:PORT> [QUERY OPTIONS]
    mbpe query --addr <HOST:PORT> --ping
    mbpe query --addr <HOST:PORT> --insert <L:R> | --delete <L:R>

MODES:
    --ping              Health check; prints the served snapshot's shape
    --insert <L:R>      Insert edge (left:right); repeatable
    --delete <L:R>      Delete edge (left:right); repeatable
    (default)           Run an enumeration query

OPTIONS:
    --addr <HOST:PORT>  The daemon to talk to (default 127.0.0.1:7661)
    --tenant <NAME>     Tenant name for fair-share scheduling (default cli)
    --algo <A>          itraversal (default) | btraversal | large | parallel
    --count-only        Ask only for the count, not the solution payload
    --print             Print every reported solution (L= ... R= ...)
    --show-spec         Echo the query as its canonical JSON document

The query-shaping options below are listed by `mbpe help enumerate` and
mean the same thing here (the server runs the identical QuerySpec):
    --spec --k --algo --limit --first --time-budget --theta-left
    --theta-right --threads --order --engine --seen-segments
    --steal-adaptive --kernel";

const OPTIONS: &[&str] = &[
    "addr",
    "tenant",
    "insert",
    "delete",
    "ping",
    "count-only",
    "print",
    "show-spec",
    // query-shaping options, as in spec::SPEC_OPTIONS
    "spec",
    "k",
    "algo",
    "limit",
    "first",
    "time-budget",
    "theta-left",
    "theta-right",
    "threads",
    "order",
    "engine",
    "seen-segments",
    "steal-adaptive",
    "kernel",
];
const FLAGS: &[&str] = &["ping", "count-only", "print", "show-spec"];

fn parse_edge(raw: &str) -> Result<(u32, u32), CliError> {
    let bad = || CliError::Usage(format!("expected an edge as <left>:<right>, got {raw:?}"));
    let (l, r) = raw.split_once(':').or_else(|| raw.split_once(',')).ok_or_else(bad)?;
    Ok((l.trim().parse().map_err(|_| bad())?, r.trim().parse().map_err(|_| bad())?))
}

/// Runs the command.
pub fn run(raw: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let args = Args::parse(raw, FLAGS)?;
    args.reject_unknown(OPTIONS)?;
    let addr = args.value("addr").unwrap_or("127.0.0.1:7661");
    let tenant = args.value("tenant").unwrap_or("cli");
    let mut client = Client::connect(addr, tenant)?;

    if args.flag("ping") {
        let info = client.ping()?;
        writeln!(out, "snapshot: |L| = {}  |R| = {}  |E| = {}", info.left, info.right, info.edges)?;
        return Ok(());
    }

    if !args.values("insert").is_empty() || !args.values("delete").is_empty() {
        for raw in args.values("insert") {
            let (l, r) = parse_edge(raw)?;
            let o = client.insert_edge(l, r)?;
            writeln!(out, "insert {l}:{r}  changed = {}  |E| = {}", o.changed, o.snapshot.edges)?;
        }
        for raw in args.values("delete") {
            let (l, r) = parse_edge(raw)?;
            let o = client.delete_edge(l, r)?;
            writeln!(out, "delete {l}:{r}  changed = {}  |E| = {}", o.changed, o.snapshot.edges)?;
        }
        return Ok(());
    }

    let query = spec::spec_from_args(&args)?;
    if args.flag("show-spec") {
        writeln!(out, "spec: {}", query.to_json_string())?;
    }
    writeln!(out, "server: {addr}  tenant: {tenant}")?;
    if args.flag("count-only") {
        let report = client.count(&query)?;
        writeln!(out, "solutions: {}", report.solutions)?;
        writeln!(out, "stop: {}", report.stop)?;
        writeln!(out, "elapsed: {:.3} s", report.elapsed.as_secs_f64())?;
    } else {
        let outcome = client.query(&query)?;
        writeln!(out, "solutions: {}", outcome.report.solutions)?;
        writeln!(out, "stop: {}", outcome.report.stop)?;
        writeln!(out, "elapsed: {:.3} s", outcome.report.elapsed.as_secs_f64())?;
        if args.flag("print") {
            for b in outcome.solutions.as_deref().unwrap_or(&[]) {
                writeln!(out, "L={:?} R={:?}", b.left, b.right)?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::serve;

    fn parse(tokens: &[&str]) -> Args {
        let raw: Vec<String> = tokens.iter().map(|s| s.to_string()).collect();
        Args::parse(&raw, serve_flags()).unwrap()
    }

    fn serve_flags() -> &'static [&'static str] {
        &["full"]
    }

    fn capture(tokens: &[&str]) -> Result<String, CliError> {
        let raw: Vec<String> = tokens.iter().map(|s| s.to_string()).collect();
        let mut sink = Vec::new();
        run(&raw, &mut sink)?;
        Ok(String::from_utf8(sink).unwrap())
    }

    fn with_server(test: impl FnOnce(&str)) {
        let (handle, _) =
            serve::start_from_args(&parse(&["--dataset", "Divorce", "--addr", "127.0.0.1:0"]))
                .unwrap();
        let addr = handle.addr().to_string();
        test(&addr);
        handle.shutdown();
    }

    #[test]
    fn query_matches_local_enumerate() {
        with_server(|addr| {
            let raw: Vec<String> =
                ["--dataset", "Divorce", "--k", "1"].iter().map(|s| s.to_string()).collect();
            let mut sink = Vec::new();
            crate::commands::enumerate::run(&raw, &mut sink).unwrap();
            let local = String::from_utf8(sink).unwrap();
            let remote = capture(&["--addr", addr, "--k", "1"]).unwrap();
            let count = |text: &str| -> u64 {
                text.lines()
                    .find_map(|l| l.strip_prefix("solutions: "))
                    .unwrap()
                    .trim()
                    .parse()
                    .unwrap()
            };
            assert_eq!(count(&remote), count(&local));
            assert!(remote.contains("stop: exhausted"), "{remote}");
        });
    }

    #[test]
    fn ping_updates_and_spec_echo() {
        with_server(|addr| {
            let text = capture(&["--addr", addr, "--ping"]).unwrap();
            assert!(text.contains("|E| ="), "{text}");

            let text = capture(&["--addr", addr, "--insert", "0:1"]).unwrap();
            assert!(text.starts_with("insert 0:1"), "{text}");
            let text = capture(&["--addr", addr, "--delete", "0:1"]).unwrap();
            assert!(text.starts_with("delete 0:1"), "{text}");

            let text =
                capture(&["--addr", addr, "--theta-left", "2", "--count-only", "--show-spec"])
                    .unwrap();
            let json = text
                .lines()
                .find_map(|l| l.strip_prefix("spec: "))
                .expect("spec echoed")
                .to_string();
            // The echoed document replays as the same query.
            let replay = capture(&["--addr", addr, "--spec", &json, "--count-only"]).unwrap();
            let count = |text: &str| -> String {
                text.lines().find_map(|l| l.strip_prefix("solutions: ")).unwrap().to_string()
            };
            assert_eq!(count(&replay), count(&text));

            assert!(capture(&["--addr", addr, "--insert", "zero:1"]).is_err());
        });
    }

    #[test]
    fn server_side_rejections_are_reported() {
        with_server(|addr| {
            // threads on the sequential engine: rejected by the facade's
            // validation, surfaced with its stable code.
            let err = capture(&["--addr", addr, "--spec", r#"{"threads":4}"#]).unwrap_err();
            let text = err.to_string();
            assert!(text.contains("invalid-config"), "{text}");
        });
    }

    #[test]
    fn connecting_to_a_dead_server_fails_cleanly() {
        // Port 1 is never listening.
        assert!(capture(&["--addr", "127.0.0.1:1", "--ping"]).is_err());
    }
}
