//! `mbpe fraud` — the camouflage-attack fraud-detection case study
//! (Section 6.3 / Figure 13) as a single command.

use std::io::Write;

use frauddet::{run_detector, CamouflageScenario, Detector, ScenarioParams};

use crate::args::Args;
use crate::CliError;

/// Help text for `mbpe help fraud`.
pub const HELP: &str = "\
mbpe fraud — camouflage-attack fraud-detection case study (Figure 13)

USAGE:
    mbpe fraud [OPTIONS]

OPTIONS:
    --preset <P>      tiny | default (default: default) — scenario size
    --seed <S>        RNG seed for the scenario (default 2022)
    --theta-l <N>     User-side size threshold θ_L (default 4, as in the paper)
    --theta-r <N>     Product-side size threshold θ_R (default 5)
    --k <K>           k of the k-biplex detector (default 1)
    --delta <D>       δ of the quasi-biclique detector (default 0.2)";

const OPTIONS: &[&str] = &["preset", "seed", "theta-l", "theta-r", "k", "delta"];

/// Runs the command.
pub fn run(raw: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let args = Args::parse(raw, &[])?;
    args.reject_unknown(OPTIONS)?;

    let seed: u64 = args.parse_or("seed", 2022)?;
    let theta_l: usize = args.parse_or("theta-l", 4)?;
    let theta_r: usize = args.parse_or("theta-r", 5)?;
    let k: usize = args.parse_or("k", 1)?;
    let delta: f64 = args.parse_or("delta", 0.2)?;

    let params = match args.value("preset").unwrap_or("default") {
        "tiny" => ScenarioParams::tiny(seed),
        "default" => ScenarioParams { seed, ..ScenarioParams::default() },
        other => return Err(CliError::Usage(format!("unknown --preset {other:?}"))),
    };

    let scenario = CamouflageScenario::generate(params);
    writeln!(
        out,
        "scenario: |L| = {}, |R| = {}, |E| = {}, fake vertices = {}",
        scenario.graph.num_left(),
        scenario.graph.num_right(),
        scenario.graph.num_edges(),
        scenario.num_fake()
    )?;
    writeln!(out, "thresholds: theta_L = {theta_l}, theta_R = {theta_r}")?;
    writeln!(out, "{:<20} {:>10} {:>10} {:>10}", "detector", "precision", "recall", "F1")?;

    let detectors = [
        Detector::Biclique,
        Detector::KBiplex { k },
        Detector::AlphaBetaCore,
        Detector::DeltaQuasiBiclique { delta },
    ];
    for detector in detectors {
        let metrics = run_detector(&scenario, detector, theta_l, theta_r);
        let fmt = |x: Option<f64>| match x {
            Some(v) => format!("{:.3}", v),
            None => "ND".to_string(),
        };
        writeln!(
            out,
            "{:<20} {:>10} {:>10.3} {:>10}",
            detector.label(),
            fmt(metrics.precision),
            metrics.recall,
            fmt(metrics.f1),
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(tokens: &[&str]) -> Vec<String> {
        tokens.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn tiny_preset_prints_all_detectors() {
        let mut sink = Vec::new();
        run(&raw(&["--preset", "tiny", "--seed", "5", "--theta-r", "4"]), &mut sink).unwrap();
        let text = String::from_utf8(sink).unwrap();
        for label in ["biclique", "1-biplex", "(alpha,beta)-core", "0.2-QB"] {
            assert!(text.contains(label), "missing {label} in:\n{text}");
        }
    }

    #[test]
    fn bad_preset_is_rejected() {
        let mut sink = Vec::new();
        assert!(run(&raw(&["--preset", "galactic"]), &mut sink).is_err());
    }
}
