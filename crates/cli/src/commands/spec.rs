//! Shared translation from command-line flags to a [`QuerySpec`] — the
//! serializable query surface the CLI, the service client and the
//! in-process facade all speak. `mbpe enumerate` and `mbpe query` parse
//! the same options through [`spec_from_args`], so a query tuned locally
//! can be replayed against a daemon (or vice versa) unchanged, and
//! `--spec` accepts the JSON document directly.

use std::time::Duration;

use kbiplex::{Algorithm, Engine, Kernel, QuerySpec, VertexOrder};

use crate::args::Args;
use crate::CliError;

/// Query-shaping options understood by [`spec_from_args`] (shared between
/// `enumerate` and `query`).
pub const SPEC_OPTIONS: &[&str] = &[
    "spec",
    "k",
    "algo",
    "limit",
    "first",
    "time-budget",
    "theta-left",
    "theta-right",
    "threads",
    "order",
    "engine",
    "seen-segments",
    "steal-adaptive",
    "kernel",
];

/// The `--algo` value with the historical default.
pub fn algo_name(args: &Args) -> &str {
    args.value("algo").unwrap_or("itraversal")
}

/// Parses an option holding a number of seconds (fractions allowed) into a
/// [`Duration`].
pub fn parse_seconds(args: &Args, name: &str) -> Result<Option<Duration>, CliError> {
    match args.value(name) {
        None => Ok(None),
        Some(v) => {
            let secs: f64 =
                v.parse().map_err(|_| CliError::Usage(format!("bad --{name} {v:?} (seconds)")))?;
            // try_from_secs_f64 rejects NaN, negatives and values too large
            // for a Duration, which from_secs_f64 would panic on.
            let budget = Duration::try_from_secs_f64(secs).map_err(|_| {
                CliError::Usage(format!(
                    "--{name} expects a representable non-negative number of seconds, got {v:?}"
                ))
            })?;
            Ok(Some(budget))
        }
    }
}

/// Parses `--limit` (or its deprecated alias `--first`).
pub fn parse_limit(args: &Args) -> Result<Option<u64>, CliError> {
    if args.value("limit").is_some() && args.value("first").is_some() {
        return Err(CliError::Usage(
            "--first is the deprecated alias of --limit; give only one of them".to_string(),
        ));
    }
    match args.value("limit").or_else(|| args.value("first")) {
        None => Ok(None),
        Some(v) => Ok(Some(v.parse().map_err(|_| CliError::Usage(format!("bad --limit {v:?}")))?)),
    }
}

fn parse_steal_adaptive(args: &Args) -> Result<bool, CliError> {
    match args.value("steal-adaptive") {
        None | Some("on" | "true" | "1") => Ok(true),
        Some("off" | "false" | "0") => Ok(false),
        Some(raw) => {
            Err(CliError::Usage(format!("--steal-adaptive expects on or off, got {raw:?}")))
        }
    }
}

/// Rejects the parallel-only knobs when `algo` is not `parallel`, and the
/// steal-only knobs on the global-queue engine. Shared with the baseline
/// paths of `enumerate`, which never build a spec.
pub fn reject_misplaced_engine_knobs(args: &Args, algo: &str) -> Result<(), CliError> {
    for opt in ["engine", "seen-segments", "steal-adaptive"] {
        if args.value(opt).is_some() && algo != "parallel" {
            return Err(CliError::Usage(format!(
                "--{opt} only applies to --algo parallel (got --algo {algo})"
            )));
        }
    }
    // The global-queue engine has its own mutex-sharded seen-set and no
    // steal path; silently accepting (and echoing) the knobs would present
    // a no-op as applied.
    if algo == "parallel" && args.value("engine") == Some("global") {
        for opt in ["seen-segments", "steal-adaptive"] {
            if args.value(opt).is_some() {
                return Err(CliError::Usage(format!(
                    "--{opt} only applies to --engine steal (got --engine global)"
                )));
            }
        }
    }
    Ok(())
}

/// Builds the query from the command line: either the `--spec` JSON
/// document verbatim, or the individual flags.
pub fn spec_from_args(args: &Args) -> Result<QuerySpec, CliError> {
    if let Some(raw) = args.value("spec") {
        for opt in SPEC_OPTIONS.iter().filter(|o| **o != "spec") {
            if args.value(opt).is_some() {
                return Err(CliError::Usage(format!(
                    "--spec is the whole query; drop --{opt} or fold it into the document"
                )));
            }
        }
        let text = match raw.strip_prefix('@') {
            Some(path) => std::fs::read_to_string(path)?,
            None => raw.to_string(),
        };
        return QuerySpec::from_json_str(text.trim())
            .map_err(|e| CliError::Usage(format!("bad --spec document: {}", e.0)));
    }

    let algo = algo_name(args);
    reject_misplaced_engine_knobs(args, algo)?;
    let mut spec = QuerySpec {
        k: args.parse_or("k", 1)?,
        theta_left: args.parse_or("theta-left", 0)?,
        theta_right: args.parse_or("theta-right", 0)?,
        limit: parse_limit(args)?,
        time_budget: parse_seconds(args, "time-budget")?,
        ..QuerySpec::default()
    };
    if let Some(raw) = args.value("order") {
        spec.order = raw.parse::<VertexOrder>().map_err(CliError::Usage)?;
    }
    // The kernel override applies to every algorithm and engine (all of
    // them intersect through the same dispatcher), so no misplacement rule.
    if let Some(raw) = args.value("kernel") {
        spec.kernel = raw.parse::<Kernel>().map_err(CliError::Usage)?;
    }
    match algo {
        "itraversal" => spec.algorithm = Algorithm::ITraversal,
        "btraversal" => spec.algorithm = Algorithm::BTraversal,
        "large" => spec.algorithm = Algorithm::Large,
        "parallel" => {
            spec.algorithm = Algorithm::ITraversal;
            spec.engine = match args.value("engine") {
                None | Some("steal") => Engine::WorkSteal,
                Some("global") => Engine::GlobalQueue,
                Some(raw) => {
                    return Err(CliError::Usage(format!(
                        "--engine expects steal or global, got {raw:?}"
                    )))
                }
            };
            spec.threads = args.parse_or("threads", 0)?;
            if spec.engine == Engine::WorkSteal {
                spec.seen_segments = args.parse_or("seen-segments", 0)?;
                spec.steal_adaptive = parse_steal_adaptive(args)?;
            }
        }
        other => {
            return Err(CliError::Usage(format!(
                "unknown --algo {other:?} (expected itraversal, btraversal, large or parallel; \
                 imb and inflation are local-only baselines of `mbpe enumerate`)"
            )))
        }
    }
    Ok(spec)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(tokens: &[&str], flags: &[&str]) -> Args {
        let raw: Vec<String> = tokens.iter().map(|s| s.to_string()).collect();
        Args::parse(&raw, flags).unwrap()
    }

    #[test]
    fn flags_build_the_same_spec_as_the_json_document() {
        let from_flags = spec_from_args(&args(
            &["--k", "2", "--theta-left", "3", "--limit", "10", "--order", "degree"],
            &[],
        ))
        .unwrap();
        let json = from_flags.to_json_string();
        let from_doc = spec_from_args(&args(&["--spec", &json], &[])).unwrap();
        assert_eq!(from_flags, from_doc);
    }

    #[test]
    fn spec_excludes_individual_options() {
        let e = spec_from_args(&args(&["--spec", "{}", "--k", "2"], &[]));
        assert!(matches!(e, Err(CliError::Usage(_))));
    }

    #[test]
    fn parallel_algo_maps_to_the_engines() {
        let spec = spec_from_args(&args(&["--algo", "parallel", "--threads", "2"], &[])).unwrap();
        assert_eq!(spec.engine, Engine::WorkSteal);
        assert_eq!(spec.threads, 2);
        let spec =
            spec_from_args(&args(&["--algo", "parallel", "--engine", "global"], &[])).unwrap();
        assert_eq!(spec.engine, Engine::GlobalQueue);
    }

    #[test]
    fn misplaced_knobs_are_usage_errors() {
        assert!(spec_from_args(&args(&["--engine", "steal"], &[])).is_err());
        assert!(spec_from_args(&args(&["--seen-segments", "2"], &[])).is_err());
        let global = &["--algo", "parallel", "--engine", "global", "--steal-adaptive", "off"];
        assert!(spec_from_args(&args(global, &[])).is_err());
    }

    #[test]
    fn kernel_flag_parses_on_every_algo() {
        for algo in ["itraversal", "btraversal", "large", "parallel"] {
            let spec =
                spec_from_args(&args(&["--algo", algo, "--kernel", "chunked"], &[])).unwrap();
            assert_eq!(spec.kernel, Kernel::Chunked, "--algo {algo}");
        }
        assert_eq!(spec_from_args(&args(&[], &[])).unwrap().kernel, Kernel::Auto);
        let e = spec_from_args(&args(&["--kernel", "simd"], &[]));
        assert!(matches!(e, Err(CliError::Usage(_))));
    }

    #[test]
    fn bad_spec_document_is_a_usage_error() {
        assert!(spec_from_args(&args(&["--spec", "{"], &[])).is_err());
        assert!(spec_from_args(&args(&["--spec", r#"{"warp":9}"#], &[])).is_err());
    }
}
