//! `mbpe generate` — synthesise a bipartite graph and write it to disk.

use std::io::Write;

use bigraph::formats::{write_adjacency, write_konect};
use bigraph::gen::chung_lu::chung_lu_bipartite;
use bigraph::gen::datasets::DatasetSpec;
use bigraph::gen::er::er_bipartite;
use bigraph::io::write_edge_list;
use bigraph::BipartiteGraph;

use crate::args::Args;
use crate::CliError;

/// Help text for `mbpe help generate`.
pub const HELP: &str = "\
mbpe generate — synthesise a bipartite graph

USAGE:
    mbpe generate --dataset <NAME> [--scale N | --full] --out <FILE>
    mbpe generate --er --left L --right R --edges E [--seed S] --out <FILE>
    mbpe generate --chung-lu --left L --right R --edges E [--gamma G] [--seed S] --out <FILE>

OPTIONS:
    --dataset <NAME>   Synthetic stand-in for a Table-1 dataset (Divorce … Google)
    --scale <N>        Divide the dataset dimensions by N (default: registry scale)
    --full             Generate the dataset at the paper's full size
    --er               Erdős–Rényi bipartite graph
    --chung-lu         Chung–Lu power-law bipartite graph
    --left/--right     Side sizes for --er / --chung-lu
    --edges <E>        Edge count for --er / --chung-lu
    --gamma <G>        Power-law exponent for --chung-lu (default 2.2)
    --seed <S>         RNG seed (default 1)
    --out <FILE>       Output path (required)
    --format <F>       edgelist (default) | konect | adjacency";

const OPTIONS: &[&str] = &[
    "dataset", "scale", "full", "er", "chung-lu", "left", "right", "edges", "gamma", "seed", "out",
    "format",
];
const FLAGS: &[&str] = &["full", "er", "chung-lu"];

/// Runs the command.
pub fn run(raw: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let args = Args::parse(raw, FLAGS)?;
    args.reject_unknown(OPTIONS)?;
    let seed: u64 = args.parse_or("seed", 1)?;

    let (graph, label) = if let Some(name) = args.value("dataset") {
        let spec = DatasetSpec::by_name(name)
            .ok_or_else(|| CliError::Usage(format!("unknown dataset {name:?}")))?;
        let g = if args.flag("full") {
            spec.generate_full()
        } else {
            spec.generate_with_scale(args.parse_or("scale", spec.default_scale)?)
        };
        (g, spec.name.to_string())
    } else if args.flag("er") {
        let g = er_bipartite(
            args.parse_required("left")?,
            args.parse_required("right")?,
            args.parse_required("edges")?,
            seed,
        );
        (g, "er".to_string())
    } else if args.flag("chung-lu") {
        let g = chung_lu_bipartite(
            args.parse_required("left")?,
            args.parse_required("right")?,
            args.parse_required("edges")?,
            args.parse_or("gamma", 2.2)?,
            seed,
        );
        (g, "chung-lu".to_string())
    } else {
        return Err(CliError::Usage(
            "generate needs one of --dataset, --er or --chung-lu".to_string(),
        ));
    };

    let path = args
        .value("out")
        .ok_or_else(|| CliError::Usage("generate requires --out <FILE>".to_string()))?;
    write_graph(&graph, path, args.value("format").unwrap_or("edgelist"))?;

    writeln!(
        out,
        "wrote {label}: |L| = {}, |R| = {}, |E| = {} -> {path}",
        graph.num_left(),
        graph.num_right(),
        graph.num_edges()
    )?;
    Ok(())
}

fn write_graph(g: &BipartiteGraph, path: &str, format: &str) -> Result<(), CliError> {
    let file = std::fs::File::create(path).map_err(bigraph::Error::from)?;
    match format {
        "edgelist" => write_edge_list(g, file)?,
        "konect" => write_konect(g, file)?,
        "adjacency" => write_adjacency(g, file)?,
        other => {
            return Err(CliError::Usage(format!(
                "unknown --format {other:?} (expected edgelist, konect or adjacency)"
            )))
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(tokens: &[&str]) -> Vec<String> {
        tokens.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn requires_a_generator_and_out() {
        let mut sink = Vec::new();
        assert!(run(&raw(&["--out", "/tmp/x.txt"]), &mut sink).is_err());
        assert!(
            run(&raw(&["--er", "--left", "3", "--right", "3", "--edges", "4"]), &mut sink).is_err()
        );
    }

    #[test]
    fn generates_every_format() {
        let dir = std::env::temp_dir().join("mbpe_cli_generate_test");
        std::fs::create_dir_all(&dir).unwrap();
        for format in ["edgelist", "konect", "adjacency"] {
            let path = dir.join(format!("g.{format}"));
            let path_str = path.to_str().unwrap().to_string();
            let mut sink = Vec::new();
            run(
                &raw(&[
                    "--chung-lu",
                    "--left",
                    "20",
                    "--right",
                    "15",
                    "--edges",
                    "60",
                    "--seed",
                    "9",
                    "--format",
                    format,
                    "--out",
                    &path_str,
                ]),
                &mut sink,
            )
            .unwrap();
            let g = bigraph::formats::read_auto(&path).unwrap();
            assert!(g.num_edges() > 0, "{format} roundtrips a non-empty graph");
            std::fs::remove_file(path).ok();
        }
    }

    #[test]
    fn dataset_generation_respects_scale() {
        let dir = std::env::temp_dir().join("mbpe_cli_generate_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("divorce.txt");
        let path_str = path.to_str().unwrap().to_string();
        let mut sink = Vec::new();
        run(&raw(&["--dataset", "Divorce", "--out", &path_str]), &mut sink).unwrap();
        let g = bigraph::formats::read_auto(&path).unwrap();
        assert_eq!(g.num_left(), 9);
        assert_eq!(g.num_right(), 50);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn unknown_dataset_and_format_are_rejected() {
        let mut sink = Vec::new();
        assert!(run(&raw(&["--dataset", "NotADataset", "--out", "/tmp/x"]), &mut sink).is_err());
        assert!(run(
            &raw(&[
                "--er", "--left", "2", "--right", "2", "--edges", "1", "--out", "/tmp/x",
                "--format", "xml"
            ]),
            &mut sink
        )
        .is_err());
    }
}
