//! `mbpe stats` — summary statistics of a bipartite graph.

use std::io::Write;

use bigraph::stats::GraphStats;

use crate::args::Args;
use crate::commands::load_graph;
use crate::CliError;

/// Help text for `mbpe help stats`.
pub const HELP: &str = "\
mbpe stats — print summary statistics of a graph

USAGE:
    mbpe stats <FILE>
    mbpe stats --dataset <NAME> [--scale N | --full]

OPTIONS:
    --dataset <NAME>   Use a synthetic Table-1 stand-in instead of a file
    --scale <N>        Scale factor for --dataset
    --full             Generate the dataset at full size
    --butterflies      Also count butterflies (2x2 bicliques); quadratic in
                       the wedge count, intended for the smaller datasets
    --degeneracy       Also compute the bipartite degeneracy (min-degree
                       peeling over both sides)
    --histogram        Also print the left/right degree histograms";

const OPTIONS: &[&str] = &["dataset", "scale", "full", "butterflies", "degeneracy", "histogram"];
const FLAGS: &[&str] = &["full", "butterflies", "degeneracy", "histogram"];

/// Runs the command.
pub fn run(raw: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let args = Args::parse(raw, FLAGS)?;
    args.reject_unknown(OPTIONS)?;
    let (graph, label) = load_graph(&args)?;
    let stats = GraphStats::of(&graph);

    writeln!(out, "graph: {label}")?;
    writeln!(out, "  |L| = {}", stats.num_left)?;
    writeln!(out, "  |R| = {}", stats.num_right)?;
    writeln!(out, "  |E| = {}", stats.num_edges)?;
    writeln!(out, "  edge density |E|/(|L|+|R|) = {:.3}", stats.edge_density)?;
    writeln!(
        out,
        "  degree (left):  max = {}, avg = {:.2}",
        stats.max_left_degree, stats.avg_left_degree
    )?;
    writeln!(
        out,
        "  degree (right): max = {}, avg = {:.2}",
        stats.max_right_degree, stats.avg_right_degree
    )?;

    if args.flag("butterflies") {
        writeln!(out, "  butterflies = {}", bigraph::stats::count_butterflies(&graph))?;
    }
    if args.flag("degeneracy") {
        writeln!(out, "  degeneracy = {}", bigraph::order::bipartite_degeneracy(&graph))?;
    }
    if args.flag("histogram") {
        print_histogram(out, "left", &bigraph::stats::left_degree_histogram(&graph))?;
        print_histogram(out, "right", &bigraph::stats::right_degree_histogram(&graph))?;
    }
    Ok(())
}

fn print_histogram(out: &mut dyn Write, side: &str, hist: &[usize]) -> Result<(), CliError> {
    writeln!(out, "  degree histogram ({side}):")?;
    for (d, &count) in hist.iter().enumerate() {
        if count > 0 {
            writeln!(out, "    {d:>6}: {count}")?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(tokens: &[&str]) -> Vec<String> {
        tokens.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn dataset_stats_with_extras() {
        let mut sink = Vec::new();
        run(&raw(&["--dataset", "Divorce", "--butterflies", "--histogram"]), &mut sink).unwrap();
        let text = String::from_utf8(sink).unwrap();
        assert!(text.contains("|L| = 9"));
        assert!(text.contains("butterflies"));
        assert!(text.contains("degree histogram"));
    }

    #[test]
    fn missing_input_is_a_usage_error() {
        let mut sink = Vec::new();
        assert!(run(&raw(&[]), &mut sink).is_err());
    }

    #[test]
    fn nonexistent_file_is_reported() {
        let mut sink = Vec::new();
        assert!(run(&raw(&["/definitely/not/a/file.txt"]), &mut sink).is_err());
    }
}
