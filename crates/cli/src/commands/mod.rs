//! Implementations of the `mbpe` subcommands.
//!
//! Each command module exposes `run(raw_args, out)` plus a `HELP` string;
//! the shared [`load_graph`] helper resolves the `--dataset` / positional
//! input-file convention used by `stats` and `enumerate`.

pub mod enumerate;
pub mod fraud;
pub mod generate;
pub mod query;
pub mod serve;
pub mod spec;
pub mod stats;
pub mod update;

use bigraph::gen::datasets::DatasetSpec;
use bigraph::BipartiteGraph;

use crate::args::Args;
use crate::CliError;

/// Loads the input graph of a command: either the first positional argument
/// (a file in any supported format) or `--dataset <name>` (a synthetic
/// Table-1 stand-in, scaled by `--scale` or generated at full size with
/// `--full`).
pub fn load_graph(args: &Args) -> Result<(BipartiteGraph, String), CliError> {
    if let Some(name) = args.value("dataset") {
        let spec = DatasetSpec::by_name(name).ok_or_else(|| {
            CliError::Usage(format!(
                "unknown dataset {name:?}; available: {}",
                bigraph::gen::datasets::DATASETS
                    .iter()
                    .map(|d| d.name)
                    .collect::<Vec<_>>()
                    .join(", ")
            ))
        })?;
        let graph = if args.flag("full") {
            spec.generate_full()
        } else if let Some(scale) = args.value("scale") {
            let scale: u32 = scale
                .parse()
                .map_err(|_| CliError::Usage(format!("bad --scale value {scale:?}")))?;
            spec.generate_with_scale(scale)
        } else {
            spec.generate_scaled()
        };
        return Ok((graph, spec.name.to_string()));
    }
    match args.positionals().first() {
        Some(path) => {
            let graph = bigraph::formats::read_auto(path)?;
            Ok((graph, path.clone()))
        }
        None => Err(CliError::Usage("expected an input file or --dataset <name>".to_string())),
    }
}
