//! `mbpe enumerate` — enumerate maximal k-biplexes with a selectable
//! algorithm, size thresholds and early stopping.

use std::io::Write;
use std::time::Instant;

use baselines::{collect_imb, collect_inflation, ImbConfig, InflationConfig};
use kbiplex::{
    enumerate_mbps, par_enumerate_mbps, Biplex, CollectSink, Control, FirstN, ParallelConfig,
    ParallelEngine, SolutionSink, TraversalConfig, VertexOrder,
};

use crate::args::Args;
use crate::commands::load_graph;
use crate::CliError;

/// Help text for `mbpe help enumerate`.
pub const HELP: &str = "\
mbpe enumerate — enumerate maximal k-biplexes

USAGE:
    mbpe enumerate <FILE> [OPTIONS]
    mbpe enumerate --dataset <NAME> [OPTIONS]

OPTIONS:
    --k <K>             Miss budget k (default 1)
    --algo <A>          itraversal (default) | btraversal | imb | inflation | parallel
    --first <N>         Stop after the first N solutions (sequential algorithms)
    --theta-left <N>    Only report MBPs with at least N left vertices
    --theta-right <N>   Only report MBPs with at least N right vertices
    --threads <T>       Worker threads for --algo parallel (0 = auto)
    --order <O>         Vertex relabeling pass: input (default) | degree |
                        degeneracy (itraversal, btraversal, parallel)
    --engine <E>        Parallel scheduler: steal (default) | global
    --seen-segments <N> Initial segment count of the parallel seen-set's
                        bucket directory (0 = auto-size from the graph;
                        it grows under load either way; steal engine only)
    --steal-adaptive <B>  on (default) | off — steal one item from shallow
                        victim deques instead of always half (steal engine
                        only)
    --count-only        Print only the number of solutions
    --print             Print every reported solution (L= ... R= ...)
    --dataset/--scale/--full   Input selection, as for `mbpe stats`";

const OPTIONS: &[&str] = &[
    "k",
    "algo",
    "first",
    "theta-left",
    "theta-right",
    "threads",
    "order",
    "engine",
    "seen-segments",
    "steal-adaptive",
    "count-only",
    "print",
    "dataset",
    "scale",
    "full",
];
const FLAGS: &[&str] = &["count-only", "print", "full"];

/// A sink that forwards to a `FirstN` limiter or collects everything,
/// depending on whether `--first` was given.
enum Collector {
    All(CollectSink),
    Limited(FirstN),
}

impl Collector {
    fn solutions(self) -> Vec<Biplex> {
        match self {
            Collector::All(sink) => sink.solutions,
            Collector::Limited(sink) => sink.solutions,
        }
    }
}

impl SolutionSink for Collector {
    fn on_solution(&mut self, solution: &Biplex) -> Control {
        match self {
            Collector::All(sink) => sink.on_solution(solution),
            Collector::Limited(sink) => sink.on_solution(solution),
        }
    }
}

/// Runs the command.
pub fn run(raw: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let args = Args::parse(raw, FLAGS)?;
    args.reject_unknown(OPTIONS)?;
    let (graph, label) = load_graph(&args)?;

    let k: usize = args.parse_or("k", 1)?;
    let theta_left: usize = args.parse_or("theta-left", 0)?;
    let theta_right: usize = args.parse_or("theta-right", 0)?;
    let first: Option<usize> = match args.value("first") {
        None => None,
        Some(v) => Some(v.parse().map_err(|_| CliError::Usage(format!("bad --first {v:?}")))?),
    };
    let algo = args.value("algo").unwrap_or("itraversal");
    let threads: usize = args.parse_or("threads", 0)?;
    let order: VertexOrder = match args.value("order") {
        None => VertexOrder::Input,
        Some(raw) => raw.parse().map_err(CliError::Usage)?,
    };
    let engine: ParallelEngine = match args.value("engine") {
        None => ParallelEngine::WorkSteal,
        Some(raw) => raw.parse().map_err(CliError::Usage)?,
    };
    let seen_segments: usize = args.parse_or("seen-segments", 0)?;
    let steal_adaptive: bool = match args.value("steal-adaptive") {
        None => true,
        Some("on" | "true" | "1") => true,
        Some("off" | "false" | "0") => false,
        Some(raw) => {
            return Err(CliError::Usage(format!("--steal-adaptive expects on or off, got {raw:?}")))
        }
    };
    if order != VertexOrder::Input && matches!(algo, "imb" | "inflation") {
        return Err(CliError::Usage(format!(
            "--order is not supported by --algo {algo} (use itraversal, btraversal or parallel)"
        )));
    }
    for opt in ["engine", "seen-segments", "steal-adaptive"] {
        if args.value(opt).is_some() && algo != "parallel" {
            return Err(CliError::Usage(format!(
                "--{opt} only applies to --algo parallel (got --algo {algo})"
            )));
        }
    }
    // The global-queue engine has its own mutex-sharded seen-set and no
    // steal path; silently accepting (and echoing) the knobs would present
    // a no-op as applied.
    if engine == ParallelEngine::GlobalQueue {
        for opt in ["seen-segments", "steal-adaptive"] {
            if args.value(opt).is_some() {
                return Err(CliError::Usage(format!(
                    "--{opt} only applies to --engine steal (got --engine global)"
                )));
            }
        }
    }

    let start = Instant::now();
    let mut parallel_info: Option<String> = None;
    let solutions: Vec<Biplex> = match algo {
        "itraversal" | "btraversal" => {
            let config = if algo == "itraversal" {
                TraversalConfig::itraversal(k)
            } else {
                TraversalConfig::btraversal(k)
            }
            .with_thresholds(theta_left, theta_right)
            .with_order(order);
            let mut sink = match first {
                Some(n) => Collector::Limited(FirstN::new(n)),
                None => Collector::All(CollectSink::new()),
            };
            enumerate_mbps(&graph, &config, &mut sink);
            sink.solutions()
        }
        "imb" => {
            let config = ImbConfig::new(k).with_thresholds(theta_left, theta_right);
            let mut solutions = collect_imb(&graph, &config);
            if let Some(n) = first {
                solutions.truncate(n);
            }
            solutions
        }
        "inflation" => {
            let config = InflationConfig::new(k);
            let mut solutions: Vec<Biplex> = collect_inflation(&graph, &config)
                .into_iter()
                .filter(|b| b.left.len() >= theta_left && b.right.len() >= theta_right)
                .collect();
            if let Some(n) = first {
                solutions.truncate(n);
            }
            solutions
        }
        "parallel" => {
            if first.is_some() {
                return Err(CliError::Usage(
                    "--first is only supported by the sequential algorithms".to_string(),
                ));
            }
            let config = ParallelConfig::new(k)
                .with_threads(threads)
                .with_thresholds(theta_left, theta_right)
                .with_order(order)
                .with_engine(engine)
                .with_seen_segments(seen_segments)
                .with_steal_adaptive(steal_adaptive);
            let (mut solutions, stats) = par_enumerate_mbps(&graph, &config);
            let mut info = format!(
                "parallel: threads = {}  engine = {:?}  order = {}  steals = {}",
                stats.threads, engine, order, stats.steals
            );
            if engine == ParallelEngine::WorkSteal {
                let adaptive = if steal_adaptive { "on" } else { "off" };
                let knobs = format!("  seen-segments = {seen_segments}  steal-adaptive = {adaptive}");
                info.push_str(&knobs);
            }
            parallel_info = Some(info);
            solutions.sort();
            solutions
        }
        other => {
            return Err(CliError::Usage(format!(
                "unknown --algo {other:?} (expected itraversal, btraversal, imb, inflation or parallel)"
            )))
        }
    };
    let elapsed = start.elapsed();

    writeln!(out, "graph: {label}  k = {k}  algorithm = {algo}")?;
    if let Some(info) = parallel_info {
        writeln!(out, "{info}")?;
    }
    writeln!(out, "solutions: {}", solutions.len())?;
    writeln!(out, "elapsed: {:.3} s", elapsed.as_secs_f64())?;
    if args.flag("print") && !args.flag("count-only") {
        for b in &solutions {
            writeln!(out, "L={:?} R={:?}", b.left, b.right)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(tokens: &[&str]) -> Vec<String> {
        tokens.iter().map(|s| s.to_string()).collect()
    }

    fn capture(tokens: &[&str]) -> Result<String, CliError> {
        let mut sink = Vec::new();
        run(&raw(tokens), &mut sink)?;
        Ok(String::from_utf8(sink).unwrap())
    }

    #[test]
    fn enumerates_a_dataset_standin() {
        let text = capture(&["--dataset", "Divorce", "--k", "1", "--count-only"]).unwrap();
        assert!(text.contains("solutions:"));
    }

    #[test]
    fn thresholds_reduce_the_count() {
        let all = capture(&["--dataset", "Divorce", "--k", "1"]).unwrap();
        let large = capture(&[
            "--dataset",
            "Divorce",
            "--k",
            "1",
            "--theta-left",
            "3",
            "--theta-right",
            "3",
        ])
        .unwrap();
        let parse = |text: &str| -> u64 {
            text.lines()
                .find_map(|l| l.strip_prefix("solutions: "))
                .unwrap()
                .trim()
                .parse()
                .unwrap()
        };
        assert!(parse(&large) <= parse(&all));
    }

    #[test]
    fn first_limits_output_and_parallel_rejects_it() {
        let text =
            capture(&["--dataset", "Divorce", "--k", "1", "--first", "2", "--print"]).unwrap();
        assert!(text.lines().filter(|l| l.starts_with("L=")).count() <= 2);
        assert!(capture(&["--dataset", "Divorce", "--algo", "parallel", "--first", "2"]).is_err());
    }

    #[test]
    fn bad_algorithm_is_rejected() {
        assert!(capture(&["--dataset", "Divorce", "--algo", "quantum"]).is_err());
    }

    #[test]
    fn order_and_engine_flags() {
        let baseline = capture(&["--dataset", "Divorce", "--k", "1"]).unwrap();
        let parse = |text: &str| -> u64 {
            text.lines()
                .find_map(|l| l.strip_prefix("solutions: "))
                .unwrap()
                .trim()
                .parse()
                .unwrap()
        };
        for order in ["degree", "degeneracy"] {
            let text = capture(&["--dataset", "Divorce", "--k", "1", "--order", order]).unwrap();
            assert_eq!(parse(&text), parse(&baseline), "order {order}");
        }
        for engine in ["steal", "global"] {
            let text = capture(&[
                "--dataset",
                "Divorce",
                "--k",
                "1",
                "--algo",
                "parallel",
                "--threads",
                "2",
                "--engine",
                engine,
                "--order",
                "degeneracy",
            ])
            .unwrap();
            assert_eq!(parse(&text), parse(&baseline), "engine {engine}");
            assert!(text.contains("parallel: threads = 2"), "engine {engine}");
        }
        assert!(capture(&["--dataset", "Divorce", "--order", "fancy"]).is_err());
        assert!(capture(&["--dataset", "Divorce", "--algo", "imb", "--order", "degree"]).is_err());
        assert!(
            capture(&["--dataset", "Divorce", "--algo", "parallel", "--engine", "bogus"]).is_err()
        );
        // --engine on a sequential algorithm is a usage error, not a no-op.
        assert!(capture(&["--dataset", "Divorce", "--engine", "steal"]).is_err());
    }

    #[test]
    fn seen_and_steal_knobs() {
        let baseline = capture(&["--dataset", "Divorce", "--k", "1"]).unwrap();
        let parse = |text: &str| -> u64 {
            text.lines()
                .find_map(|l| l.strip_prefix("solutions: "))
                .unwrap()
                .trim()
                .parse()
                .unwrap()
        };
        for (segments, adaptive) in [("0", "on"), ("1", "off"), ("4", "on")] {
            let text = capture(&[
                "--dataset",
                "Divorce",
                "--k",
                "1",
                "--algo",
                "parallel",
                "--threads",
                "4",
                "--seen-segments",
                segments,
                "--steal-adaptive",
                adaptive,
            ])
            .unwrap();
            assert_eq!(parse(&text), parse(&baseline), "segments {segments} adaptive {adaptive}");
            assert!(text.contains(&format!("seen-segments = {segments}")), "knobs echoed: {text}");
            assert!(text.contains(&format!("steal-adaptive = {adaptive}")), "knobs echoed: {text}");
        }
        // Bad values and sequential algorithms are usage errors, not no-ops.
        let bad = &["--dataset", "Divorce", "--algo", "parallel", "--steal-adaptive", "maybe"];
        assert!(capture(bad).is_err());
        assert!(capture(&["--dataset", "Divorce", "--seen-segments", "2"]).is_err());
        assert!(capture(&["--dataset", "Divorce", "--steal-adaptive", "off"]).is_err());
        // So is combining the knobs with the global-queue engine, which has
        // its own sharded seen-set and no steal path.
        let global = &["--dataset", "Divorce", "--algo", "parallel", "--engine", "global"];
        assert!(capture(&[global as &[_], &["--seen-segments", "2"]].concat()).is_err());
        assert!(capture(&[global as &[_], &["--steal-adaptive", "off"]].concat()).is_err());
        // The global engine's run header omits the inapplicable knobs.
        let text = capture(global).unwrap();
        assert!(text.contains("engine = GlobalQueue"), "{text}");
        assert!(!text.contains("seen-segments"), "{text}");
    }
}
