//! `mbpe enumerate` — enumerate maximal k-biplexes with a selectable
//! algorithm, size thresholds, first-N limits and time budgets, driven
//! through the [`kbiplex::Enumerator`] facade.

use std::io::Write;
use std::time::Duration;

use baselines::{collect_imb, collect_inflation, ImbConfig, InflationConfig};
use kbiplex::{
    Algorithm, Biplex, CollectSink, Engine, EngineStats, Enumerator, ParallelEngine, RunReport,
    VertexOrder,
};

use crate::args::Args;
use crate::commands::load_graph;
use crate::CliError;

/// Help text for `mbpe help enumerate`.
pub const HELP: &str = "\
mbpe enumerate — enumerate maximal k-biplexes

USAGE:
    mbpe enumerate <FILE> [OPTIONS]
    mbpe enumerate --dataset <NAME> [OPTIONS]

OPTIONS:
    --k <K>             Miss budget k (default 1)
    --algo <A>          itraversal (default) | btraversal | large | imb |
                        inflation | parallel
    --limit <N>         Stop after delivering exactly N solutions (all
                        engines — the parallel schedulers cancel
                        cooperatively)
    --first <N>         Deprecated alias of --limit
    --time-budget <S>   Stop at the first solution after S seconds
                        (fractions allowed; not for imb/inflation)
    --theta-left <N>    Only report MBPs with at least N left vertices
    --theta-right <N>   Only report MBPs with at least N right vertices
    --threads <T>       Worker threads for --algo parallel (0 = auto)
    --order <O>         Vertex relabeling pass: input (default) | degree |
                        degeneracy (itraversal, btraversal, large, parallel)
    --engine <E>        Parallel scheduler: steal (default) | global
    --seen-segments <N> Initial segment count of the parallel seen-set's
                        bucket directory (0 = auto-size from the graph;
                        it grows under load either way; steal engine only)
    --steal-adaptive <B>  on (default) | off — steal one item from shallow
                        victim deques instead of always half (steal engine
                        only)
    --count-only        Print only the number of solutions
    --print             Print every reported solution (L= ... R= ...)
    --dataset/--scale/--full   Input selection, as for `mbpe stats`";

const OPTIONS: &[&str] = &[
    "k",
    "algo",
    "limit",
    "first",
    "time-budget",
    "theta-left",
    "theta-right",
    "threads",
    "order",
    "engine",
    "seen-segments",
    "steal-adaptive",
    "count-only",
    "print",
    "dataset",
    "scale",
    "full",
];
const FLAGS: &[&str] = &["count-only", "print", "full"];

/// Runs the command.
pub fn run(raw: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let args = Args::parse(raw, FLAGS)?;
    args.reject_unknown(OPTIONS)?;
    let (graph, label) = load_graph(&args)?;

    let k: usize = args.parse_or("k", 1)?;
    let theta_left: usize = args.parse_or("theta-left", 0)?;
    let theta_right: usize = args.parse_or("theta-right", 0)?;
    if args.value("limit").is_some() && args.value("first").is_some() {
        return Err(CliError::Usage(
            "--first is the deprecated alias of --limit; give only one of them".to_string(),
        ));
    }
    let limit: Option<u64> = match args.value("limit").or_else(|| args.value("first")) {
        None => None,
        Some(v) => Some(v.parse().map_err(|_| CliError::Usage(format!("bad --limit {v:?}")))?),
    };
    let time_budget: Option<Duration> = match args.value("time-budget") {
        None => None,
        Some(v) => {
            let secs: f64 = v
                .parse()
                .map_err(|_| CliError::Usage(format!("bad --time-budget {v:?} (seconds)")))?;
            // try_from_secs_f64 rejects NaN, negatives and values too large
            // for a Duration, which from_secs_f64 would panic on.
            let budget = Duration::try_from_secs_f64(secs).map_err(|_| {
                CliError::Usage(format!(
                    "--time-budget expects a representable non-negative number of seconds, got {v:?}"
                ))
            })?;
            Some(budget)
        }
    };
    let algo = args.value("algo").unwrap_or("itraversal");
    let threads: usize = args.parse_or("threads", 0)?;
    let order: VertexOrder = match args.value("order") {
        None => VertexOrder::Input,
        Some(raw) => raw.parse().map_err(CliError::Usage)?,
    };
    let engine: ParallelEngine = match args.value("engine") {
        None => ParallelEngine::WorkSteal,
        Some(raw) => raw.parse().map_err(CliError::Usage)?,
    };
    let seen_segments: usize = args.parse_or("seen-segments", 0)?;
    let steal_adaptive: bool = match args.value("steal-adaptive") {
        None => true,
        Some("on" | "true" | "1") => true,
        Some("off" | "false" | "0") => false,
        Some(raw) => {
            return Err(CliError::Usage(format!("--steal-adaptive expects on or off, got {raw:?}")))
        }
    };
    if order != VertexOrder::Input && matches!(algo, "imb" | "inflation") {
        return Err(CliError::Usage(format!(
            "--order is not supported by --algo {algo} (use itraversal, btraversal, large or parallel)"
        )));
    }
    if time_budget.is_some() && matches!(algo, "imb" | "inflation") {
        return Err(CliError::Usage(format!(
            "--time-budget is not supported by --algo {algo} (baselines have no cancellation hook)"
        )));
    }
    for opt in ["engine", "seen-segments", "steal-adaptive"] {
        if args.value(opt).is_some() && algo != "parallel" {
            return Err(CliError::Usage(format!(
                "--{opt} only applies to --algo parallel (got --algo {algo})"
            )));
        }
    }
    // The global-queue engine has its own mutex-sharded seen-set and no
    // steal path; silently accepting (and echoing) the knobs would present
    // a no-op as applied.
    if engine == ParallelEngine::GlobalQueue {
        for opt in ["seen-segments", "steal-adaptive"] {
            if args.value(opt).is_some() {
                return Err(CliError::Usage(format!(
                    "--{opt} only applies to --engine steal (got --engine global)"
                )));
            }
        }
    }

    // Every facade-driven path shares this configured builder.
    let build = |algorithm: Algorithm, facade_engine: Engine| {
        let mut e = Enumerator::new(&graph)
            .k(k)
            .algorithm(algorithm)
            .engine(facade_engine)
            .order(order)
            .thresholds(theta_left, theta_right);
        if facade_engine != Engine::Sequential {
            e = e.threads(threads);
            if facade_engine == Engine::WorkSteal {
                e = e.seen_segments(seen_segments).steal_adaptive(steal_adaptive);
            }
        }
        if let Some(n) = limit {
            e = e.limit(n);
        }
        if let Some(budget) = time_budget {
            e = e.time_budget(budget);
        }
        e
    };
    let facade = |algorithm: Algorithm,
                  facade_engine: Engine|
     -> Result<(Vec<Biplex>, RunReport), CliError> {
        let mut sink = CollectSink::new();
        let report = build(algorithm, facade_engine)
            .run(&mut sink)
            .map_err(|e| CliError::Usage(e.to_string()))?;
        Ok((sink.into_sorted(), report))
    };

    let mut parallel_info: Option<String> = None;
    let mut stop_label = "exhausted".to_string();
    let elapsed: Duration;
    let solutions: Vec<Biplex> = match algo {
        "itraversal" | "btraversal" | "large" => {
            let algorithm = match algo {
                "itraversal" => Algorithm::ITraversal,
                "btraversal" => Algorithm::BTraversal,
                _ => Algorithm::Large,
            };
            let (solutions, report) = facade(algorithm, Engine::Sequential)?;
            stop_label = report.stop.to_string();
            elapsed = report.elapsed;
            solutions
        }
        "parallel" => {
            let facade_engine = match engine {
                ParallelEngine::WorkSteal => Engine::WorkSteal,
                ParallelEngine::GlobalQueue => Engine::GlobalQueue,
            };
            let (solutions, report) = facade(Algorithm::ITraversal, facade_engine)?;
            stop_label = report.stop.to_string();
            elapsed = report.elapsed;
            if let EngineStats::Parallel(stats) = &report.stats {
                let mut info = format!(
                    "parallel: threads = {}  engine = {:?}  order = {}  steals = {}",
                    stats.threads, engine, order, stats.steals
                );
                if engine == ParallelEngine::WorkSteal {
                    let adaptive = if steal_adaptive { "on" } else { "off" };
                    let knobs =
                        format!("  seen-segments = {seen_segments}  steal-adaptive = {adaptive}");
                    info.push_str(&knobs);
                }
                parallel_info = Some(info);
            }
            solutions
        }
        "imb" | "inflation" => {
            // The baselines have no facade path: collect, then apply the
            // limit as a post-truncation.
            let start = std::time::Instant::now();
            let mut solutions: Vec<Biplex> = if algo == "imb" {
                let config = ImbConfig::new(k).with_thresholds(theta_left, theta_right);
                collect_imb(&graph, &config)
            } else {
                collect_inflation(&graph, &InflationConfig::new(k))
                    .into_iter()
                    .filter(|b| b.left.len() >= theta_left && b.right.len() >= theta_right)
                    .collect()
            };
            if let Some(n) = limit {
                if (solutions.len() as u64) > n {
                    solutions.truncate(n as usize);
                    stop_label = "limit-reached".to_string();
                }
            }
            elapsed = start.elapsed();
            solutions
        }
        other => {
            return Err(CliError::Usage(format!(
                "unknown --algo {other:?} (expected itraversal, btraversal, large, imb, inflation or parallel)"
            )))
        }
    };

    writeln!(out, "graph: {label}  k = {k}  algorithm = {algo}")?;
    if let Some(info) = parallel_info {
        writeln!(out, "{info}")?;
    }
    writeln!(out, "solutions: {}", solutions.len())?;
    writeln!(out, "stop: {stop_label}")?;
    writeln!(out, "elapsed: {:.3} s", elapsed.as_secs_f64())?;
    if args.flag("print") && !args.flag("count-only") {
        for b in &solutions {
            writeln!(out, "L={:?} R={:?}", b.left, b.right)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(tokens: &[&str]) -> Vec<String> {
        tokens.iter().map(|s| s.to_string()).collect()
    }

    fn capture(tokens: &[&str]) -> Result<String, CliError> {
        let mut sink = Vec::new();
        run(&raw(tokens), &mut sink)?;
        Ok(String::from_utf8(sink).unwrap())
    }

    fn parse(text: &str) -> u64 {
        text.lines().find_map(|l| l.strip_prefix("solutions: ")).unwrap().trim().parse().unwrap()
    }

    #[test]
    fn enumerates_a_dataset_standin() {
        let text = capture(&["--dataset", "Divorce", "--k", "1", "--count-only"]).unwrap();
        assert!(text.contains("solutions:"));
        assert!(text.contains("stop: exhausted"));
    }

    #[test]
    fn thresholds_reduce_the_count() {
        let all = capture(&["--dataset", "Divorce", "--k", "1"]).unwrap();
        let large = capture(&[
            "--dataset",
            "Divorce",
            "--k",
            "1",
            "--theta-left",
            "3",
            "--theta-right",
            "3",
        ])
        .unwrap();
        assert!(parse(&large) <= parse(&all));
        // --algo large (core reduction + in-search pruning) agrees.
        let pipeline = capture(&[
            "--dataset",
            "Divorce",
            "--k",
            "1",
            "--algo",
            "large",
            "--theta-left",
            "3",
            "--theta-right",
            "3",
        ])
        .unwrap();
        assert_eq!(parse(&pipeline), parse(&large));
    }

    #[test]
    fn limit_works_on_every_engine_and_echoes_the_stop_reason() {
        let text =
            capture(&["--dataset", "Divorce", "--k", "1", "--limit", "2", "--print"]).unwrap();
        assert_eq!(text.lines().filter(|l| l.starts_with("L=")).count(), 2);
        assert!(text.contains("stop: limit-reached"), "{text}");
        // --first stays as the deprecated alias; combining both is a usage
        // error.
        let text = capture(&["--dataset", "Divorce", "--k", "1", "--first", "2"]).unwrap();
        assert_eq!(parse(&text), 2);
        assert!(
            capture(&["--dataset", "Divorce", "--first", "2", "--limit", "2"]).is_err(),
            "--first and --limit together must be rejected"
        );
        // The work-steal engine cancels cooperatively: exactly 2 delivered.
        let text = capture(&[
            "--dataset",
            "Divorce",
            "--k",
            "1",
            "--algo",
            "parallel",
            "--threads",
            "2",
            "--limit",
            "2",
            "--print",
        ])
        .unwrap();
        assert_eq!(text.lines().filter(|l| l.starts_with("L=")).count(), 2);
        assert!(text.contains("stop: limit-reached"), "{text}");
    }

    #[test]
    fn time_budget_is_validated_and_echoed() {
        // A zero budget stops before the first solution.
        let text = capture(&["--dataset", "Divorce", "--k", "1", "--time-budget", "0"]).unwrap();
        assert_eq!(parse(&text), 0);
        assert!(text.contains("stop: time-budget"), "{text}");
        // A generous budget never fires.
        let text = capture(&["--dataset", "Divorce", "--k", "1", "--time-budget", "3600"]).unwrap();
        assert!(text.contains("stop: exhausted"), "{text}");
        assert!(capture(&["--dataset", "Divorce", "--time-budget", "never"]).is_err());
        assert!(capture(&["--dataset", "Divorce", "--time-budget", "-1"]).is_err());
        // Finite but unrepresentable as a Duration: usage error, not a panic.
        assert!(capture(&["--dataset", "Divorce", "--time-budget", "1e20"]).is_err());
        assert!(
            capture(&["--dataset", "Divorce", "--algo", "imb", "--time-budget", "1"]).is_err(),
            "baselines have no cancellation hook"
        );
    }

    #[test]
    fn bad_algorithm_is_rejected() {
        assert!(capture(&["--dataset", "Divorce", "--algo", "quantum"]).is_err());
    }

    #[test]
    fn order_and_engine_flags() {
        let baseline = capture(&["--dataset", "Divorce", "--k", "1"]).unwrap();
        for order in ["degree", "degeneracy"] {
            let text = capture(&["--dataset", "Divorce", "--k", "1", "--order", order]).unwrap();
            assert_eq!(parse(&text), parse(&baseline), "order {order}");
        }
        for engine in ["steal", "global"] {
            let text = capture(&[
                "--dataset",
                "Divorce",
                "--k",
                "1",
                "--algo",
                "parallel",
                "--threads",
                "2",
                "--engine",
                engine,
                "--order",
                "degeneracy",
            ])
            .unwrap();
            assert_eq!(parse(&text), parse(&baseline), "engine {engine}");
            assert!(text.contains("parallel: threads = 2"), "engine {engine}");
        }
        assert!(capture(&["--dataset", "Divorce", "--order", "fancy"]).is_err());
        assert!(capture(&["--dataset", "Divorce", "--algo", "imb", "--order", "degree"]).is_err());
        assert!(
            capture(&["--dataset", "Divorce", "--algo", "parallel", "--engine", "bogus"]).is_err()
        );
        // --engine on a sequential algorithm is a usage error, not a no-op.
        assert!(capture(&["--dataset", "Divorce", "--engine", "steal"]).is_err());
    }

    #[test]
    fn seen_and_steal_knobs() {
        let baseline = capture(&["--dataset", "Divorce", "--k", "1"]).unwrap();
        for (segments, adaptive) in [("0", "on"), ("1", "off"), ("4", "on")] {
            let text = capture(&[
                "--dataset",
                "Divorce",
                "--k",
                "1",
                "--algo",
                "parallel",
                "--threads",
                "4",
                "--seen-segments",
                segments,
                "--steal-adaptive",
                adaptive,
            ])
            .unwrap();
            assert_eq!(parse(&text), parse(&baseline), "segments {segments} adaptive {adaptive}");
            assert!(text.contains(&format!("seen-segments = {segments}")), "knobs echoed: {text}");
            assert!(text.contains(&format!("steal-adaptive = {adaptive}")), "knobs echoed: {text}");
        }
        // Bad values and sequential algorithms are usage errors, not no-ops.
        let bad = &["--dataset", "Divorce", "--algo", "parallel", "--steal-adaptive", "maybe"];
        assert!(capture(bad).is_err());
        assert!(capture(&["--dataset", "Divorce", "--seen-segments", "2"]).is_err());
        assert!(capture(&["--dataset", "Divorce", "--steal-adaptive", "off"]).is_err());
        // So is combining the knobs with the global-queue engine, which has
        // its own sharded seen-set and no steal path.
        let global = &["--dataset", "Divorce", "--algo", "parallel", "--engine", "global"];
        assert!(capture(&[global as &[_], &["--seen-segments", "2"]].concat()).is_err());
        assert!(capture(&[global as &[_], &["--steal-adaptive", "off"]].concat()).is_err());
        // The global engine's run header omits the inapplicable knobs.
        let text = capture(global).unwrap();
        assert!(text.contains("engine = GlobalQueue"), "{text}");
        assert!(!text.contains("seen-segments"), "{text}");
    }
}
