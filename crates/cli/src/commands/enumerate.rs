//! `mbpe enumerate` — enumerate maximal k-biplexes with a selectable
//! algorithm, size thresholds, first-N limits and time budgets. The
//! command builds a serializable [`kbiplex::QuerySpec`] (shared with
//! `mbpe query`) and runs it through the [`kbiplex::Enumerator`] facade;
//! only the `imb`/`inflation` baselines bypass the spec, having no facade
//! path.

use std::io::Write;

use baselines::{collect_imb, collect_inflation, ImbConfig, InflationConfig};
use bigraph::BipartiteGraph;
use kbiplex::{Biplex, CollectSink, Engine, EngineStats, Enumerator};

use crate::args::Args;
use crate::commands::{load_graph, spec};
use crate::CliError;

/// Help text for `mbpe help enumerate`.
pub const HELP: &str = "\
mbpe enumerate — enumerate maximal k-biplexes

USAGE:
    mbpe enumerate <FILE> [OPTIONS]
    mbpe enumerate --dataset <NAME> [OPTIONS]

OPTIONS:
    --spec <JSON>       The full query as a QuerySpec JSON document
                        (@path reads it from a file); replaces every other
                        query option and runs through the same facade
    --show-spec         Echo the query as its canonical JSON document
                        (feed it back via --spec, or to `mbpe query`)
    --k <K>             Miss budget k (default 1)
    --algo <A>          itraversal (default) | btraversal | large | imb |
                        inflation | parallel
    --limit <N>         Stop after delivering exactly N solutions (all
                        engines — the parallel schedulers cancel
                        cooperatively)
    --first <N>         Deprecated alias of --limit
    --time-budget <S>   Stop at the first solution after S seconds
                        (fractions allowed; not for imb/inflation)
    --theta-left <N>    Only report MBPs with at least N left vertices
    --theta-right <N>   Only report MBPs with at least N right vertices
    --threads <T>       Worker threads for --algo parallel (0 = auto)
    --order <O>         Vertex relabeling pass: input (default) | degree |
                        degeneracy (itraversal, btraversal, large, parallel)
    --kernel <K>        Intersection kernel: auto (default, crossover
                        heuristic) | merge | gallop | chunked | bitset —
                        an A/B switch, the solution set never changes
    --engine <E>        Parallel scheduler: steal (default) | global
    --seen-segments <N> Initial segment count of the parallel seen-set's
                        bucket directory (0 = auto-size from the graph;
                        it grows under load either way; steal engine only)
    --steal-adaptive <B>  on (default) | off — steal one item from shallow
                        victim deques instead of always half (steal engine
                        only)
    --count-only        Print only the number of solutions
    --print             Print every reported solution (L= ... R= ...)
    --dataset/--scale/--full   Input selection, as for `mbpe stats`";

const OPTIONS: &[&str] = &[
    "spec",
    "show-spec",
    "k",
    "algo",
    "limit",
    "first",
    "time-budget",
    "theta-left",
    "theta-right",
    "threads",
    "order",
    "kernel",
    "engine",
    "seen-segments",
    "steal-adaptive",
    "count-only",
    "print",
    "dataset",
    "scale",
    "full",
];
const FLAGS: &[&str] = &["show-spec", "count-only", "print", "full"];

/// Runs the command.
pub fn run(raw: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let args = Args::parse(raw, FLAGS)?;
    args.reject_unknown(OPTIONS)?;
    let (graph, label) = load_graph(&args)?;

    let algo = spec::algo_name(&args).to_string();
    // The baselines have no facade path, hence no spec: dispatch first.
    if args.value("spec").is_none() && matches!(algo.as_str(), "imb" | "inflation") {
        return run_baseline(&args, &graph, &label, &algo, out);
    }

    let query = spec::spec_from_args(&args)?;
    if args.flag("show-spec") {
        writeln!(out, "spec: {}", query.to_json_string())?;
    }
    let mut sink = CollectSink::new();
    let report = Enumerator::from_spec(&graph, &query)
        .run(&mut sink)
        .map_err(|e| CliError::Usage(e.to_string()))?;
    let solutions = sink.into_sorted();

    let algo_label = if args.value("spec").is_some() {
        // A spec document names the algorithm itself; echo its code.
        match query.engine {
            Engine::Sequential => query.algorithm.to_string(),
            _ => "parallel".to_string(),
        }
    } else {
        algo
    };
    writeln!(out, "graph: {label}  k = {}  algorithm = {algo_label}", query.k)?;
    if let EngineStats::Parallel(stats) = &report.stats {
        let engine_name = match query.engine {
            Engine::GlobalQueue => "GlobalQueue",
            _ => "WorkSteal",
        };
        let mut info = format!(
            "parallel: threads = {}  engine = {}  order = {}  steals = {}",
            stats.threads, engine_name, query.order, stats.steals
        );
        if query.engine == Engine::WorkSteal {
            let adaptive = if query.steal_adaptive { "on" } else { "off" };
            info.push_str(&format!(
                "  seen-segments = {}  steal-adaptive = {adaptive}",
                query.seen_segments
            ));
        }
        writeln!(out, "{info}")?;
    }
    print_summary(&args, out, solutions.len(), &report.stop.to_string(), report.elapsed, &solutions)
}

/// The `imb`/`inflation` baselines: collect, post-filter, post-truncate.
fn run_baseline(
    args: &Args,
    graph: &BipartiteGraph,
    label: &str,
    algo: &str,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    spec::reject_misplaced_engine_knobs(args, algo)?;
    if args.value("order").is_some() {
        return Err(CliError::Usage(format!(
            "--order is not supported by --algo {algo} (use itraversal, btraversal, large or parallel)"
        )));
    }
    if args.value("time-budget").is_some() {
        return Err(CliError::Usage(format!(
            "--time-budget is not supported by --algo {algo} (baselines have no cancellation hook)"
        )));
    }
    if args.value("kernel").is_some() {
        return Err(CliError::Usage(format!(
            "--kernel is not supported by --algo {algo} (baselines bypass the kernel dispatcher)"
        )));
    }
    let k: usize = args.parse_or("k", 1)?;
    let theta_left: usize = args.parse_or("theta-left", 0)?;
    let theta_right: usize = args.parse_or("theta-right", 0)?;
    let limit = spec::parse_limit(args)?;

    let start = std::time::Instant::now();
    let mut solutions: Vec<Biplex> = if algo == "imb" {
        let config = ImbConfig::new(k).with_thresholds(theta_left, theta_right);
        collect_imb(graph, &config)
    } else {
        collect_inflation(graph, &InflationConfig::new(k))
            .into_iter()
            .filter(|b| b.left.len() >= theta_left && b.right.len() >= theta_right)
            .collect()
    };
    let mut stop_label = "exhausted";
    if let Some(n) = limit {
        if (solutions.len() as u64) > n {
            solutions.truncate(n as usize);
            stop_label = "limit-reached";
        }
    }
    let elapsed = start.elapsed();
    writeln!(out, "graph: {label}  k = {k}  algorithm = {algo}")?;
    print_summary(args, out, solutions.len(), stop_label, elapsed, &solutions)
}

fn print_summary(
    args: &Args,
    out: &mut dyn Write,
    count: usize,
    stop: &str,
    elapsed: std::time::Duration,
    solutions: &[Biplex],
) -> Result<(), CliError> {
    writeln!(out, "solutions: {count}")?;
    writeln!(out, "stop: {stop}")?;
    writeln!(out, "elapsed: {:.3} s", elapsed.as_secs_f64())?;
    if args.flag("print") && !args.flag("count-only") {
        for b in solutions {
            writeln!(out, "L={:?} R={:?}", b.left, b.right)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(tokens: &[&str]) -> Vec<String> {
        tokens.iter().map(|s| s.to_string()).collect()
    }

    fn capture(tokens: &[&str]) -> Result<String, CliError> {
        let mut sink = Vec::new();
        run(&raw(tokens), &mut sink)?;
        Ok(String::from_utf8(sink).unwrap())
    }

    fn parse(text: &str) -> u64 {
        text.lines().find_map(|l| l.strip_prefix("solutions: ")).unwrap().trim().parse().unwrap()
    }

    #[test]
    fn enumerates_a_dataset_standin() {
        let text = capture(&["--dataset", "Divorce", "--k", "1", "--count-only"]).unwrap();
        assert!(text.contains("solutions:"));
        assert!(text.contains("stop: exhausted"));
    }

    #[test]
    fn thresholds_reduce_the_count() {
        let all = capture(&["--dataset", "Divorce", "--k", "1"]).unwrap();
        let large = capture(&[
            "--dataset",
            "Divorce",
            "--k",
            "1",
            "--theta-left",
            "3",
            "--theta-right",
            "3",
        ])
        .unwrap();
        assert!(parse(&large) <= parse(&all));
        // --algo large (core reduction + in-search pruning) agrees.
        let pipeline = capture(&[
            "--dataset",
            "Divorce",
            "--k",
            "1",
            "--algo",
            "large",
            "--theta-left",
            "3",
            "--theta-right",
            "3",
        ])
        .unwrap();
        assert_eq!(parse(&pipeline), parse(&large));
    }

    #[test]
    fn limit_works_on_every_engine_and_echoes_the_stop_reason() {
        let text =
            capture(&["--dataset", "Divorce", "--k", "1", "--limit", "2", "--print"]).unwrap();
        assert_eq!(text.lines().filter(|l| l.starts_with("L=")).count(), 2);
        assert!(text.contains("stop: limit-reached"), "{text}");
        // --first stays as the deprecated alias; combining both is a usage
        // error.
        let text = capture(&["--dataset", "Divorce", "--k", "1", "--first", "2"]).unwrap();
        assert_eq!(parse(&text), 2);
        assert!(
            capture(&["--dataset", "Divorce", "--first", "2", "--limit", "2"]).is_err(),
            "--first and --limit together must be rejected"
        );
        // The work-steal engine cancels cooperatively: exactly 2 delivered.
        let text = capture(&[
            "--dataset",
            "Divorce",
            "--k",
            "1",
            "--algo",
            "parallel",
            "--threads",
            "2",
            "--limit",
            "2",
            "--print",
        ])
        .unwrap();
        assert_eq!(text.lines().filter(|l| l.starts_with("L=")).count(), 2);
        assert!(text.contains("stop: limit-reached"), "{text}");
    }

    #[test]
    fn time_budget_is_validated_and_echoed() {
        // A zero budget stops before the first solution.
        let text = capture(&["--dataset", "Divorce", "--k", "1", "--time-budget", "0"]).unwrap();
        assert_eq!(parse(&text), 0);
        assert!(text.contains("stop: time-budget"), "{text}");
        // A generous budget never fires.
        let text = capture(&["--dataset", "Divorce", "--k", "1", "--time-budget", "3600"]).unwrap();
        assert!(text.contains("stop: exhausted"), "{text}");
        // Fractional budgets are accepted, not rejected or truncated to
        // zero seconds (the run may or may not finish inside half a second
        // on a loaded machine — either stop reason is fine).
        let text = capture(&["--dataset", "Divorce", "--k", "1", "--time-budget", "0.5"]).unwrap();
        assert!(text.contains("stop: exhausted") || text.contains("stop: time-budget"), "{text}");
        assert!(capture(&["--dataset", "Divorce", "--time-budget", "never"]).is_err());
        assert!(capture(&["--dataset", "Divorce", "--time-budget", "-1"]).is_err());
        // Finite but unrepresentable as a Duration: usage error, not a panic.
        assert!(capture(&["--dataset", "Divorce", "--time-budget", "1e20"]).is_err());
        assert!(
            capture(&["--dataset", "Divorce", "--algo", "imb", "--time-budget", "1"]).is_err(),
            "baselines have no cancellation hook"
        );
    }

    #[test]
    fn bad_algorithm_is_rejected() {
        assert!(capture(&["--dataset", "Divorce", "--algo", "quantum"]).is_err());
    }

    #[test]
    fn kernel_override_is_an_ab_switch() {
        let baseline = capture(&["--dataset", "Divorce", "--k", "1"]).unwrap();
        for kernel in ["auto", "merge", "gallop", "chunked", "bitset"] {
            let text = capture(&["--dataset", "Divorce", "--k", "1", "--kernel", kernel]).unwrap();
            assert_eq!(parse(&text), parse(&baseline), "kernel {kernel}");
            let text = capture(&[
                "--dataset",
                "Divorce",
                "--k",
                "1",
                "--algo",
                "parallel",
                "--threads",
                "2",
                "--kernel",
                kernel,
            ])
            .unwrap();
            assert_eq!(parse(&text), parse(&baseline), "parallel kernel {kernel}");
        }
        assert!(capture(&["--dataset", "Divorce", "--kernel", "simd"]).is_err());
        assert!(
            capture(&["--dataset", "Divorce", "--algo", "imb", "--kernel", "merge"]).is_err(),
            "baselines bypass the dispatcher"
        );
    }

    #[test]
    fn spec_document_is_a_full_query_surface() {
        // --show-spec echoes the canonical document; replaying it through
        // --spec reproduces the run exactly.
        let text =
            capture(&["--dataset", "Divorce", "--k", "1", "--theta-left", "2", "--show-spec"])
                .unwrap();
        let doc =
            text.lines().find_map(|l| l.strip_prefix("spec: ")).expect("spec echoed").to_string();
        assert!(doc.contains("\"theta_left\":2"), "{doc}");
        let replay = capture(&["--dataset", "Divorce", "--spec", &doc]).unwrap();
        assert_eq!(parse(&replay), parse(&text));
        assert!(replay.contains("algorithm = itraversal"), "{replay}");

        // The default query is the empty document.
        let text = capture(&["--dataset", "Divorce", "--show-spec", "--count-only"]).unwrap();
        assert!(text.contains("spec: {}"), "{text}");

        // A spec document and individual options are mutually exclusive;
        // malformed or unknown-key documents are usage errors.
        assert!(capture(&["--dataset", "Divorce", "--spec", "{}", "--k", "2"]).is_err());
        assert!(capture(&["--dataset", "Divorce", "--spec", "{"]).is_err());
        assert!(capture(&["--dataset", "Divorce", "--spec", r#"{"warp":9}"#]).is_err());
        // Specs that parse but fail facade validation surface its message.
        let err = capture(&["--dataset", "Divorce", "--spec", r#"{"threads":4}"#]).unwrap_err();
        assert!(err.to_string().contains("invalid configuration"), "{err}");
    }

    #[test]
    fn spec_file_is_read_through_the_at_prefix() {
        let dir = std::env::temp_dir().join("mbpe_cli_spec_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("query.json");
        std::fs::write(&path, "{\"limit\": 1}\n").unwrap();
        let arg = format!("@{}", path.display());
        let text = capture(&["--dataset", "Divorce", "--spec", &arg]).unwrap();
        assert_eq!(parse(&text), 1);
        assert!(text.contains("stop: limit-reached"), "{text}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn order_and_engine_flags() {
        let baseline = capture(&["--dataset", "Divorce", "--k", "1"]).unwrap();
        for order in ["degree", "degeneracy"] {
            let text = capture(&["--dataset", "Divorce", "--k", "1", "--order", order]).unwrap();
            assert_eq!(parse(&text), parse(&baseline), "order {order}");
        }
        for engine in ["steal", "global"] {
            let text = capture(&[
                "--dataset",
                "Divorce",
                "--k",
                "1",
                "--algo",
                "parallel",
                "--threads",
                "2",
                "--engine",
                engine,
                "--order",
                "degeneracy",
            ])
            .unwrap();
            assert_eq!(parse(&text), parse(&baseline), "engine {engine}");
            assert!(text.contains("parallel: threads = 2"), "engine {engine}");
        }
        assert!(capture(&["--dataset", "Divorce", "--order", "fancy"]).is_err());
        assert!(capture(&["--dataset", "Divorce", "--algo", "imb", "--order", "degree"]).is_err());
        assert!(
            capture(&["--dataset", "Divorce", "--algo", "parallel", "--engine", "bogus"]).is_err()
        );
        // --engine on a sequential algorithm is a usage error, not a no-op.
        assert!(capture(&["--dataset", "Divorce", "--engine", "steal"]).is_err());
    }

    #[test]
    fn seen_and_steal_knobs() {
        let baseline = capture(&["--dataset", "Divorce", "--k", "1"]).unwrap();
        for (segments, adaptive) in [("0", "on"), ("1", "off"), ("4", "on")] {
            let text = capture(&[
                "--dataset",
                "Divorce",
                "--k",
                "1",
                "--algo",
                "parallel",
                "--threads",
                "4",
                "--seen-segments",
                segments,
                "--steal-adaptive",
                adaptive,
            ])
            .unwrap();
            assert_eq!(parse(&text), parse(&baseline), "segments {segments} adaptive {adaptive}");
            assert!(text.contains(&format!("seen-segments = {segments}")), "knobs echoed: {text}");
            assert!(text.contains(&format!("steal-adaptive = {adaptive}")), "knobs echoed: {text}");
        }
        // Bad values and sequential algorithms are usage errors, not no-ops.
        let bad = &["--dataset", "Divorce", "--algo", "parallel", "--steal-adaptive", "maybe"];
        assert!(capture(bad).is_err());
        assert!(capture(&["--dataset", "Divorce", "--seen-segments", "2"]).is_err());
        assert!(capture(&["--dataset", "Divorce", "--steal-adaptive", "off"]).is_err());
        // So is combining the knobs with the global-queue engine, which has
        // its own sharded seen-set and no steal path.
        let global = &["--dataset", "Divorce", "--algo", "parallel", "--engine", "global"];
        assert!(capture(&[global as &[_], &["--seen-segments", "2"]].concat()).is_err());
        assert!(capture(&[global as &[_], &["--steal-adaptive", "off"]].concat()).is_err());
        // The global engine's run header omits the inapplicable knobs.
        let text = capture(global).unwrap();
        assert!(text.contains("engine = GlobalQueue"), "{text}");
        assert!(!text.contains("seen-segments"), "{text}");
    }
}
