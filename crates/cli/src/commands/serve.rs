//! `mbpe serve` — run the always-on enumeration daemon over a graph, so
//! repeated queries (see `mbpe query`) pay the load cost once.

use std::io::Write;

use mbpe_serve::{ServeConfig, Server, ServerHandle};

use crate::args::Args;
use crate::commands::{load_graph, spec};
use crate::CliError;

/// Help text for `mbpe help serve`.
pub const HELP: &str = "\
mbpe serve — run the enumeration daemon

USAGE:
    mbpe serve <FILE> [OPTIONS]
    mbpe serve --dataset <NAME> [OPTIONS]

The daemon loads the graph once and answers `mbpe query` requests until
killed. Edge updates sent by clients swap in a fresh immutable snapshot;
running queries keep the snapshot they started on.

OPTIONS:
    --addr <HOST:PORT>      Bind address (default 127.0.0.1:7661; port 0
                            picks a free port)
    --workers <N>           Query worker threads (default 0 = auto)
    --max-pending <N>       Admission bound on queued queries; above it new
                            queries fast-fail with `overloaded` (default 64)
    --max-limit <N>         Server-side cap on any query's solution limit
    --max-time-budget <S>   Server-side cap on any query's time budget,
                            seconds (fractions allowed)
    --port-file <PATH>      Write the bound address to PATH once listening
                            (lets scripts wait for startup with port 0)
    --dataset/--scale/--full   Input selection, as for `mbpe stats`";

const OPTIONS: &[&str] = &[
    "addr",
    "workers",
    "max-pending",
    "max-limit",
    "max-time-budget",
    "port-file",
    "dataset",
    "scale",
    "full",
];
const FLAGS: &[&str] = &["full"];

/// Builds and starts the server from parsed arguments; split from [`run`]
/// so tests can drive a live daemon without blocking forever.
pub(crate) fn start_from_args(args: &Args) -> Result<(ServerHandle, String), CliError> {
    let (graph, label) = load_graph(args)?;
    let defaults = ServeConfig::default();
    let cfg = ServeConfig {
        addr: args.value("addr").unwrap_or("127.0.0.1:7661").to_string(),
        workers: args.parse_or("workers", defaults.workers)?,
        max_pending: args.parse_or("max-pending", defaults.max_pending)?,
        max_limit: match args.value("max-limit") {
            None => None,
            Some(v) => {
                Some(v.parse().map_err(|_| CliError::Usage(format!("bad --max-limit {v:?}")))?)
            }
        },
        max_time_budget: spec::parse_seconds(args, "max-time-budget")?,
        max_frame: defaults.max_frame,
    };
    let handle = Server::start(cfg, graph)?;
    Ok((handle, label))
}

/// Runs the command; does not return until the process is killed.
pub fn run(raw: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let args = Args::parse(raw, FLAGS)?;
    args.reject_unknown(OPTIONS)?;
    let (handle, label) = start_from_args(&args)?;
    let addr = handle.addr();
    writeln!(out, "serving {label} on {addr}")?;
    out.flush()?;
    if let Some(path) = args.value("port-file") {
        std::fs::write(path, format!("{addr}\n"))?;
    }
    // The accept and worker threads own all the work from here; this
    // thread just keeps the process alive.
    loop {
        std::thread::park();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(tokens: &[&str]) -> Args {
        let raw: Vec<String> = tokens.iter().map(|s| s.to_string()).collect();
        Args::parse(&raw, FLAGS).unwrap()
    }

    #[test]
    fn starts_and_answers_a_ping() {
        let (handle, label) =
            start_from_args(&args(&["--dataset", "Divorce", "--addr", "127.0.0.1:0"])).unwrap();
        assert_eq!(label, "Divorce");
        let mut client = mbpe_serve::Client::connect(handle.addr(), "test").unwrap();
        let info = client.ping().unwrap();
        assert!(info.edges > 0);
        handle.shutdown();
    }

    #[test]
    fn bad_options_are_usage_errors() {
        assert!(start_from_args(&args(&["--dataset", "Divorce", "--max-limit", "many"])).is_err());
        assert!(
            start_from_args(&args(&["--dataset", "Divorce", "--max-time-budget", "-1"])).is_err()
        );
    }
}
