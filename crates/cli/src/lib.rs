//! Library backing the `mbpe` command-line tool.
//!
//! The binary is a thin wrapper around [`run`], which parses a subcommand
//! and dispatches to one of the [`commands`]. Keeping everything in the
//! library means the full CLI surface is exercised by ordinary unit tests
//! (every command writes to a `Write` sink instead of directly to stdout).
//!
//! ```text
//! mbpe generate --dataset Writer --out writer.txt
//! mbpe stats writer.txt
//! mbpe enumerate writer.txt --k 1 --first 1000
//! mbpe enumerate --dataset Opsahl --k 2 --algo btraversal --count-only
//! mbpe fraud --preset tiny --theta-r 5
//! ```

#![forbid(unsafe_code)]

pub mod args;
pub mod commands;

use std::io::Write;

/// Errors surfaced to the user by the CLI.
#[derive(Debug)]
pub enum CliError {
    /// The command line itself was malformed (unknown command, bad option).
    Usage(String),
    /// A graph file could not be read or written.
    Graph(bigraph::Error),
    /// Plain I/O failure while writing output.
    Io(std::io::Error),
    /// A round-trip to an `mbpe serve` daemon failed (`mbpe query`).
    Service(mbpe_serve::ClientError),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "{msg}\n\n{USAGE}"),
            CliError::Graph(e) => write!(f, "graph error: {e}"),
            CliError::Io(e) => write!(f, "io error: {e}"),
            CliError::Service(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<bigraph::Error> for CliError {
    fn from(e: bigraph::Error) -> Self {
        CliError::Graph(e)
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

impl From<mbpe_serve::ClientError> for CliError {
    fn from(e: mbpe_serve::ClientError) -> Self {
        CliError::Service(e)
    }
}

/// Top-level usage text (printed by `mbpe help` and on usage errors).
pub const USAGE: &str = "\
mbpe — maximal k-biplex enumeration (SIGMOD 2022 reproduction)

USAGE:
    mbpe <COMMAND> [OPTIONS]

COMMANDS:
    generate    Generate a synthetic bipartite graph and write it to a file
    stats       Print summary statistics of a graph
    enumerate   Enumerate maximal k-biplexes of a graph
    update      Maintain maximal k-biplexes under an edge-update script
    serve       Run the always-on enumeration daemon over a graph
    query       Query a running daemon (same options as enumerate)
    fraud       Run the camouflage-attack fraud-detection case study
    help        Show this message

Run `mbpe help <COMMAND>` for command-specific options.";

/// Entry point shared by the binary and the tests: `raw` is everything after
/// the program name, `out` receives the normal output.
pub fn run(raw: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let Some(command) = raw.first() else {
        writeln!(out, "{USAGE}")?;
        return Ok(());
    };
    let rest = &raw[1..];
    match command.as_str() {
        "generate" => commands::generate::run(rest, out),
        "stats" => commands::stats::run(rest, out),
        "enumerate" => commands::enumerate::run(rest, out),
        "update" => commands::update::run(rest, out),
        "serve" => commands::serve::run(rest, out),
        "query" => commands::query::run(rest, out),
        "fraud" => commands::fraud::run(rest, out),
        "help" | "--help" | "-h" => {
            match rest.first().map(String::as_str) {
                Some("generate") => writeln!(out, "{}", commands::generate::HELP)?,
                Some("stats") => writeln!(out, "{}", commands::stats::HELP)?,
                Some("enumerate") => writeln!(out, "{}", commands::enumerate::HELP)?,
                Some("update") => writeln!(out, "{}", commands::update::HELP)?,
                Some("serve") => writeln!(out, "{}", commands::serve::HELP)?,
                Some("query") => writeln!(out, "{}", commands::query::HELP)?,
                Some("fraud") => writeln!(out, "{}", commands::fraud::HELP)?,
                _ => writeln!(out, "{USAGE}")?,
            }
            Ok(())
        }
        other => Err(CliError::Usage(format!("unknown command {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_capture(tokens: &[&str]) -> Result<String, CliError> {
        let raw: Vec<String> = tokens.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        run(&raw, &mut out)?;
        Ok(String::from_utf8(out).expect("cli output is utf-8"))
    }

    #[test]
    fn no_arguments_prints_usage() {
        let text = run_capture(&[]).unwrap();
        assert!(text.contains("USAGE"));
    }

    #[test]
    fn help_subcommands() {
        for cmd in ["generate", "stats", "enumerate", "update", "serve", "query", "fraud"] {
            let text = run_capture(&["help", cmd]).unwrap();
            assert!(text.contains(cmd), "help for {cmd} mentions it");
        }
        assert!(run_capture(&["--help"]).unwrap().contains("COMMANDS"));
    }

    #[test]
    fn unknown_command_is_a_usage_error() {
        assert!(matches!(run_capture(&["explode"]), Err(CliError::Usage(_))));
    }

    #[test]
    fn end_to_end_generate_stats_enumerate() {
        let dir = std::env::temp_dir().join("mbpe_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny.txt");
        let path_str = path.to_str().unwrap();

        let text = run_capture(&[
            "generate", "--er", "--left", "12", "--right", "12", "--edges", "50", "--seed", "7",
            "--out", path_str,
        ])
        .unwrap();
        assert!(text.contains("12"), "generate reports the sizes: {text}");

        let text = run_capture(&["stats", path_str]).unwrap();
        assert!(text.contains("|E|"), "stats prints an edge count: {text}");

        let text = run_capture(&["enumerate", path_str, "--k", "1", "--count-only"]).unwrap();
        assert!(text.contains("solutions"), "enumerate reports a count: {text}");

        let text =
            run_capture(&["enumerate", path_str, "--k", "1", "--first", "3", "--print"]).unwrap();
        assert!(text.lines().filter(|l| l.starts_with("L=")).count() <= 3);

        std::fs::remove_file(path).ok();
    }

    #[test]
    fn enumerate_algorithms_agree_on_count() {
        let dir = std::env::temp_dir().join("mbpe_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("agree.txt");
        let path_str = path.to_str().unwrap();
        run_capture(&[
            "generate", "--er", "--left", "8", "--right", "8", "--edges", "28", "--seed", "3",
            "--out", path_str,
        ])
        .unwrap();

        let count_of = |algo: &str| -> u64 {
            let text =
                run_capture(&["enumerate", path_str, "--k", "1", "--algo", algo, "--count-only"])
                    .unwrap();
            text.lines()
                .find_map(|l| l.strip_prefix("solutions: "))
                .and_then(|v| v.trim().parse().ok())
                .unwrap_or_else(|| panic!("no count in output of {algo}: {text}"))
        };
        let reference = count_of("itraversal");
        for algo in ["btraversal", "imb", "inflation", "parallel"] {
            assert_eq!(count_of(algo), reference, "algorithm {algo}");
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn fraud_tiny_preset_runs() {
        let text = run_capture(&["fraud", "--preset", "tiny", "--theta-r", "4"]).unwrap();
        assert!(text.contains("1-biplex"), "fraud output lists detectors: {text}");
        assert!(text.contains("precision"), "fraud output has a metrics header: {text}");
    }
}
