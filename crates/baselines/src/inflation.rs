//! The FaPlexen-style baseline: graph inflation + maximal (k+1)-plex
//! enumeration.
//!
//! A k-biplex of a bipartite graph `G` is exactly a (k+1)-plex of the
//! *inflated* general graph `G'` (same-side vertices made mutually
//! adjacent), and maximality carries over in both directions. The baseline
//! therefore enumerates maximal (k+1)-plexes of `G'` with the `kplex` crate
//! and maps them back to bipartite vertex pairs.
//!
//! Two practical aspects of the paper's evaluation are modelled explicitly:
//!
//! * the *memory blow-up* of the inflation — [`inflation_edge_count`] and
//!   [`would_exceed_memory`] report the explicit edge count so the harness
//!   can reproduce the "OUT" (out of memory) entries of Figure 7(a);
//! * the *exponential delay* — the underlying k-plex enumerator certifies
//!   maximality only at the leaves of its search tree.

use bigraph::general::{GraphView, InflatedView};
use bigraph::BipartiteGraph;

use kbiplex::biplex::Biplex;
use kbiplex::sink::{Control, SolutionSink};
use kplex::{enumerate_maximal_plexes, PlexConfig, PlexStats};

/// Configuration of the inflation baseline.
#[derive(Clone, Debug)]
pub struct InflationConfig {
    /// The `k` of the k-biplex definition (the plex enumeration uses `k+1`).
    pub k: usize,
    /// Abort after this many k-plex search nodes (`u64::MAX` = unbounded).
    pub max_nodes: u64,
    /// Refuse to run if the explicit inflation would exceed this many edges
    /// (models the paper's 32 GB memory budget). `u64::MAX` disables the
    /// check; the enumeration itself always uses the implicit view.
    pub memory_budget_edges: u64,
}

impl InflationConfig {
    /// Default configuration with no budget limits.
    pub fn new(k: usize) -> Self {
        InflationConfig { k, max_nodes: u64::MAX, memory_budget_edges: u64::MAX }
    }

    /// Caps the number of search nodes.
    pub fn with_max_nodes(mut self, n: u64) -> Self {
        self.max_nodes = n;
        self
    }

    /// Sets the simulated memory budget in explicit inflated edges.
    pub fn with_memory_budget_edges(mut self, n: u64) -> Self {
        self.memory_budget_edges = n;
        self
    }
}

/// Outcome of an inflation-baseline run.
#[derive(Clone, Debug, Default)]
pub struct InflationReport {
    /// Number of maximal k-biplexes reported.
    pub reported: u64,
    /// Statistics of the underlying k-plex search.
    pub plex: PlexStats,
    /// Number of edges the explicit inflation would contain.
    pub inflated_edges: u128,
    /// True when the run was refused because the inflation exceeds the
    /// simulated memory budget (the paper's "OUT").
    pub out_of_memory: bool,
}

/// Number of edges of the explicit inflation of `g`.
pub fn inflation_edge_count(g: &BipartiteGraph) -> u128 {
    InflatedView::new(g).explicit_edge_count()
}

/// `true` when the explicit inflation would exceed `budget_edges` edges.
pub fn would_exceed_memory(g: &BipartiteGraph, budget_edges: u64) -> bool {
    inflation_edge_count(g) > budget_edges as u128
}

/// Runs the FaPlexen-style baseline, delivering every maximal k-biplex of
/// `g` to `sink`.
pub fn enumerate_inflation<S: SolutionSink + ?Sized>(
    g: &BipartiteGraph,
    config: &InflationConfig,
    sink: &mut S,
) -> InflationReport {
    let view = InflatedView::new(g);
    let mut report =
        InflationReport { inflated_edges: view.explicit_edge_count(), ..Default::default() };
    if report.inflated_edges > config.memory_budget_edges as u128 {
        report.out_of_memory = true;
        return report;
    }

    let plex_config = PlexConfig::new(config.k + 1).with_max_nodes(config.max_nodes);
    let num_left = g.num_left();
    let mut reported = 0u64;
    let plex_stats = enumerate_maximal_plexes(&view, &plex_config, |plex| {
        let mut left = Vec::new();
        let mut right = Vec::new();
        for &id in plex {
            if id < num_left {
                left.push(id);
            } else {
                right.push(id - num_left);
            }
        }
        reported += 1;
        sink.on_solution(&Biplex::new(left, right)) == Control::Continue
    });
    report.reported = reported;
    report.plex = plex_stats;
    report
}

/// Convenience wrapper collecting the results sorted canonically.
pub fn collect_inflation(g: &BipartiteGraph, config: &InflationConfig) -> Vec<Biplex> {
    let mut out = Vec::new();
    let mut sink = |b: &Biplex| {
        out.push(b.clone());
        Control::Continue
    };
    enumerate_inflation(g, config, &mut sink);
    out.sort();
    out
}

/// Sanity helper used by tests and the harness: verifies the plex ↔ biplex
/// correspondence on which the baseline rests for a single vertex set.
pub fn biplex_is_inflated_plex(g: &BipartiteGraph, b: &Biplex, k: usize) -> bool {
    let view = InflatedView::new(g);
    let mut ids: Vec<u32> = b.left.clone();
    ids.extend(b.right.iter().map(|&u| u + g.num_left()));
    ids.sort_unstable();
    let _ = view.num_vertices();
    kplex::is_k_plex(&view, &ids, k + 1)
}

#[cfg(test)]
mod tests {
    /// All MBPs via the facade, sorted canonically.
    fn facade_all(g: &bigraph::BipartiteGraph, k: usize) -> Vec<Biplex> {
        kbiplex::Enumerator::new(g).k(k).collect().expect("valid")
    }

    use super::*;
    use kbiplex::bruteforce::brute_force_mbps;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_graph(nl: u32, nr: u32, p: f64, seed: u64) -> BipartiteGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut edges = Vec::new();
        for v in 0..nl {
            for u in 0..nr {
                if rng.gen_bool(p) {
                    edges.push((v, u));
                }
            }
        }
        BipartiteGraph::from_edges(nl, nr, &edges).unwrap()
    }

    #[test]
    fn matches_brute_force() {
        for seed in 0..12u64 {
            let g = random_graph(5, 5, 0.5, seed);
            for k in 1..=2usize {
                let got = collect_inflation(&g, &InflationConfig::new(k));
                let expected = brute_force_mbps(&g, k);
                assert_eq!(got, expected, "seed {seed} k {k}");
            }
        }
    }

    #[test]
    fn agrees_with_itraversal() {
        for seed in 20..26u64 {
            let g = random_graph(5, 6, 0.55, seed);
            let k = 1;
            assert_eq!(
                collect_inflation(&g, &InflationConfig::new(k)),
                facade_all(&g, k),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn every_mbp_is_an_inflated_plex() {
        let g = random_graph(6, 6, 0.5, 3);
        let k = 1;
        for b in facade_all(&g, k) {
            assert!(biplex_is_inflated_plex(&g, &b, k), "{b:?}");
        }
    }

    #[test]
    fn memory_budget_produces_out() {
        let g = random_graph(100, 100, 0.05, 4);
        // Explicit inflation has ~ 2 * C(100,2) + |E| ≈ 10k edges; set the
        // budget below that.
        let report = enumerate_inflation(
            &g,
            &InflationConfig::new(1).with_memory_budget_edges(1_000),
            &mut kbiplex::CountingSink::new(),
        );
        assert!(report.out_of_memory);
        assert_eq!(report.reported, 0);
        assert!(would_exceed_memory(&g, 1_000));
        assert!(!would_exceed_memory(&g, u64::MAX));
    }

    #[test]
    fn inflation_edge_count_formula() {
        let g = random_graph(10, 20, 0.3, 5);
        let expected = 10u128 * 9 / 2 + 20u128 * 19 / 2 + g.num_edges() as u128;
        assert_eq!(inflation_edge_count(&g), expected);
    }

    #[test]
    fn node_budget_truncates() {
        let g = random_graph(8, 8, 0.5, 6);
        let report = enumerate_inflation(
            &g,
            &InflationConfig::new(1).with_max_nodes(20),
            &mut kbiplex::CountingSink::new(),
        );
        assert!(report.plex.budget_exhausted);
    }
}
