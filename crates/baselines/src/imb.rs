//! The `iMB` baseline: backtracking enumeration of maximal k-biplexes with
//! size-constraint pruning.
//!
//! The original iMB (Yu et al., "On Efficient Large Maximal Biplex
//! Discovery") organizes the search with two prefix trees; that data
//! structure is not public, so this module implements a faithful-in-spirit
//! set-enumeration baseline with the same interface and the same asymptotic
//! behaviour the paper ascribes to iMB:
//!
//! * branch-and-bound over (include / exclude) decisions on both sides,
//! * candidate filtering by the hereditary property,
//! * pruning driven almost exclusively by the *size constraints*
//!   (`θ_L`, `θ_R`) — without them the pruning power collapses, which is
//!   exactly the weakness the paper reports for iMB on unconstrained
//!   enumeration,
//! * *exponential delay*: maximality is only certified at the leaves.

use bigraph::BipartiteGraph;

use kbiplex::biplex::{Biplex, PartialBiplex};
use kbiplex::sink::{Control, SolutionSink};

/// Configuration of an iMB run.
#[derive(Clone, Debug)]
pub struct ImbConfig {
    /// The `k` of the k-biplex definition.
    pub k: usize,
    /// Minimum left-side size (`0` disables).
    pub theta_left: usize,
    /// Minimum right-side size (`0` disables).
    pub theta_right: usize,
    /// Abort after this many search nodes (`u64::MAX` = unbounded). Plays
    /// the role of the paper's 24-hour "INF" limit.
    pub max_nodes: u64,
}

impl ImbConfig {
    /// Unconstrained enumeration.
    pub fn new(k: usize) -> Self {
        ImbConfig { k, theta_left: 0, theta_right: 0, max_nodes: u64::MAX }
    }

    /// Adds the large-MBP size constraints.
    pub fn with_thresholds(mut self, theta_left: usize, theta_right: usize) -> Self {
        self.theta_left = theta_left;
        self.theta_right = theta_right;
        self
    }

    /// Caps the number of expanded search nodes.
    pub fn with_max_nodes(mut self, max_nodes: u64) -> Self {
        self.max_nodes = max_nodes;
        self
    }
}

/// Counters of an iMB run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ImbStats {
    /// Maximal k-biplexes reported.
    pub reported: u64,
    /// Search-tree nodes expanded.
    pub nodes: u64,
    /// True when the node budget stopped the search.
    pub budget_exhausted: bool,
}

/// Runs the iMB baseline, delivering every maximal k-biplex satisfying the
/// size constraints to `sink`.
pub fn enumerate_imb<S: SolutionSink + ?Sized>(
    g: &BipartiteGraph,
    config: &ImbConfig,
    sink: &mut S,
) -> ImbStats {
    let mut stats = ImbStats::default();
    let mut search = Search { g, config, stats: &mut stats, sink, stop: false };
    let cand_left: Vec<u32> = (0..g.num_left()).collect();
    let cand_right: Vec<u32> = (0..g.num_right()).collect();
    let mut current = PartialBiplex::new();
    search.expand(&mut current, cand_left, cand_right, Vec::new(), Vec::new());
    stats
}

/// Convenience wrapper collecting the results sorted canonically.
pub fn collect_imb(g: &BipartiteGraph, config: &ImbConfig) -> Vec<Biplex> {
    let mut out = Vec::new();
    let mut sink = |b: &Biplex| {
        out.push(b.clone());
        Control::Continue
    };
    enumerate_imb(g, config, &mut sink);
    out.sort();
    out
}

struct Search<'a, S: SolutionSink + ?Sized> {
    g: &'a BipartiteGraph,
    config: &'a ImbConfig,
    stats: &'a mut ImbStats,
    sink: &'a mut S,
    stop: bool,
}

impl<S: SolutionSink + ?Sized> Search<'_, S> {
    /// Set-enumeration over both sides. `cand_*` are vertices that can still
    /// be added individually; `excl_*` are vertices that were branched away
    /// and must not be addable for a leaf to be maximal.
    fn expand(
        &mut self,
        current: &mut PartialBiplex,
        cand_left: Vec<u32>,
        cand_right: Vec<u32>,
        excl_left: Vec<u32>,
        excl_right: Vec<u32>,
    ) {
        if self.stop {
            return;
        }
        self.stats.nodes += 1;
        if self.stats.nodes > self.config.max_nodes {
            self.stats.budget_exhausted = true;
            self.stop = true;
            return;
        }
        let k = self.config.k;

        // Size-constraint pruning — the only pruning with real power here.
        if current.left().len() + cand_left.len() < self.config.theta_left
            || current.right().len() + cand_right.len() < self.config.theta_right
        {
            return;
        }

        // Pick the branching vertex: first remaining candidate, left side
        // first (a fixed order keeps the enumeration deterministic).
        let branch = cand_left
            .first()
            .map(|&v| (true, v))
            .or_else(|| cand_right.first().map(|&u| (false, u)));

        let Some((is_left, vertex)) = branch else {
            // Leaf: maximality check against the exclusion sets.
            let maximal = excl_left.iter().all(|&v| !current.can_add_left(self.g, v, k))
                && excl_right.iter().all(|&u| !current.can_add_right(self.g, u, k));
            if maximal
                && current.left().len() >= self.config.theta_left
                && current.right().len() >= self.config.theta_right
            {
                self.stats.reported += 1;
                if self.sink.on_solution(&current.to_biplex()) == Control::Stop {
                    self.stop = true;
                }
            }
            return;
        };

        // Branch 1: include the vertex.
        if is_left {
            current.add_left(self.g, vertex);
        } else {
            current.add_right(self.g, vertex);
        }
        let filter_left: Vec<u32> = cand_left
            .iter()
            .copied()
            .filter(|&v| v != vertex || !is_left)
            .filter(|&v| !current.contains_left(v) && current.can_add_left(self.g, v, k))
            .collect();
        let filter_right: Vec<u32> = cand_right
            .iter()
            .copied()
            .filter(|&u| u != vertex || is_left)
            .filter(|&u| !current.contains_right(u) && current.can_add_right(self.g, u, k))
            .collect();
        let keep_excl_left: Vec<u32> =
            excl_left.iter().copied().filter(|&v| current.can_add_left(self.g, v, k)).collect();
        let keep_excl_right: Vec<u32> =
            excl_right.iter().copied().filter(|&u| current.can_add_right(self.g, u, k)).collect();
        self.expand(current, filter_left, filter_right, keep_excl_left, keep_excl_right);
        if is_left {
            current.remove_left(self.g, vertex);
        } else {
            // PartialBiplex has no remove_right; rebuild without the vertex.
            let right: Vec<u32> =
                current.right().iter().copied().filter(|&u| u != vertex).collect();
            *current = PartialBiplex::from_sets(self.g, current.left(), &right);
        }
        if self.stop {
            return;
        }

        // Branch 2: exclude the vertex.
        let mut rest_left = cand_left;
        let mut rest_right = cand_right;
        let mut new_excl_left = excl_left;
        let mut new_excl_right = excl_right;
        if is_left {
            rest_left.retain(|&v| v != vertex);
            new_excl_left.push(vertex);
        } else {
            rest_right.retain(|&u| u != vertex);
            new_excl_right.push(vertex);
        }
        self.expand(current, rest_left, rest_right, new_excl_left, new_excl_right);
    }
}

#[cfg(test)]
mod tests {
    /// All MBPs via the facade, sorted canonically.
    fn facade_all(g: &bigraph::BipartiteGraph, k: usize) -> Vec<Biplex> {
        kbiplex::Enumerator::new(g).k(k).collect().expect("valid")
    }

    use super::*;
    use kbiplex::bruteforce::{brute_force_large_mbps, brute_force_mbps};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_graph(nl: u32, nr: u32, p: f64, seed: u64) -> BipartiteGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut edges = Vec::new();
        for v in 0..nl {
            for u in 0..nr {
                if rng.gen_bool(p) {
                    edges.push((v, u));
                }
            }
        }
        BipartiteGraph::from_edges(nl, nr, &edges).unwrap()
    }

    #[test]
    fn matches_brute_force() {
        for seed in 0..15u64 {
            let g = random_graph(5, 5, 0.5, seed);
            for k in 0..=2usize {
                let got = collect_imb(&g, &ImbConfig::new(k));
                let expected = brute_force_mbps(&g, k);
                assert_eq!(got, expected, "seed {seed} k {k}");
            }
        }
    }

    #[test]
    fn size_constraints_match_post_filtering() {
        for seed in 0..10u64 {
            let g = random_graph(6, 6, 0.6, seed);
            let k = 1;
            for theta in 2..=3usize {
                let got = collect_imb(&g, &ImbConfig::new(k).with_thresholds(theta, theta));
                let mut expected = brute_force_large_mbps(&g, k, theta, theta);
                expected.sort();
                assert_eq!(got, expected, "seed {seed} θ {theta}");
            }
        }
    }

    #[test]
    fn agrees_with_itraversal() {
        for seed in 30..38u64 {
            let g = random_graph(6, 5, 0.5, seed);
            let k = 1;
            let imb = collect_imb(&g, &ImbConfig::new(k));
            let itrav = facade_all(&g, k);
            assert_eq!(imb, itrav, "seed {seed}");
        }
    }

    #[test]
    fn node_budget_stops_the_search() {
        let g = random_graph(8, 8, 0.5, 1);
        let mut count = 0u64;
        let mut sink = |_: &Biplex| {
            count += 1;
            Control::Continue
        };
        let stats = enumerate_imb(&g, &ImbConfig::new(1).with_max_nodes(50), &mut sink);
        assert!(stats.budget_exhausted);
        assert!(stats.nodes <= 51);
    }

    #[test]
    fn early_stop_via_sink() {
        let g = random_graph(6, 6, 0.6, 2);
        let mut seen = 0u64;
        let mut sink = |_: &Biplex| {
            seen += 1;
            if seen >= 2 {
                Control::Stop
            } else {
                Control::Continue
            }
        };
        let stats = enumerate_imb(&g, &ImbConfig::new(1), &mut sink);
        assert_eq!(seen, 2);
        assert_eq!(stats.reported, 2);
    }

    #[test]
    fn empty_graph() {
        let g = BipartiteGraph::from_edges(0, 0, &[]).unwrap();
        let got = collect_imb(&g, &ImbConfig::new(1));
        assert_eq!(got.len(), 1);
        assert!(got[0].is_empty());
    }
}
