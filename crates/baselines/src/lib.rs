//! # baselines — the competing algorithms of the paper's evaluation
//!
//! Two baselines are compared against `iTraversal` throughout Section 6:
//!
//! * [`imb`] — the `iMB` backtracking algorithm for (large) maximal
//!   k-biplex enumeration. Its pruning relies on the size constraints and
//!   its delay is exponential.
//! * [`inflation`] — the `FaPlexen`-style baseline that inflates the
//!   bipartite graph and enumerates maximal (k+1)-plexes of the resulting
//!   general graph; its weakness is the memory blow-up of the inflation.
//!
//! (`bTraversal`, the third baseline, shares the reverse-search engine of
//! the `kbiplex` crate and is obtained with
//! [`kbiplex::TraversalConfig::btraversal`].)
//!
//! Every baseline is cross-validated against the brute-force oracle and
//! against `iTraversal` in this crate's tests, so the running-time
//! comparisons in the benchmark harness compare algorithms that provably
//! produce the same output.

#![forbid(unsafe_code)]

pub mod imb;
pub mod inflation;

pub use imb::{collect_imb, enumerate_imb, ImbConfig, ImbStats};
pub use inflation::{
    collect_inflation, enumerate_inflation, inflation_edge_count, would_exceed_memory,
    InflationConfig, InflationReport,
};
