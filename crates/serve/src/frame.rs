//! Length-prefixed message framing for the enumeration service.
//!
//! Every message on the wire is one *frame*: a 4-byte big-endian length
//! prefix followed by exactly that many payload bytes (the JSON document).
//! The frame layer knows nothing about JSON — it only guarantees message
//! boundaries and bounds the bytes a peer can make us buffer.
//!
//! Error semantics (what [`read_frame`] hands back):
//!
//! * clean EOF *between* frames → `Ok(None)` — the peer hung up politely;
//! * EOF *inside* a frame (truncated header or body) → an
//!   [`std::io::ErrorKind::UnexpectedEof`] I/O error;
//! * a length prefix above the limit → [`FrameError::TooLarge`] **without
//!   consuming the body**. The stream cannot be resynchronised after a
//!   rejected prefix (the advertised bytes may never arrive), so the server
//!   answers with a typed error frame and closes the connection.

use std::io::{Read, Write};

/// Default cap on a single frame's payload (8 MiB). Far above any real
/// query or response in this protocol, far below a memory-exhaustion DoS.
pub const DEFAULT_MAX_FRAME: usize = 8 * 1024 * 1024;

/// Failure reading or writing a frame.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying transport failed (including truncation mid-frame).
    Io(std::io::Error),
    /// The peer advertised a payload above the configured limit.
    TooLarge {
        /// The advertised payload length.
        len: usize,
        /// The limit it exceeded.
        max: usize,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame i/o error: {e}"),
            FrameError::TooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte limit")
            }
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Writes `payload` as one frame (length prefix + bytes) and flushes.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> std::io::Result<()> {
    let len = u32::try_from(payload.len()).map_err(|_| {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, "frame payload exceeds u32 length")
    })?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame, enforcing `max` on the advertised payload length.
/// Returns `Ok(None)` on clean EOF before any header byte.
pub fn read_frame<R: Read>(r: &mut R, max: usize) -> Result<Option<Vec<u8>>, FrameError> {
    let mut header = [0u8; 4];
    // Hand-rolled first read so EOF at a frame boundary is distinguishable
    // from truncation inside the header.
    let mut got = 0;
    while got < header.len() {
        match r.read(&mut header[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => {
                return Err(FrameError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed inside a frame header",
                )));
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let len = u32::from_be_bytes(header) as usize;
    if len > max {
        return Err(FrameError::TooLarge { len, max });
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_and_reports_clean_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r, 64).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r, 64).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r, 64).unwrap().is_none());
    }

    #[test]
    fn oversized_prefix_is_a_typed_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &[7u8; 100]).unwrap();
        match read_frame(&mut &buf[..], 99) {
            Err(FrameError::TooLarge { len: 100, max: 99 }) => {}
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn truncation_is_unexpected_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"truncated body").unwrap();
        for cut in [1usize, 3, 6] {
            match read_frame(&mut &buf[..cut], 64) {
                Err(FrameError::Io(e)) => {
                    assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof, "cut {cut}");
                }
                other => panic!("cut {cut}: expected Io, got {other:?}"),
            }
        }
    }
}
