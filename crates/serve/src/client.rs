//! Blocking client for the enumeration service.
//!
//! One [`Client`] wraps one connection and issues one request at a time
//! (send, then read until the response with the matching id arrives —
//! which, for a non-pipelining client, is the next frame). Concurrency
//! comes from opening more clients, not from sharing one.

use std::net::{TcpStream, ToSocketAddrs};

use kbiplex::json::Json;
use kbiplex::{Biplex, QuerySpec, RunReport};

use crate::frame::{read_frame, write_frame, FrameError, DEFAULT_MAX_FRAME};
use crate::proto::{QueryRequest, Request, Response, SnapshotInfo, UpdateOp};

/// Failure of a client call.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed (connect, send, receive, or mid-frame EOF).
    Io(std::io::Error),
    /// The server's bytes did not decode as a protocol response.
    Protocol(String),
    /// The server answered with a typed error response.
    Server {
        /// Stable error code (`overloaded`, `bad-request`, `unsupported`, …).
        code: String,
        /// Human-readable detail.
        message: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ClientError::Server { code, message } => write!(f, "server error [{code}]: {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Io(io) => ClientError::Io(io),
            FrameError::TooLarge { len, max } => {
                ClientError::Protocol(format!("response frame of {len} bytes exceeds {max}"))
            }
        }
    }
}

impl ClientError {
    /// The server-side error code, when this is a typed server rejection.
    pub fn server_code(&self) -> Option<&str> {
        match self {
            ClientError::Server { code, .. } => Some(code),
            _ => None,
        }
    }
}

/// A completed query: the run report plus the solutions if requested.
#[derive(Clone, Debug)]
pub struct QueryOutcome {
    /// The facade's run report (stop reason, counters, elapsed).
    pub report: RunReport,
    /// Canonically sorted solutions; `None` for report-only queries.
    pub solutions: Option<Vec<Biplex>>,
}

/// The result of an edge update.
#[derive(Clone, Copy, Debug)]
pub struct UpdateOutcome {
    /// `true` if the edge set changed.
    pub changed: bool,
    /// Shape of the snapshot published after the update.
    pub snapshot: SnapshotInfo,
}

/// A blocking connection to an enumeration daemon.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    tenant: String,
    next_id: u64,
    max_frame: usize,
}

impl Client {
    /// Connects to a daemon, identifying as `tenant` for scheduling.
    pub fn connect<A: ToSocketAddrs>(addr: A, tenant: &str) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream, tenant: tenant.to_string(), next_id: 1, max_frame: DEFAULT_MAX_FRAME })
    }

    fn round_trip(&mut self, req: &Request) -> Result<Response, ClientError> {
        let id = match req {
            Request::Query(q) => q.id,
            Request::Update { id, .. } | Request::Ping { id } => *id,
        };
        write_frame(&mut self.stream, req.to_json().encode().as_bytes())?;
        loop {
            let Some(payload) = read_frame(&mut self.stream, self.max_frame)? else {
                return Err(ClientError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection before responding",
                )));
            };
            let text = std::str::from_utf8(&payload)
                .map_err(|e| ClientError::Protocol(format!("response is not UTF-8: {e}")))?;
            let doc = Json::parse(text).map_err(|e| ClientError::Protocol(e.0))?;
            let resp = Response::from_json(&doc).map_err(|e| ClientError::Protocol(e.0))?;
            // `id` 0 marks failures raised before the server could parse a
            // request id (bad frame, bad JSON): ours by elimination, since
            // this client never pipelines.
            if resp.id() == id || resp.id() == 0 {
                return Ok(resp);
            }
        }
    }

    fn next_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    fn run(
        &mut self,
        spec: &QuerySpec,
        include_solutions: bool,
    ) -> Result<QueryOutcome, ClientError> {
        let req = Request::Query(QueryRequest {
            id: self.next_id(),
            tenant: self.tenant.clone(),
            spec: spec.clone(),
            include_solutions,
        });
        match self.round_trip(&req)? {
            Response::Result { report, solutions, .. } => Ok(QueryOutcome { report, solutions }),
            Response::Error { code, message, .. } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Protocol(format!("unexpected response {other:?}"))),
        }
    }

    /// Runs a query and returns the report plus the solutions.
    pub fn query(&mut self, spec: &QuerySpec) -> Result<QueryOutcome, ClientError> {
        self.run(spec, true)
    }

    /// Runs a query and returns the report only (no solution payload).
    pub fn count(&mut self, spec: &QuerySpec) -> Result<RunReport, ClientError> {
        Ok(self.run(spec, false)?.report)
    }

    fn update(
        &mut self,
        op: UpdateOp,
        left: u32,
        right: u32,
    ) -> Result<UpdateOutcome, ClientError> {
        let req = Request::Update { id: self.next_id(), op, left, right };
        match self.round_trip(&req)? {
            Response::Updated { changed, snapshot, .. } => Ok(UpdateOutcome { changed, snapshot }),
            Response::Error { code, message, .. } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Protocol(format!("unexpected response {other:?}"))),
        }
    }

    /// Inserts an edge into the served graph, publishing a new snapshot.
    pub fn insert_edge(&mut self, left: u32, right: u32) -> Result<UpdateOutcome, ClientError> {
        self.update(UpdateOp::Insert, left, right)
    }

    /// Deletes an edge from the served graph, publishing a new snapshot.
    pub fn delete_edge(&mut self, left: u32, right: u32) -> Result<UpdateOutcome, ClientError> {
        self.update(UpdateOp::Delete, left, right)
    }

    /// Health check; returns the current snapshot shape.
    pub fn ping(&mut self) -> Result<SnapshotInfo, ClientError> {
        let req = Request::Ping { id: self.next_id() };
        match self.round_trip(&req)? {
            Response::Pong { snapshot, .. } => Ok(snapshot),
            Response::Error { code, message, .. } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Protocol(format!("unexpected response {other:?}"))),
        }
    }
}
