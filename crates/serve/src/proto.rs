//! The request/response vocabulary of the enumeration service.
//!
//! One JSON document per frame, tagged by a `"type"` key. Requests carry a
//! client-chosen `id` that the matching response echoes, so a client may
//! pipeline requests on one connection and pair the answers back up
//! (responses to *queries* complete in scheduler order, not send order).
//!
//! The query payload is exactly [`QuerySpec`] — the same serializable
//! object the `Enumerator` facade is built from — so "what the daemon
//! runs" and "what a local run executes" cannot drift apart.

use kbiplex::json::{obj, s, u, Json, JsonError};
use kbiplex::{Biplex, QuerySpec, RunReport};

/// Error code: the admission controller refused the query because the
/// pending queue is full. Back off and retry.
pub const CODE_OVERLOADED: &str = "overloaded";
/// Error code: the payload was not a well-formed request document.
pub const CODE_BAD_REQUEST: &str = "bad-request";
/// Error code: the frame length prefix exceeded the server's limit; the
/// connection is closed after this response.
pub const CODE_FRAME_TOO_LARGE: &str = "frame-too-large";
/// Error code: the server is shutting down and no longer admits queries.
pub const CODE_SHUTTING_DOWN: &str = "shutting-down";
/// Error code: an edge update referenced a vertex outside the graph.
pub const CODE_BAD_UPDATE: &str = "bad-update";

/// An edge mutation applied to the server's dynamic graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UpdateOp {
    /// Insert the edge (no-op if present).
    Insert,
    /// Delete the edge (no-op if absent).
    Delete,
}

impl std::fmt::Display for UpdateOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            UpdateOp::Insert => "insert",
            UpdateOp::Delete => "delete",
        })
    }
}

impl std::str::FromStr for UpdateOp {
    type Err = String;

    fn from_str(text: &str) -> Result<Self, String> {
        match text {
            "insert" => Ok(UpdateOp::Insert),
            "delete" => Ok(UpdateOp::Delete),
            other => Err(format!("unknown update op {other:?} (insert|delete)")),
        }
    }
}

/// An enumeration query: who is asking, what to run, and whether the
/// solutions themselves should come back (a count/report otherwise).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryRequest {
    /// Client-chosen correlation id, echoed in the response.
    pub id: u64,
    /// Tenant name for fair-share scheduling and accounting.
    pub tenant: String,
    /// The query itself — the facade's serializable configuration.
    pub spec: QuerySpec,
    /// `true` to return the solutions, `false` for the report only.
    pub include_solutions: bool,
}

/// A parsed client request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Run an enumeration on the current snapshot.
    Query(QueryRequest),
    /// Mutate the dynamic graph and publish a fresh snapshot.
    Update {
        /// Correlation id, echoed in the response.
        id: u64,
        /// Insert or delete.
        op: UpdateOp,
        /// Left endpoint.
        left: u32,
        /// Right endpoint.
        right: u32,
    },
    /// Health check; the response reports the current snapshot shape.
    Ping {
        /// Correlation id, echoed in the response.
        id: u64,
    },
}

/// Shape of the currently published snapshot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SnapshotInfo {
    /// Left vertices.
    pub left: u32,
    /// Right vertices.
    pub right: u32,
    /// Edges.
    pub edges: u64,
}

/// A server response, echoing the request `id`.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// A completed query.
    Result {
        /// Correlation id of the query.
        id: u64,
        /// The facade's run report (stop reason, counters, elapsed).
        report: RunReport,
        /// The solutions, canonically sorted — present iff the query asked
        /// for them.
        solutions: Option<Vec<Biplex>>,
    },
    /// A completed update.
    Updated {
        /// Correlation id of the update.
        id: u64,
        /// `true` if the edge set changed (insert of a new edge, delete of
        /// an existing one).
        changed: bool,
        /// Shape of the snapshot published after the update.
        snapshot: SnapshotInfo,
    },
    /// Health-check reply.
    Pong {
        /// Correlation id of the ping.
        id: u64,
        /// Shape of the current snapshot.
        snapshot: SnapshotInfo,
    },
    /// The request failed; `code` is stable, `message` is for humans.
    Error {
        /// Correlation id of the failed request (0 when the failure
        /// happened before a request id could be parsed).
        id: u64,
        /// One of the `CODE_*` constants or a `kbiplex::ApiError` code.
        code: String,
        /// Human-readable detail.
        message: String,
    },
}

fn get_u64(doc: &Json, key: &str) -> Result<u64, JsonError> {
    doc.get(key).ok_or_else(|| JsonError(format!("{key} missing")))?.as_u64(key)
}

fn get_u32(doc: &Json, key: &str) -> Result<u32, JsonError> {
    let v = get_u64(doc, key)?;
    u32::try_from(v).map_err(|_| JsonError(format!("{key}: {v} out of u32 range")))
}

fn get_str<'j>(doc: &'j Json, key: &str) -> Result<&'j str, JsonError> {
    doc.get(key).ok_or_else(|| JsonError(format!("{key} missing")))?.as_str(key)
}

impl Request {
    /// Encodes the request as its wire JSON document.
    pub fn to_json(&self) -> Json {
        match self {
            Request::Query(q) => obj(vec![
                ("type", s("query")),
                ("id", u(q.id)),
                ("tenant", s(q.tenant.clone())),
                ("spec", q.spec.to_json()),
                ("solutions", Json::Bool(q.include_solutions)),
            ]),
            Request::Update { id, op, left, right } => obj(vec![
                ("type", s("update")),
                ("id", u(*id)),
                ("op", s(op.to_string())),
                ("left", u(u64::from(*left))),
                ("right", u(u64::from(*right))),
            ]),
            Request::Ping { id } => obj(vec![("type", s("ping")), ("id", u(*id))]),
        }
    }

    /// Decodes a request from its wire JSON document.
    pub fn from_json(doc: &Json) -> Result<Request, JsonError> {
        match get_str(doc, "type")? {
            "query" => Ok(Request::Query(QueryRequest {
                id: get_u64(doc, "id")?,
                tenant: get_str(doc, "tenant")?.to_string(),
                spec: QuerySpec::from_json(
                    doc.get("spec").ok_or_else(|| JsonError("spec missing".into()))?,
                )?,
                include_solutions: match doc.get("solutions") {
                    Some(v) => v.as_bool("solutions")?,
                    None => false,
                },
            })),
            "update" => Ok(Request::Update {
                id: get_u64(doc, "id")?,
                op: get_str(doc, "op")?.parse().map_err(JsonError)?,
                left: get_u32(doc, "left")?,
                right: get_u32(doc, "right")?,
            }),
            "ping" => Ok(Request::Ping { id: get_u64(doc, "id")? }),
            other => Err(JsonError(format!("unknown request type {other:?}"))),
        }
    }
}

impl SnapshotInfo {
    fn to_json(self) -> Json {
        obj(vec![
            ("left", u(u64::from(self.left))),
            ("right", u(u64::from(self.right))),
            ("edges", u(self.edges)),
        ])
    }

    fn from_json(doc: &Json) -> Result<SnapshotInfo, JsonError> {
        Ok(SnapshotInfo {
            left: get_u32(doc, "left")?,
            right: get_u32(doc, "right")?,
            edges: get_u64(doc, "edges")?,
        })
    }
}

impl Response {
    /// Encodes the response as its wire JSON document.
    pub fn to_json(&self) -> Json {
        match self {
            Response::Result { id, report, solutions } => {
                let mut pairs =
                    vec![("type", s("result")), ("id", u(*id)), ("report", report.to_json())];
                if let Some(sols) = solutions {
                    pairs
                        .push(("solutions", Json::Arr(sols.iter().map(Biplex::to_json).collect())));
                }
                obj(pairs)
            }
            Response::Updated { id, changed, snapshot } => obj(vec![
                ("type", s("updated")),
                ("id", u(*id)),
                ("changed", Json::Bool(*changed)),
                ("snapshot", snapshot.to_json()),
            ]),
            Response::Pong { id, snapshot } => {
                obj(vec![("type", s("pong")), ("id", u(*id)), ("snapshot", snapshot.to_json())])
            }
            Response::Error { id, code, message } => obj(vec![
                ("type", s("error")),
                ("id", u(*id)),
                ("code", s(code.clone())),
                ("message", s(message.clone())),
            ]),
        }
    }

    /// Decodes a response from its wire JSON document.
    pub fn from_json(doc: &Json) -> Result<Response, JsonError> {
        match get_str(doc, "type")? {
            "result" => Ok(Response::Result {
                id: get_u64(doc, "id")?,
                report: RunReport::from_json(
                    doc.get("report").ok_or_else(|| JsonError("report missing".into()))?,
                )?,
                solutions: match doc.get("solutions") {
                    None | Some(Json::Null) => None,
                    Some(v) => Some(
                        v.as_arr("solutions")?.iter().map(Biplex::from_json).collect::<Result<
                            Vec<Biplex>,
                            JsonError,
                        >>(
                        )?,
                    ),
                },
            }),
            "updated" => Ok(Response::Updated {
                id: get_u64(doc, "id")?,
                changed: doc
                    .get("changed")
                    .ok_or_else(|| JsonError("changed missing".into()))?
                    .as_bool("changed")?,
                snapshot: SnapshotInfo::from_json(
                    doc.get("snapshot").ok_or_else(|| JsonError("snapshot missing".into()))?,
                )?,
            }),
            "pong" => Ok(Response::Pong {
                id: get_u64(doc, "id")?,
                snapshot: SnapshotInfo::from_json(
                    doc.get("snapshot").ok_or_else(|| JsonError("snapshot missing".into()))?,
                )?,
            }),
            "error" => Ok(Response::Error {
                id: get_u64(doc, "id")?,
                code: get_str(doc, "code")?.to_string(),
                message: get_str(doc, "message")?.to_string(),
            }),
            other => Err(JsonError(format!("unknown response type {other:?}"))),
        }
    }

    /// The response's correlation id.
    pub fn id(&self) -> u64 {
        match self {
            Response::Result { id, .. }
            | Response::Updated { id, .. }
            | Response::Pong { id, .. }
            | Response::Error { id, .. } => *id,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kbiplex::json::Json;

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::Query(QueryRequest {
                id: 7,
                tenant: "alice".to_string(),
                spec: QuerySpec { k: 2, limit: Some(10), ..QuerySpec::default() },
                include_solutions: true,
            }),
            Request::Update { id: 8, op: UpdateOp::Insert, left: 3, right: 4 },
            Request::Update { id: 9, op: UpdateOp::Delete, left: 0, right: 0 },
            Request::Ping { id: 10 },
        ];
        for req in reqs {
            let text = req.to_json().encode();
            let back = Request::from_json(&Json::parse(&text).expect("parses")).expect("decodes");
            assert_eq!(back, req);
        }
    }

    #[test]
    fn responses_round_trip() {
        let snapshot = SnapshotInfo { left: 4, right: 5, edges: 9 };
        let resps = [
            Response::Updated { id: 1, changed: true, snapshot },
            Response::Pong { id: 2, snapshot },
            Response::Error {
                id: 3,
                code: CODE_OVERLOADED.to_string(),
                message: "42 queries pending".to_string(),
            },
        ];
        for resp in resps {
            let text = resp.to_json().encode();
            let back = Response::from_json(&Json::parse(&text).expect("parses")).expect("decodes");
            assert_eq!(back, resp);
        }
    }

    #[test]
    fn result_with_solutions_round_trips() {
        let g =
            bigraph::BipartiteGraph::from_edges(2, 2, &[(0, 0), (0, 1), (1, 0)]).expect("graph");
        let mut sink = kbiplex::CollectSink::new();
        let report = kbiplex::Enumerator::new(&g).k(1).run(&mut sink).expect("valid configuration");
        let resp = Response::Result { id: 11, report, solutions: Some(sink.into_sorted()) };
        let text = resp.to_json().encode();
        let back = Response::from_json(&Json::parse(&text).expect("parses")).expect("decodes");
        assert_eq!(back.id(), 11);
        let Response::Result { report: r2, solutions: Some(sols), .. } = back else {
            panic!("expected a result response");
        };
        let Response::Result { report: r1, solutions: Some(sols1), .. } = resp else {
            unreachable!();
        };
        assert_eq!(r2.solutions, r1.solutions);
        assert_eq!(r2.stop, r1.stop);
        assert_eq!(sols, sols1);
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for text in [
            "{}",
            "{\"type\":\"query\",\"id\":1}",
            "{\"type\":\"update\",\"id\":1,\"op\":\"upsert\",\"left\":0,\"right\":0}",
            "{\"type\":\"warp\",\"id\":1}",
            "{\"type\":\"query\",\"id\":1,\"tenant\":\"t\",\"spec\":{\"kk\":2}}",
        ] {
            let doc = Json::parse(text).expect("well-formed JSON");
            assert!(Request::from_json(&doc).is_err(), "{text}");
        }
    }
}
