//! The always-on enumeration daemon.
//!
//! One [`Server`] owns two representations of the graph: an immutable
//! [`BipartiteGraph`] snapshot behind an `Arc` (what queries run against)
//! and a [`DynamicBipartiteGraph`] (what updates mutate). An update applies
//! the edge mutation, re-materializes a fresh snapshot and swaps the `Arc`
//! — queries already running keep their old snapshot alive for free, and no
//! query ever observes a half-applied update.
//!
//! ## Concurrency model
//!
//! Deliberately boring: every shared structure is a `Mutex` (plus one
//! `Condvar` for the worker pool). No atomics, no lock-free structures —
//! the lock-free core lives in `kbiplex::parallel` where it is
//! model-checked; the service layer optimizes for auditability.
//!
//! * one *accept* thread turning connections into *connection* threads;
//! * connection threads parse frames and either answer directly (ping,
//!   update, malformed input) or submit the query to the scheduler;
//! * a fixed pool of *worker* threads runs queries through the
//!   [`Enumerator`] facade and writes the response back on the submitting
//!   connection (writes are serialized per connection by a mutex).
//!
//! ## Admission control and fairness
//!
//! Admission is a hard bound on *queued* queries ([`ServeConfig::
//! max_pending`]): when the queue is full the connection thread answers
//! immediately with a typed [`CODE_OVERLOADED`] error — clients see
//! fast-fail back-pressure, never an unbounded queue. Admitted queries
//! land in per-tenant FIFO queues; a free worker picks the queue whose
//! tenant has the *fewest queries currently running* (ties broken by
//! tenant name), so one chatty tenant cannot starve the others.
//!
//! ## Server-side budgets
//!
//! [`ServeConfig::max_limit`] and [`ServeConfig::max_time_budget`] clamp
//! every admitted spec (`min` of client ask and server cap), so a
//! misbehaving client cannot run unbounded work: enforcement rides the
//! facade's own limit/deadline gate, which cancels the engines
//! cooperatively within one expansion.

use std::collections::{BTreeMap, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;

use bigraph::{BipartiteGraph, DynamicBipartiteGraph};
use kbiplex::json::Json;
use kbiplex::{CollectSink, CountingSink, Enumerator, QuerySpec};

use crate::frame::{read_frame, write_frame, FrameError, DEFAULT_MAX_FRAME};
use crate::proto::{
    QueryRequest, Request, Response, SnapshotInfo, UpdateOp, CODE_BAD_REQUEST, CODE_BAD_UPDATE,
    CODE_FRAME_TOO_LARGE, CODE_OVERLOADED, CODE_SHUTTING_DOWN,
};

/// Locks a mutex, riding over poisoning: a panicking worker must not take
/// the whole daemon down, and every structure behind these locks is valid
/// at every await-free point.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Configuration of a [`Server`].
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Worker threads executing queries; `0` sizes from the machine.
    pub workers: usize,
    /// Hard bound on queued (admitted, not yet running) queries; at the
    /// bound new queries are rejected with [`CODE_OVERLOADED`].
    pub max_pending: usize,
    /// Server-side cap on a query's solution limit (`None` = no cap).
    pub max_limit: Option<u64>,
    /// Server-side cap on a query's time budget (`None` = no cap).
    pub max_time_budget: Option<Duration>,
    /// Maximum accepted frame payload, bytes.
    pub max_frame: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 0,
            max_pending: 64,
            max_limit: None,
            max_time_budget: None,
            max_frame: DEFAULT_MAX_FRAME,
        }
    }
}

/// An admitted query waiting for (or holding) a worker.
struct Job {
    req: QueryRequest,
    snapshot: Arc<BipartiteGraph>,
    out: Arc<Mutex<TcpStream>>,
}

/// Scheduler state: per-tenant FIFO queues plus the running census.
#[derive(Default)]
struct Sched {
    queues: BTreeMap<String, VecDeque<Job>>,
    running: BTreeMap<String, usize>,
    pending: usize,
    shutdown: bool,
}

impl Sched {
    /// Pops the next job under the fair-share policy: among tenants with
    /// queued work, the one with the fewest running queries wins (ties by
    /// tenant name, which `BTreeMap` iteration yields deterministically).
    fn pick(&mut self) -> Option<Job> {
        let tenant =
            self.queues.keys().min_by_key(|t| self.running.get(*t).copied().unwrap_or(0))?.clone();
        let queue = self.queues.get_mut(&tenant)?;
        let job = queue.pop_front()?;
        if queue.is_empty() {
            self.queues.remove(&tenant);
        }
        self.pending -= 1;
        *self.running.entry(tenant).or_insert(0) += 1;
        Some(job)
    }

    fn finish(&mut self, tenant: &str) {
        if let Some(n) = self.running.get_mut(tenant) {
            *n = n.saturating_sub(1);
            if *n == 0 {
                self.running.remove(tenant);
            }
        }
    }
}

/// State shared by every thread of one server.
struct Shared {
    cfg: ServeConfig,
    /// The published immutable snapshot queries run against.
    current: Mutex<Arc<BipartiteGraph>>,
    /// The mutable edge set updates apply to.
    dynamic: Mutex<DynamicBipartiteGraph>,
    sched: Mutex<Sched>,
    work: Condvar,
}

impl Shared {
    fn snapshot(&self) -> Arc<BipartiteGraph> {
        Arc::clone(&lock(&self.current))
    }

    fn snapshot_info(&self) -> SnapshotInfo {
        let g = self.snapshot();
        SnapshotInfo { left: g.num_left(), right: g.num_right(), edges: g.num_edges() }
    }

    /// Clamps the client's spec to the server-side caps.
    fn clamp(&self, spec: &mut QuerySpec) {
        if let Some(max) = self.cfg.max_limit {
            spec.limit = Some(spec.limit.map_or(max, |l| l.min(max)));
        }
        if let Some(max) = self.cfg.max_time_budget {
            spec.time_budget = Some(spec.time_budget.map_or(max, |b| b.min(max)));
        }
    }
}

/// Writes one response frame, ignoring transport errors (a vanished peer
/// is not the server's problem).
fn send(out: &Mutex<TcpStream>, resp: &Response) {
    let payload = resp.to_json().encode();
    let mut stream = lock(out);
    let _ = write_frame(&mut *stream, payload.as_bytes());
}

fn error_response(id: u64, code: &str, message: String) -> Response {
    Response::Error { id, code: code.to_string(), message }
}

/// Runs one admitted query on its captured snapshot.
fn run_query(job: &Job) -> Response {
    let e = Enumerator::from_spec(&job.snapshot, &job.req.spec);
    if job.req.include_solutions {
        let mut sink = CollectSink::new();
        match e.run(&mut sink) {
            Ok(report) => {
                Response::Result { id: job.req.id, report, solutions: Some(sink.into_sorted()) }
            }
            Err(err) => error_response(job.req.id, err.code(), err.message().to_string()),
        }
    } else {
        let mut sink = CountingSink::new();
        match e.run(&mut sink) {
            Ok(report) => Response::Result { id: job.req.id, report, solutions: None },
            Err(err) => error_response(job.req.id, err.code(), err.message().to_string()),
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut sched = lock(&shared.sched);
            loop {
                if sched.shutdown {
                    return;
                }
                if let Some(job) = sched.pick() {
                    break job;
                }
                sched = shared.work.wait(sched).unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        let resp = run_query(&job);
        send(&job.out, &resp);
        lock(&shared.sched).finish(&job.req.tenant);
    }
}

/// Parses and dispatches one frame payload on a connection thread.
fn handle_payload(shared: &Shared, out: &Arc<Mutex<TcpStream>>, payload: &[u8]) {
    let parsed = std::str::from_utf8(payload)
        .map_err(|e| format!("payload is not UTF-8: {e}"))
        .and_then(|text| Json::parse(text).map_err(|e| e.0))
        .and_then(|doc| Request::from_json(&doc).map_err(|e| e.0));
    let req = match parsed {
        Ok(req) => req,
        Err(message) => {
            // The frame boundary held, so the connection survives a
            // malformed payload: reject it and keep reading.
            send(out, &error_response(0, CODE_BAD_REQUEST, message));
            return;
        }
    };
    match req {
        Request::Ping { id } => {
            send(out, &Response::Pong { id, snapshot: shared.snapshot_info() });
        }
        Request::Update { id, op, left, right } => {
            // Updates serialize on the dynamic-graph lock; the snapshot
            // swap happens inside it so publications are ordered.
            let mut dynamic = lock(&shared.dynamic);
            let applied = match op {
                UpdateOp::Insert => dynamic.insert_edge(left, right),
                UpdateOp::Delete => dynamic.delete_edge(left, right),
            };
            match applied {
                Ok(changed) => {
                    let snap = Arc::new(dynamic.snapshot());
                    let info = SnapshotInfo {
                        left: snap.num_left(),
                        right: snap.num_right(),
                        edges: snap.num_edges(),
                    };
                    *lock(&shared.current) = snap;
                    drop(dynamic);
                    send(out, &Response::Updated { id, changed, snapshot: info });
                }
                Err(e) => {
                    drop(dynamic);
                    send(out, &error_response(id, CODE_BAD_UPDATE, e.to_string()));
                }
            }
        }
        Request::Query(mut q) => {
            shared.clamp(&mut q.spec);
            let snapshot = shared.snapshot();
            // Fail malformed specs fast on the connection thread, with the
            // facade's own error code — no scheduler slot wasted.
            if let Err(e) = Enumerator::from_spec(&snapshot, &q.spec).validate() {
                send(out, &error_response(q.id, e.code(), e.message().to_string()));
                return;
            }
            let mut sched = lock(&shared.sched);
            if sched.shutdown {
                drop(sched);
                send(
                    out,
                    &error_response(q.id, CODE_SHUTTING_DOWN, "server is shutting down".into()),
                );
                return;
            }
            if sched.pending >= shared.cfg.max_pending {
                let pending = sched.pending;
                drop(sched);
                send(
                    out,
                    &error_response(
                        q.id,
                        CODE_OVERLOADED,
                        format!(
                            "admission rejected: {pending} queries pending (bound {})",
                            shared.cfg.max_pending
                        ),
                    ),
                );
                return;
            }
            sched.pending += 1;
            sched.queues.entry(q.tenant.clone()).or_default().push_back(Job {
                req: q,
                snapshot,
                out: Arc::clone(out),
            });
            drop(sched);
            shared.work.notify_one();
        }
    }
}

fn connection_loop(shared: &Shared, mut reader: TcpStream) {
    let Ok(writer) = reader.try_clone() else {
        return;
    };
    let out = Arc::new(Mutex::new(writer));
    loop {
        match read_frame(&mut reader, shared.cfg.max_frame) {
            Ok(None) => break,
            Ok(Some(payload)) => handle_payload(shared, &out, &payload),
            Err(FrameError::TooLarge { len, max }) => {
                // The advertised bytes may never arrive, so the stream
                // cannot be resynchronised: answer with the typed error and
                // drop the connection. The *server* survives; the client
                // reconnects.
                send(
                    &out,
                    &error_response(
                        0,
                        CODE_FRAME_TOO_LARGE,
                        format!("frame of {len} bytes exceeds the {max}-byte limit"),
                    ),
                );
                break;
            }
            Err(FrameError::Io(_)) => break,
        }
    }
    // Close at the socket level: the shutdown registry holds another clone
    // of this stream, so merely dropping ours would leave the peer's
    // connection half-open until server shutdown.
    let _ = reader.shutdown(std::net::Shutdown::Both);
}

/// The enumeration daemon. Construct with [`Server::start`]; the returned
/// [`ServerHandle`] owns every thread.
pub struct Server;

impl Server {
    /// Binds `cfg.addr`, publishes `graph` as the first snapshot and spawns
    /// the accept loop plus the worker pool.
    pub fn start(cfg: ServeConfig, graph: BipartiteGraph) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let workers_wanted = if cfg.workers == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).clamp(2, 8)
        } else {
            cfg.workers
        };
        let shared = Arc::new(Shared {
            cfg,
            dynamic: Mutex::new(DynamicBipartiteGraph::from_graph(&graph)),
            current: Mutex::new(Arc::new(graph)),
            sched: Mutex::new(Sched::default()),
            work: Condvar::new(),
        });
        let mut workers = Vec::with_capacity(workers_wanted);
        for i in 0..workers_wanted {
            let shared = Arc::clone(&shared);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("mbpe-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))?,
            );
        }
        let conns: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        let conn_handles: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let shared = Arc::clone(&shared);
            let conns = Arc::clone(&conns);
            let conn_handles = Arc::clone(&conn_handles);
            std::thread::Builder::new().name("mbpe-serve-accept".to_string()).spawn(move || {
                for stream in listener.incoming() {
                    if lock(&shared.sched).shutdown {
                        return;
                    }
                    let Ok(stream) = stream else {
                        continue;
                    };
                    if let Ok(clone) = stream.try_clone() {
                        lock(&conns).push(clone);
                    }
                    let shared = Arc::clone(&shared);
                    let spawned = std::thread::Builder::new()
                        .name("mbpe-serve-conn".to_string())
                        .spawn(move || connection_loop(&shared, stream));
                    if let Ok(handle) = spawned {
                        lock(&conn_handles).push(handle);
                    }
                }
            })?
        };
        Ok(ServerHandle { addr, shared, accept: Some(accept), workers, conns, conn_handles })
    }
}

/// Owns a running server's threads; [`ServerHandle::shutdown`] stops them.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
    conn_handles: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ServerHandle {
    /// The bound address (with the OS-assigned port when `addr` asked for
    /// port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The currently published snapshot — what the next admitted query
    /// will run against. Tests use this to cross-check service responses
    /// against a direct facade run on the same graph.
    pub fn snapshot(&self) -> Arc<BipartiteGraph> {
        self.shared.snapshot()
    }

    /// Stops admitting, closes every connection, joins every thread.
    /// In-flight queries run to completion (their snapshots stay alive);
    /// queued ones are dropped with their closing connections.
    pub fn shutdown(mut self) {
        lock(&self.shared.sched).shutdown = true;
        self.shared.work.notify_all();
        // Unblock the accept loop with a throwaway connection; it checks
        // the shutdown flag before handling anything.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for stream in lock(&self.conns).drain(..) {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        let handles: Vec<JoinHandle<()>> = lock(&self.conn_handles).drain(..).collect();
        for handle in handles {
            let _ = handle.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}
