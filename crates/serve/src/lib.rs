//! # mbpe-serve — the always-on enumeration service
//!
//! A daemon that holds a bipartite graph in memory and answers maximal
//! k-biplex enumeration queries over TCP, so repeated queries against the
//! same graph pay the load/index cost once instead of per-process.
//!
//! The wire protocol is deliberately minimal: length-prefixed frames
//! ([`frame`]) carrying JSON documents ([`proto`]), with the query payload
//! being exactly the [`kbiplex::QuerySpec`] the in-process `Enumerator`
//! facade is built from. The daemon ([`server`]) adds what a shared
//! service needs on top of the facade: immutable snapshots swapped on
//! update, admission control with typed overload rejections, fair-share
//! scheduling across tenants, and server-side clamping of per-query
//! limits and time budgets. [`client`] is the matching blocking client.
//!
//! ```no_run
//! use bigraph::BipartiteGraph;
//! use kbiplex::QuerySpec;
//! use mbpe_serve::{Client, ServeConfig, Server};
//!
//! let g = BipartiteGraph::from_edges(2, 2, &[(0, 0), (0, 1), (1, 1)]).unwrap();
//! let handle = Server::start(ServeConfig::default(), g).unwrap();
//! let mut client = Client::connect(handle.addr(), "docs").unwrap();
//! let outcome = client.query(&QuerySpec::default()).unwrap();
//! println!("{} solutions", outcome.report.solutions);
//! handle.shutdown();
//! ```

#![forbid(unsafe_code)]

pub mod client;
pub mod frame;
pub mod proto;
pub mod server;

pub use client::{Client, ClientError, QueryOutcome, UpdateOutcome};
pub use frame::{read_frame, write_frame, FrameError, DEFAULT_MAX_FRAME};
pub use proto::{QueryRequest, Request, Response, SnapshotInfo, UpdateOp};
pub use server::{ServeConfig, Server, ServerHandle};
