//! End-to-end tests of the enumeration daemon: concurrent tenants
//! cross-checked against the in-process facade, server-side budget
//! clamping, typed overload rejection, protocol-framing failure modes and
//! snapshot swaps under edge updates.

use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

use bigraph::BipartiteGraph;
use kbiplex::{Engine, Enumerator, QuerySpec, StopReason};
use mbpe_serve::{
    read_frame, write_frame, Client, ClientError, ServeConfig, Server, DEFAULT_MAX_FRAME,
};

/// Deterministic pseudo-random bipartite graph (splitmix-style LCG).
fn random_graph(nl: u32, nr: u32, keep_percent: u64, seed: u64) -> BipartiteGraph {
    let mut state = seed;
    let mut edges = Vec::new();
    for l in 0..nl {
        for r in 0..nr {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            if (state >> 33) % 100 < keep_percent {
                edges.push((l, r));
            }
        }
    }
    BipartiteGraph::from_edges(nl, nr, &edges).expect("valid edges")
}

fn start(cfg: ServeConfig, g: &BipartiteGraph) -> mbpe_serve::ServerHandle {
    Server::start(cfg, g.clone()).expect("server starts")
}

#[test]
fn concurrent_tenants_match_direct_facade() {
    let g = random_graph(10, 10, 50, 7);
    let handle = start(ServeConfig::default(), &g);
    let addr = handle.addr();
    let snapshot = handle.snapshot();

    let threads: Vec<_> = (0..8)
        .map(|t| {
            let snapshot = std::sync::Arc::clone(&snapshot);
            std::thread::spawn(move || {
                let tenant = format!("tenant-{t}");
                let mut client = Client::connect(addr, &tenant).expect("connect");
                for round in 0..3 {
                    let mut spec = QuerySpec {
                        k: 1 + (t + round) % 2,
                        theta_left: 1 + t % 2,
                        theta_right: 1 + round % 2,
                        ..QuerySpec::default()
                    };
                    if t % 3 == 0 {
                        spec.engine = Engine::WorkSteal;
                        spec.threads = 2;
                    }
                    let expected = Enumerator::from_spec(&snapshot, &spec)
                        .collect()
                        .expect("direct facade run");
                    let outcome = client.query(&spec).expect("service query");
                    assert_eq!(outcome.report.stop, StopReason::Exhausted);
                    assert_eq!(outcome.report.solutions, expected.len() as u64);
                    assert_eq!(outcome.solutions.as_deref(), Some(expected.as_slice()));
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("tenant thread");
    }
    handle.shutdown();
}

#[test]
fn server_clamps_time_budget_and_reports_it() {
    // A dense graph the enumerator cannot exhaust in 50ms; the client asks
    // for no budget at all, and the server's cap must still stop the run.
    let g = random_graph(40, 40, 70, 11);
    let cfg =
        ServeConfig { max_time_budget: Some(Duration::from_millis(50)), ..ServeConfig::default() };
    let handle = start(cfg, &g);
    let mut client = Client::connect(handle.addr(), "budget").expect("connect");
    let start_at = std::time::Instant::now();
    let report = client.count(&QuerySpec::default()).expect("query");
    assert_eq!(report.stop, StopReason::TimeBudget);
    // Cancellation rides the facade's per-expansion deadline gate, so the
    // wall time stays within the same order of magnitude as the budget.
    assert!(
        start_at.elapsed() < Duration::from_secs(5),
        "budget-capped query took {:?}",
        start_at.elapsed()
    );
    handle.shutdown();
}

#[test]
fn server_clamps_solution_limit() {
    let g = random_graph(12, 12, 60, 3);
    let cfg = ServeConfig { max_limit: Some(2), ..ServeConfig::default() };
    let handle = start(cfg, &g);
    let mut client = Client::connect(handle.addr(), "capped").expect("connect");
    // The client asks for more than the server allows.
    let spec = QuerySpec { limit: Some(1_000_000), ..QuerySpec::default() };
    let outcome = client.query(&spec).expect("query");
    assert_eq!(outcome.report.stop, StopReason::LimitReached);
    assert_eq!(outcome.report.solutions, 2);
    assert_eq!(outcome.solutions.map(|s| s.len()), Some(2));
    handle.shutdown();
}

#[test]
fn overload_is_a_typed_fast_fail() {
    let g = random_graph(40, 40, 70, 23);
    let cfg = ServeConfig {
        workers: 1,
        max_pending: 1,
        max_time_budget: Some(Duration::from_secs(2)),
        ..ServeConfig::default()
    };
    let handle = start(cfg, &g);
    let addr = handle.addr();

    // A: a slow query that occupies the single worker (~2s via the cap).
    let slow = std::thread::spawn(move || {
        let mut client = Client::connect(addr, "slow").expect("connect");
        client.count(&QuerySpec::default()).expect("slow query completes")
    });
    std::thread::sleep(Duration::from_millis(400));

    // B: fills the single pending slot; it will run after A finishes.
    let queued = std::thread::spawn(move || {
        let mut client = Client::connect(addr, "queued").expect("connect");
        let spec = QuerySpec { limit: Some(1), ..QuerySpec::default() };
        client.count(&spec).expect("queued query completes")
    });
    std::thread::sleep(Duration::from_millis(200));

    // C: the queue is full, so admission rejects with the typed code
    // immediately — not after waiting for a worker.
    let mut client = Client::connect(addr, "rejected").expect("connect");
    let start_at = std::time::Instant::now();
    let err = client.count(&QuerySpec::default()).expect_err("over admission bound");
    assert_eq!(err.server_code(), Some("overloaded"), "got {err}");
    assert!(start_at.elapsed() < Duration::from_secs(1), "reject was not fast");

    let slow_report = slow.join().expect("slow thread");
    assert_eq!(slow_report.stop, StopReason::TimeBudget);
    let queued_report = queued.join().expect("queued thread");
    assert_eq!(queued_report.stop, StopReason::LimitReached);
    handle.shutdown();
}

#[test]
fn invalid_spec_is_rejected_with_the_facade_error_code() {
    let g = random_graph(6, 6, 60, 5);
    let handle = start(ServeConfig::default(), &g);
    let mut client = Client::connect(handle.addr(), "bad-spec").expect("connect");
    // Thread counts are a parallel-engine knob; on the sequential engine
    // the facade rejects them, and the service must surface that code.
    let spec = QuerySpec { threads: 4, ..QuerySpec::default() };
    let err = client.query(&spec).expect_err("invalid spec");
    assert_eq!(err.server_code(), Some("invalid-config"), "got {err}");
    // The connection survives a rejected spec.
    client.ping().expect("ping after rejection");
    handle.shutdown();
}

#[test]
fn updates_swap_the_snapshot_and_queries_see_it() {
    let g = BipartiteGraph::from_edges(3, 3, &[(0, 0), (0, 1), (1, 0), (1, 1)]).expect("graph");
    let handle = start(ServeConfig::default(), &g);
    let mut client = Client::connect(handle.addr(), "updater").expect("connect");

    let before = client.query(&QuerySpec::default()).expect("query before update");

    let update = client.insert_edge(2, 2).expect("insert");
    assert!(update.changed);
    assert_eq!(update.snapshot.edges, 5);
    // Re-inserting is a no-op but still a valid request.
    assert!(!client.insert_edge(2, 2).expect("reinsert").changed);

    let after = client.query(&QuerySpec::default()).expect("query after update");
    assert_ne!(before.solutions, after.solutions, "snapshot did not change results");

    // The handle's published snapshot is what the service queried.
    let expected = Enumerator::from_spec(&handle.snapshot(), &QuerySpec::default())
        .collect()
        .expect("direct facade run");
    assert_eq!(after.solutions.as_deref(), Some(expected.as_slice()));

    let removed = client.delete_edge(2, 2).expect("delete");
    assert!(removed.changed);
    assert_eq!(removed.snapshot.edges, 4);
    let restored = client.query(&QuerySpec::default()).expect("query after delete");
    assert_eq!(restored.solutions, before.solutions);

    // Out-of-range endpoints are a typed error, not a dead connection.
    let err = client.insert_edge(99, 0).expect_err("bad endpoint");
    assert_eq!(err.server_code(), Some("bad-update"), "got {err}");
    client.ping().expect("ping after bad update");
    handle.shutdown();
}

#[test]
fn truncated_frame_kills_the_connection_but_not_the_server() {
    let g = random_graph(4, 4, 60, 2);
    let handle = start(ServeConfig::default(), &g);

    {
        let mut raw = TcpStream::connect(handle.addr()).expect("connect");
        // Advertise 100 bytes, send 3, hang up mid-frame.
        raw.write_all(&100u32.to_be_bytes()).expect("prefix");
        raw.write_all(b"abc").expect("partial payload");
    }

    // The server is still alive and serving.
    let mut client = Client::connect(handle.addr(), "survivor").expect("connect");
    client.ping().expect("ping after truncated peer");
    handle.shutdown();
}

#[test]
fn oversized_frame_gets_a_typed_error_then_close() {
    let g = random_graph(4, 4, 60, 2);
    let handle = start(ServeConfig::default(), &g);

    let mut raw = TcpStream::connect(handle.addr()).expect("connect");
    let huge = (DEFAULT_MAX_FRAME as u32) + 1;
    raw.write_all(&huge.to_be_bytes()).expect("oversized prefix");
    raw.flush().expect("flush");

    let payload = read_frame(&mut raw, DEFAULT_MAX_FRAME)
        .expect("typed error frame")
        .expect("server answered before closing");
    let text = std::str::from_utf8(&payload).expect("utf-8");
    assert!(text.contains("frame-too-large"), "unexpected response: {text}");
    // The stream cannot be resynchronised, so the server closes it.
    assert!(read_frame(&mut raw, DEFAULT_MAX_FRAME).expect("clean close").is_none());

    let mut client = Client::connect(handle.addr(), "survivor").expect("connect");
    client.ping().expect("ping after oversized peer");
    handle.shutdown();
}

/// The framing boundary, pinned as a positive/negative pair: a frame of
/// *exactly* the maximum advertised length must be accepted (an `>=` in
/// place of `>` in the limit check would reject it), while one byte more
/// is the typed [`FrameError::TooLarge`].
#[test]
fn frame_of_exactly_max_length_is_accepted() {
    use mbpe_serve::FrameError;

    let max = 64usize;
    let exact = vec![0x5au8; max];
    let mut wire = Vec::new();
    write_frame(&mut wire, &exact).expect("write exact-max frame");
    let back = read_frame(&mut &wire[..], max)
        .expect("exactly max bytes is within the limit")
        .expect("one frame");
    assert_eq!(back, exact);

    let over = vec![0x5au8; max + 1];
    let mut wire = Vec::new();
    write_frame(&mut wire, &over).expect("write over-max frame");
    match read_frame(&mut &wire[..], max) {
        Err(FrameError::TooLarge { len, max: m }) => {
            assert_eq!((len, m), (max + 1, max));
        }
        other => panic!("max+1 bytes must be TooLarge, got {other:?}"),
    }
}

#[test]
fn garbage_payload_is_rejected_but_the_connection_survives() {
    let g = random_graph(4, 4, 60, 2);
    let handle = start(ServeConfig::default(), &g);

    let mut raw = TcpStream::connect(handle.addr()).expect("connect");
    write_frame(&mut raw, b"this is not json").expect("send garbage");
    let payload =
        read_frame(&mut raw, DEFAULT_MAX_FRAME).expect("error frame").expect("server answered");
    let text = std::str::from_utf8(&payload).expect("utf-8");
    assert!(text.contains("bad-request"), "unexpected response: {text}");

    // Same connection, now a well-formed request: it must still work.
    write_frame(&mut raw, br#"{"type":"ping","id":9}"#).expect("send ping");
    let payload =
        read_frame(&mut raw, DEFAULT_MAX_FRAME).expect("pong frame").expect("server answered");
    let text = std::str::from_utf8(&payload).expect("utf-8");
    assert!(text.contains("pong"), "unexpected response: {text}");
    handle.shutdown();
}

#[test]
fn shutdown_rejects_new_queries() {
    let g = random_graph(4, 4, 60, 2);
    let handle = start(ServeConfig::default(), &g);
    let addr = handle.addr();
    let mut client = Client::connect(addr, "late").expect("connect");
    client.ping().expect("ping while up");
    handle.shutdown();
    // After shutdown the connection is closed server-side; a query fails
    // with a transport error rather than hanging.
    let err = client.count(&QuerySpec::default()).expect_err("server is down");
    assert!(matches!(err, ClientError::Io(_) | ClientError::Server { .. }), "got {err}");
}
