//! A fixed-capacity bitset tuned for the vertex-set operations used by the
//! enumeration algorithms (membership tests, bulk clear, iteration over set
//! bits, intersection counting).
//!
//! The standard library has no bitset and third-party ones are not part of
//! the approved dependency set, so this is a small, well-tested local
//! implementation.

/// A fixed-capacity set of `usize` indices backed by `u64` words.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

const WORD_BITS: usize = 64;

impl BitSet {
    /// Creates an empty bitset able to hold indices `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        BitSet { words: vec![0u64; capacity.div_ceil(WORD_BITS)], capacity }
    }

    /// Number of indices the set can hold.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Grows the capacity to at least `capacity` (never shrinks).
    pub fn grow(&mut self, capacity: usize) {
        if capacity > self.capacity {
            self.words.resize(capacity.div_ceil(WORD_BITS), 0);
            self.capacity = capacity;
        }
    }

    /// Inserts `idx`. Returns `true` if the bit was newly set.
    #[inline]
    pub fn insert(&mut self, idx: usize) -> bool {
        debug_assert!(idx < self.capacity, "index {idx} >= capacity {}", self.capacity);
        let w = idx / WORD_BITS;
        let mask = 1u64 << (idx % WORD_BITS);
        let was = self.words[w] & mask != 0;
        self.words[w] |= mask;
        !was
    }

    /// Removes `idx`. Returns `true` if the bit was previously set.
    #[inline]
    pub fn remove(&mut self, idx: usize) -> bool {
        debug_assert!(idx < self.capacity);
        let w = idx / WORD_BITS;
        let mask = 1u64 << (idx % WORD_BITS);
        let was = self.words[w] & mask != 0;
        self.words[w] &= !mask;
        was
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, idx: usize) -> bool {
        if idx >= self.capacity {
            return false;
        }
        let w = idx / WORD_BITS;
        self.words[w] & (1u64 << (idx % WORD_BITS)) != 0
    }

    /// Removes all elements (O(capacity / 64)).
    pub fn clear(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
    }

    /// Number of elements currently in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` if no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterates over the set indices in increasing order.
    pub fn iter(&self) -> Ones<'_> {
        Ones { words: &self.words, word_idx: 0, current: self.words.first().copied().unwrap_or(0) }
    }

    /// Inserts every index produced by the iterator.
    pub fn extend_from<I: IntoIterator<Item = usize>>(&mut self, iter: I) {
        for idx in iter {
            self.insert(idx);
        }
    }

    /// `self ∩ other` is empty?
    pub fn is_disjoint(&self, other: &BitSet) -> bool {
        self.words.iter().zip(other.words.iter()).all(|(a, b)| a & b == 0)
    }

    /// Number of elements in `self ∩ other`.
    pub fn intersection_len(&self, other: &BitSet) -> usize {
        self.words.iter().zip(other.words.iter()).map(|(a, b)| (a & b).count_ones() as usize).sum()
    }

    /// `self ⊆ other`?
    pub fn is_subset(&self, other: &BitSet) -> bool {
        if other.words.len() >= self.words.len() {
            self.words.iter().zip(other.words.iter()).all(|(a, b)| a & !b == 0)
        } else {
            self.words.iter().enumerate().all(|(i, a)| {
                let b = other.words.get(i).copied().unwrap_or(0);
                a & !b == 0
            })
        }
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &BitSet) {
        self.grow(other.capacity);
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a |= b;
        }
    }

    /// In-place intersection.
    pub fn intersect_with(&mut self, other: &BitSet) {
        for (i, a) in self.words.iter_mut().enumerate() {
            let b = other.words.get(i).copied().unwrap_or(0);
            *a &= b;
        }
    }

    /// In-place difference (`self \ other`).
    pub fn difference_with(&mut self, other: &BitSet) {
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a &= !b;
        }
    }
}

impl FromIterator<usize> for BitSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let cap = items.iter().copied().max().map_or(0, |m| m + 1);
        let mut set = BitSet::new(cap);
        for idx in items {
            set.insert(idx);
        }
        set
    }
}

/// Packs the run of values in `sorted[start..]` that share the 64-value
/// word of `sorted[start]` (same `v >> 6`) into a `u64` mask using the same
/// bit layout [`BitSet`] stores; returns the mask and the index one past
/// the run. This is the packing half of the bitset-chunk intersection
/// kernel in [`crate::intersect`] — two packed words intersect with one
/// `&` + `count_ones`.
#[inline]
pub fn pack_word(sorted: &[u32], start: usize) -> (u64, usize) {
    let key = sorted[start] >> 6;
    let mut mask = 0u64;
    let mut i = start;
    while i < sorted.len() && sorted[i] >> 6 == key {
        mask |= 1u64 << (sorted[i] & 63);
        i += 1;
    }
    (mask, i)
}

/// Iterator over set bits, ascending.
pub struct Ones<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for Ones<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let tz = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * WORD_BITS + tz);
            }
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
    }
}

/// A "timestamped" marker array: `O(1)` membership and insert, and `O(1)`
/// *bulk clear* by bumping an epoch counter. Used as reusable scratch space
/// in the hot enumeration loops to avoid repeated `O(n)` clears.
#[derive(Clone, Debug, Default)]
pub struct EpochSet {
    stamps: Vec<u32>,
    epoch: u32,
}

impl EpochSet {
    /// Creates a marker array for indices `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        EpochSet { stamps: vec![0; capacity], epoch: 1 }
    }

    /// Grows capacity to at least `capacity`.
    pub fn grow(&mut self, capacity: usize) {
        if capacity > self.stamps.len() {
            self.stamps.resize(capacity, 0);
        }
    }

    /// Removes every element in O(1) (amortized; an overflow forces a real clear).
    pub fn clear(&mut self) {
        if self.epoch == u32::MAX {
            self.stamps.iter_mut().for_each(|s| *s = 0);
            self.epoch = 1;
        } else {
            self.epoch += 1;
        }
    }

    /// Inserts `idx`, returning `true` if newly inserted.
    #[inline]
    pub fn insert(&mut self, idx: usize) -> bool {
        let slot = &mut self.stamps[idx];
        if *slot == self.epoch {
            false
        } else {
            *slot = self.epoch;
            true
        }
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, idx: usize) -> bool {
        self.stamps.get(idx).copied() == Some(self.epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_word_masks_one_word_runs() {
        let sorted = [3u32, 5, 63, 64, 64 + 5, 200];
        let (mask, next) = pack_word(&sorted, 0);
        assert_eq!(mask, (1 << 3) | (1 << 5) | (1 << 63));
        assert_eq!(next, 3);
        let (mask, next) = pack_word(&sorted, 3);
        assert_eq!(mask, 1 | (1 << 5));
        assert_eq!(next, 5);
        let (mask, next) = pack_word(&sorted, 5);
        assert_eq!(mask, 1 << (200 % 64));
        assert_eq!(next, 6);
    }

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(200);
        assert!(!s.contains(0));
        assert!(s.insert(0));
        assert!(!s.insert(0));
        assert!(s.insert(63));
        assert!(s.insert(64));
        assert!(s.insert(199));
        assert!(s.contains(0));
        assert!(s.contains(63));
        assert!(s.contains(64));
        assert!(s.contains(199));
        assert!(!s.contains(100));
        assert_eq!(s.len(), 4);
        assert!(s.remove(63));
        assert!(!s.remove(63));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn iteration_is_sorted_and_complete() {
        let mut s = BitSet::new(300);
        let items = [0usize, 1, 2, 63, 64, 65, 127, 128, 255, 299];
        for &i in &items {
            s.insert(i);
        }
        let collected: Vec<usize> = s.iter().collect();
        assert_eq!(collected, items);
    }

    #[test]
    fn empty_and_clear() {
        let mut s = BitSet::new(100);
        assert!(s.is_empty());
        s.insert(42);
        assert!(!s.is_empty());
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    fn set_algebra() {
        let a: BitSet = [1usize, 3, 5, 7, 64].into_iter().collect();
        let b: BitSet = [3usize, 5, 100].into_iter().collect();
        assert_eq!(a.intersection_len(&b), 2);
        assert!(!a.is_disjoint(&b));
        let c: BitSet = [2usize, 4].into_iter().collect();
        assert!(a.is_disjoint(&c));

        let sub: BitSet = [3usize, 7].into_iter().collect();
        assert!(sub.is_subset(&a));
        assert!(!a.is_subset(&sub));

        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.len(), 6);
        assert!(u.contains(100));

        let mut i = a.clone();
        i.intersect_with(&b);
        let items: Vec<usize> = i.iter().collect();
        assert_eq!(items, vec![3, 5]);

        let mut d = a.clone();
        d.difference_with(&b);
        let items: Vec<usize> = d.iter().collect();
        assert_eq!(items, vec![1, 7, 64]);
    }

    #[test]
    fn subset_with_shorter_other() {
        let a: BitSet = [1usize, 200].into_iter().collect();
        let b: BitSet = [1usize, 2].into_iter().collect();
        assert!(!a.is_subset(&b));
        let c: BitSet = [1usize].into_iter().collect();
        assert!(c.is_subset(&a));
    }

    #[test]
    fn grow_preserves_contents() {
        let mut s = BitSet::new(10);
        s.insert(3);
        s.grow(1000);
        assert!(s.contains(3));
        s.insert(999);
        assert!(s.contains(999));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn zero_capacity() {
        let s = BitSet::new(0);
        assert!(s.is_empty());
        assert!(!s.contains(0));
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    fn epoch_set_basics() {
        let mut e = EpochSet::new(50);
        assert!(e.insert(10));
        assert!(!e.insert(10));
        assert!(e.contains(10));
        assert!(!e.contains(11));
        e.clear();
        assert!(!e.contains(10));
        assert!(e.insert(10));
    }

    #[test]
    fn epoch_set_many_clears() {
        let mut e = EpochSet::new(4);
        for round in 0..10_000 {
            e.clear();
            e.insert(round % 4);
            assert!(e.contains(round % 4));
            assert!(!e.contains((round + 1) % 4));
        }
    }
}
