//! General (unipartite) graphs and bipartite-graph *inflation*.
//!
//! The FaPlexen baseline of the paper works by inflating a bipartite graph
//! `G = (L ∪ R, E)` into a general graph `G'` on the vertex set `L ∪ R`
//! whose edges are `E` plus *all* pairs of same-side vertices. A k-biplex of
//! `G` is then exactly a (k+1)-plex of `G'` (each vertex may miss at most
//! `k+1` vertices of the subgraph, counting itself), and maximality carries
//! over in both directions.
//!
//! Materializing the inflation explicitly produces `Θ(|L|² + |R|²)` edges —
//! the memory blow-up the paper reports for FaPlexen. To let moderate inputs
//! run at all we also provide [`InflatedView`], an *implicit* adjacency view
//! that answers adjacency queries in `O(log d)` without materializing the
//! same-side cliques. Both implement [`GraphView`], the interface consumed
//! by the `kplex` enumeration crate.

use crate::graph::BipartiteGraph;
use crate::{Error, Result};

/// Minimal adjacency interface over a general (unipartite) graph, used by
/// the maximal k-plex enumerator.
pub trait GraphView {
    /// Number of vertices; vertex ids are `0..num_vertices()`.
    fn num_vertices(&self) -> usize;
    /// `true` iff `a` and `b` are adjacent (irreflexive: `adjacent(a, a)` is false).
    fn adjacent(&self, a: u32, b: u32) -> bool;
    /// Degree of vertex `a`.
    fn degree(&self, a: u32) -> usize;
    /// Pushes the neighbours of `a` into `out` (cleared first).
    fn neighbors_into(&self, a: u32, out: &mut Vec<u32>);
}

/// An explicit general graph in CSR form with sorted adjacency lists.
#[derive(Clone, Debug, Default)]
pub struct GeneralGraph {
    offsets: Vec<usize>,
    neighbors: Vec<u32>,
}

impl GeneralGraph {
    /// Builds a general graph from an undirected edge list through the
    /// checked [`GeneralBuilder`] contract: out-of-range endpoints and
    /// self-loops are reported as errors instead of being asserted on or
    /// silently dropped. Duplicate edges are merged.
    pub fn from_edges(num_vertices: usize, edges: &[(u32, u32)]) -> Result<Self> {
        let mut builder = GeneralBuilder::new(num_vertices);
        for &(a, b) in edges {
            builder.add_edge(a, b)?;
        }
        Ok(builder.build())
    }

    /// Sorted neighbours of `a`.
    #[inline]
    pub fn neighbors(&self, a: u32) -> &[u32] {
        let a = a as usize;
        &self.neighbors[self.offsets[a]..self.offsets[a + 1]]
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> u64 {
        self.neighbors.len() as u64 / 2
    }
}

/// Incremental builder for [`GeneralGraph`], mirroring the checked-`Result`
/// contract of [`BipartiteBuilder`](crate::graph::BipartiteBuilder):
/// [`add_edge`](GeneralBuilder::add_edge) validates both endpoints and
/// rejects self-loops, while [`add_edge_unchecked`](GeneralBuilder::add_edge_unchecked)
/// is the escape hatch for callers (generators, the inflation) that
/// construct ids themselves and only want a debug assertion.
#[derive(Clone, Debug)]
pub struct GeneralBuilder {
    num_vertices: usize,
    pairs: Vec<(u32, u32)>,
}

impl GeneralBuilder {
    /// New builder for a graph with vertex ids `0..num_vertices`.
    pub fn new(num_vertices: usize) -> Self {
        GeneralBuilder { num_vertices, pairs: Vec::new() }
    }

    /// Pre-allocates space for `n` more edges.
    pub fn reserve(&mut self, n: usize) {
        self.pairs.reserve(n * 2);
    }

    /// Adds the undirected edge `{a, b}`. Out-of-range endpoints and
    /// self-loops are errors; duplicates are merged at
    /// [`build`](Self::build) time.
    pub fn add_edge(&mut self, a: u32, b: u32) -> Result<()> {
        if a as usize >= self.num_vertices {
            return Err(Error::NodeOutOfRange { id: a, len: self.num_vertices });
        }
        if b as usize >= self.num_vertices {
            return Err(Error::NodeOutOfRange { id: b, len: self.num_vertices });
        }
        if a == b {
            return Err(Error::SelfLoop { id: a });
        }
        self.pairs.push((a, b));
        self.pairs.push((b, a));
        Ok(())
    }

    /// Adds an undirected edge without range checks beyond a debug
    /// assertion. Intended for callers that construct ids themselves.
    pub fn add_edge_unchecked(&mut self, a: u32, b: u32) {
        debug_assert!(
            (a as usize) < self.num_vertices && (b as usize) < self.num_vertices && a != b
        );
        self.pairs.push((a, b));
        self.pairs.push((b, a));
    }

    /// Finalizes the CSR representation (sorts and deduplicates).
    pub fn build(mut self) -> GeneralGraph {
        self.pairs.sort_unstable();
        self.pairs.dedup();
        let mut offsets = vec![0usize; self.num_vertices + 1];
        for &(a, _) in &self.pairs {
            offsets[a as usize + 1] += 1;
        }
        for i in 0..self.num_vertices {
            offsets[i + 1] += offsets[i];
        }
        let neighbors = self.pairs.into_iter().map(|(_, b)| b).collect();
        GeneralGraph { offsets, neighbors }
    }
}

impl GraphView for GeneralGraph {
    fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    fn adjacent(&self, a: u32, b: u32) -> bool {
        if a == b {
            return false;
        }
        let (s, t) = if self.degree(a) <= self.degree(b) { (a, b) } else { (b, a) };
        self.neighbors(s).binary_search(&t).is_ok()
    }

    fn degree(&self, a: u32) -> usize {
        self.neighbors(a).len()
    }

    fn neighbors_into(&self, a: u32, out: &mut Vec<u32>) {
        out.clear();
        out.extend_from_slice(self.neighbors(a));
    }
}

/// Implicit adjacency view over the inflation of a bipartite graph.
///
/// Vertex ids: left vertex `v` of the bipartite graph keeps id `v`; right
/// vertex `u` gets id `num_left + u`.
#[derive(Clone, Debug)]
pub struct InflatedView<'a> {
    graph: &'a BipartiteGraph,
}

impl<'a> InflatedView<'a> {
    /// Wraps a bipartite graph as its implicit inflation.
    pub fn new(graph: &'a BipartiteGraph) -> Self {
        InflatedView { graph }
    }

    /// Number of left vertices of the underlying bipartite graph.
    pub fn num_left(&self) -> usize {
        self.graph.num_left() as usize
    }

    /// `true` if the inflated id refers to a left vertex.
    #[inline]
    pub fn is_left(&self, a: u32) -> bool {
        (a as usize) < self.num_left()
    }

    /// Splits an inflated id into (is_left, side-local id).
    #[inline]
    pub fn split(&self, a: u32) -> (bool, u32) {
        if self.is_left(a) {
            (true, a)
        } else {
            (false, a - self.graph.num_left())
        }
    }

    /// Joins a side-local id back into an inflated id.
    #[inline]
    pub fn join(&self, is_left: bool, id: u32) -> u32 {
        if is_left {
            id
        } else {
            id + self.graph.num_left()
        }
    }

    /// Number of edges the *explicit* inflation would contain; used to
    /// demonstrate (and guard against) the memory blow-up of the FaPlexen
    /// baseline.
    pub fn explicit_edge_count(&self) -> u128 {
        let nl = self.graph.num_left() as u128;
        let nr = self.graph.num_right() as u128;
        nl * (nl - 1) / 2 + nr * (nr - 1) / 2 + self.graph.num_edges() as u128
    }

    /// Materializes the inflation as an explicit [`GeneralGraph`]. Returns
    /// `None` if the explicit edge count exceeds `max_edges` (the analogue of
    /// the paper's 32 GB "OUT" budget).
    pub fn materialize(&self, max_edges: u64) -> Option<GeneralGraph> {
        if self.explicit_edge_count() > max_edges as u128 {
            return None;
        }
        let nl = self.graph.num_left();
        let nr = self.graph.num_right();
        let n = (nl + nr) as usize;
        // Ids are constructed right here, so the unchecked path applies.
        let mut builder = GeneralBuilder::new(n);
        for a in 0..nl {
            for b in (a + 1)..nl {
                builder.add_edge_unchecked(a, b);
            }
        }
        for a in 0..nr {
            for b in (a + 1)..nr {
                builder.add_edge_unchecked(nl + a, nl + b);
            }
        }
        for (v, u) in self.graph.edges() {
            builder.add_edge_unchecked(v, nl + u);
        }
        Some(builder.build())
    }
}

impl GraphView for InflatedView<'_> {
    fn num_vertices(&self) -> usize {
        self.graph.num_vertices() as usize
    }

    fn adjacent(&self, a: u32, b: u32) -> bool {
        if a == b {
            return false;
        }
        let (al, ai) = self.split(a);
        let (bl, bi) = self.split(b);
        if al == bl {
            true // same side: always adjacent in the inflation
        } else if al {
            self.graph.has_edge(ai, bi)
        } else {
            self.graph.has_edge(bi, ai)
        }
    }

    fn degree(&self, a: u32) -> usize {
        let (al, ai) = self.split(a);
        if al {
            self.num_left() - 1 + self.graph.left_degree(ai)
        } else {
            self.graph.num_right() as usize - 1 + self.graph.right_degree(ai)
        }
    }

    fn neighbors_into(&self, a: u32, out: &mut Vec<u32>) {
        out.clear();
        let (al, ai) = self.split(a);
        let nl = self.graph.num_left();
        if al {
            for v in 0..nl {
                if v != ai {
                    out.push(v);
                }
            }
            for &u in self.graph.left_neighbors(ai) {
                out.push(nl + u);
            }
        } else {
            for &v in self.graph.right_neighbors(ai) {
                out.push(v);
            }
            for u in 0..self.graph.num_right() {
                if u != ai {
                    out.push(nl + u);
                }
            }
        }
    }
}

/// A small induced general subgraph captured by value (used for local
/// enumeration inside almost-satisfying graphs).
#[derive(Clone, Debug)]
pub struct DenseSubview {
    n: usize,
    adj: Vec<bool>,
}

impl DenseSubview {
    /// Creates a dense adjacency-matrix graph with `n` vertices and no edges.
    pub fn new(n: usize) -> Self {
        DenseSubview { n, adj: vec![false; n * n] }
    }

    /// Adds an undirected edge.
    pub fn add_edge(&mut self, a: u32, b: u32) {
        let (a, b) = (a as usize, b as usize);
        debug_assert!(a < self.n && b < self.n && a != b);
        self.adj[a * self.n + b] = true;
        self.adj[b * self.n + a] = true;
    }
}

impl GraphView for DenseSubview {
    fn num_vertices(&self) -> usize {
        self.n
    }

    fn adjacent(&self, a: u32, b: u32) -> bool {
        if a == b {
            return false;
        }
        self.adj[a as usize * self.n + b as usize]
    }

    fn degree(&self, a: u32) -> usize {
        let a = a as usize;
        self.adj[a * self.n..(a + 1) * self.n].iter().filter(|&&x| x).count()
    }

    fn neighbors_into(&self, a: u32, out: &mut Vec<u32>) {
        out.clear();
        let a = a as usize;
        for b in 0..self.n {
            if self.adj[a * self.n + b] {
                out.push(b as u32);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_bipartite() -> BipartiteGraph {
        // L = {0,1}, R = {0,1,2}; v0: u0,u1 ; v1: u1,u2
        BipartiteGraph::from_edges(2, 3, &[(0, 0), (0, 1), (1, 1), (1, 2)]).unwrap()
    }

    #[test]
    fn general_graph_basics() {
        let g = GeneralGraph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (0, 1)]).unwrap();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 3);
        assert!(g.adjacent(0, 1));
        assert!(g.adjacent(1, 0));
        assert!(!g.adjacent(0, 3));
        assert!(!g.adjacent(2, 2));
        assert_eq!(g.degree(3), 0);
        let mut out = Vec::new();
        g.neighbors_into(0, &mut out);
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn checked_builder_rejects_bad_edges() {
        // Out-of-range endpoints and self-loops used to be an assert /
        // silent skip; the unified contract reports them as errors.
        assert!(matches!(
            GeneralGraph::from_edges(4, &[(0, 4)]),
            Err(Error::NodeOutOfRange { id: 4, len: 4 })
        ));
        assert!(matches!(
            GeneralGraph::from_edges(4, &[(7, 0)]),
            Err(Error::NodeOutOfRange { id: 7, len: 4 })
        ));
        assert!(matches!(GeneralGraph::from_edges(4, &[(3, 3)]), Err(Error::SelfLoop { id: 3 })));
        let mut b = GeneralBuilder::new(3);
        assert!(b.add_edge(0, 1).is_ok());
        assert!(b.add_edge(1, 3).is_err());
        b.reserve(4);
        b.add_edge_unchecked(1, 2);
        let g = b.build();
        assert_eq!(g.num_edges(), 2);
        assert!(g.adjacent(1, 2) && g.adjacent(0, 1));
    }

    #[test]
    fn inflated_view_adjacency() {
        let b = small_bipartite();
        let inf = InflatedView::new(&b);
        assert_eq!(inf.num_vertices(), 5);
        // same-side pairs are adjacent
        assert!(inf.adjacent(0, 1)); // both left
        assert!(inf.adjacent(2, 3)); // both right (u0, u1)
        assert!(inf.adjacent(3, 4));
        // cross pairs follow the bipartite edges
        assert!(inf.adjacent(0, 2)); // v0 - u0
        assert!(inf.adjacent(0, 3)); // v0 - u1
        assert!(!inf.adjacent(0, 4)); // v0 - u2 missing
        assert!(inf.adjacent(1, 4));
        assert!(!inf.adjacent(1, 2));
        assert!(!inf.adjacent(2, 2));
    }

    #[test]
    fn inflated_view_degree_and_neighbors() {
        let b = small_bipartite();
        let inf = InflatedView::new(&b);
        // v0: other left (1) + its 2 bipartite neighbours
        assert_eq!(inf.degree(0), 3);
        // u1 (id 3): other rights (2) + its 2 bipartite neighbours
        assert_eq!(inf.degree(3), 4);
        let mut out = Vec::new();
        inf.neighbors_into(0, &mut out);
        assert_eq!(out, vec![1, 2, 3]);
        inf.neighbors_into(3, &mut out);
        assert_eq!(out, vec![0, 1, 2, 4]);
    }

    #[test]
    fn materialized_matches_view() {
        let b = small_bipartite();
        let inf = InflatedView::new(&b);
        let explicit = inf.materialize(1_000).expect("small graph fits");
        assert_eq!(explicit.num_vertices(), inf.num_vertices());
        for a in 0..5u32 {
            for c in 0..5u32 {
                assert_eq!(explicit.adjacent(a, c), inf.adjacent(a, c), "pair {a},{c}");
            }
            assert_eq!(explicit.degree(a), inf.degree(a));
        }
        assert_eq!(explicit.num_edges() as u128, inf.explicit_edge_count());
    }

    #[test]
    fn materialize_respects_budget() {
        let b = small_bipartite();
        let inf = InflatedView::new(&b);
        assert!(inf.materialize(1).is_none());
    }

    #[test]
    fn split_join_roundtrip() {
        let b = small_bipartite();
        let inf = InflatedView::new(&b);
        for a in 0..5u32 {
            let (is_left, id) = inf.split(a);
            assert_eq!(inf.join(is_left, id), a);
        }
        assert!(inf.is_left(1));
        assert!(!inf.is_left(2));
    }

    #[test]
    fn dense_subview() {
        let mut d = DenseSubview::new(3);
        d.add_edge(0, 1);
        d.add_edge(1, 2);
        assert!(d.adjacent(0, 1));
        assert!(d.adjacent(2, 1));
        assert!(!d.adjacent(0, 2));
        assert_eq!(d.degree(1), 2);
        let mut out = Vec::new();
        d.neighbors_into(1, &mut out);
        assert_eq!(out, vec![0, 2]);
    }
}
