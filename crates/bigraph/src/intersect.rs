//! Sorted-slice intersection kernels behind a single crossover dispatcher.
//!
//! Every expansion step of the enumeration engines bottoms out in an
//! intersection of two sorted `u32` slices, so this module keeps *several*
//! kernels and picks per call:
//!
//! * **merge** — the classic two-pointer walk; best when the inputs are
//!   short or similar in length.
//! * **gallop** — exponential probe + binary search of the long side per
//!   short element; best when one side is much longer
//!   (`O(|short| · log |long|)`).
//! * **chunked** — a branchless blocked merge: disjoint blocks are skipped
//!   on a single bounds compare, overlapping blocks are counted with an
//!   all-pairs `CHUNK × CHUNK` equality sweep that the compiler
//!   autovectorizes (no `std::arch`, the crate stays
//!   `forbid(unsafe_code)`). Best for mid-size balanced inputs where the
//!   merge walk's per-element branch misses dominate.
//! * **bitset** — groups values by their 64-value word (`v >> 6`), packs
//!   each run into a `u64` mask via [`crate::bitset::pack_word`] and counts
//!   `(wa & wb).count_ones()`; up to 64 comparisons collapse into one AND +
//!   popcount. Best for dense neighbourhoods (small average gap).
//!
//! [`dispatch`] is the single entry the rest of the workspace calls; the
//! crossover between kernels is a measured size-ratio/density heuristic
//! (constants below, regime boundaries recorded in DESIGN.md and re-measured
//! by `bench_parallel`'s per-kernel section). [`Kernel`] plus the
//! thread-local override ([`set_thread_kernel`]) make the choice tunable
//! end-to-end — `TraversalConfig`/`ParallelConfig` carry a kernel field and
//! the CLI exposes `--kernel` for A/B runs. All kernels require strictly
//! sorted (deduplicated) inputs, which CSR neighbour lists and the engines'
//! working sets guarantee; the precondition is `debug_assert!`ed.

use std::cell::Cell;
use std::fmt;
use std::str::FromStr;

use crate::bitset::pack_word;

/// Kernel selector: `Auto` applies the crossover heuristic, the other
/// variants force one kernel (the `--kernel` A/B switch).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// Pick per call from the size-ratio/density crossover heuristic.
    #[default]
    Auto,
    /// Scalar two-pointer merge walk.
    Merge,
    /// Exponential probe + binary search of the long side.
    Gallop,
    /// Branchless blocked merge with an all-pairs equality sweep.
    Chunked,
    /// `u64`-word mask AND + popcount over 64-value chunks.
    Bitset,
}

impl Kernel {
    /// Every selectable kernel, `Auto` first.
    pub const ALL: [Kernel; 5] =
        [Kernel::Auto, Kernel::Merge, Kernel::Gallop, Kernel::Chunked, Kernel::Bitset];

    /// The lower-case name used by `--kernel`, the spec codec and bench
    /// output.
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Auto => "auto",
            Kernel::Merge => "merge",
            Kernel::Gallop => "gallop",
            Kernel::Chunked => "chunked",
            Kernel::Bitset => "bitset",
        }
    }
}

impl fmt::Display for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Kernel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(Kernel::Auto),
            "merge" => Ok(Kernel::Merge),
            "gallop" => Ok(Kernel::Gallop),
            "chunked" => Ok(Kernel::Chunked),
            "bitset" => Ok(Kernel::Bitset),
            other => Err(format!(
                "unknown kernel {other:?} (expected auto, merge, gallop, chunked or bitset)"
            )),
        }
    }
}

/// Crossover: gallop once the long side is this many times the short one.
/// Matches the pre-kernel-layer constant; re-validated by the per-kernel
/// bench (skewed inputs: gallop ≈ 30× merge at ratio 1024, crossover near
/// 16 on the CI workload).
pub const GALLOP_RATIO: usize = 16;

/// Crossover: a slice is *dense* when its average value gap is at most this
/// (i.e. ≥ 64 / DENSE_MAX_GAP set bits per `u64` word on average). Measured
/// on the bench's dense class (gap 3): bitset ≈ 1.7–2.6× merge; at gap 8
/// the win fades into noise, so that is the boundary.
pub const DENSE_MAX_GAP: u64 = 8;

/// Block width of the chunked kernel: 8 × u32 is one AVX2 lane and small
/// enough that the all-pairs sweep (64 compares) beats the merge walk's
/// branch misses on balanced inputs.
pub const CHUNK: usize = 8;

/// The bitset kernel needs at least this many elements on the short side
/// before word-packing amortizes: the bench's tiny class (12 elements,
/// dense) has chunked ≈ 1.5× bitset, while on the 4096-element dense class
/// bitset ≈ 1.7× chunked.
pub const DENSE_MIN_LEN: usize = 64;

/// Below this many elements on the short side the plain merge walk wins.
/// One full block is exactly where the chunked kernel starts paying off:
/// the bench's tiny class (12 elements) already has chunked ≈ 1.5× merge,
/// while below [`CHUNK`] no full block exists and the kernel *is* the merge
/// walk plus setup cost.
pub const SMALL_LEN: usize = CHUNK;

thread_local! {
    /// The kernel override of the current thread; `Auto` means "use the
    /// heuristic". Thread-local (not process-global) so concurrent engine
    /// runs with different configs do not fight over it.
    static THREAD_KERNEL: Cell<Kernel> = const { Cell::new(Kernel::Auto) };
}

/// The kernel override currently in force on this thread.
pub fn thread_kernel() -> Kernel {
    THREAD_KERNEL.with(Cell::get)
}

/// Restores the previous thread kernel on drop; see [`set_thread_kernel`].
#[must_use = "dropping the guard immediately restores the previous kernel"]
pub struct KernelGuard {
    prev: Kernel,
}

impl Drop for KernelGuard {
    fn drop(&mut self) {
        THREAD_KERNEL.with(|c| c.set(self.prev));
    }
}

/// Installs `kernel` as this thread's override for the lifetime of the
/// returned guard. The engines call this at run/worker start from their
/// config's kernel field, so deep call sites (candidate pruning, extension,
/// miss counting) all honour a single `--kernel` choice without threading a
/// parameter through every signature.
pub fn set_thread_kernel(kernel: Kernel) -> KernelGuard {
    KernelGuard { prev: THREAD_KERNEL.with(|c| c.replace(kernel)) }
}

#[inline]
fn strictly_sorted(v: &[u32]) -> bool {
    v.windows(2).all(|w| w[0] < w[1])
}

/// Length of the intersection of two strictly sorted `u32` slices, using
/// this thread's kernel selection (default: the crossover heuristic).
///
/// This is the single entry point the rest of the workspace goes through;
/// `cargo xtask lint` rejects out-of-crate calls to the raw kernels.
#[inline]
pub fn dispatch(a: &[u32], b: &[u32]) -> usize {
    dispatch_with(thread_kernel(), a, b)
}

/// [`dispatch`] with an explicit kernel — the A/B entry used by the
/// per-kernel benchmark and the equivalence tests.
#[inline]
pub fn dispatch_with(kernel: Kernel, a: &[u32], b: &[u32]) -> usize {
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if short.is_empty() {
        return 0;
    }
    match kernel {
        Kernel::Auto => auto_intersection_len(short, long),
        Kernel::Merge => merge_intersection_len(short, long),
        Kernel::Gallop => gallop_intersection_len(short, long),
        Kernel::Chunked => chunked_intersection_len(short, long),
        Kernel::Bitset => bitset_intersection_len(short, long),
    }
}

/// The crossover heuristic. `short` is non-empty and no longer than `long`.
#[inline]
fn auto_intersection_len(short: &[u32], long: &[u32]) -> usize {
    if long.len() / GALLOP_RATIO > short.len() {
        return gallop_intersection_len(short, long);
    }
    if short.len() < SMALL_LEN {
        return merge_intersection_len(short, long);
    }
    if short.len() >= DENSE_MIN_LEN && is_dense(short) && is_dense(long) {
        return bitset_intersection_len(short, long);
    }
    chunked_intersection_len(short, long)
}

/// Average value gap at most [`DENSE_MAX_GAP`] over the slice's span.
#[inline]
fn is_dense(v: &[u32]) -> bool {
    let span = u64::from(v[v.len() - 1] - v[0]) + 1;
    v.len() as u64 * DENSE_MAX_GAP >= span
}

/// Writes the intersection of two strictly sorted slices into `out`
/// (cleared first, ascending). Skew dispatches to a galloping gather, so
/// intersecting many lists iteratively stays cheap as the accumulator
/// shrinks.
pub fn intersection_into(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    out.clear();
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if short.is_empty() {
        return;
    }
    debug_assert!(strictly_sorted(short) && strictly_sorted(long));
    if long.len() / GALLOP_RATIO > short.len() {
        let mut rest = long;
        for &x in short {
            let mut hi = 1;
            while hi < rest.len() && rest[hi] < x {
                hi *= 2;
            }
            match rest[..(hi + 1).min(rest.len())].binary_search(&x) {
                Ok(pos) => {
                    out.push(x);
                    rest = &rest[pos + 1..];
                }
                Err(pos) => {
                    rest = &rest[pos..];
                    if rest.is_empty() {
                        break;
                    }
                }
            }
        }
        return;
    }
    let mut i = 0;
    let mut j = 0;
    while i < short.len() && j < long.len() {
        match short[i].cmp(&long[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(short[i]);
                i += 1;
                j += 1;
            }
        }
    }
}

/// `true` when two strictly sorted slices share at least one element.
/// Early-exits on the first hit, so filtering against a small exclusion
/// set is cheaper than any counting kernel.
pub fn intersects(a: &[u32], b: &[u32]) -> bool {
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if short.is_empty() {
        return false;
    }
    debug_assert!(strictly_sorted(short) && strictly_sorted(long));
    if long.len() / GALLOP_RATIO > short.len() {
        let mut rest = long;
        for &x in short {
            let mut hi = 1;
            while hi < rest.len() && rest[hi] < x {
                hi *= 2;
            }
            match rest[..(hi + 1).min(rest.len())].binary_search(&x) {
                Ok(_) => return true,
                Err(pos) => {
                    rest = &rest[pos..];
                    if rest.is_empty() {
                        return false;
                    }
                }
            }
        }
        return false;
    }
    let mut i = 0;
    let mut j = 0;
    while i < short.len() && j < long.len() {
        match short[i].cmp(&long[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

/// Scalar two-pointer merge walk.
fn merge_intersection_len(a: &[u32], b: &[u32]) -> usize {
    debug_assert!(strictly_sorted(a) && strictly_sorted(b));
    let mut i = 0;
    let mut j = 0;
    let mut count = 0;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

/// Galloping kernel for heavily skewed sizes; `short` must be the smaller
/// slice (the dispatcher guarantees it, direct tests uphold it).
fn gallop_intersection_len(short: &[u32], long: &[u32]) -> usize {
    debug_assert!(strictly_sorted(short), "gallop requires strictly sorted short side");
    debug_assert!(strictly_sorted(long), "gallop requires strictly sorted long side");
    let mut rest = long;
    let mut count = 0;
    for &x in short {
        // Exponential probe to bound the search window, then binary search.
        // The probe stops at the first index with `rest[hi] >= x`, so the
        // window must include that index.
        let mut hi = 1;
        while hi < rest.len() && rest[hi] < x {
            hi *= 2;
        }
        let window = &rest[..(hi + 1).min(rest.len())];
        match window.binary_search(&x) {
            Ok(pos) => {
                count += 1;
                rest = &rest[pos + 1..];
            }
            Err(pos) => {
                rest = &rest[pos..];
                if rest.is_empty() {
                    break;
                }
            }
        }
    }
    count
}

/// Branchless blocked merge.
///
/// Full `CHUNK`-wide blocks are compared by bounds first: disjoint blocks
/// are skipped with one compare; overlapping blocks are counted with an
/// all-pairs equality sweep whose 64 independent compares the compiler
/// turns into vector ops. Strict sortedness makes the sweep exact — every
/// value occurs at most once per slice, so each cross pair contributes at
/// most one hit and no pair is visited twice (a block is only retired once
/// every future element of the other side provably exceeds its maximum).
/// Tails shorter than a block fall back to the merge walk.
fn chunked_intersection_len(a: &[u32], b: &[u32]) -> usize {
    debug_assert!(strictly_sorted(a) && strictly_sorted(b));
    let mut i = 0;
    let mut j = 0;
    let mut count = 0usize;
    while i + CHUNK <= a.len() && j + CHUNK <= b.len() {
        let ab = &a[i..i + CHUNK];
        let bb = &b[j..j + CHUNK];
        let a_max = ab[CHUNK - 1];
        let b_max = bb[CHUNK - 1];
        if a_max < bb[0] {
            i += CHUNK;
            continue;
        }
        if b_max < ab[0] {
            j += CHUNK;
            continue;
        }
        let mut hits = 0u32;
        for &x in ab {
            for &y in bb {
                hits += u32::from(x == y);
            }
        }
        count += hits as usize;
        // Retire whichever block's maximum is smaller (both on a tie):
        // everything beyond the other side's current block is strictly
        // larger than that maximum, so the retired block is fully counted.
        i += CHUNK * usize::from(a_max <= b_max);
        j += CHUNK * usize::from(b_max <= a_max);
    }
    count + merge_intersection_len(&a[i..], &b[j..])
}

/// `u64`-bitset-chunk kernel for dense neighbourhoods.
///
/// Both slices are walked as runs sharing a 64-value word key (`v >> 6`);
/// runs with matching keys are packed into `u64` masks by
/// [`pack_word`](crate::bitset::pack_word) (the same layout
/// [`BitSet`](crate::bitset::BitSet) stores) and intersected with one AND +
/// popcount, so up to 64 element comparisons collapse into two word ops.
fn bitset_intersection_len(a: &[u32], b: &[u32]) -> usize {
    debug_assert!(strictly_sorted(a) && strictly_sorted(b));
    let mut i = 0;
    let mut j = 0;
    let mut count = 0usize;
    while i < a.len() && j < b.len() {
        let ka = a[i] >> 6;
        let kb = b[j] >> 6;
        if ka < kb {
            i += 1;
            while i < a.len() && a[i] >> 6 < kb {
                i += 1;
            }
        } else if kb < ka {
            j += 1;
            while j < b.len() && b[j] >> 6 < ka {
                j += 1;
            }
        } else {
            let (wa, ni) = pack_word(a, i);
            let (wb, nj) = pack_word(b, j);
            count += (wa & wb).count_ones() as usize;
            i = ni;
            j = nj;
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &[u32], b: &[u32]) -> usize {
        a.iter().filter(|x| b.contains(x)).count()
    }

    #[test]
    fn every_kernel_matches_naive_on_mixed_cases() {
        let cases: &[(&[u32], &[u32])] = &[
            (&[], &[]),
            (&[1], &[]),
            (&[1, 2, 3], &[2, 3, 4]),
            (&[0, 5, 9], &[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]),
            (&[7], &[0, 7, 63, 64, 65, 127, 128]),
            (&[0, 63, 64, 127, 128, 200], &[63, 64, 100, 128]),
        ];
        for (a, b) in cases {
            let want = naive(a, b);
            for kernel in Kernel::ALL {
                assert_eq!(dispatch_with(kernel, a, b), want, "{kernel} a={a:?} b={b:?}");
                assert_eq!(dispatch_with(kernel, b, a), want, "{kernel} swapped a={a:?} b={b:?}");
            }
        }
    }

    #[test]
    fn every_kernel_matches_on_stride_grids() {
        // Dense and sparse strides across word boundaries, long enough to
        // drive the chunked kernel's blocked path and the bitset packing.
        for stride_a in [1u32, 2, 3, 7] {
            for stride_b in [1u32, 4, 9] {
                let a: Vec<u32> = (0..200).map(|i| 5 + i * stride_a).collect();
                let b: Vec<u32> = (0..333).map(|i| i * stride_b).collect();
                let want = a.iter().filter(|x| b.binary_search(x).is_ok()).count();
                for kernel in Kernel::ALL {
                    assert_eq!(
                        dispatch_with(kernel, &a, &b),
                        want,
                        "{kernel} stride_a={stride_a} stride_b={stride_b}"
                    );
                }
            }
        }
    }

    #[test]
    fn galloping_path_is_exact() {
        // Long side >> short side so the Auto heuristic gallops.
        let long: Vec<u32> = (0..10_000).map(|i| i * 3).collect();
        let short: Vec<u32> = vec![0, 3, 4, 2_997, 29_997, 29_998];
        let want = short.iter().filter(|x| long.binary_search(x).is_ok()).count();
        assert_eq!(dispatch(&short, &long), want);
        assert_eq!(want, 4);
    }

    #[test]
    fn galloping_probe_boundary_is_included() {
        // Regression (PR 2 off-by-one): the element sitting exactly at the
        // first probe index (`rest[hi] == x`) must be found.
        assert_eq!(dispatch_with(Kernel::Gallop, &[6], &[0, 6]), 1);
        assert_eq!(dispatch_with(Kernel::Gallop, &[3], &[0, 1, 3, 9]), 1);
        // Exhaustive cross-check against binary search on stride patterns.
        let long: Vec<u32> = (0..512).collect();
        for start in 0..8u32 {
            for stride in 1..8u32 {
                let short: Vec<u32> = (0..6).map(|i| start + i * stride).collect();
                let want = short.iter().filter(|x| long.binary_search(x).is_ok()).count();
                assert_eq!(
                    dispatch_with(Kernel::Gallop, &short, &long),
                    want,
                    "start {start} stride {stride}"
                );
            }
        }
    }

    #[test]
    fn gallop_probe_window_boundaries_stay_dead() {
        // `short` element equal to the LAST element of `long`, at every
        // power-of-two-straddling length the probe can produce.
        for len in [1usize, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 33] {
            let long: Vec<u32> = (0..len as u32).map(|i| i * 2).collect();
            let last = *long.last().unwrap();
            assert_eq!(dispatch_with(Kernel::Gallop, &[last], &long), 1, "len {len}");
            // One past the last element must miss, not panic.
            assert_eq!(dispatch_with(Kernel::Gallop, &[last + 1], &long), 0, "len {len}");
        }
        // Empty slices on either side.
        assert_eq!(dispatch_with(Kernel::Gallop, &[], &[1, 2, 3]), 0);
        assert_eq!(dispatch_with(Kernel::Gallop, &[1, 2, 3], &[]), 0);
        assert_eq!(dispatch(&[], &[]), 0);
        // u32::MAX present / absent at the window edge.
        assert_eq!(dispatch_with(Kernel::Gallop, &[u32::MAX], &[0, 1, u32::MAX]), 1);
        assert_eq!(dispatch_with(Kernel::Gallop, &[u32::MAX], &[0, 1, u32::MAX - 1]), 0);
        assert_eq!(dispatch_with(Kernel::Gallop, &[u32::MAX - 1, u32::MAX], &[u32::MAX]), 1);
    }

    #[test]
    fn bitset_kernel_handles_word_edges() {
        // Values straddling the 64-value word boundary and u32::MAX's word.
        let a: Vec<u32> = vec![62, 63, 64, 65, 127, 128, u32::MAX - 1, u32::MAX];
        let b: Vec<u32> = vec![0, 63, 64, 126, 128, 129, u32::MAX];
        assert_eq!(dispatch_with(Kernel::Bitset, &a, &b), naive(&a, &b));
    }

    #[test]
    fn intersection_into_matches_len_and_sorted() {
        let a: Vec<u32> = (0..400).map(|i| i * 3).collect();
        let b: Vec<u32> = (0..90).map(|i| i * 5).collect();
        let mut out = vec![42]; // must be cleared
        intersection_into(&a, &b, &mut out);
        assert_eq!(out.len(), dispatch(&a, &b));
        assert!(out.windows(2).all(|w| w[0] < w[1]));
        assert!(out.iter().all(|x| a.binary_search(x).is_ok() && b.binary_search(x).is_ok()));
        // Skewed sizes take the galloping gather.
        let tiny = [0u32, 30, 1199];
        intersection_into(&tiny, &a, &mut out);
        assert_eq!(out, vec![0, 30]);
        intersection_into(&[], &a, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn intersects_agrees_with_len() {
        let cases: &[(&[u32], &[u32])] = &[
            (&[], &[]),
            (&[1], &[2]),
            (&[1, 5], &[0, 5]),
            (&[9], &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9]),
        ];
        for (a, b) in cases {
            assert_eq!(intersects(a, b), dispatch(a, b) > 0, "a={a:?} b={b:?}");
        }
        let long: Vec<u32> = (0..4096).map(|i| i * 2).collect();
        assert!(intersects(&[4094], &long));
        assert!(!intersects(&[4095], &long));
    }

    #[test]
    fn thread_kernel_guard_restores() {
        assert_eq!(thread_kernel(), Kernel::Auto);
        {
            let _outer = set_thread_kernel(Kernel::Bitset);
            assert_eq!(thread_kernel(), Kernel::Bitset);
            {
                let _inner = set_thread_kernel(Kernel::Merge);
                assert_eq!(thread_kernel(), Kernel::Merge);
            }
            assert_eq!(thread_kernel(), Kernel::Bitset);
        }
        assert_eq!(thread_kernel(), Kernel::Auto);
    }

    #[test]
    fn kernel_names_round_trip() {
        for kernel in Kernel::ALL {
            assert_eq!(kernel.name().parse::<Kernel>().unwrap(), kernel);
        }
        assert!("warp".parse::<Kernel>().is_err());
        assert_eq!(Kernel::default(), Kernel::Auto);
    }
}
