//! Descriptive statistics over bipartite graphs (degree distributions,
//! butterfly counts) used by the harness to print Table 1 and by the fraud
//! case study to sanity-check generated scenarios.

use crate::graph::BipartiteGraph;

/// Summary statistics of a bipartite graph, printable as a Table-1 row.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// `|L|`.
    pub num_left: u32,
    /// `|R|`.
    pub num_right: u32,
    /// `|E|`.
    pub num_edges: u64,
    /// `|E| / (|L| + |R|)`.
    pub edge_density: f64,
    /// Maximum degree on the left side.
    pub max_left_degree: usize,
    /// Maximum degree on the right side.
    pub max_right_degree: usize,
    /// Average degree on the left side.
    pub avg_left_degree: f64,
    /// Average degree on the right side.
    pub avg_right_degree: f64,
}

impl GraphStats {
    /// Computes the statistics of `g`.
    pub fn of(g: &BipartiteGraph) -> Self {
        let nl = g.num_left().max(1) as f64;
        let nr = g.num_right().max(1) as f64;
        GraphStats {
            num_left: g.num_left(),
            num_right: g.num_right(),
            num_edges: g.num_edges(),
            edge_density: g.edge_density(),
            max_left_degree: g.max_left_degree(),
            max_right_degree: g.max_right_degree(),
            avg_left_degree: g.num_edges() as f64 / nl,
            avg_right_degree: g.num_edges() as f64 / nr,
        }
    }
}

/// Degree histogram of one side: `hist[d]` = number of vertices of degree `d`.
pub fn degree_histogram(degrees: impl Iterator<Item = usize>) -> Vec<usize> {
    let mut hist = Vec::new();
    for d in degrees {
        if d >= hist.len() {
            hist.resize(d + 1, 0);
        }
        hist[d] += 1;
    }
    hist
}

/// Degree histogram of the left side of `g`.
pub fn left_degree_histogram(g: &BipartiteGraph) -> Vec<usize> {
    degree_histogram((0..g.num_left()).map(|v| g.left_degree(v)))
}

/// Degree histogram of the right side of `g`.
pub fn right_degree_histogram(g: &BipartiteGraph) -> Vec<usize> {
    degree_histogram((0..g.num_right()).map(|u| g.right_degree(u)))
}

/// Counts butterflies (2×2 bicliques) exactly. A butterfly is an unordered
/// pair of left vertices sharing an unordered pair of right neighbours; the
/// count is `Σ_{pairs (v,w)} C(|N(v) ∩ N(w)|, 2)` — computed with the
/// standard wedge-counting approach from the side with fewer vertices.
///
/// This is the building block of the k-bitruss structure the paper lists as
/// related work; it is quadratic in the worst case and intended for the
/// small/medium graphs used in tests and the case study.
pub fn count_butterflies(g: &BipartiteGraph) -> u64 {
    // Count wedges centred on right vertices: for each right vertex u with
    // degree d, it contributes C(d, 2) wedges (pairs of left endpoints); a
    // butterfly is a pair of left vertices with >= 2 common neighbours, i.e.
    // sum over left pairs of C(common, 2).
    use std::collections::HashMap;
    let mut pair_counts: HashMap<(u32, u32), u32> = HashMap::new();
    for u in 0..g.num_right() {
        let nbrs = g.right_neighbors(u);
        for i in 0..nbrs.len() {
            for j in (i + 1)..nbrs.len() {
                *pair_counts.entry((nbrs[i], nbrs[j])).or_insert(0) += 1;
            }
        }
    }
    pair_counts
        .values()
        .map(|&c| {
            let c = c as u64;
            c * (c - 1) / 2
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete(nl: u32, nr: u32) -> BipartiteGraph {
        let mut edges = Vec::new();
        for v in 0..nl {
            for u in 0..nr {
                edges.push((v, u));
            }
        }
        BipartiteGraph::from_edges(nl, nr, &edges).unwrap()
    }

    #[test]
    fn stats_of_complete_graph() {
        let g = complete(3, 4);
        let s = GraphStats::of(&g);
        assert_eq!(s.num_left, 3);
        assert_eq!(s.num_right, 4);
        assert_eq!(s.num_edges, 12);
        assert_eq!(s.max_left_degree, 4);
        assert_eq!(s.max_right_degree, 3);
        assert!((s.avg_left_degree - 4.0).abs() < 1e-12);
        assert!((s.avg_right_degree - 3.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_shapes() {
        let g = BipartiteGraph::from_edges(3, 3, &[(0, 0), (0, 1), (1, 0)]).unwrap();
        let lh = left_degree_histogram(&g);
        // degrees: v0=2, v1=1, v2=0
        assert_eq!(lh, vec![1, 1, 1]);
        let rh = right_degree_histogram(&g);
        // degrees: u0=2, u1=1, u2=0
        assert_eq!(rh, vec![1, 1, 1]);
    }

    #[test]
    fn butterfly_count_complete_graphs() {
        // K_{2,2} has exactly one butterfly.
        assert_eq!(count_butterflies(&complete(2, 2)), 1);
        // K_{3,3}: C(3,2)^2 = 9 butterflies.
        assert_eq!(count_butterflies(&complete(3, 3)), 9);
        // K_{nl,nr}: C(nl,2) * C(nr,2).
        assert_eq!(count_butterflies(&complete(4, 5)), 6 * 10);
    }

    #[test]
    fn butterfly_count_sparse() {
        // A path has no butterflies.
        let g = BipartiteGraph::from_edges(3, 2, &[(0, 0), (1, 0), (1, 1), (2, 1)]).unwrap();
        assert_eq!(count_butterflies(&g), 0);
    }

    #[test]
    fn degree_histogram_empty() {
        assert!(degree_histogram(std::iter::empty()).is_empty());
    }
}
