//! (α,β)-core computation by iterative peeling.
//!
//! The (α,β)-core of a bipartite graph is the (unique, possibly empty)
//! maximal vertex subset in which every remaining left vertex has degree at
//! least `α` and every remaining right vertex has degree at least `β`
//! (degrees counted within the subset).
//!
//! The paper uses this structure twice:
//!
//! * as a *preprocessing* step for large-MBP enumeration (every MBP with
//!   both sides of size ≥ θ is contained in the (θ−k, θ−k)-core — Section 6.1
//!   "Extension of iTraversal for enumerating large MBPs");
//! * as one of the *detectors* in the fraud-detection case study
//!   (Section 6.3).

use std::collections::BTreeMap;

use crate::graph::BipartiteGraph;
use crate::subgraph::InducedSubgraph;

/// Read-only bipartite adjacency, the interface the peeling (and its
/// incremental variant) actually needs. Implemented by the immutable
/// [`BipartiteGraph`] and by the mutable
/// [`DynamicBipartiteGraph`](crate::dynamic::DynamicBipartiteGraph), so the
/// same core-decomposition code serves both the static pipelines and the
/// dynamic-maintenance layer.
pub trait BipartiteAdjacency {
    /// Number of left vertices `|L|`.
    fn num_left(&self) -> u32;
    /// Number of right vertices `|R|`.
    fn num_right(&self) -> u32;
    /// Sorted neighbours (right ids) of left vertex `v`.
    fn left_neighbors(&self, v: u32) -> &[u32];
    /// Sorted neighbours (left ids) of right vertex `u`.
    fn right_neighbors(&self, u: u32) -> &[u32];

    /// Degree of left vertex `v`.
    fn left_degree(&self, v: u32) -> usize {
        self.left_neighbors(v).len()
    }

    /// Degree of right vertex `u`.
    fn right_degree(&self, u: u32) -> usize {
        self.right_neighbors(u).len()
    }
}

impl BipartiteAdjacency for BipartiteGraph {
    fn num_left(&self) -> u32 {
        BipartiteGraph::num_left(self)
    }

    fn num_right(&self) -> u32 {
        BipartiteGraph::num_right(self)
    }

    fn left_neighbors(&self, v: u32) -> &[u32] {
        BipartiteGraph::left_neighbors(self, v)
    }

    fn right_neighbors(&self, u: u32) -> &[u32] {
        BipartiteGraph::right_neighbors(self, u)
    }
}

/// Result of an (α,β)-core peeling: the surviving vertices of each side
/// (original ids, sorted).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AlphaBetaCore {
    /// Surviving left vertices (sorted original ids).
    pub left: Vec<u32>,
    /// Surviving right vertices (sorted original ids).
    pub right: Vec<u32>,
}

impl AlphaBetaCore {
    /// `true` when the core is empty.
    pub fn is_empty(&self) -> bool {
        self.left.is_empty() && self.right.is_empty()
    }

    /// Number of surviving vertices.
    pub fn num_vertices(&self) -> usize {
        self.left.len() + self.right.len()
    }
}

/// Full peeling worker shared by the one-shot [`alpha_beta_core`] and the
/// seeding of [`IncrementalCore`]. Returns per-side membership flags plus
/// the final degrees *within the core* (only meaningful for members).
fn peel_core<G: BipartiteAdjacency>(
    g: &G,
    alpha: usize,
    beta: usize,
) -> (Vec<bool>, Vec<bool>, Vec<usize>, Vec<usize>) {
    let nl = g.num_left() as usize;
    let nr = g.num_right() as usize;

    let mut left_deg: Vec<usize> = (0..nl).map(|v| g.left_degree(v as u32)).collect();
    let mut right_deg: Vec<usize> = (0..nr).map(|u| g.right_degree(u as u32)).collect();
    let mut left_in = vec![true; nl];
    let mut right_in = vec![true; nr];

    // Work queue of vertices that currently violate their threshold.
    let mut queue: Vec<(bool, u32)> = Vec::new();
    for (v, &deg) in left_deg.iter().enumerate() {
        if deg < alpha {
            queue.push((true, v as u32));
            left_in[v] = false;
        }
    }
    for (u, &deg) in right_deg.iter().enumerate() {
        if deg < beta {
            queue.push((false, u as u32));
            right_in[u] = false;
        }
    }

    while let Some((is_left, id)) = queue.pop() {
        if is_left {
            for &u in g.left_neighbors(id) {
                if right_in[u as usize] {
                    right_deg[u as usize] -= 1;
                    if right_deg[u as usize] < beta {
                        right_in[u as usize] = false;
                        queue.push((false, u));
                    }
                }
            }
        } else {
            for &v in g.right_neighbors(id) {
                if left_in[v as usize] {
                    left_deg[v as usize] -= 1;
                    if left_deg[v as usize] < alpha {
                        left_in[v as usize] = false;
                        queue.push((true, v));
                    }
                }
            }
        }
    }

    (left_in, right_in, left_deg, right_deg)
}

/// Computes the (α,β)-core of `g`: every left vertex keeps ≥ `alpha`
/// neighbours and every right vertex keeps ≥ `beta` neighbours.
///
/// Runs in `O(|E| + |V|)` using a peeling queue. Generic over
/// [`BipartiteAdjacency`] so it also works on
/// [`DynamicBipartiteGraph`](crate::dynamic::DynamicBipartiteGraph).
pub fn alpha_beta_core<G: BipartiteAdjacency>(g: &G, alpha: usize, beta: usize) -> AlphaBetaCore {
    let (left_in, right_in, _, _) = peel_core(g, alpha, beta);
    let left = (0..g.num_left()).filter(|&v| left_in[v as usize]).collect();
    let right = (0..g.num_right()).filter(|&u| right_in[u as usize]).collect();
    AlphaBetaCore { left, right }
}

/// (α,β)-core membership maintained *incrementally* under edge updates.
///
/// A full peel runs once at construction; afterwards each
/// [`on_insert`](IncrementalCore::on_insert) /
/// [`on_delete`](IncrementalCore::on_delete) call repairs the membership by
/// a cascade that is local to the touched endpoints, instead of re-peeling
/// the whole graph:
///
/// * **Deletion** can only shrink the core, and the shrink cascade starts at
///   the deleted edge's endpoints — exactly the standard peeling loop seeded
///   there.
/// * **Insertion** can only grow the core. Every newly-qualifying vertex is
///   connected to a touched endpoint through other newly-qualifying vertices
///   (otherwise the new vertices would already have satisfied the thresholds
///   before the update, contradicting the maximality of the old core), so a
///   bounded BFS from the endpoints over non-members collects a candidate
///   superset, which a local peel then trims to the exact new members.
///
/// The struct stores membership flags and, for members, the degree counted
/// within the core — the invariant every repair step preserves.
#[derive(Clone, Debug)]
pub struct IncrementalCore {
    alpha: usize,
    beta: usize,
    left_in: Vec<bool>,
    right_in: Vec<bool>,
    left_deg: Vec<usize>,
    right_deg: Vec<usize>,
}

impl IncrementalCore {
    /// Seeds the structure with a full (α,β)-core peel of `g`.
    pub fn new<G: BipartiteAdjacency>(g: &G, alpha: usize, beta: usize) -> Self {
        let (left_in, right_in, left_deg, right_deg) = peel_core(g, alpha, beta);
        IncrementalCore { alpha, beta, left_in, right_in, left_deg, right_deg }
    }

    /// The left-side degree threshold α.
    pub fn alpha(&self) -> usize {
        self.alpha
    }

    /// The right-side degree threshold β.
    pub fn beta(&self) -> usize {
        self.beta
    }

    /// `true` iff left vertex `v` is in the core.
    #[inline]
    pub fn contains_left(&self, v: u32) -> bool {
        self.left_in[v as usize]
    }

    /// `true` iff right vertex `u` is in the core.
    #[inline]
    pub fn contains_right(&self, u: u32) -> bool {
        self.right_in[u as usize]
    }

    /// Materializes the current membership as an [`AlphaBetaCore`].
    pub fn members(&self) -> AlphaBetaCore {
        let left = (0..self.left_in.len() as u32).filter(|&v| self.left_in[v as usize]).collect();
        let right =
            (0..self.right_in.len() as u32).filter(|&u| self.right_in[u as usize]).collect();
        AlphaBetaCore { left, right }
    }

    /// Repairs the membership after the edge `(v, u)` was inserted into `g`
    /// (`g` must already contain the edge).
    pub fn on_insert<G: BipartiteAdjacency>(&mut self, g: &G, v: u32, u: u32) {
        if self.left_in[v as usize] && self.right_in[u as usize] {
            // An edge between two members raises their in-core degrees and
            // cannot change anyone's membership: any would-be joiner would
            // have qualified before the update as well (its own edges are
            // untouched), contradicting the old core's maximality.
            self.left_deg[v as usize] += 1;
            self.right_deg[u as usize] += 1;
            return;
        }

        // Candidate collection: every vertex that joins the core is reachable
        // from a non-member endpoint through other joining vertices, and a
        // joiner's full degree is a cheap upper bound for its in-core degree,
        // so BFS over degree-qualified non-members collects a superset.
        let mut cand_left: BTreeMap<u32, usize> = BTreeMap::new();
        let mut cand_right: BTreeMap<u32, usize> = BTreeMap::new();
        let mut stack: Vec<(bool, u32)> = Vec::new();
        if !self.left_in[v as usize] && g.left_degree(v) >= self.alpha {
            cand_left.insert(v, 0);
            stack.push((true, v));
        }
        if !self.right_in[u as usize] && g.right_degree(u) >= self.beta {
            cand_right.insert(u, 0);
            stack.push((false, u));
        }
        while let Some((is_left, id)) = stack.pop() {
            if is_left {
                for &n in g.left_neighbors(id) {
                    if !self.right_in[n as usize]
                        && !cand_right.contains_key(&n)
                        && g.right_degree(n) >= self.beta
                    {
                        cand_right.insert(n, 0);
                        stack.push((false, n));
                    }
                }
            } else {
                for &n in g.right_neighbors(id) {
                    if !self.left_in[n as usize]
                        && !cand_left.contains_key(&n)
                        && g.left_degree(n) >= self.alpha
                    {
                        cand_left.insert(n, 0);
                        stack.push((true, n));
                    }
                }
            }
        }
        if cand_left.is_empty() && cand_right.is_empty() {
            return;
        }

        // Degrees within core ∪ candidates, then a local peel of the
        // candidates only (members cannot violate: their within-core degree
        // alone already meets the threshold).
        let ids_left: Vec<u32> = cand_left.keys().copied().collect();
        for &w in &ids_left {
            let deg = g
                .left_neighbors(w)
                .iter()
                .filter(|&&n| self.right_in[n as usize] || cand_right.contains_key(&n))
                .count();
            if let Some(slot) = cand_left.get_mut(&w) {
                *slot = deg;
            }
        }
        let ids_right: Vec<u32> = cand_right.keys().copied().collect();
        for &w in &ids_right {
            let deg = g
                .right_neighbors(w)
                .iter()
                .filter(|&&n| self.left_in[n as usize] || cand_left.contains_key(&n))
                .count();
            if let Some(slot) = cand_right.get_mut(&w) {
                *slot = deg;
            }
        }

        let mut queue: Vec<(bool, u32)> = Vec::new();
        for (&w, &deg) in &cand_left {
            if deg < self.alpha {
                queue.push((true, w));
            }
        }
        for (&w, &deg) in &cand_right {
            if deg < self.beta {
                queue.push((false, w));
            }
        }
        while let Some((is_left, id)) = queue.pop() {
            if is_left {
                if cand_left.remove(&id).is_none() {
                    continue;
                }
                for &n in g.left_neighbors(id) {
                    if let Some(deg) = cand_right.get_mut(&n) {
                        *deg -= 1;
                        if *deg < self.beta {
                            queue.push((false, n));
                        }
                    }
                }
            } else {
                if cand_right.remove(&id).is_none() {
                    continue;
                }
                for &n in g.right_neighbors(id) {
                    if let Some(deg) = cand_left.get_mut(&n) {
                        *deg -= 1;
                        if *deg < self.alpha {
                            queue.push((true, n));
                        }
                    }
                }
            }
        }

        // Promote the survivors: bump old members' degrees first (while the
        // flags still distinguish them), then flip the flags and install the
        // survivors' own counts.
        for &w in cand_left.keys() {
            for &n in g.left_neighbors(w) {
                if self.right_in[n as usize] {
                    self.right_deg[n as usize] += 1;
                }
            }
        }
        for &w in cand_right.keys() {
            for &n in g.right_neighbors(w) {
                if self.left_in[n as usize] {
                    self.left_deg[n as usize] += 1;
                }
            }
        }
        for (&w, &deg) in &cand_left {
            self.left_in[w as usize] = true;
            self.left_deg[w as usize] = deg;
        }
        for (&w, &deg) in &cand_right {
            self.right_in[w as usize] = true;
            self.right_deg[w as usize] = deg;
        }
    }

    /// Repairs the membership after the edge `(v, u)` was deleted from `g`
    /// (`g` must no longer contain the edge).
    pub fn on_delete<G: BipartiteAdjacency>(&mut self, g: &G, v: u32, u: u32) {
        if !self.left_in[v as usize] || !self.right_in[u as usize] {
            // The edge crossed the core boundary, so it was not counted in
            // any in-core degree — membership is unchanged.
            return;
        }
        self.left_deg[v as usize] -= 1;
        self.right_deg[u as usize] -= 1;

        // Standard peeling cascade, seeded at the endpoints.
        let mut queue: Vec<(bool, u32)> = Vec::new();
        if self.left_deg[v as usize] < self.alpha {
            self.left_in[v as usize] = false;
            queue.push((true, v));
        }
        if self.right_deg[u as usize] < self.beta {
            self.right_in[u as usize] = false;
            queue.push((false, u));
        }
        while let Some((is_left, id)) = queue.pop() {
            if is_left {
                for &n in g.left_neighbors(id) {
                    if self.right_in[n as usize] {
                        self.right_deg[n as usize] -= 1;
                        if self.right_deg[n as usize] < self.beta {
                            self.right_in[n as usize] = false;
                            queue.push((false, n));
                        }
                    }
                }
            } else {
                for &n in g.right_neighbors(id) {
                    if self.left_in[n as usize] {
                        self.left_deg[n as usize] -= 1;
                        if self.left_deg[n as usize] < self.alpha {
                            self.left_in[n as usize] = false;
                            queue.push((true, n));
                        }
                    }
                }
            }
        }
    }
}

/// Computes the (α,β)-core and materializes it as an induced subgraph with
/// the id mapping back to `g` (convenience for the large-MBP pipeline).
pub fn alpha_beta_core_subgraph(g: &BipartiteGraph, alpha: usize, beta: usize) -> InducedSubgraph {
    let core = alpha_beta_core(g, alpha, beta);
    InducedSubgraph::new(g, &core.left, &core.right)
}

/// The reduction used before enumerating *large* MBPs with both sides of
/// size at least `theta`: every such MBP lies inside the
/// (θ−k, θ−k)-core, because each of its vertices connects at least
/// `θ − k` vertices of the other side (it can miss at most `k`).
pub fn large_mbp_core(g: &BipartiteGraph, theta: usize, k: usize) -> InducedSubgraph {
    let bound = theta.saturating_sub(k);
    alpha_beta_core_subgraph(g, bound, bound)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A complete 3x3 biclique plus a pendant path `v3 - u3`.
    fn biclique_plus_pendant() -> BipartiteGraph {
        let mut edges = vec![];
        for v in 0u32..3 {
            for u in 0u32..3 {
                edges.push((v, u));
            }
        }
        edges.push((3, 3));
        edges.push((0, 3));
        BipartiteGraph::from_edges(4, 4, &edges).unwrap()
    }

    #[test]
    fn trivial_core_is_whole_graph() {
        let g = biclique_plus_pendant();
        let core = alpha_beta_core(&g, 0, 0);
        assert_eq!(core.left.len(), 4);
        assert_eq!(core.right.len(), 4);
        let core = alpha_beta_core(&g, 1, 1);
        assert_eq!(core.left.len(), 4);
        assert_eq!(core.right.len(), 4);
    }

    #[test]
    fn peeling_removes_pendant() {
        let g = biclique_plus_pendant();
        let core = alpha_beta_core(&g, 2, 2);
        assert_eq!(core.left, vec![0, 1, 2]);
        assert_eq!(core.right, vec![0, 1, 2]);
    }

    #[test]
    fn core_degrees_satisfy_thresholds() {
        let g = biclique_plus_pendant();
        for alpha in 0..4 {
            for beta in 0..4 {
                let sub = alpha_beta_core_subgraph(&g, alpha, beta);
                for v in 0..sub.graph.num_left() {
                    assert!(sub.graph.left_degree(v) >= alpha);
                }
                for u in 0..sub.graph.num_right() {
                    assert!(sub.graph.right_degree(u) >= beta);
                }
            }
        }
    }

    #[test]
    fn too_high_threshold_empties_graph() {
        let g = biclique_plus_pendant();
        let core = alpha_beta_core(&g, 4, 4);
        assert!(core.is_empty());
        assert_eq!(core.num_vertices(), 0);
    }

    #[test]
    fn cascading_removal() {
        // Path-like graph: v0-u0, v1-u0, v1-u1, v2-u1. Asking for (2,2)
        // should cascade-remove everything.
        let g = BipartiteGraph::from_edges(3, 2, &[(0, 0), (1, 0), (1, 1), (2, 1)]).unwrap();
        let core = alpha_beta_core(&g, 2, 2);
        assert!(core.is_empty());
        // (1,2) keeps the middle structure: u0 and u1 need degree >= 2,
        // left vertices need >= 1.
        let core = alpha_beta_core(&g, 1, 2);
        assert_eq!(core.left, vec![0, 1, 2]);
        assert_eq!(core.right, vec![0, 1]);
    }

    #[test]
    fn large_mbp_core_bound() {
        let g = biclique_plus_pendant();
        // theta = 3, k = 1 -> (2,2)-core.
        let sub = large_mbp_core(&g, 3, 1);
        assert_eq!(sub.graph.num_left(), 3);
        assert_eq!(sub.graph.num_right(), 3);
        // theta <= k -> bound 0 -> whole graph survives.
        let sub = large_mbp_core(&g, 1, 2);
        assert_eq!(sub.graph.num_left(), 4);
    }

    #[test]
    fn asymmetric_thresholds() {
        let g = biclique_plus_pendant();
        // alpha = 1 (left needs >= 1), beta = 2 (right needs >= 2):
        // u3 has neighbours {v3, v0}; it survives only if both survive.
        let core = alpha_beta_core(&g, 1, 2);
        assert!(core.right.contains(&3));
        let core = alpha_beta_core(&g, 3, 2);
        // v3 has degree 1 < 3 so it is peeled, u3 drops to degree 1 < 2 and
        // is peeled too.
        assert!(!core.left.contains(&3));
        assert!(!core.right.contains(&3));
    }
}
