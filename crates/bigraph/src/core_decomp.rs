//! (α,β)-core computation by iterative peeling.
//!
//! The (α,β)-core of a bipartite graph is the (unique, possibly empty)
//! maximal vertex subset in which every remaining left vertex has degree at
//! least `α` and every remaining right vertex has degree at least `β`
//! (degrees counted within the subset).
//!
//! The paper uses this structure twice:
//!
//! * as a *preprocessing* step for large-MBP enumeration (every MBP with
//!   both sides of size ≥ θ is contained in the (θ−k, θ−k)-core — Section 6.1
//!   "Extension of iTraversal for enumerating large MBPs");
//! * as one of the *detectors* in the fraud-detection case study
//!   (Section 6.3).

use crate::bitset::BitSet;
use crate::graph::BipartiteGraph;
use crate::subgraph::InducedSubgraph;

/// Result of an (α,β)-core peeling: the surviving vertices of each side
/// (original ids, sorted).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AlphaBetaCore {
    /// Surviving left vertices (sorted original ids).
    pub left: Vec<u32>,
    /// Surviving right vertices (sorted original ids).
    pub right: Vec<u32>,
}

impl AlphaBetaCore {
    /// `true` when the core is empty.
    pub fn is_empty(&self) -> bool {
        self.left.is_empty() && self.right.is_empty()
    }

    /// Number of surviving vertices.
    pub fn num_vertices(&self) -> usize {
        self.left.len() + self.right.len()
    }
}

/// Computes the (α,β)-core of `g`: every left vertex keeps ≥ `alpha`
/// neighbours and every right vertex keeps ≥ `beta` neighbours.
///
/// Runs in `O(|E| + |V|)` using a peeling queue.
pub fn alpha_beta_core(g: &BipartiteGraph, alpha: usize, beta: usize) -> AlphaBetaCore {
    let nl = g.num_left() as usize;
    let nr = g.num_right() as usize;

    let mut left_deg: Vec<usize> = (0..nl).map(|v| g.left_degree(v as u32)).collect();
    let mut right_deg: Vec<usize> = (0..nr).map(|u| g.right_degree(u as u32)).collect();
    let mut left_removed = BitSet::new(nl);
    let mut right_removed = BitSet::new(nr);

    // Work queue of vertices that currently violate their threshold.
    let mut queue: Vec<(bool, u32)> = Vec::new();
    for (v, &deg) in left_deg.iter().enumerate() {
        if deg < alpha {
            queue.push((true, v as u32));
            left_removed.insert(v);
        }
    }
    for (u, &deg) in right_deg.iter().enumerate() {
        if deg < beta {
            queue.push((false, u as u32));
            right_removed.insert(u);
        }
    }

    while let Some((is_left, id)) = queue.pop() {
        if is_left {
            for &u in g.left_neighbors(id) {
                if !right_removed.contains(u as usize) {
                    right_deg[u as usize] -= 1;
                    if right_deg[u as usize] < beta {
                        right_removed.insert(u as usize);
                        queue.push((false, u));
                    }
                }
            }
        } else {
            for &v in g.right_neighbors(id) {
                if !left_removed.contains(v as usize) {
                    left_deg[v as usize] -= 1;
                    if left_deg[v as usize] < alpha {
                        left_removed.insert(v as usize);
                        queue.push((true, v));
                    }
                }
            }
        }
    }

    let left = (0..nl as u32).filter(|&v| !left_removed.contains(v as usize)).collect();
    let right = (0..nr as u32).filter(|&u| !right_removed.contains(u as usize)).collect();
    AlphaBetaCore { left, right }
}

/// Computes the (α,β)-core and materializes it as an induced subgraph with
/// the id mapping back to `g` (convenience for the large-MBP pipeline).
pub fn alpha_beta_core_subgraph(g: &BipartiteGraph, alpha: usize, beta: usize) -> InducedSubgraph {
    let core = alpha_beta_core(g, alpha, beta);
    InducedSubgraph::new(g, &core.left, &core.right)
}

/// The reduction used before enumerating *large* MBPs with both sides of
/// size at least `theta`: every such MBP lies inside the
/// (θ−k, θ−k)-core, because each of its vertices connects at least
/// `θ − k` vertices of the other side (it can miss at most `k`).
pub fn large_mbp_core(g: &BipartiteGraph, theta: usize, k: usize) -> InducedSubgraph {
    let bound = theta.saturating_sub(k);
    alpha_beta_core_subgraph(g, bound, bound)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A complete 3x3 biclique plus a pendant path `v3 - u3`.
    fn biclique_plus_pendant() -> BipartiteGraph {
        let mut edges = vec![];
        for v in 0u32..3 {
            for u in 0u32..3 {
                edges.push((v, u));
            }
        }
        edges.push((3, 3));
        edges.push((0, 3));
        BipartiteGraph::from_edges(4, 4, &edges).unwrap()
    }

    #[test]
    fn trivial_core_is_whole_graph() {
        let g = biclique_plus_pendant();
        let core = alpha_beta_core(&g, 0, 0);
        assert_eq!(core.left.len(), 4);
        assert_eq!(core.right.len(), 4);
        let core = alpha_beta_core(&g, 1, 1);
        assert_eq!(core.left.len(), 4);
        assert_eq!(core.right.len(), 4);
    }

    #[test]
    fn peeling_removes_pendant() {
        let g = biclique_plus_pendant();
        let core = alpha_beta_core(&g, 2, 2);
        assert_eq!(core.left, vec![0, 1, 2]);
        assert_eq!(core.right, vec![0, 1, 2]);
    }

    #[test]
    fn core_degrees_satisfy_thresholds() {
        let g = biclique_plus_pendant();
        for alpha in 0..4 {
            for beta in 0..4 {
                let sub = alpha_beta_core_subgraph(&g, alpha, beta);
                for v in 0..sub.graph.num_left() {
                    assert!(sub.graph.left_degree(v) >= alpha);
                }
                for u in 0..sub.graph.num_right() {
                    assert!(sub.graph.right_degree(u) >= beta);
                }
            }
        }
    }

    #[test]
    fn too_high_threshold_empties_graph() {
        let g = biclique_plus_pendant();
        let core = alpha_beta_core(&g, 4, 4);
        assert!(core.is_empty());
        assert_eq!(core.num_vertices(), 0);
    }

    #[test]
    fn cascading_removal() {
        // Path-like graph: v0-u0, v1-u0, v1-u1, v2-u1. Asking for (2,2)
        // should cascade-remove everything.
        let g = BipartiteGraph::from_edges(3, 2, &[(0, 0), (1, 0), (1, 1), (2, 1)]).unwrap();
        let core = alpha_beta_core(&g, 2, 2);
        assert!(core.is_empty());
        // (1,2) keeps the middle structure: u0 and u1 need degree >= 2,
        // left vertices need >= 1.
        let core = alpha_beta_core(&g, 1, 2);
        assert_eq!(core.left, vec![0, 1, 2]);
        assert_eq!(core.right, vec![0, 1]);
    }

    #[test]
    fn large_mbp_core_bound() {
        let g = biclique_plus_pendant();
        // theta = 3, k = 1 -> (2,2)-core.
        let sub = large_mbp_core(&g, 3, 1);
        assert_eq!(sub.graph.num_left(), 3);
        assert_eq!(sub.graph.num_right(), 3);
        // theta <= k -> bound 0 -> whole graph survives.
        let sub = large_mbp_core(&g, 1, 2);
        assert_eq!(sub.graph.num_left(), 4);
    }

    #[test]
    fn asymmetric_thresholds() {
        let g = biclique_plus_pendant();
        // alpha = 1 (left needs >= 1), beta = 2 (right needs >= 2):
        // u3 has neighbours {v3, v0}; it survives only if both survive.
        let core = alpha_beta_core(&g, 1, 2);
        assert!(core.right.contains(&3));
        let core = alpha_beta_core(&g, 3, 2);
        // v3 has degree 1 < 3 so it is peeled, u3 drops to degree 1 < 2 and
        // is peeled too.
        assert!(!core.left.contains(&3));
        assert!(!core.right.contains(&3));
    }
}
