//! Mutable bipartite graphs for dynamic (streaming) workloads.
//!
//! [`DynamicBipartiteGraph`] keeps per-side adjacency as sorted `Vec`s so
//! single-edge inserts and deletes are `O(deg)` (a binary search plus a
//! shift), while [`snapshot`](DynamicBipartiteGraph::snapshot) re-materializes
//! an immutable CSR [`BipartiteGraph`] in `O(|V| + |E|)` *without sorting* —
//! the lists are already sorted and deduplicated, so the snapshot is a flat
//! copy. This is the substrate for the `kbiplex::dynamic` maintenance layer:
//! updates mutate in place, and the enumeration pipelines that want the CSR
//! layout get a cheap snapshot of exactly the current edge set.
//!
//! Both mutators follow the checked-`Result` contract of
//! [`BipartiteBuilder::add_edge`](crate::graph::BipartiteBuilder::add_edge):
//! out-of-range endpoints are an [`Error::VertexOutOfRange`], never a panic,
//! and the `Ok(bool)` return reports whether the edge set actually changed
//! (inserting a present edge or deleting an absent one is a no-op).

use crate::core_decomp::BipartiteAdjacency;
use crate::csr::Csr;
use crate::graph::{BipartiteGraph, Side};
use crate::{Error, Result};

/// A mutable, undirected, unweighted bipartite graph with sorted adjacency
/// stored on both sides.
#[derive(Clone, Debug, Default)]
pub struct DynamicBipartiteGraph {
    left: Vec<Vec<u32>>,
    right: Vec<Vec<u32>>,
    num_edges: u64,
}

impl DynamicBipartiteGraph {
    /// An edgeless graph with `num_left` left and `num_right` right vertices.
    pub fn new(num_left: u32, num_right: u32) -> Self {
        DynamicBipartiteGraph {
            left: vec![Vec::new(); num_left as usize],
            right: vec![Vec::new(); num_right as usize],
            num_edges: 0,
        }
    }

    /// Copies an immutable graph into mutable form.
    pub fn from_graph(g: &BipartiteGraph) -> Self {
        let left = (0..g.num_left()).map(|v| g.left_neighbors(v).to_vec()).collect();
        let right = (0..g.num_right()).map(|u| g.right_neighbors(u).to_vec()).collect();
        DynamicBipartiteGraph { left, right, num_edges: g.num_edges() }
    }

    /// Number of left vertices `|L|`.
    #[inline]
    pub fn num_left(&self) -> u32 {
        self.left.len() as u32
    }

    /// Number of right vertices `|R|`.
    #[inline]
    pub fn num_right(&self) -> u32 {
        self.right.len() as u32
    }

    /// Number of (undirected) edges `|E|`.
    #[inline]
    pub fn num_edges(&self) -> u64 {
        self.num_edges
    }

    /// Sorted neighbours (right ids) of left vertex `v`.
    #[inline]
    pub fn left_neighbors(&self, v: u32) -> &[u32] {
        &self.left[v as usize]
    }

    /// Sorted neighbours (left ids) of right vertex `u`.
    #[inline]
    pub fn right_neighbors(&self, u: u32) -> &[u32] {
        &self.right[u as usize]
    }

    /// Degree of left vertex `v`.
    #[inline]
    pub fn left_degree(&self, v: u32) -> usize {
        self.left[v as usize].len()
    }

    /// Degree of right vertex `u`.
    #[inline]
    pub fn right_degree(&self, u: u32) -> usize {
        self.right[u as usize].len()
    }

    /// `true` iff left vertex `v` and right vertex `u` are adjacent.
    /// Searches the shorter of the two adjacency lists.
    pub fn has_edge(&self, v: u32, u: u32) -> bool {
        let ln = &self.left[v as usize];
        let rn = &self.right[u as usize];
        if ln.len() <= rn.len() {
            ln.binary_search(&u).is_ok()
        } else {
            rn.binary_search(&v).is_ok()
        }
    }

    fn check(&self, v: u32, u: u32) -> Result<()> {
        if v as usize >= self.left.len() {
            return Err(Error::VertexOutOfRange { side: Side::Left, id: v, len: self.num_left() });
        }
        if u as usize >= self.right.len() {
            return Err(Error::VertexOutOfRange {
                side: Side::Right,
                id: u,
                len: self.num_right(),
            });
        }
        Ok(())
    }

    /// Inserts the edge `(left v, right u)`. Returns `Ok(true)` if the edge
    /// was absent (and is now present), `Ok(false)` if it already existed.
    pub fn insert_edge(&mut self, v: u32, u: u32) -> Result<bool> {
        self.check(v, u)?;
        let ln = &mut self.left[v as usize];
        let Err(pos) = ln.binary_search(&u) else {
            return Ok(false);
        };
        ln.insert(pos, u);
        let rn = &mut self.right[u as usize];
        match rn.binary_search(&v) {
            Ok(_) => debug_assert!(false, "adjacency halves out of sync"),
            Err(pos) => rn.insert(pos, v),
        }
        self.num_edges += 1;
        Ok(true)
    }

    /// Deletes the edge `(left v, right u)`. Returns `Ok(true)` if the edge
    /// was present (and is now gone), `Ok(false)` if it did not exist.
    pub fn delete_edge(&mut self, v: u32, u: u32) -> Result<bool> {
        self.check(v, u)?;
        let ln = &mut self.left[v as usize];
        let Ok(pos) = ln.binary_search(&u) else {
            return Ok(false);
        };
        ln.remove(pos);
        let rn = &mut self.right[u as usize];
        match rn.binary_search(&v) {
            Ok(pos) => {
                rn.remove(pos);
            }
            Err(_) => debug_assert!(false, "adjacency halves out of sync"),
        }
        self.num_edges -= 1;
        Ok(true)
    }

    /// Re-materializes the current edge set as an immutable CSR
    /// [`BipartiteGraph`]. The adjacency lists are already sorted, so this is
    /// a flat `O(|V| + |E|)` copy with no sorting pass.
    pub fn snapshot(&self) -> BipartiteGraph {
        BipartiteGraph::from_halves(flatten(&self.left), flatten(&self.right))
    }
}

/// Packs sorted per-vertex lists into one CSR half.
fn flatten(lists: &[Vec<u32>]) -> Csr {
    let mut offsets = Vec::with_capacity(lists.len() + 1);
    offsets.push(0usize);
    let mut total = 0usize;
    for l in lists {
        total += l.len();
        offsets.push(total);
    }
    let mut targets = Vec::with_capacity(total);
    for l in lists {
        targets.extend_from_slice(l);
    }
    Csr::from_parts(offsets, targets)
}

impl BipartiteAdjacency for DynamicBipartiteGraph {
    fn num_left(&self) -> u32 {
        DynamicBipartiteGraph::num_left(self)
    }

    fn num_right(&self) -> u32 {
        DynamicBipartiteGraph::num_right(self)
    }

    fn left_neighbors(&self, v: u32) -> &[u32] {
        DynamicBipartiteGraph::left_neighbors(self, v)
    }

    fn right_neighbors(&self, u: u32) -> &[u32] {
        DynamicBipartiteGraph::right_neighbors(self, u)
    }
}

impl From<&BipartiteGraph> for DynamicBipartiteGraph {
    fn from(g: &BipartiteGraph) -> Self {
        DynamicBipartiteGraph::from_graph(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core_decomp::{alpha_beta_core, IncrementalCore};
    use crate::gen::chung_lu_bipartite;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn insert_and_delete_roundtrip() {
        let mut g = DynamicBipartiteGraph::new(3, 3);
        assert!(g.insert_edge(0, 1).unwrap());
        assert!(g.insert_edge(0, 0).unwrap());
        assert!(!g.insert_edge(0, 1).unwrap(), "duplicate insert is a no-op");
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.left_neighbors(0), &[0, 1]);
        assert_eq!(g.right_neighbors(1), &[0]);
        assert!(g.has_edge(0, 1));

        assert!(g.delete_edge(0, 1).unwrap());
        assert!(!g.delete_edge(0, 1).unwrap(), "deleting an absent edge is a no-op");
        assert_eq!(g.num_edges(), 1);
        assert!(!g.has_edge(0, 1));
        assert_eq!(g.left_neighbors(0), &[0]);
        assert!(g.right_neighbors(1).is_empty());
    }

    #[test]
    fn out_of_range_is_checked() {
        let mut g = DynamicBipartiteGraph::new(2, 2);
        assert!(matches!(
            g.insert_edge(2, 0),
            Err(Error::VertexOutOfRange { side: Side::Left, .. })
        ));
        assert!(matches!(
            g.delete_edge(0, 7),
            Err(Error::VertexOutOfRange { side: Side::Right, .. })
        ));
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn snapshot_matches_reference_builder() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut g = DynamicBipartiteGraph::new(9, 7);
        let mut edges: Vec<(u32, u32)> = Vec::new();
        for _ in 0..120 {
            let v = rng.gen_range(0..9);
            let u = rng.gen_range(0..7);
            if rng.gen_bool(0.7) {
                if g.insert_edge(v, u).unwrap() {
                    edges.push((v, u));
                }
            } else if g.delete_edge(v, u).unwrap() {
                edges.retain(|&e| e != (v, u));
            }
            let snap = g.snapshot();
            let reference = BipartiteGraph::from_edges(9, 7, &edges).unwrap();
            assert_eq!(snap.num_edges(), reference.num_edges());
            for v in 0..9 {
                assert_eq!(snap.left_neighbors(v), reference.left_neighbors(v));
            }
            for u in 0..7 {
                assert_eq!(snap.right_neighbors(u), reference.right_neighbors(u));
            }
        }
    }

    #[test]
    fn from_graph_roundtrips() {
        let base = chung_lu_bipartite(20, 20, 80, 2.0, 5);
        let dynamic = DynamicBipartiteGraph::from_graph(&base);
        assert_eq!(dynamic.num_edges(), base.num_edges());
        let snap = dynamic.snapshot();
        assert_eq!(snap.edges().collect::<Vec<_>>(), base.edges().collect::<Vec<_>>());
        let via_from: DynamicBipartiteGraph = (&base).into();
        assert_eq!(via_from.num_edges(), base.num_edges());
    }

    /// The incremental core must agree with a full re-peel after every step
    /// of a random edit script, across a grid of thresholds.
    #[test]
    fn incremental_core_matches_full_peel() {
        for seed in 0..4u64 {
            let base = chung_lu_bipartite(24, 24, 110, 2.2, seed);
            for (alpha, beta) in [(1, 1), (2, 2), (3, 2), (2, 4)] {
                let mut g = DynamicBipartiteGraph::from_graph(&base);
                let mut core = IncrementalCore::new(&g, alpha, beta);
                let mut rng = StdRng::seed_from_u64(seed ^ 0xC0DE);
                for _ in 0..160 {
                    let v = rng.gen_range(0..24);
                    let u = rng.gen_range(0..24);
                    if g.has_edge(v, u) {
                        g.delete_edge(v, u).unwrap();
                        core.on_delete(&g, v, u);
                    } else {
                        g.insert_edge(v, u).unwrap();
                        core.on_insert(&g, v, u);
                    }
                    let expected = alpha_beta_core(&g, alpha, beta);
                    assert_eq!(
                        core.members(),
                        expected,
                        "core diverged (alpha={alpha}, beta={beta}, seed={seed})"
                    );
                }
            }
        }
    }

    /// Degenerate thresholds: α = 0 keeps every left vertex unconditionally.
    #[test]
    fn incremental_core_zero_thresholds() {
        let mut g = DynamicBipartiteGraph::new(3, 3);
        let mut core = IncrementalCore::new(&g, 0, 1);
        assert_eq!(core.members().left.len(), 3);
        assert!(core.members().right.is_empty());
        g.insert_edge(1, 1).unwrap();
        core.on_insert(&g, 1, 1);
        assert!(core.contains_right(1));
        assert_eq!(core.members(), alpha_beta_core(&g, 0, 1));
        g.delete_edge(1, 1).unwrap();
        core.on_delete(&g, 1, 1);
        assert_eq!(core.members(), alpha_beta_core(&g, 0, 1));
        assert_eq!(core.alpha(), 0);
        assert_eq!(core.beta(), 1);
    }
}
