//! Dataset registry reproducing Table 1 of the paper.
//!
//! The paper evaluates on ten KONECT datasets (Divorce … Google). Those
//! files are not available in this offline environment, so each dataset is
//! replaced by a *synthetic stand-in* with the same `|L|`, `|R|` and `|E|`
//! and a skewed Chung–Lu degree profile (see `DESIGN.md` §3 for the
//! substitution rationale). The registry records both the paper's sizes and
//! a recommended "scale" used by the default harness runs so that the
//! experiments finish on a laptop: datasets up to `Marvel` generate at full
//! size, the larger ones are scaled down by the given factor unless the
//! harness is asked for the full size explicitly.

use crate::graph::BipartiteGraph;

use super::chung_lu::chung_lu_bipartite;

/// Static description of one dataset row of Table 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DatasetSpec {
    /// Dataset name as it appears in the paper.
    pub name: &'static str,
    /// Category column of Table 1.
    pub category: &'static str,
    /// `|L|` in the paper.
    pub num_left: u32,
    /// `|R|` in the paper.
    pub num_right: u32,
    /// `|E|` in the paper.
    pub num_edges: u64,
    /// Divisor applied by [`DatasetSpec::generate_scaled`] for the default
    /// laptop-scale harness runs (1 = generate at full size).
    pub default_scale: u32,
}

/// The ten datasets of Table 1.
pub const DATASETS: &[DatasetSpec] = &[
    DatasetSpec {
        name: "Divorce",
        category: "HumanSocial",
        num_left: 9,
        num_right: 50,
        num_edges: 225,
        default_scale: 1,
    },
    DatasetSpec {
        name: "Cfat",
        category: "Miscellaneous",
        num_left: 100,
        num_right: 100,
        num_edges: 802,
        default_scale: 1,
    },
    DatasetSpec {
        name: "Crime",
        category: "Social",
        num_left: 551,
        num_right: 829,
        num_edges: 1_476,
        default_scale: 1,
    },
    DatasetSpec {
        name: "Opsahl",
        category: "Authorship",
        num_left: 2_865,
        num_right: 4_558,
        num_edges: 16_910,
        default_scale: 1,
    },
    DatasetSpec {
        name: "Marvel",
        category: "Collaboration",
        num_left: 19_428,
        num_right: 6_486,
        num_edges: 96_662,
        default_scale: 1,
    },
    DatasetSpec {
        name: "Writer",
        category: "Affiliation",
        num_left: 89_356,
        num_right: 46_213,
        num_edges: 144_340,
        default_scale: 1,
    },
    DatasetSpec {
        name: "Actors",
        category: "Affiliation",
        num_left: 392_400,
        num_right: 127_823,
        num_edges: 1_470_404,
        default_scale: 4,
    },
    DatasetSpec {
        name: "IMDB",
        category: "Communication",
        num_left: 428_440,
        num_right: 896_308,
        num_edges: 3_782_463,
        default_scale: 8,
    },
    DatasetSpec {
        name: "DBLP",
        category: "Authorship",
        num_left: 1_425_813,
        num_right: 4_000_150,
        num_edges: 8_649_016,
        default_scale: 16,
    },
    DatasetSpec {
        name: "Google",
        category: "Hyperlink",
        num_left: 17_091_929,
        num_right: 3_108_141,
        num_edges: 14_693_125,
        default_scale: 64,
    },
];

impl DatasetSpec {
    /// Looks up a dataset by its (case-insensitive) name.
    pub fn by_name(name: &str) -> Option<&'static DatasetSpec> {
        DATASETS.iter().find(|d| d.name.eq_ignore_ascii_case(name))
    }

    /// Deterministic seed derived from the dataset name.
    pub fn seed(&self) -> u64 {
        self.name
            .bytes()
            .fold(0xcbf2_9ce4_8422_2325u64, |h, b| (h ^ b as u64).wrapping_mul(0x1000_0000_01b3))
    }

    /// Generates the synthetic stand-in at *full* Table-1 size.
    ///
    /// For the biggest datasets this allocates hundreds of millions of
    /// adjacency entries; prefer [`generate_scaled`](Self::generate_scaled)
    /// unless you specifically want the full-size run.
    pub fn generate_full(&self) -> BipartiteGraph {
        chung_lu_bipartite(self.num_left, self.num_right, self.num_edges, 2.2, self.seed())
    }

    /// Generates the stand-in scaled down by `scale` on every dimension
    /// (`scale = 1` is the full size).
    pub fn generate_with_scale(&self, scale: u32) -> BipartiteGraph {
        let scale = scale.max(1);
        chung_lu_bipartite(
            (self.num_left / scale).max(1),
            (self.num_right / scale).max(1),
            (self.num_edges / scale as u64).max(1),
            2.2,
            self.seed(),
        )
    }

    /// Generates the stand-in at the registry's default (laptop) scale.
    pub fn generate_scaled(&self) -> BipartiteGraph {
        self.generate_with_scale(self.default_scale)
    }

    /// The four "small" datasets used by the paper for the delay and
    /// solution-graph experiments (Figures 8 and 11).
    pub fn small_datasets() -> impl Iterator<Item = &'static DatasetSpec> {
        DATASETS.iter().take(4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_matches_table_1() {
        assert_eq!(DATASETS.len(), 10);
        let dblp = DatasetSpec::by_name("dblp").unwrap();
        assert_eq!(dblp.num_left, 1_425_813);
        assert_eq!(dblp.num_right, 4_000_150);
        assert_eq!(dblp.num_edges, 8_649_016);
        assert!(DatasetSpec::by_name("NoSuchDataset").is_none());
    }

    #[test]
    fn small_stand_ins_have_table_sizes() {
        let divorce = DatasetSpec::by_name("Divorce").unwrap().generate_full();
        assert_eq!(divorce.num_left(), 9);
        assert_eq!(divorce.num_right(), 50);
        // Chung–Lu ball dropping may lose a few duplicate samples.
        assert!(divorce.num_edges() as f64 >= 0.7 * 225.0);

        let cfat = DatasetSpec::by_name("Cfat").unwrap().generate_full();
        assert_eq!(cfat.num_left(), 100);
        assert_eq!(cfat.num_right(), 100);
    }

    #[test]
    fn scaled_generation_shrinks() {
        let writer = DatasetSpec::by_name("Writer").unwrap();
        let scaled = writer.generate_with_scale(10);
        assert_eq!(scaled.num_left(), writer.num_left / 10);
        // Ball-dropping oversamples by ~20% before duplicate removal, so the
        // realized count may exceed the scaled target slightly.
        assert!(scaled.num_edges() as f64 <= writer.num_edges as f64 / 10.0 * 1.25);
        assert!(scaled.num_edges() as f64 >= writer.num_edges as f64 / 10.0 * 0.6);
    }

    #[test]
    fn deterministic_per_dataset() {
        let a = DatasetSpec::by_name("Crime").unwrap().generate_scaled();
        let b = DatasetSpec::by_name("Crime").unwrap().generate_scaled();
        assert_eq!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
    }

    #[test]
    fn seeds_differ_across_datasets() {
        let seeds: Vec<u64> = DATASETS.iter().map(|d| d.seed()).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(seeds.len(), dedup.len());
    }

    #[test]
    fn small_dataset_helper() {
        let names: Vec<&str> = DatasetSpec::small_datasets().map(|d| d.name).collect();
        assert_eq!(names, vec!["Divorce", "Cfat", "Crime", "Opsahl"]);
    }
}
