//! Graphs with *planted* dense blocks (near-bicliques with a bounded number
//! of missing edges per vertex).
//!
//! These serve two purposes:
//!
//! * correctness workloads — a planted block with at most `k` missing edges
//!   per vertex is a k-biplex by construction, so enumeration algorithms
//!   must find a superset of it;
//! * the fraud-detection case study — the injected fraud block of the paper
//!   is exactly a planted quasi-biclique between fake users and fake
//!   products, camouflaged with edges to real products.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::graph::{BipartiteBuilder, BipartiteGraph};

/// Description of one planted block.
#[derive(Clone, Debug)]
pub struct PlantedBlock {
    /// Left vertices of the block (ids in the final graph).
    pub left: Vec<u32>,
    /// Right vertices of the block (ids in the final graph).
    pub right: Vec<u32>,
    /// Maximum number of edges *removed* per vertex inside the block.
    pub missing_per_vertex: usize,
}

/// A generated graph together with its planted ground truth.
#[derive(Clone, Debug)]
pub struct PlantedGraph {
    /// The graph (background noise + planted blocks).
    pub graph: BipartiteGraph,
    /// The planted blocks.
    pub blocks: Vec<PlantedBlock>,
}

/// Generates a sparse background graph and plants `num_blocks` dense blocks
/// of size `block_left × block_right`, each with at most `k` missing edges
/// per vertex (so each block is a k-biplex by construction).
///
/// * `background_edges` — number of uniform noise edges.
/// * Blocks occupy disjoint vertex ranges at the beginning of each side.
#[allow(clippy::too_many_arguments)] // mirrors the generator's natural parameter list
pub fn planted_biplexes(
    num_left: u32,
    num_right: u32,
    background_edges: u64,
    num_blocks: usize,
    block_left: u32,
    block_right: u32,
    k: usize,
    seed: u64,
) -> PlantedGraph {
    assert!(
        num_blocks as u64 * block_left as u64 <= num_left as u64,
        "planted blocks exceed the left side"
    );
    assert!(
        num_blocks as u64 * block_right as u64 <= num_right as u64,
        "planted blocks exceed the right side"
    );

    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = BipartiteBuilder::new(num_left, num_right);

    // Background noise.
    for _ in 0..background_edges {
        let v = rng.gen_range(0..num_left);
        let u = rng.gen_range(0..num_right);
        builder.add_edge_unchecked(v, u);
    }

    // Planted blocks.
    let mut blocks = Vec::with_capacity(num_blocks);
    for b in 0..num_blocks as u32 {
        let left: Vec<u32> = (b * block_left..(b + 1) * block_left).collect();
        let right: Vec<u32> = (b * block_right..(b + 1) * block_right).collect();

        // Start from the complete biclique, then remove up to `k` edges per
        // left vertex (keeping the right-side budget in check as well).
        let mut right_missing = vec![0usize; right.len()];
        for (li, &v) in left.iter().enumerate() {
            let mut removed: Vec<usize> = Vec::new();
            if k > 0 && right.len() > 1 {
                let remove_cnt = rng.gen_range(0..=k.min(right.len() - 1));
                while removed.len() < remove_cnt {
                    let candidate = rng.gen_range(0..right.len());
                    if !removed.contains(&candidate) && right_missing[candidate] < k {
                        removed.push(candidate);
                        right_missing[candidate] += 1;
                    } else {
                        break;
                    }
                }
            }
            let _ = li;
            for (ri, &u) in right.iter().enumerate() {
                if !removed.contains(&ri) {
                    builder.add_edge_unchecked(v, u);
                }
            }
        }

        blocks.push(PlantedBlock { left, right, missing_per_vertex: k });
    }

    PlantedGraph { graph: builder.build(), blocks }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block_is_k_biplex(g: &BipartiteGraph, block: &PlantedBlock) -> bool {
        let k = block.missing_per_vertex;
        for &v in &block.left {
            let missing = block.right.iter().filter(|&&u| !g.has_edge(v, u)).count();
            if missing > k {
                return false;
            }
        }
        for &u in &block.right {
            let missing = block.left.iter().filter(|&&v| !g.has_edge(v, u)).count();
            if missing > k {
                return false;
            }
        }
        true
    }

    #[test]
    fn planted_blocks_are_k_biplexes() {
        for seed in 0..5 {
            let planted = planted_biplexes(100, 100, 300, 3, 6, 8, 1, seed);
            assert_eq!(planted.blocks.len(), 3);
            for block in &planted.blocks {
                assert!(block_is_k_biplex(&planted.graph, block), "seed {seed}");
            }
        }
    }

    #[test]
    fn zero_k_blocks_are_bicliques() {
        let planted = planted_biplexes(50, 50, 100, 2, 5, 5, 0, 9);
        for block in &planted.blocks {
            for &v in &block.left {
                for &u in &block.right {
                    assert!(planted.graph.has_edge(v, u));
                }
            }
        }
    }

    #[test]
    fn deterministic() {
        let a = planted_biplexes(80, 80, 200, 2, 5, 5, 1, 7);
        let b = planted_biplexes(80, 80, 200, 2, 5, 5, 1, 7);
        assert_eq!(a.graph.edges().collect::<Vec<_>>(), b.graph.edges().collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "planted blocks exceed")]
    fn rejects_oversized_blocks() {
        planted_biplexes(10, 10, 0, 3, 5, 5, 1, 1);
    }

    #[test]
    fn blocks_occupy_disjoint_ranges() {
        let planted = planted_biplexes(100, 100, 0, 4, 5, 5, 1, 3);
        for (i, a) in planted.blocks.iter().enumerate() {
            for b in planted.blocks.iter().skip(i + 1) {
                assert!(a.left.iter().all(|v| !b.left.contains(v)));
                assert!(a.right.iter().all(|u| !b.right.contains(u)));
            }
        }
    }
}
