//! Erdős–Rényi bipartite graphs `G(|L|, |R|, m)`.
//!
//! The paper's synthetic experiments (Figure 9) create a fixed number of
//! vertices and then add a fixed number of uniformly random edges; the edge
//! density is defined as `|E| / (|L| + |R|)`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::graph::{BipartiteBuilder, BipartiteGraph};

/// Generates a uniform random bipartite graph with exactly `num_edges`
/// distinct edges (or the maximum possible, if fewer exist).
pub fn er_bipartite(num_left: u32, num_right: u32, num_edges: u64, seed: u64) -> BipartiteGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let possible = num_left as u128 * num_right as u128;
    let target = (num_edges as u128).min(possible) as u64;

    let mut builder = BipartiteBuilder::new(num_left, num_right);

    if possible == 0 || target == 0 {
        return builder.build();
    }

    // Dense regime: sample by inclusion probability to avoid rejection
    // stalls; sparse regime: rejection sampling with a hash set.
    if target as u128 * 3 >= possible {
        let p = target as f64 / possible as f64;
        for v in 0..num_left {
            for u in 0..num_right {
                if rng.gen::<f64>() < p {
                    builder.add_edge_unchecked(v, u);
                }
            }
        }
    } else {
        use std::collections::HashSet;
        let mut seen: HashSet<(u32, u32)> = HashSet::with_capacity(target as usize);
        builder.reserve(target as usize);
        while (seen.len() as u64) < target {
            let v = rng.gen_range(0..num_left);
            let u = rng.gen_range(0..num_right);
            if seen.insert((v, u)) {
                builder.add_edge_unchecked(v, u);
            }
        }
    }
    builder.build()
}

/// Generates an ER bipartite graph with a target *edge density*
/// `|E| / (|L| + |R|)`, matching the knob of Figure 9(b).
pub fn er_bipartite_with_density(
    num_left: u32,
    num_right: u32,
    density: f64,
    seed: u64,
) -> BipartiteGraph {
    let edges = (density * (num_left as f64 + num_right as f64)).round().max(0.0) as u64;
    er_bipartite(num_left, num_right, edges, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_edge_count_sparse() {
        let g = er_bipartite(100, 100, 500, 1);
        assert_eq!(g.num_edges(), 500);
        assert_eq!(g.num_left(), 100);
        assert_eq!(g.num_right(), 100);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = er_bipartite(50, 60, 300, 42);
        let b = er_bipartite(50, 60, 300, 42);
        assert_eq!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
        let c = er_bipartite(50, 60, 300, 43);
        assert_ne!(a.edges().collect::<Vec<_>>(), c.edges().collect::<Vec<_>>());
    }

    #[test]
    fn saturates_at_complete_graph() {
        let g = er_bipartite(5, 5, 1_000, 7);
        assert!(g.num_edges() <= 25);
    }

    #[test]
    fn dense_regime_approximates_target() {
        let g = er_bipartite(100, 100, 9_000, 3);
        let got = g.num_edges() as f64;
        assert!((got - 9_000.0).abs() < 600.0, "got {got}");
    }

    #[test]
    fn density_helper() {
        let g = er_bipartite_with_density(1_000, 1_000, 10.0, 5);
        assert_eq!(g.num_edges(), 20_000);
        let g = er_bipartite_with_density(10, 10, 0.0, 5);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn zero_vertices() {
        let g = er_bipartite(0, 10, 5, 1);
        assert_eq!(g.num_edges(), 0);
    }
}
