//! Chung–Lu style bipartite graphs with power-law expected degrees.
//!
//! The real KONECT datasets the paper evaluates on (Table 1) have heavily
//! skewed degree distributions. Since those datasets are not available
//! offline, the dataset registry generates stand-ins with the same vertex
//! and edge counts and a power-law degree profile, which preserves the
//! structural characteristics that drive the enumeration cost (a few hub
//! vertices, many low-degree vertices, locally dense neighbourhoods).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::graph::{BipartiteBuilder, BipartiteGraph};

/// Generates a bipartite graph with roughly `num_edges` edges where the
/// probability of an edge `(v, u)` is proportional to `w_L(v) · w_R(u)` and
/// the weights follow a power law with exponent `gamma` (typical social
/// graphs: 2.0–2.5).
///
/// Sparse targets use the standard weighted "ball dropping" scheme with
/// duplicates removed, so the realized edge count lands near (slightly
/// above or below) the target. Dense targets (at least a quarter of all
/// possible pairs) deduplicate while sampling and keep drawing until the
/// distinct target is reached, at the cost of a hash set of the sampled
/// pairs.
pub fn chung_lu_bipartite(
    num_left: u32,
    num_right: u32,
    num_edges: u64,
    gamma: f64,
    seed: u64,
) -> BipartiteGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = BipartiteBuilder::new(num_left, num_right);
    if num_left == 0 || num_right == 0 || num_edges == 0 {
        return builder.build();
    }

    let left_weights = power_law_weights(num_left as usize, gamma, &mut rng);
    let right_weights = power_law_weights(num_right as usize, gamma, &mut rng);
    let left_sampler = CumulativeSampler::new(&left_weights);
    let right_sampler = CumulativeSampler::new(&right_weights);

    let possible = num_left as u64 * num_right as u64;
    let target = num_edges.min(possible);
    builder.reserve(target as usize);
    if target.saturating_mul(4) >= possible {
        // Dense regime (e.g. the Divorce stand-in fills half of L×R): plain
        // ball dropping loses too many duplicates, so deduplicate while
        // sampling and keep drawing until the distinct target is reached.
        let mut seen = std::collections::HashSet::with_capacity(target as usize);
        let max_attempts = target.saturating_mul(100) + 1024;
        for _ in 0..max_attempts {
            if seen.len() as u64 >= target {
                break;
            }
            let v = left_sampler.sample(&mut rng) as u32;
            let u = right_sampler.sample(&mut rng) as u32;
            if seen.insert((v, u)) {
                builder.add_edge_unchecked(v, u);
            }
        }
    } else {
        // Sparse regime: sample endpoints independently in proportion to
        // their weights, oversampling modestly to compensate for the
        // duplicates removed by `build`.
        let attempts = target + target / 5 + 16;
        for _ in 0..attempts {
            let v = left_sampler.sample(&mut rng) as u32;
            let u = right_sampler.sample(&mut rng) as u32;
            builder.add_edge_unchecked(v, u);
        }
    }
    builder.build()
}

fn power_law_weights(n: usize, gamma: f64, rng: &mut StdRng) -> Vec<f64> {
    // Rank-based power law: weight(i) ∝ (i + shift)^(-1/(gamma-1)), with the
    // ranks randomly permuted so ids are not correlated with degree.
    let exponent = -1.0 / (gamma - 1.0).max(0.1);
    let mut weights: Vec<f64> = (0..n).map(|i| ((i + 1) as f64).powf(exponent)).collect();
    // Fisher–Yates shuffle of the weights.
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        weights.swap(i, j);
    }
    weights
}

/// Samples indices proportionally to a weight vector via binary search over
/// the cumulative distribution.
struct CumulativeSampler {
    cumulative: Vec<f64>,
    total: f64,
}

impl CumulativeSampler {
    fn new(weights: &[f64]) -> Self {
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            acc += w;
            cumulative.push(acc);
        }
        CumulativeSampler { cumulative, total: acc }
    }

    fn sample(&self, rng: &mut StdRng) -> usize {
        let x = rng.gen::<f64>() * self.total;
        match self.cumulative.binary_search_by(|probe| probe.total_cmp(&x)) {
            Ok(i) => i,
            Err(i) => i.min(self.cumulative.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_roughly_the_requested_edges() {
        let g = chung_lu_bipartite(2_000, 1_000, 10_000, 2.2, 11);
        let m = g.num_edges();
        assert!(m > 8_000 && m <= 12_200, "edge count {m}");
        assert_eq!(g.num_left(), 2_000);
        assert_eq!(g.num_right(), 1_000);
    }

    #[test]
    fn deterministic() {
        let a = chung_lu_bipartite(500, 500, 2_000, 2.1, 3);
        let b = chung_lu_bipartite(500, 500, 2_000, 2.1, 3);
        assert_eq!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
    }

    #[test]
    fn degrees_are_skewed() {
        let g = chung_lu_bipartite(5_000, 5_000, 50_000, 2.0, 5);
        let max = g.max_left_degree() as f64;
        let avg = g.num_edges() as f64 / g.num_left() as f64;
        // Power-law graphs have hubs far above the average degree.
        assert!(max > 4.0 * avg, "max {max} avg {avg}");
    }

    #[test]
    fn handles_degenerate_inputs() {
        assert_eq!(chung_lu_bipartite(0, 10, 100, 2.0, 1).num_edges(), 0);
        assert_eq!(chung_lu_bipartite(10, 0, 100, 2.0, 1).num_edges(), 0);
        assert_eq!(chung_lu_bipartite(10, 10, 0, 2.0, 1).num_edges(), 0);
    }
}
