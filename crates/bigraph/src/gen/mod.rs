//! Deterministic random bipartite graph generators.
//!
//! All generators are seeded explicitly so that every experiment in the
//! harness is reproducible bit-for-bit.
//!
//! * [`er`] — Erdős–Rényi `G(n_L, n_R, m)` graphs: the synthetic datasets of
//!   the paper's scalability experiments (Figure 9).
//! * [`chung_lu`] — Chung–Lu style graphs with power-law expected degrees:
//!   stand-ins for the skewed real datasets of Table 1.
//! * [`planted`] — background graphs with planted dense (quasi-biclique)
//!   blocks: ground-truth workloads for correctness tests and the fraud
//!   case study.
//! * [`datasets`] — the dataset registry reproducing Table 1.

pub mod chung_lu;
pub mod datasets;
pub mod er;
pub mod planted;

pub use chung_lu::chung_lu_bipartite;
pub use datasets::{DatasetSpec, DATASETS};
pub use er::{er_bipartite, er_bipartite_with_density};
pub use planted::{planted_biplexes, PlantedBlock, PlantedGraph};
