//! Vertex-ordering passes: degeneracy (core) and degree relabelings.
//!
//! The enumeration kernels spend most of their time intersecting CSR
//! neighbour slices. Relabeling vertices so that the dense core of the graph
//! occupies a contiguous low-id range shrinks the working set of those
//! scans (hub adjacency lists reference nearby ids) and lets the traversal
//! meet its hardest candidates first. The *solution set* of a maximal
//! k-biplex enumeration is a property of the graph, not of its labeling, so
//! a run on the relabeled graph followed by [`Relabeling`]'s inverse maps
//! returns exactly the same canonical solutions.

use crate::graph::{BipartiteBuilder, BipartiteGraph};

/// Which relabeling pass to apply before running an enumeration.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum VertexOrder {
    /// Keep the input ids (no relabeling).
    #[default]
    Input,
    /// Sort each side by descending degree (cheap, one pass).
    Degree,
    /// Bipartite degeneracy order: iteratively peel the minimum-degree
    /// vertex of either side; ids are assigned in *reverse* peel order so
    /// the innermost core starts at id 0.
    Degeneracy,
}

impl std::fmt::Display for VertexOrder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            VertexOrder::Input => "input",
            VertexOrder::Degree => "degree",
            VertexOrder::Degeneracy => "degeneracy",
        };
        f.write_str(s)
    }
}

impl std::str::FromStr for VertexOrder {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "input" => Ok(VertexOrder::Input),
            "degree" => Ok(VertexOrder::Degree),
            "degeneracy" => Ok(VertexOrder::Degeneracy),
            other => Err(format!(
                "unknown vertex order {other:?} (expected input, degree or degeneracy)"
            )),
        }
    }
}

/// A bijective relabeling of both sides of a bipartite graph, with the
/// forward and inverse maps materialized.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Relabeling {
    /// `left_new_to_old[new] = old` left id.
    pub left_new_to_old: Vec<u32>,
    /// `right_new_to_old[new] = old` right id.
    pub right_new_to_old: Vec<u32>,
    /// `left_old_to_new[old] = new` left id.
    pub left_old_to_new: Vec<u32>,
    /// `right_old_to_new[old] = new` right id.
    pub right_old_to_new: Vec<u32>,
}

impl Relabeling {
    /// Computes the relabeling selected by `order` for `g`.
    /// [`VertexOrder::Input`] yields the identity.
    pub fn compute(g: &BipartiteGraph, order: VertexOrder) -> Relabeling {
        match order {
            VertexOrder::Input => Self::identity(g),
            VertexOrder::Degree => Self::by_degree(g),
            VertexOrder::Degeneracy => Self::by_degeneracy(g),
        }
    }

    /// The identity relabeling of `g`.
    pub fn identity(g: &BipartiteGraph) -> Relabeling {
        let left: Vec<u32> = (0..g.num_left()).collect();
        let right: Vec<u32> = (0..g.num_right()).collect();
        Relabeling {
            left_old_to_new: left.clone(),
            right_old_to_new: right.clone(),
            left_new_to_old: left,
            right_new_to_old: right,
        }
    }

    fn by_degree(g: &BipartiteGraph) -> Relabeling {
        let mut left: Vec<u32> = (0..g.num_left()).collect();
        left.sort_by_key(|&v| (std::cmp::Reverse(g.left_degree(v)), v));
        let mut right: Vec<u32> = (0..g.num_right()).collect();
        right.sort_by_key(|&u| (std::cmp::Reverse(g.right_degree(u)), u));
        Self::from_new_to_old(left, right)
    }

    fn by_degeneracy(g: &BipartiteGraph) -> Relabeling {
        let (peel, _) = degeneracy_peel(g);
        // Reverse peel order: the innermost core (peeled last) gets the
        // smallest ids on its side.
        let mut left = Vec::with_capacity(g.num_left() as usize);
        let mut right = Vec::with_capacity(g.num_right() as usize);
        for &combined in peel.iter().rev() {
            if combined < g.num_left() {
                left.push(combined);
            } else {
                right.push(combined - g.num_left());
            }
        }
        Self::from_new_to_old(left, right)
    }

    fn from_new_to_old(left_new_to_old: Vec<u32>, right_new_to_old: Vec<u32>) -> Relabeling {
        let mut left_old_to_new = vec![0u32; left_new_to_old.len()];
        for (new, &old) in left_new_to_old.iter().enumerate() {
            left_old_to_new[old as usize] = new as u32;
        }
        let mut right_old_to_new = vec![0u32; right_new_to_old.len()];
        for (new, &old) in right_new_to_old.iter().enumerate() {
            right_old_to_new[old as usize] = new as u32;
        }
        Relabeling { left_new_to_old, right_new_to_old, left_old_to_new, right_old_to_new }
    }

    /// Materializes the relabeled graph: vertex `new` of the result is
    /// vertex `self.*_new_to_old[new]` of `g`.
    pub fn apply(&self, g: &BipartiteGraph) -> BipartiteGraph {
        let mut builder = BipartiteBuilder::new(g.num_left(), g.num_right());
        builder.reserve(g.num_edges() as usize);
        for (v, u) in g.edges() {
            builder.add_edge_unchecked(
                self.left_old_to_new[v as usize],
                self.right_old_to_new[u as usize],
            );
        }
        builder.build()
    }

    /// Maps a set of *relabeled* left ids back to sorted original ids.
    pub fn original_left_ids(&self, new_ids: &[u32]) -> Vec<u32> {
        let mut out: Vec<u32> = new_ids.iter().map(|&v| self.left_new_to_old[v as usize]).collect();
        out.sort_unstable();
        out
    }

    /// Maps a set of *relabeled* right ids back to sorted original ids.
    pub fn original_right_ids(&self, new_ids: &[u32]) -> Vec<u32> {
        let mut out: Vec<u32> =
            new_ids.iter().map(|&u| self.right_new_to_old[u as usize]).collect();
        out.sort_unstable();
        out
    }

    /// `true` when the relabeling is the identity on both sides.
    pub fn is_identity(&self) -> bool {
        self.left_new_to_old.iter().enumerate().all(|(i, &v)| i as u32 == v)
            && self.right_new_to_old.iter().enumerate().all(|(i, &u)| i as u32 == u)
    }
}

/// The bipartite degeneracy of `g`: the maximum over the peeling process of
/// the minimum degree at the moment of removal (both sides pooled).
pub fn bipartite_degeneracy(g: &BipartiteGraph) -> usize {
    degeneracy_peel(g).1
}

/// Runs the O(|V| + |E|) min-degree peeling over the pooled vertex set.
/// Returns the peel sequence (left vertex `v` encoded as `v`, right vertex
/// `u` as `num_left + u`) and the degeneracy.
fn degeneracy_peel(g: &BipartiteGraph) -> (Vec<u32>, usize) {
    let nl = g.num_left() as usize;
    let nr = g.num_right() as usize;
    let total = nl + nr;
    let mut deg: Vec<usize> = (0..nl)
        .map(|v| g.left_degree(v as u32))
        .chain((0..nr).map(|u| g.right_degree(u as u32)))
        .collect();
    let max_deg = deg.iter().copied().max().unwrap_or(0);

    // Bucket queue with lazy deletion: stale entries are skipped when their
    // recorded degree no longer matches.
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); max_deg + 1];
    for (x, &d) in deg.iter().enumerate() {
        buckets[d].push(x as u32);
    }
    let mut removed = vec![false; total];
    let mut peel = Vec::with_capacity(total);
    let mut degeneracy = 0usize;
    let mut d = 0usize;
    while peel.len() < total {
        let Some(x) = buckets.get_mut(d).and_then(Vec::pop) else {
            d += 1;
            continue;
        };
        let xi = x as usize;
        if removed[xi] || deg[xi] != d {
            continue; // stale bucket entry
        }
        removed[xi] = true;
        degeneracy = degeneracy.max(d);
        peel.push(x);
        let neighbors: &[u32] =
            if xi < nl { g.left_neighbors(x) } else { g.right_neighbors(x - nl as u32) };
        for &w in neighbors {
            let wi = if xi < nl { nl + w as usize } else { w as usize };
            if !removed[wi] {
                deg[wi] -= 1;
                buckets[deg[wi]].push(wi as u32);
            }
        }
        d = d.saturating_sub(1);
    }
    (peel, degeneracy)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn star_plus_core() -> BipartiteGraph {
        // A 3×3 complete core (v0..v2 × u0..u2) plus pendant leaves v3–u3
        // and a degree-1 left leaf v4 attached to the core.
        let mut edges = Vec::new();
        for v in 0u32..3 {
            for u in 0u32..3 {
                edges.push((v, u));
            }
        }
        edges.push((3, 3));
        edges.push((4, 0));
        BipartiteGraph::from_edges(5, 4, &edges).unwrap()
    }

    #[test]
    fn identity_roundtrip() {
        let g = star_plus_core();
        let relab = Relabeling::compute(&g, VertexOrder::Input);
        assert!(relab.is_identity());
        let rg = relab.apply(&g);
        assert_eq!(rg.edges().collect::<Vec<_>>(), g.edges().collect::<Vec<_>>());
    }

    #[test]
    fn degeneracy_of_known_graphs() {
        let g = star_plus_core();
        // The 3×3 biclique core forces degeneracy 3 (a vertex of it is only
        // removed once its side of the core shrinks, at degree 3).
        assert_eq!(bipartite_degeneracy(&g), 3);
        let empty = BipartiteGraph::from_edges(0, 0, &[]).unwrap();
        assert_eq!(bipartite_degeneracy(&empty), 0);
        let matching = BipartiteGraph::from_edges(3, 3, &[(0, 0), (1, 1), (2, 2)]).unwrap();
        assert_eq!(bipartite_degeneracy(&matching), 1);
    }

    #[test]
    fn degeneracy_relabel_puts_core_first() {
        let g = star_plus_core();
        let relab = Relabeling::compute(&g, VertexOrder::Degeneracy);
        // The pendant leaves are peeled first, so they end with the largest
        // new ids; the core occupies the low ids.
        assert!(relab.left_old_to_new[3] >= 3, "pendant v3 must leave the core range");
        assert!(relab.left_old_to_new[4] >= 3, "leaf v4 must leave the core range");
        assert!(relab.right_old_to_new[3] == 3, "pendant u3 gets the last right id");
        for v in 0..3 {
            assert!(relab.left_old_to_new[v] < 3, "core left vertex {v} stays low");
        }
    }

    #[test]
    fn degree_relabel_sorts_by_degree() {
        let g = star_plus_core();
        let relab = Relabeling::compute(&g, VertexOrder::Degree);
        let rg = relab.apply(&g);
        for v in 1..rg.num_left() {
            assert!(rg.left_degree(v - 1) >= rg.left_degree(v));
        }
        for u in 1..rg.num_right() {
            assert!(rg.right_degree(u - 1) >= rg.right_degree(u));
        }
    }

    #[test]
    fn relabeled_graph_is_isomorphic() {
        let g = star_plus_core();
        for order in [VertexOrder::Degree, VertexOrder::Degeneracy] {
            let relab = Relabeling::compute(&g, order);
            let rg = relab.apply(&g);
            assert_eq!(rg.num_edges(), g.num_edges(), "{order}");
            for v in 0..g.num_left() {
                for u in 0..g.num_right() {
                    let nv = relab.left_old_to_new[v as usize];
                    let nu = relab.right_old_to_new[u as usize];
                    assert_eq!(g.has_edge(v, u), rg.has_edge(nv, nu), "{order} ({v},{u})");
                }
            }
        }
    }

    #[test]
    fn inverse_maps_roundtrip() {
        let g = star_plus_core();
        let relab = Relabeling::compute(&g, VertexOrder::Degeneracy);
        for v in 0..g.num_left() {
            assert_eq!(relab.left_new_to_old[relab.left_old_to_new[v as usize] as usize], v);
        }
        for u in 0..g.num_right() {
            assert_eq!(relab.right_new_to_old[relab.right_old_to_new[u as usize] as usize], u);
        }
        let news = vec![relab.left_old_to_new[2], relab.left_old_to_new[0]];
        assert_eq!(relab.original_left_ids(&news), vec![0, 2]);
        let news = vec![relab.right_old_to_new[1]];
        assert_eq!(relab.original_right_ids(&news), vec![1]);
    }

    #[test]
    fn order_parsing() {
        assert_eq!("input".parse::<VertexOrder>().unwrap(), VertexOrder::Input);
        assert_eq!("degree".parse::<VertexOrder>().unwrap(), VertexOrder::Degree);
        assert_eq!("degeneracy".parse::<VertexOrder>().unwrap(), VertexOrder::Degeneracy);
        assert!("fancy".parse::<VertexOrder>().is_err());
        assert_eq!(VertexOrder::Degeneracy.to_string(), "degeneracy");
        assert_eq!(VertexOrder::default(), VertexOrder::Input);
    }
}
