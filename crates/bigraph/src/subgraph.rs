//! Induced bipartite subgraphs with id remapping.
//!
//! The large-MBP pipeline first reduces the input graph with a
//! (θ−k)-core decomposition and then enumerates on the reduced graph; the
//! mapping stored here translates solutions back to the original ids.

use crate::graph::BipartiteGraph;

/// An induced subgraph `G[L' ∪ R']` re-indexed to dense ids, together with
/// the mapping back to the original graph's ids.
#[derive(Clone, Debug)]
pub struct InducedSubgraph {
    /// The re-indexed subgraph.
    pub graph: BipartiteGraph,
    /// `left_map[new_id] = original left id`.
    pub left_map: Vec<u32>,
    /// `right_map[new_id] = original right id`.
    pub right_map: Vec<u32>,
}

impl InducedSubgraph {
    /// Extracts the induced subgraph on the given (not necessarily sorted)
    /// left and right vertex subsets of `g`. Duplicate ids are ignored.
    pub fn new(g: &BipartiteGraph, left: &[u32], right: &[u32]) -> Self {
        let mut left_map: Vec<u32> = left.to_vec();
        left_map.sort_unstable();
        left_map.dedup();
        let mut right_map: Vec<u32> = right.to_vec();
        right_map.sort_unstable();
        right_map.dedup();

        // Inverse maps: original id -> new id (u32::MAX when absent).
        let mut right_inv = vec![u32::MAX; g.num_right() as usize];
        for (new_id, &orig) in right_map.iter().enumerate() {
            right_inv[orig as usize] = new_id as u32;
        }

        let mut builder =
            crate::graph::BipartiteBuilder::new(left_map.len() as u32, right_map.len() as u32);
        for (new_v, &orig_v) in left_map.iter().enumerate() {
            for &orig_u in g.left_neighbors(orig_v) {
                let new_u = right_inv[orig_u as usize];
                if new_u != u32::MAX {
                    builder.add_edge_unchecked(new_v as u32, new_u);
                }
            }
        }

        InducedSubgraph { graph: builder.build(), left_map, right_map }
    }

    /// Translates a left id of the subgraph back to the original graph.
    #[inline]
    pub fn original_left(&self, v: u32) -> u32 {
        self.left_map[v as usize]
    }

    /// Translates a right id of the subgraph back to the original graph.
    #[inline]
    pub fn original_right(&self, u: u32) -> u32 {
        self.right_map[u as usize]
    }

    /// Translates a whole solution `(L, R)` (subgraph ids) back to original ids.
    pub fn original_pair(&self, left: &[u32], right: &[u32]) -> (Vec<u32>, Vec<u32>) {
        let l = left.iter().map(|&v| self.original_left(v)).collect();
        let r = right.iter().map(|&u| self.original_right(u)).collect();
        (l, r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> BipartiteGraph {
        // 4 x 4 "diagonal-ish" graph: v connects u iff |v - u| <= 1.
        let mut edges = Vec::new();
        for v in 0u32..4 {
            for u in 0u32..4 {
                if (v as i64 - u as i64).abs() <= 1 {
                    edges.push((v, u));
                }
            }
        }
        BipartiteGraph::from_edges(4, 4, &edges).unwrap()
    }

    #[test]
    fn extracts_only_internal_edges() {
        let g = grid();
        let s = InducedSubgraph::new(&g, &[0, 1], &[0, 1, 2]);
        assert_eq!(s.graph.num_left(), 2);
        assert_eq!(s.graph.num_right(), 3);
        // v0: u0,u1 ; v1: u0,u1,u2 (within the selection)
        assert_eq!(s.graph.num_edges(), 5);
        assert!(s.graph.has_edge(0, 0));
        assert!(s.graph.has_edge(1, 2));
        assert!(!s.graph.has_edge(0, 2));
    }

    #[test]
    fn maps_back_to_original_ids() {
        let g = grid();
        let s = InducedSubgraph::new(&g, &[2, 3], &[1, 3]);
        assert_eq!(s.original_left(0), 2);
        assert_eq!(s.original_left(1), 3);
        assert_eq!(s.original_right(0), 1);
        assert_eq!(s.original_right(1), 3);
        let (l, r) = s.original_pair(&[0, 1], &[1]);
        assert_eq!(l, vec![2, 3]);
        assert_eq!(r, vec![3]);
    }

    #[test]
    fn duplicate_and_unsorted_input() {
        let g = grid();
        let s = InducedSubgraph::new(&g, &[3, 1, 3, 1], &[2, 0, 2]);
        assert_eq!(s.graph.num_left(), 2);
        assert_eq!(s.graph.num_right(), 2);
        assert_eq!(s.left_map, vec![1, 3]);
        assert_eq!(s.right_map, vec![0, 2]);
    }

    #[test]
    fn empty_selection() {
        let g = grid();
        let s = InducedSubgraph::new(&g, &[], &[0, 1]);
        assert_eq!(s.graph.num_left(), 0);
        assert_eq!(s.graph.num_edges(), 0);
    }

    #[test]
    fn edge_counts_match_manual_check() {
        let g = grid();
        let s = InducedSubgraph::new(&g, &[0, 1, 2, 3], &[0, 1, 2, 3]);
        assert_eq!(s.graph.num_edges(), g.num_edges());
    }
}
