//! The immutable CSR bipartite graph and its builder.
//!
//! Vertices on each side use their own dense `u32` id space:
//! `0..num_left()` on the left, `0..num_right()` on the right. Adjacency is
//! stored twice (left→right and right→left) in CSR form with sorted
//! neighbour lists, so `has_edge` is a binary search over the smaller of the
//! two adjacency lists.

use crate::csr::Csr;
use crate::{Error, Result};

/// Which side of the bipartition a vertex belongs to.
///
/// Following the paper, the left side is `L` (e.g. users, authors) and the
/// right side is `R` (e.g. products, papers).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Side {
    /// The left vertex class `L`.
    Left,
    /// The right vertex class `R`.
    Right,
}

impl Side {
    /// The opposite side.
    #[inline]
    pub fn flip(self) -> Side {
        match self {
            Side::Left => Side::Right,
            Side::Right => Side::Left,
        }
    }
}

/// A side-tagged vertex reference.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VertexRef {
    /// Side the vertex lives on.
    pub side: Side,
    /// Dense id within that side.
    pub id: u32,
}

impl VertexRef {
    /// Convenience constructor for a left vertex.
    pub fn left(id: u32) -> Self {
        VertexRef { side: Side::Left, id }
    }

    /// Convenience constructor for a right vertex.
    pub fn right(id: u32) -> Self {
        VertexRef { side: Side::Right, id }
    }
}

/// An immutable, undirected, unweighted bipartite graph stored as two
/// [`Csr`] halves (left→right and right→left).
#[derive(Clone, Debug, Default)]
pub struct BipartiteGraph {
    left: Csr,
    right: Csr,
}

impl BipartiteGraph {
    /// Assembles a graph from two pre-built CSR halves (left→right and
    /// right→left). The halves must describe the same edge set; this is the
    /// fast path used by [`crate::dynamic::DynamicBipartiteGraph::snapshot`],
    /// whose adjacency lists are already sorted and deduplicated.
    pub(crate) fn from_halves(left: Csr, right: Csr) -> Self {
        debug_assert_eq!(left.num_targets(), right.num_targets());
        BipartiteGraph { left, right }
    }

    /// Builds a graph from an edge list; `(v, u)` means left vertex `v` is
    /// adjacent to right vertex `u`. Duplicate edges are removed.
    pub fn from_edges(num_left: u32, num_right: u32, edges: &[(u32, u32)]) -> Result<Self> {
        let mut builder = BipartiteBuilder::new(num_left, num_right);
        for &(v, u) in edges {
            builder.add_edge(v, u)?;
        }
        Ok(builder.build())
    }

    /// Number of left vertices `|L|`.
    #[inline]
    pub fn num_left(&self) -> u32 {
        self.left.len()
    }

    /// Number of right vertices `|R|`.
    #[inline]
    pub fn num_right(&self) -> u32 {
        self.right.len()
    }

    /// Total number of vertices `|L| + |R|`.
    #[inline]
    pub fn num_vertices(&self) -> u64 {
        self.num_left() as u64 + self.num_right() as u64
    }

    /// Number of (undirected) edges `|E|`.
    #[inline]
    pub fn num_edges(&self) -> u64 {
        self.left.num_targets() as u64
    }

    /// Edge density `|E| / (|L| + |R|)` as defined in the paper's
    /// experiments section.
    pub fn edge_density(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            self.num_edges() as f64 / self.num_vertices() as f64
        }
    }

    /// Sorted neighbours (right ids) of left vertex `v`.
    #[inline]
    pub fn left_neighbors(&self, v: u32) -> &[u32] {
        self.left.neighbors(v)
    }

    /// Sorted neighbours (left ids) of right vertex `u`.
    #[inline]
    pub fn right_neighbors(&self, u: u32) -> &[u32] {
        self.right.neighbors(u)
    }

    /// Sorted neighbours of a side-tagged vertex (ids live on the other side).
    #[inline]
    pub fn neighbors(&self, v: VertexRef) -> &[u32] {
        match v.side {
            Side::Left => self.left_neighbors(v.id),
            Side::Right => self.right_neighbors(v.id),
        }
    }

    /// Degree of left vertex `v`.
    #[inline]
    pub fn left_degree(&self, v: u32) -> usize {
        self.left.degree(v)
    }

    /// Degree of right vertex `u`.
    #[inline]
    pub fn right_degree(&self, u: u32) -> usize {
        self.right.degree(u)
    }

    /// Degree of a side-tagged vertex.
    #[inline]
    pub fn degree(&self, v: VertexRef) -> usize {
        self.neighbors(v).len()
    }

    /// Number of vertices on the given side.
    #[inline]
    pub fn side_len(&self, side: Side) -> u32 {
        match side {
            Side::Left => self.num_left(),
            Side::Right => self.num_right(),
        }
    }

    /// `true` iff left vertex `v` and right vertex `u` are adjacent.
    /// Searches the shorter of the two adjacency lists.
    #[inline]
    pub fn has_edge(&self, v: u32, u: u32) -> bool {
        let ln = self.left_neighbors(v);
        let rn = self.right_neighbors(u);
        if ln.len() <= rn.len() {
            ln.binary_search(&u).is_ok()
        } else {
            rn.binary_search(&v).is_ok()
        }
    }

    /// Iterates over all edges as `(left, right)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        (0..self.num_left()).flat_map(move |v| self.left_neighbors(v).iter().map(move |&u| (v, u)))
    }

    /// Returns the transposed graph (left and right sides swapped). Used to
    /// run the "right-anchored" symmetric variant of the traversal by
    /// re-using the left-anchored implementation.
    pub fn transpose(&self) -> BipartiteGraph {
        BipartiteGraph { left: self.right.clone(), right: self.left.clone() }
    }

    /// Maximum degree over the left side (0 for an empty side).
    pub fn max_left_degree(&self) -> usize {
        (0..self.num_left()).map(|v| self.left_degree(v)).max().unwrap_or(0)
    }

    /// Maximum degree over the right side (0 for an empty side).
    pub fn max_right_degree(&self) -> usize {
        (0..self.num_right()).map(|u| self.right_degree(u)).max().unwrap_or(0)
    }
}

/// Incremental builder for [`BipartiteGraph`].
#[derive(Clone, Debug)]
pub struct BipartiteBuilder {
    num_left: u32,
    num_right: u32,
    edges: Vec<(u32, u32)>,
}

impl BipartiteBuilder {
    /// New builder for a graph with `num_left` left and `num_right` right
    /// vertices (ids are `0..num_left` and `0..num_right`).
    pub fn new(num_left: u32, num_right: u32) -> Self {
        BipartiteBuilder { num_left, num_right, edges: Vec::new() }
    }

    /// Pre-allocates space for `n` more edges.
    pub fn reserve(&mut self, n: usize) {
        self.edges.reserve(n);
    }

    /// Adds the edge `(left v, right u)`; duplicates are removed at
    /// [`build`](Self::build) time.
    pub fn add_edge(&mut self, v: u32, u: u32) -> Result<()> {
        if v >= self.num_left {
            return Err(Error::VertexOutOfRange { side: Side::Left, id: v, len: self.num_left });
        }
        if u >= self.num_right {
            return Err(Error::VertexOutOfRange { side: Side::Right, id: u, len: self.num_right });
        }
        self.edges.push((v, u));
        Ok(())
    }

    /// Adds an edge without range checks beyond a debug assertion. Intended
    /// for generators that construct ids themselves.
    pub fn add_edge_unchecked(&mut self, v: u32, u: u32) {
        debug_assert!(v < self.num_left && u < self.num_right);
        self.edges.push((v, u));
    }

    /// Finalizes the CSR representation (sorts and deduplicates the edges).
    pub fn build(mut self) -> BipartiteGraph {
        self.edges.sort_unstable();
        self.edges.dedup();

        let nl = self.num_left as usize;
        let nr = self.num_right as usize;

        let mut left_offsets = vec![0usize; nl + 1];
        let mut right_offsets = vec![0usize; nr + 1];
        for &(v, u) in &self.edges {
            left_offsets[v as usize + 1] += 1;
            right_offsets[u as usize + 1] += 1;
        }
        for i in 0..nl {
            left_offsets[i + 1] += left_offsets[i];
        }
        for i in 0..nr {
            right_offsets[i + 1] += right_offsets[i];
        }

        let mut left_neighbors = vec![0u32; self.edges.len()];
        let mut right_neighbors = vec![0u32; self.edges.len()];
        let mut lcur = left_offsets.clone();
        let mut rcur = right_offsets.clone();
        for &(v, u) in &self.edges {
            left_neighbors[lcur[v as usize]] = u;
            lcur[v as usize] += 1;
            right_neighbors[rcur[u as usize]] = v;
            rcur[u as usize] += 1;
        }
        // The edge list is sorted by (v, u) so each left adjacency list is
        // already sorted; right adjacency lists are filled in increasing v
        // order so they are sorted too.

        BipartiteGraph {
            left: Csr::from_parts(left_offsets, left_neighbors),
            right: Csr::from_parts(right_offsets, right_neighbors),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_example() -> BipartiteGraph {
        // A small dense 5x5 fixture in the spirit of the paper's running
        // example (Figure 1): L = {v0..v4}, R = {u0..u4}, one full-degree
        // left vertex and a few asymmetric gaps. Used across the workspace
        // tests.
        BipartiteGraph::from_edges(
            5,
            5,
            &[
                (0, 0),
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 0),
                (1, 1),
                (1, 2),
                (1, 3),
                (2, 0),
                (2, 1),
                (2, 2),
                (3, 2),
                (3, 3),
                (3, 4),
                (4, 0),
                (4, 1),
                (4, 2),
                (4, 3),
                (4, 4),
            ],
        )
        .unwrap()
    }

    #[test]
    fn counts_and_density() {
        let g = paper_example();
        assert_eq!(g.num_left(), 5);
        assert_eq!(g.num_right(), 5);
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.num_edges(), 19);
        assert!((g.edge_density() - 1.9).abs() < 1e-12);
    }

    #[test]
    fn adjacency_is_sorted_and_symmetric() {
        let g = paper_example();
        for v in 0..g.num_left() {
            let n = g.left_neighbors(v);
            assert!(n.windows(2).all(|w| w[0] < w[1]));
            for &u in n {
                assert!(g.right_neighbors(u).contains(&v));
                assert!(g.has_edge(v, u));
            }
        }
        for u in 0..g.num_right() {
            let n = g.right_neighbors(u);
            assert!(n.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn has_edge_negative() {
        let g = paper_example();
        assert!(!g.has_edge(2, 3));
        assert!(!g.has_edge(2, 4));
        assert!(!g.has_edge(3, 0));
        assert!(!g.has_edge(3, 1));
    }

    #[test]
    fn duplicate_edges_are_removed() {
        let g = BipartiteGraph::from_edges(2, 2, &[(0, 0), (0, 0), (1, 1), (0, 0)]).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.left_degree(0), 1);
    }

    #[test]
    fn out_of_range_edge_rejected() {
        let err = BipartiteGraph::from_edges(2, 2, &[(2, 0)]);
        assert!(err.is_err());
        let err = BipartiteGraph::from_edges(2, 2, &[(0, 5)]);
        assert!(err.is_err());
    }

    #[test]
    fn empty_graph() {
        let g = BipartiteGraph::from_edges(0, 0, &[]).unwrap();
        assert_eq!(g.num_left(), 0);
        assert_eq!(g.num_right(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.edge_density(), 0.0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn isolated_vertices() {
        let g = BipartiteGraph::from_edges(4, 3, &[(0, 0)]).unwrap();
        assert_eq!(g.left_degree(3), 0);
        assert_eq!(g.right_degree(2), 0);
        assert_eq!(g.max_left_degree(), 1);
    }

    #[test]
    fn edges_iterator_roundtrip() {
        let g = paper_example();
        let edges: Vec<(u32, u32)> = g.edges().collect();
        assert_eq!(edges.len(), 19);
        let g2 = BipartiteGraph::from_edges(5, 5, &edges).unwrap();
        assert_eq!(g2.num_edges(), g.num_edges());
        for v in 0..5 {
            assert_eq!(g.left_neighbors(v), g2.left_neighbors(v));
        }
    }

    #[test]
    fn transpose_swaps_sides() {
        let g = paper_example();
        let t = g.transpose();
        assert_eq!(t.num_left(), g.num_right());
        assert_eq!(t.num_right(), g.num_left());
        assert_eq!(t.num_edges(), g.num_edges());
        for v in 0..g.num_left() {
            for u in 0..g.num_right() {
                assert_eq!(g.has_edge(v, u), t.has_edge(u, v));
            }
        }
        // Double transpose is the identity.
        let tt = t.transpose();
        assert_eq!(tt.edges().collect::<Vec<_>>(), g.edges().collect::<Vec<_>>());
    }

    #[test]
    fn vertex_ref_helpers() {
        let g = paper_example();
        assert_eq!(g.neighbors(VertexRef::left(4)).len(), 5);
        assert_eq!(g.degree(VertexRef::right(4)), 2);
        assert_eq!(Side::Left.flip(), Side::Right);
        assert_eq!(Side::Right.flip(), Side::Left);
        assert_eq!(g.side_len(Side::Left), 5);
    }
}
