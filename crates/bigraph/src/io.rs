//! Plain-text edge-list IO.
//!
//! Format (one record per line, `#` or `%` starts a comment — the latter is
//! the KONECT convention used by the paper's datasets):
//!
//! ```text
//! # bipartite <num_left> <num_right>
//! <left_id> <right_id>
//! ...
//! ```
//!
//! If the header line is missing, the side sizes are inferred as
//! `max id + 1` on each side.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::graph::{BipartiteBuilder, BipartiteGraph};
use crate::{Error, Result};

/// Reads a bipartite graph from any reader in the edge-list format.
pub fn read_edge_list<R: Read>(reader: R) -> Result<BipartiteGraph> {
    let reader = BufReader::new(reader);
    let mut declared: Option<(u32, u32)> = None;
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut max_left = 0u32;
    let mut max_right = 0u32;
    let mut saw_edge = false;

    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim();
            if let Some(spec) = rest.strip_prefix("bipartite") {
                let mut it = spec.split_whitespace();
                let nl = it.next().and_then(|t| t.parse::<u32>().ok());
                let nr = it.next().and_then(|t| t.parse::<u32>().ok());
                if let (Some(nl), Some(nr)) = (nl, nr) {
                    declared = Some((nl, nr));
                }
            }
            continue;
        }
        if line.starts_with('%') {
            continue;
        }
        let mut it = line.split_whitespace();
        let v = it.next().and_then(|t| t.parse::<u32>().ok()).ok_or_else(|| Error::Parse {
            line: lineno + 1,
            msg: format!("expected `<left> <right>`, got {line:?}"),
        })?;
        let u = it.next().and_then(|t| t.parse::<u32>().ok()).ok_or_else(|| Error::Parse {
            line: lineno + 1,
            msg: format!("expected `<left> <right>`, got {line:?}"),
        })?;
        saw_edge = true;
        max_left = max_left.max(v);
        max_right = max_right.max(u);
        edges.push((v, u));
    }

    let (num_left, num_right) =
        declared.unwrap_or(if saw_edge { (max_left + 1, max_right + 1) } else { (0, 0) });

    let mut builder = BipartiteBuilder::new(num_left, num_right);
    builder.reserve(edges.len());
    for (v, u) in edges {
        builder.add_edge(v, u)?;
    }
    Ok(builder.build())
}

/// Writes a bipartite graph in the edge-list format (with header).
pub fn write_edge_list<W: Write>(g: &BipartiteGraph, writer: W) -> Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# bipartite {} {}", g.num_left(), g.num_right())?;
    for (v, u) in g.edges() {
        writeln!(w, "{v} {u}")?;
    }
    w.flush()?;
    Ok(())
}

/// Reads a graph from a file path.
pub fn read_edge_list_file<P: AsRef<Path>>(path: P) -> Result<BipartiteGraph> {
    read_edge_list(std::fs::File::open(path)?)
}

/// Writes a graph to a file path.
pub fn write_edge_list_file<P: AsRef<Path>>(g: &BipartiteGraph, path: P) -> Result<()> {
    write_edge_list(g, std::fs::File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_through_memory() {
        let g = BipartiteGraph::from_edges(3, 4, &[(0, 0), (1, 2), (2, 3), (0, 1)]).unwrap();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(&buf[..]).unwrap();
        assert_eq!(g2.num_left(), 3);
        assert_eq!(g2.num_right(), 4);
        assert_eq!(g2.num_edges(), 4);
        for v in 0..3 {
            assert_eq!(g.left_neighbors(v), g2.left_neighbors(v));
        }
    }

    #[test]
    fn header_declares_isolated_vertices() {
        let text = "# bipartite 10 7\n0 0\n3 6\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_left(), 10);
        assert_eq!(g.num_right(), 7);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn infers_sizes_without_header() {
        let text = "0 0\n2 5\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_left(), 3);
        assert_eq!(g.num_right(), 6);
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let text = "% konect style comment\n\n# plain comment\n0 1\n\n1 0\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn rejects_garbage() {
        let text = "0 zero\n";
        assert!(read_edge_list(text.as_bytes()).is_err());
        let text = "17\n";
        assert!(read_edge_list(text.as_bytes()).is_err());
    }

    #[test]
    fn empty_input() {
        let g = read_edge_list("".as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 0);
    }

    #[test]
    fn file_roundtrip() {
        let g = BipartiteGraph::from_edges(2, 2, &[(0, 0), (1, 1)]).unwrap();
        let dir = std::env::temp_dir().join("bigraph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.txt");
        write_edge_list_file(&g, &path).unwrap();
        let g2 = read_edge_list_file(&path).unwrap();
        assert_eq!(g2.num_edges(), 2);
        std::fs::remove_file(path).ok();
    }
}
