//! # bigraph — bipartite graph substrate
//!
//! This crate provides the graph infrastructure shared by every algorithm in
//! the workspace:
//!
//! * [`BipartiteGraph`] — an immutable, CSR-encoded undirected bipartite graph
//!   with sorted adjacency lists on both sides and O(log d) edge queries.
//! * [`BipartiteBuilder`] — incremental construction from edge pairs with
//!   duplicate removal.
//! * [`csr::Csr`] — the one-sided compressed-sparse-row half underlying the
//!   graph.
//! * [`intersect`] — the sorted-slice intersection kernel layer (merge /
//!   gallop / branchless chunked / bitset-chunk) behind a single
//!   [`intersect::dispatch`] entry with a measured crossover heuristic and
//!   a per-thread [`Kernel`] override for A/B runs.
//! * [`order`] — degeneracy/degree vertex relabelings ([`VertexOrder`]) that
//!   pack the dense core into a contiguous low-id range before enumeration.
//! * [`bitset::BitSet`] — a fixed-capacity bitset used pervasively for vertex
//!   set membership in the enumeration algorithms.
//! * [`gen`] — deterministic random generators (Erdős–Rényi, Chung–Lu
//!   power-law, planted quasi-biclique blocks) and the dataset registry that
//!   stands in for the paper's KONECT datasets (Table 1).
//! * [`core_decomp`] — (α,β)-core peeling used both as a preprocessing step
//!   for large-MBP enumeration and as a detector in the fraud case study,
//!   plus [`IncrementalCore`], the same membership maintained under edge
//!   updates by local cascades instead of full re-peels.
//! * [`dynamic`] — [`DynamicBipartiteGraph`], a mutable adjacency with
//!   checked `insert_edge`/`delete_edge` and cheap CSR re-materialization,
//!   the substrate for incremental maximal-k-biplex maintenance.
//! * [`subgraph`] — induced-subgraph extraction with id remapping.
//! * [`general`] — general (unipartite) graphs and the *inflation* of a
//!   bipartite graph used by the FaPlexen-style baseline.
//! * [`io`] — a plain edge-list text format for persisting graphs.
//! * [`formats`] — KONECT `out.*` downloads and adjacency lists, plus
//!   format sniffing, so the harness can also run on the paper's original
//!   datasets when they are available.
//!
//! The crate has no dependency on the enumeration algorithms; it is a pure
//! substrate and can be reused on its own.
//!
//! ## Quick start
//!
//! ```
//! use bigraph::{BipartiteGraph, BitSet};
//!
//! // 2 users × 3 products, with user 0 buying everything.
//! let g = BipartiteGraph::from_edges(2, 3, &[(0, 0), (0, 1), (0, 2), (1, 2)]).unwrap();
//! assert_eq!(g.num_edges(), 4);
//! assert_eq!(g.left_neighbors(0), &[0, 1, 2]);
//! assert!(g.has_edge(1, 2) && !g.has_edge(1, 0));
//!
//! // Bitsets track vertex subsets during enumeration.
//! let mut picked = BitSet::new(g.num_right() as usize);
//! for &u in g.left_neighbors(1) {
//!     picked.insert(u as usize);
//! }
//! assert_eq!(picked.iter().collect::<Vec<_>>(), vec![2]);
//! ```

#![forbid(unsafe_code)]

pub mod bitset;
pub mod core_decomp;
pub mod csr;
pub mod dynamic;
pub mod formats;
pub mod gen;
pub mod general;
pub mod graph;
pub mod intersect;
pub mod io;
pub mod order;
pub mod stats;
pub mod subgraph;

pub use bitset::BitSet;
pub use core_decomp::{BipartiteAdjacency, IncrementalCore};
pub use csr::Csr;
pub use dynamic::DynamicBipartiteGraph;
pub use graph::{BipartiteBuilder, BipartiteGraph, Side, VertexRef};
pub use intersect::Kernel;
pub use order::{bipartite_degeneracy, Relabeling, VertexOrder};
pub use subgraph::InducedSubgraph;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by the substrate (graph construction and IO).
#[derive(Debug)]
pub enum Error {
    /// An edge referenced a vertex id that is out of the declared range.
    VertexOutOfRange {
        /// Side of the offending endpoint.
        side: Side,
        /// The offending vertex id.
        id: u32,
        /// The number of vertices declared on that side.
        len: u32,
    },
    /// An edge of a general (unipartite) graph referenced a vertex id that
    /// is out of the declared range.
    NodeOutOfRange {
        /// The offending vertex id.
        id: u32,
        /// The number of vertices declared.
        len: usize,
    },
    /// A general-graph edge connected a vertex to itself; the substrate only
    /// models simple graphs.
    SelfLoop {
        /// The vertex with the rejected loop.
        id: u32,
    },
    /// Wrapper around I/O errors from [`std::io`].
    Io(std::io::Error),
    /// A text line could not be parsed as an edge.
    Parse {
        /// 1-based line number in the input.
        line: usize,
        /// Human readable description.
        msg: String,
    },
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::VertexOutOfRange { side, id, len } => {
                write!(f, "vertex {id} on side {side:?} out of range (|side| = {len})")
            }
            Error::NodeOutOfRange { id, len } => {
                write!(f, "vertex {id} out of range (|V| = {len})")
            }
            Error::SelfLoop { id } => write!(f, "self-loop at vertex {id} rejected"),
            Error::Io(e) => write!(f, "io error: {e}"),
            Error::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}
