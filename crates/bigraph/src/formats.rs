//! Additional on-disk formats: KONECT downloads and adjacency lists.
//!
//! The paper's real datasets come from the KONECT collection
//! (<http://konect.cc/>), whose downloads ship as an `out.<name>` file with
//! `%`-prefixed metadata lines and 1-based, whitespace-separated edge
//! records that may carry trailing weight / timestamp columns. This module
//! parses that format directly (so a user with the original downloads can
//! run the harness on the true datasets instead of the synthetic stand-ins),
//! plus a compact adjacency-list format convenient for large generated
//! graphs.
//!
//! The simple `<left> <right>` edge-list format lives in [`crate::io`];
//! [`read_auto`] sniffs the contents and dispatches to the right parser.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::graph::{BipartiteBuilder, BipartiteGraph};
use crate::{Error, Result};

/// Reads a graph in the KONECT `out.*` format.
///
/// * lines starting with `%` are metadata / comments;
/// * every other line is `<left> <right> [weight [timestamp]]`;
/// * vertex ids are **1-based** and converted to the crate's 0-based ids;
/// * multi-edges (repeated ratings of the same item) collapse to one edge.
pub fn read_konect<R: Read>(reader: R) -> Result<BipartiteGraph> {
    let reader = BufReader::new(reader);
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut max_left = 0u32;
    let mut max_right = 0u32;
    let mut saw_edge = false;

    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('%') || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let v = parse_1based(it.next(), lineno, line)?;
        let u = parse_1based(it.next(), lineno, line)?;
        // Optional weight / timestamp columns are ignored, but if present
        // they must at least be numeric — anything else signals a file that
        // is not in KONECT format.
        for extra in it.take(2) {
            if extra.parse::<f64>().is_err() {
                return Err(Error::Parse {
                    line: lineno + 1,
                    msg: format!("trailing column {extra:?} is not numeric"),
                });
            }
        }
        saw_edge = true;
        max_left = max_left.max(v);
        max_right = max_right.max(u);
        edges.push((v, u));
    }

    let (num_left, num_right) = if saw_edge { (max_left + 1, max_right + 1) } else { (0, 0) };
    let mut builder = BipartiteBuilder::new(num_left, num_right);
    builder.reserve(edges.len());
    for (v, u) in edges {
        builder.add_edge(v, u)?;
    }
    Ok(builder.build())
}

fn parse_1based(token: Option<&str>, lineno: usize, line: &str) -> Result<u32> {
    let raw = token.and_then(|t| t.parse::<u64>().ok()).ok_or_else(|| Error::Parse {
        line: lineno + 1,
        msg: format!("expected `<left> <right> [weight [ts]]`, got {line:?}"),
    })?;
    if raw == 0 {
        return Err(Error::Parse {
            line: lineno + 1,
            msg: "KONECT vertex ids are 1-based; found id 0".to_string(),
        });
    }
    u32::try_from(raw - 1).map_err(|_| Error::Parse {
        line: lineno + 1,
        msg: format!("vertex id {raw} exceeds the supported range"),
    })
}

/// Writes a graph in the KONECT `out.*` format (1-based ids, a `%` header).
pub fn write_konect<W: Write>(g: &BipartiteGraph, writer: W) -> Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "% bip unweighted")?;
    writeln!(w, "% {} {} {}", g.num_edges(), g.num_left(), g.num_right())?;
    for (v, u) in g.edges() {
        writeln!(w, "{} {}", v + 1, u + 1)?;
    }
    w.flush()?;
    Ok(())
}

/// Reads a graph in the adjacency-list format written by
/// [`write_adjacency`]: a header `# adjacency <num_left> <num_right>`
/// followed by one line per left vertex listing its right neighbours
/// (possibly empty).
pub fn read_adjacency<R: Read>(reader: R) -> Result<BipartiteGraph> {
    let reader = BufReader::new(reader);
    let mut lines = reader.lines().enumerate();

    let (num_left, num_right) = loop {
        match lines.next() {
            Some((lineno, line)) => {
                let line = line?;
                let line = line.trim();
                if line.is_empty() {
                    continue;
                }
                let spec = line.strip_prefix("# adjacency").ok_or_else(|| Error::Parse {
                    line: lineno + 1,
                    msg: "adjacency files must start with `# adjacency <L> <R>`".to_string(),
                })?;
                let mut it = spec.split_whitespace();
                let nl = it.next().and_then(|t| t.parse::<u32>().ok());
                let nr = it.next().and_then(|t| t.parse::<u32>().ok());
                match (nl, nr) {
                    (Some(nl), Some(nr)) => break (nl, nr),
                    _ => {
                        return Err(Error::Parse {
                            line: lineno + 1,
                            msg: format!("malformed adjacency header {line:?}"),
                        })
                    }
                }
            }
            None => break (0, 0),
        }
    };

    let mut builder = BipartiteBuilder::new(num_left, num_right);
    let mut v = 0u32;
    for (lineno, line) in lines {
        let line = line?;
        let line = line.trim();
        if line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        if v >= num_left {
            if line.is_empty() {
                continue;
            }
            return Err(Error::Parse {
                line: lineno + 1,
                msg: format!("more adjacency rows than the declared {num_left} left vertices"),
            });
        }
        for tok in line.split_whitespace() {
            let u = tok.parse::<u32>().map_err(|_| Error::Parse {
                line: lineno + 1,
                msg: format!("bad neighbour id {tok:?}"),
            })?;
            builder.add_edge(v, u)?;
        }
        v += 1;
    }
    Ok(builder.build())
}

/// Writes a graph in the adjacency-list format (one line per left vertex).
pub fn write_adjacency<W: Write>(g: &BipartiteGraph, writer: W) -> Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# adjacency {} {}", g.num_left(), g.num_right())?;
    for v in 0..g.num_left() {
        let nbrs = g.left_neighbors(v);
        let mut first = true;
        for &u in nbrs {
            if first {
                write!(w, "{u}")?;
                first = false;
            } else {
                write!(w, " {u}")?;
            }
        }
        writeln!(w)?;
    }
    w.flush()?;
    Ok(())
}

/// The on-disk formats this crate can read.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Format {
    /// `crate::io` plain edge list (0-based, optional `# bipartite` header).
    EdgeList,
    /// KONECT `out.*` download (1-based, `%` metadata).
    Konect,
    /// Adjacency list written by [`write_adjacency`].
    Adjacency,
}

/// Guesses the format of a file from its first non-empty line.
pub fn sniff_format(sample: &str) -> Format {
    for line in sample.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with("# adjacency") {
            return Format::Adjacency;
        }
        if line.starts_with('%') {
            return Format::Konect;
        }
        return Format::EdgeList;
    }
    Format::EdgeList
}

/// Reads a graph from a file, sniffing the format from its contents.
pub fn read_auto<P: AsRef<Path>>(path: P) -> Result<BipartiteGraph> {
    let contents = std::fs::read_to_string(path)?;
    match sniff_format(&contents) {
        Format::EdgeList => crate::io::read_edge_list(contents.as_bytes()),
        Format::Konect => read_konect(contents.as_bytes()),
        Format::Adjacency => read_adjacency(contents.as_bytes()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_graph() -> BipartiteGraph {
        BipartiteGraph::from_edges(4, 3, &[(0, 0), (0, 2), (1, 1), (2, 0), (3, 2)]).unwrap()
    }

    #[test]
    fn konect_roundtrip() {
        let g = sample_graph();
        let mut buf = Vec::new();
        write_konect(&g, &mut buf).unwrap();
        let g2 = read_konect(&buf[..]).unwrap();
        assert_eq!(g2.num_left(), 4);
        assert_eq!(g2.num_right(), 3);
        assert_eq!(g2.num_edges(), g.num_edges());
        for v in 0..4 {
            assert_eq!(g.left_neighbors(v), g2.left_neighbors(v));
        }
    }

    #[test]
    fn konect_ignores_weights_and_timestamps() {
        let text = "% bip weighted\n1 1 5 1396787300\n2 3 1 1396787301\n";
        let g = read_konect(text.as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge(0, 0));
        assert!(g.has_edge(1, 2));
    }

    #[test]
    fn konect_collapses_multi_edges() {
        let text = "1 1\n1 1\n1 2\n";
        let g = read_konect(text.as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn konect_rejects_zero_ids() {
        assert!(read_konect("0 1\n".as_bytes()).is_err());
        assert!(read_konect("1 0\n".as_bytes()).is_err());
    }

    #[test]
    fn konect_rejects_non_numeric_columns() {
        assert!(read_konect("1 b\n".as_bytes()).is_err());
        assert!(read_konect("1 2 heavy\n".as_bytes()).is_err());
        assert!(read_konect("1\n".as_bytes()).is_err());
    }

    #[test]
    fn konect_empty_input() {
        let g = read_konect("% nothing here\n".as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 0);
    }

    #[test]
    fn adjacency_roundtrip() {
        let g = sample_graph();
        let mut buf = Vec::new();
        write_adjacency(&g, &mut buf).unwrap();
        let g2 = read_adjacency(&buf[..]).unwrap();
        assert_eq!(g2.num_left(), g.num_left());
        assert_eq!(g2.num_right(), g.num_right());
        for v in 0..g.num_left() {
            assert_eq!(g.left_neighbors(v), g2.left_neighbors(v));
        }
    }

    #[test]
    fn adjacency_preserves_isolated_vertices() {
        let g = BipartiteGraph::from_edges(5, 6, &[(1, 4)]).unwrap();
        let mut buf = Vec::new();
        write_adjacency(&g, &mut buf).unwrap();
        let g2 = read_adjacency(&buf[..]).unwrap();
        assert_eq!(g2.num_left(), 5);
        assert_eq!(g2.num_right(), 6);
        assert_eq!(g2.num_edges(), 1);
    }

    #[test]
    fn adjacency_requires_header() {
        assert!(read_adjacency("0 1\n2\n".as_bytes()).is_err());
    }

    #[test]
    fn adjacency_rejects_extra_rows_and_bad_ids() {
        assert!(read_adjacency("# adjacency 1 2\n0 1\n1\n".as_bytes()).is_err());
        assert!(read_adjacency("# adjacency 2 2\nzero\n".as_bytes()).is_err());
        // Out-of-range neighbour id is a VertexOutOfRange error.
        assert!(read_adjacency("# adjacency 2 2\n5\n".as_bytes()).is_err());
    }

    #[test]
    fn sniffing_dispatches_correctly() {
        assert_eq!(sniff_format("% konect\n1 1\n"), Format::Konect);
        assert_eq!(sniff_format("# adjacency 2 2\n0\n1\n"), Format::Adjacency);
        assert_eq!(sniff_format("# bipartite 2 2\n0 0\n"), Format::EdgeList);
        assert_eq!(sniff_format("0 0\n"), Format::EdgeList);
        assert_eq!(sniff_format("\n\n"), Format::EdgeList);
    }

    #[test]
    fn read_auto_from_disk() {
        let dir = std::env::temp_dir().join("bigraph_formats_test");
        std::fs::create_dir_all(&dir).unwrap();
        let g = sample_graph();

        let konect_path = dir.join("out.sample");
        let mut buf = Vec::new();
        write_konect(&g, &mut buf).unwrap();
        std::fs::write(&konect_path, &buf).unwrap();
        let g2 = read_auto(&konect_path).unwrap();
        assert_eq!(g2.num_edges(), g.num_edges());

        let adj_path = dir.join("sample.adj");
        let mut buf = Vec::new();
        write_adjacency(&g, &mut buf).unwrap();
        std::fs::write(&adj_path, &buf).unwrap();
        let g3 = read_auto(&adj_path).unwrap();
        assert_eq!(g3.num_edges(), g.num_edges());

        std::fs::remove_file(konect_path).ok();
        std::fs::remove_file(adj_path).ok();
    }
}
