//! One-sided compressed-sparse-row adjacency and slice-set primitives.
//!
//! [`Csr`] stores the out-neighbourhoods of a dense `u32` id space as one
//! contiguous `targets` array indexed by an `offsets` array, so iterating a
//! neighbourhood is a contiguous slice scan and the whole structure is two
//! allocations regardless of the vertex count. [`BipartiteGraph`] is two of
//! these (left→right and right→left); the enumeration kernels additionally
//! use the free functions below for sorted-slice intersections, which is
//! where most of the inner-loop time of `iTraversal` goes.
//!
//! [`BipartiteGraph`]: crate::graph::BipartiteGraph

/// A compressed-sparse-row adjacency structure over `0..len()` source ids.
///
/// Neighbour lists are stored back-to-back in `targets`; the list of source
/// `v` is `targets[offsets[v]..offsets[v + 1]]`. Lists are sorted ascending
/// when built through [`Csr::from_sorted_pairs`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Csr {
    offsets: Vec<usize>,
    targets: Vec<u32>,
}

impl Default for Csr {
    /// An empty CSR over zero sources.
    fn default() -> Self {
        Csr { offsets: vec![0], targets: Vec::new() }
    }
}

impl Csr {
    /// Assembles a CSR from raw parts produced by a counting sort. The
    /// invariants (`offsets` monotone, `offsets[len] == targets.len()`,
    /// per-source slices sorted) are debug-asserted, not re-checked.
    pub(crate) fn from_parts(offsets: Vec<usize>, targets: Vec<u32>) -> Csr {
        debug_assert!(!offsets.is_empty());
        debug_assert_eq!(offsets[offsets.len() - 1], targets.len());
        debug_assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
        Csr { offsets, targets }
    }

    /// Builds from `(source, target)` pairs that are sorted by source and,
    /// within a source, by target (the builder of `BipartiteGraph` produces
    /// exactly this shape). `num_sources` fixes the id space even when
    /// trailing sources have no pairs.
    pub fn from_sorted_pairs(num_sources: u32, pairs: &[(u32, u32)]) -> Csr {
        debug_assert!(pairs.windows(2).all(|w| w[0] <= w[1]), "pairs must be sorted");
        let n = num_sources as usize;
        let mut offsets = vec![0usize; n + 1];
        for &(s, _) in pairs {
            offsets[s as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let targets = pairs.iter().map(|&(_, t)| t).collect();
        Csr { offsets, targets }
    }

    /// Number of source vertices.
    #[inline]
    pub fn len(&self) -> u32 {
        (self.offsets.len() - 1) as u32
    }

    /// `true` when there are no source vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.offsets.len() == 1
    }

    /// Total number of stored adjacencies.
    #[inline]
    pub fn num_targets(&self) -> usize {
        self.targets.len()
    }

    /// The sorted neighbour slice of source `v`.
    #[inline]
    pub fn neighbors(&self, v: u32) -> &[u32] {
        let v = v as usize;
        &self.targets[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Degree of source `v`.
    #[inline]
    pub fn degree(&self, v: u32) -> usize {
        let v = v as usize;
        self.offsets[v + 1] - self.offsets[v]
    }
}

/// Length of the intersection of two sorted `u32` slices.
///
/// Stable alias of [`crate::intersect::dispatch`]: the kernel layer picks a
/// merge walk, a galloping scan, a branchless chunked merge or a
/// bitset-chunk kernel from a measured crossover heuristic (and honours the
/// per-thread `--kernel` override). Kept here because this is the
/// historical entry every caller already goes through.
#[inline]
pub fn intersection_len(a: &[u32], b: &[u32]) -> usize {
    crate::intersect::dispatch(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_sorted_pairs_builds_slices() {
        let csr = Csr::from_sorted_pairs(4, &[(0, 1), (0, 3), (2, 0), (2, 1), (2, 2)]);
        assert_eq!(csr.len(), 4);
        assert_eq!(csr.num_targets(), 5);
        assert_eq!(csr.neighbors(0), &[1, 3]);
        assert_eq!(csr.neighbors(1), &[] as &[u32]);
        assert_eq!(csr.neighbors(2), &[0, 1, 2]);
        assert_eq!(csr.neighbors(3), &[] as &[u32]);
        assert_eq!(csr.degree(2), 3);
        assert_eq!(csr.degree(3), 0);
        assert!(!csr.is_empty());
        assert!(Csr::from_sorted_pairs(0, &[]).is_empty());
    }

    #[test]
    fn intersection_len_matches_naive() {
        // Kernel-by-kernel coverage lives in `crate::intersect`; this pins
        // the historical entry point still dispatching correctly.
        let cases: &[(&[u32], &[u32])] = &[
            (&[], &[]),
            (&[1], &[]),
            (&[1, 2, 3], &[2, 3, 4]),
            (&[0, 5, 9], &[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]),
            (&[7], &(0..100).collect::<Vec<u32>>()),
        ];
        for (a, b) in cases {
            let naive = a.iter().filter(|x| b.contains(x)).count();
            assert_eq!(intersection_len(a, b), naive, "a={a:?} b={b:?}");
            assert_eq!(intersection_len(b, a), naive, "swapped a={a:?} b={b:?}");
        }
    }
}
