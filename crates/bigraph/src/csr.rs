//! One-sided compressed-sparse-row adjacency and slice-set primitives.
//!
//! [`Csr`] stores the out-neighbourhoods of a dense `u32` id space as one
//! contiguous `targets` array indexed by an `offsets` array, so iterating a
//! neighbourhood is a contiguous slice scan and the whole structure is two
//! allocations regardless of the vertex count. [`BipartiteGraph`] is two of
//! these (left→right and right→left); the enumeration kernels additionally
//! use the free functions below for sorted-slice intersections, which is
//! where most of the inner-loop time of `iTraversal` goes.
//!
//! [`BipartiteGraph`]: crate::graph::BipartiteGraph

/// A compressed-sparse-row adjacency structure over `0..len()` source ids.
///
/// Neighbour lists are stored back-to-back in `targets`; the list of source
/// `v` is `targets[offsets[v]..offsets[v + 1]]`. Lists are sorted ascending
/// when built through [`Csr::from_sorted_pairs`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Csr {
    offsets: Vec<usize>,
    targets: Vec<u32>,
}

impl Default for Csr {
    /// An empty CSR over zero sources.
    fn default() -> Self {
        Csr { offsets: vec![0], targets: Vec::new() }
    }
}

impl Csr {
    /// Assembles a CSR from raw parts produced by a counting sort. The
    /// invariants (`offsets` monotone, `offsets[len] == targets.len()`,
    /// per-source slices sorted) are debug-asserted, not re-checked.
    pub(crate) fn from_parts(offsets: Vec<usize>, targets: Vec<u32>) -> Csr {
        debug_assert!(!offsets.is_empty());
        debug_assert_eq!(offsets[offsets.len() - 1], targets.len());
        debug_assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
        Csr { offsets, targets }
    }

    /// Builds from `(source, target)` pairs that are sorted by source and,
    /// within a source, by target (the builder of `BipartiteGraph` produces
    /// exactly this shape). `num_sources` fixes the id space even when
    /// trailing sources have no pairs.
    pub fn from_sorted_pairs(num_sources: u32, pairs: &[(u32, u32)]) -> Csr {
        debug_assert!(pairs.windows(2).all(|w| w[0] <= w[1]), "pairs must be sorted");
        let n = num_sources as usize;
        let mut offsets = vec![0usize; n + 1];
        for &(s, _) in pairs {
            offsets[s as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let targets = pairs.iter().map(|&(_, t)| t).collect();
        Csr { offsets, targets }
    }

    /// Number of source vertices.
    #[inline]
    pub fn len(&self) -> u32 {
        (self.offsets.len() - 1) as u32
    }

    /// `true` when there are no source vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.offsets.len() == 1
    }

    /// Total number of stored adjacencies.
    #[inline]
    pub fn num_targets(&self) -> usize {
        self.targets.len()
    }

    /// The sorted neighbour slice of source `v`.
    #[inline]
    pub fn neighbors(&self, v: u32) -> &[u32] {
        let v = v as usize;
        &self.targets[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Degree of source `v`.
    #[inline]
    pub fn degree(&self, v: u32) -> usize {
        let v = v as usize;
        self.offsets[v + 1] - self.offsets[v]
    }
}

/// Length of the intersection of two sorted `u32` slices.
///
/// When the lengths are within a small factor of each other a linear merge
/// walk is used; when one side is much shorter the scan *gallops* (binary
/// searches the long side per short element), so intersecting a hub
/// neighbourhood with a small working set costs `O(|short| · log |long|)`.
#[inline]
pub fn intersection_len(a: &[u32], b: &[u32]) -> usize {
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if short.is_empty() {
        return 0;
    }
    if long.len() / 16 > short.len() {
        return gallop_intersection_len(short, long);
    }
    let mut i = 0;
    let mut j = 0;
    let mut count = 0;
    while i < short.len() && j < long.len() {
        match short[i].cmp(&long[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

/// Galloping variant of [`intersection_len`] for heavily skewed sizes:
/// `short` must be the smaller slice.
fn gallop_intersection_len(short: &[u32], long: &[u32]) -> usize {
    let mut rest = long;
    let mut count = 0;
    for &x in short {
        // Exponential probe to bound the search window, then binary search.
        // The probe stops at the first index with `rest[hi] >= x`, so the
        // window must include that index.
        let mut hi = 1;
        while hi < rest.len() && rest[hi] < x {
            hi *= 2;
        }
        let window = &rest[..(hi + 1).min(rest.len())];
        match window.binary_search(&x) {
            Ok(pos) => {
                count += 1;
                rest = &rest[pos + 1..];
            }
            Err(pos) => {
                rest = &rest[pos..];
                if rest.is_empty() {
                    break;
                }
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_sorted_pairs_builds_slices() {
        let csr = Csr::from_sorted_pairs(4, &[(0, 1), (0, 3), (2, 0), (2, 1), (2, 2)]);
        assert_eq!(csr.len(), 4);
        assert_eq!(csr.num_targets(), 5);
        assert_eq!(csr.neighbors(0), &[1, 3]);
        assert_eq!(csr.neighbors(1), &[] as &[u32]);
        assert_eq!(csr.neighbors(2), &[0, 1, 2]);
        assert_eq!(csr.neighbors(3), &[] as &[u32]);
        assert_eq!(csr.degree(2), 3);
        assert_eq!(csr.degree(3), 0);
        assert!(!csr.is_empty());
        assert!(Csr::from_sorted_pairs(0, &[]).is_empty());
    }

    #[test]
    fn intersection_len_matches_naive() {
        let cases: &[(&[u32], &[u32])] = &[
            (&[], &[]),
            (&[1], &[]),
            (&[1, 2, 3], &[2, 3, 4]),
            (&[0, 5, 9], &[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]),
            (&[7], &(0..100).collect::<Vec<u32>>()),
        ];
        for (a, b) in cases {
            let naive = a.iter().filter(|x| b.contains(x)).count();
            assert_eq!(intersection_len(a, b), naive, "a={a:?} b={b:?}");
            assert_eq!(intersection_len(b, a), naive, "swapped a={a:?} b={b:?}");
        }
    }

    #[test]
    fn galloping_path_is_exact() {
        // Long side >> short side so the galloping branch is exercised.
        let long: Vec<u32> = (0..10_000).map(|i| i * 3).collect();
        let short: Vec<u32> = vec![0, 3, 4, 2_997, 29_997, 29_998];
        let naive = short.iter().filter(|x| long.binary_search(x).is_ok()).count();
        assert_eq!(intersection_len(&short, &long), naive);
        assert_eq!(naive, 4);
    }

    #[test]
    fn galloping_probe_boundary_is_included() {
        // Regression: the element sitting exactly at the first probe index
        // (`rest[hi] == x`) must be found. gallop_intersection_len requires
        // `short` to be the strictly smaller side, so call it directly.
        assert_eq!(gallop_intersection_len(&[6], &[0, 6]), 1);
        assert_eq!(gallop_intersection_len(&[3], &[0, 1, 3, 9]), 1);
        // Exhaustive cross-check against the merge walk on stride patterns.
        let long: Vec<u32> = (0..512).collect();
        for start in 0..8u32 {
            for stride in 1..8u32 {
                let short: Vec<u32> = (0..6).map(|i| start + i * stride).collect();
                let naive = short.iter().filter(|x| long.binary_search(x).is_ok()).count();
                assert_eq!(
                    gallop_intersection_len(&short, &long),
                    naive,
                    "start {start} stride {stride}"
                );
            }
        }
    }
}
