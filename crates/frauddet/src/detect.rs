//! Detectors and evaluation metrics for the camouflage-attack case study.
//!
//! Each detector mines one family of cohesive subgraphs with size
//! thresholds `θ_L` (users) and `θ_R` (products); every vertex covered by a
//! found subgraph is classified as fake, and precision / recall / F1 are
//! computed against the injected ground truth — exactly the protocol of the
//! paper's Figure 13 (with `θ_L` fixed to 4 and `θ_R` swept).

use std::collections::HashSet;

use bigraph::core_decomp::alpha_beta_core;
use cohesive::{collect_maximal_bicliques, find_delta_qbs, BicliqueConfig, QuasiConfig};
use kbiplex::{Algorithm, Enumerator};

use crate::scenario::CamouflageScenario;

/// The four structure families compared in Figure 13.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Detector {
    /// Maximal bicliques of size at least `θ_L × θ_R`.
    Biclique,
    /// Maximal k-biplexes of size at least `θ_L × θ_R`.
    KBiplex {
        /// Number of tolerated misses per vertex.
        k: usize,
    },
    /// The (α,β)-core with `α = θ_R` (user degree) and `β = θ_L` (product
    /// degree).
    AlphaBetaCore,
    /// δ-quasi-bicliques of size at least `θ_L × θ_R` (greedy finder).
    DeltaQuasiBiclique {
        /// Tolerated miss fraction.
        delta: f64,
    },
}

impl Detector {
    /// Label used in the harness output (matches the paper's legends).
    pub fn label(&self) -> String {
        match self {
            Detector::Biclique => "biclique".to_string(),
            Detector::KBiplex { k } => format!("{k}-biplex"),
            Detector::AlphaBetaCore => "(alpha,beta)-core".to_string(),
            Detector::DeltaQuasiBiclique { delta } => format!("{delta}-QB"),
        }
    }
}

/// Precision / recall / F1 of one detector run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Metrics {
    /// Fraction of predicted-fake vertices that are truly fake. `None` when
    /// nothing was predicted (the paper's "ND").
    pub precision: Option<f64>,
    /// Fraction of truly fake vertices that were predicted fake.
    pub recall: f64,
    /// Harmonic mean of precision and recall (`None` when undefined).
    pub f1: Option<f64>,
    /// Number of vertices predicted fake.
    pub predicted: u64,
    /// Number of subgraphs found by the detector.
    pub subgraphs: u64,
}

/// Runs one detector on the scenario with thresholds `θ_L`, `θ_R` and
/// evaluates it against the ground truth.
pub fn run_detector(
    scenario: &CamouflageScenario,
    detector: Detector,
    theta_l: usize,
    theta_r: usize,
) -> Metrics {
    let g = &scenario.graph;
    let mut predicted_users: HashSet<u32> = HashSet::new();
    let mut predicted_products: HashSet<u32> = HashSet::new();
    let mut subgraphs = 0u64;

    match detector {
        Detector::Biclique => {
            let cfg = BicliqueConfig::default().with_min_sizes(theta_l, theta_r);
            for b in collect_maximal_bicliques(g, &cfg) {
                subgraphs += 1;
                predicted_users.extend(b.left.iter().copied());
                predicted_products.extend(b.right.iter().copied());
            }
        }
        Detector::KBiplex { k } => {
            // The large-MBP pipeline of the facade: (θ−k)-core reduction
            // plus the size-pruned iTraversal.
            let mbps = Enumerator::new(g)
                .k(k)
                .algorithm(Algorithm::Large)
                .thresholds(theta_l, theta_r)
                .collect()
                .expect("valid large-MBP configuration");
            for b in mbps {
                subgraphs += 1;
                predicted_users.extend(b.left.iter().copied());
                predicted_products.extend(b.right.iter().copied());
            }
        }
        Detector::AlphaBetaCore => {
            let core = alpha_beta_core(g, theta_r, theta_l);
            if !core.is_empty() {
                subgraphs = 1;
                predicted_users.extend(core.left.iter().copied());
                predicted_products.extend(core.right.iter().copied());
            }
        }
        Detector::DeltaQuasiBiclique { delta } => {
            let cfg = QuasiConfig::new(delta, theta_l, theta_r);
            for b in find_delta_qbs(g, &cfg) {
                subgraphs += 1;
                predicted_users.extend(b.left.iter().copied());
                predicted_products.extend(b.right.iter().copied());
            }
        }
    }

    evaluate(scenario, &predicted_users, &predicted_products, subgraphs)
}

/// Computes the metrics for a set of predicted-fake vertices.
pub fn evaluate(
    scenario: &CamouflageScenario,
    predicted_users: &HashSet<u32>,
    predicted_products: &HashSet<u32>,
    subgraphs: u64,
) -> Metrics {
    let predicted = predicted_users.len() as u64 + predicted_products.len() as u64;
    let true_positive = predicted_users.iter().filter(|&&v| scenario.is_fake_user(v)).count()
        as u64
        + predicted_products.iter().filter(|&&u| scenario.is_fake_product(u)).count() as u64;
    let actual_fake = scenario.num_fake();

    let precision =
        if predicted > 0 { Some(true_positive as f64 / predicted as f64) } else { None };
    let recall = if actual_fake > 0 { true_positive as f64 / actual_fake as f64 } else { 0.0 };
    let f1 = match precision {
        Some(p) if p + recall > 0.0 => Some(2.0 * p * recall / (p + recall)),
        _ => None,
    };
    Metrics { precision, recall, f1, predicted, subgraphs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioParams;

    fn tiny_scenario() -> CamouflageScenario {
        CamouflageScenario::generate(ScenarioParams::tiny(5))
    }

    #[test]
    fn metrics_arithmetic() {
        let s = tiny_scenario();
        // Predict exactly the fake users: precision 1, recall = #fake_users / #fake.
        let users: HashSet<u32> =
            (s.params.real_users..s.params.real_users + s.params.fake_users).collect();
        let m = evaluate(&s, &users, &HashSet::new(), 1);
        assert_eq!(m.precision, Some(1.0));
        assert!((m.recall - 0.5).abs() < 1e-9);
        assert!(m.f1.unwrap() > 0.6);
        // Predict nothing: ND.
        let m = evaluate(&s, &HashSet::new(), &HashSet::new(), 0);
        assert_eq!(m.precision, None);
        assert_eq!(m.recall, 0.0);
        assert_eq!(m.f1, None);
    }

    #[test]
    fn biplex_detector_finds_the_fraud_block() {
        let s = tiny_scenario();
        let m = run_detector(&s, Detector::KBiplex { k: 1 }, 3, 3);
        assert!(m.recall > 0.5, "recall {:?}", m.recall);
        assert!(m.subgraphs > 0);
    }

    #[test]
    fn alpha_beta_core_has_high_recall() {
        let s = tiny_scenario();
        let m = run_detector(&s, Detector::AlphaBetaCore, 3, 3);
        assert!(m.recall > 0.5);
    }

    #[test]
    fn biclique_recall_collapses_with_theta() {
        let s = tiny_scenario();
        let low = run_detector(&s, Detector::Biclique, 2, 2);
        let high = run_detector(&s, Detector::Biclique, 4, 8);
        assert!(high.recall <= low.recall);
    }

    #[test]
    fn detector_labels() {
        assert_eq!(Detector::Biclique.label(), "biclique");
        assert_eq!(Detector::KBiplex { k: 2 }.label(), "2-biplex");
        assert_eq!(Detector::DeltaQuasiBiclique { delta: 0.2 }.label(), "0.2-QB");
        assert_eq!(Detector::AlphaBetaCore.label(), "(alpha,beta)-core");
    }

    #[test]
    fn quasi_biclique_detector_runs() {
        let s = tiny_scenario();
        let m = run_detector(&s, Detector::DeltaQuasiBiclique { delta: 0.2 }, 3, 3);
        // The greedy finder must at least produce well-formed metrics.
        assert!(m.recall >= 0.0 && m.recall <= 1.0);
        if let Some(p) = m.precision {
            assert!((0.0..=1.0).contains(&p));
        }
    }
}
