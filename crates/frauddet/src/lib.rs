//! # frauddet — the fraud-detection case study (Section 6.3, Figure 13)
//!
//! The paper injects a *random camouflage attack* into the Amazon software
//! review graph: a block of fake users and fake products connected by fake
//! comments, where every fake user additionally posts an equal number of
//! *camouflage* comments on real products so the block does not stand out
//! by degree alone. Four cohesive structures (biclique, k-biplex,
//! (α,β)-core and δ-quasi-biclique) are then mined and every vertex covered
//! by a found subgraph is classified as fake; precision / recall / F1 over
//! the injected ground truth measure the detectors.
//!
//! The Amazon review data is not available offline, so the *background*
//! graph is a synthetic Chung–Lu review graph with the same qualitative
//! shape (many users, fewer products, heavily skewed degrees); the attack
//! itself is generated exactly as described in the paper. See `DESIGN.md`
//! §3 for the substitution rationale.

#![forbid(unsafe_code)]

pub mod detect;
pub mod scenario;

pub use detect::{run_detector, Detector, Metrics};
pub use scenario::{CamouflageScenario, ScenarioParams};
