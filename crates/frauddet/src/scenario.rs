//! Generation of the camouflage-attack scenario.

use bigraph::gen::chung_lu::chung_lu_bipartite;
use bigraph::graph::{BipartiteBuilder, BipartiteGraph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the synthetic review graph + injected fraud block.
///
/// The defaults are a laptop-scale version of the paper's setting
/// (375k users × 21.6k products × 459k reviews background, 2k × 2k fraud
/// block with 200k fake + 200k camouflage comments), scaled down ~20×
/// while keeping the densities comparable.
#[derive(Clone, Debug)]
pub struct ScenarioParams {
    /// Number of genuine users (left vertices of the background graph).
    pub real_users: u32,
    /// Number of genuine products (right vertices of the background graph).
    pub real_products: u32,
    /// Number of genuine review edges.
    pub real_reviews: u64,
    /// Number of injected fake users.
    pub fake_users: u32,
    /// Number of injected fake products.
    pub fake_products: u32,
    /// Number of fake comments (edges between fake users and fake products).
    pub fake_comments: u64,
    /// Number of camouflage comments (edges between fake users and *real*
    /// products).
    pub camouflage_comments: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ScenarioParams {
    fn default() -> Self {
        ScenarioParams {
            real_users: 8_000,
            real_products: 2_400,
            real_reviews: 21_600,
            fake_users: 100,
            fake_products: 100,
            fake_comments: 1_500,
            camouflage_comments: 1_500,
            seed: 2022,
        }
    }
}

impl ScenarioParams {
    /// A miniature scenario for unit tests (hundreds of vertices).
    pub fn tiny(seed: u64) -> Self {
        ScenarioParams {
            real_users: 300,
            real_products: 60,
            real_reviews: 500,
            fake_users: 12,
            fake_products: 12,
            fake_comments: 130,
            camouflage_comments: 130,
            seed,
        }
    }
}

/// The generated scenario: the attacked graph plus the ground truth.
///
/// Vertex layout: left ids `0..real_users` are genuine users and
/// `real_users..real_users+fake_users` are fake users; right ids likewise
/// with products.
#[derive(Clone, Debug)]
pub struct CamouflageScenario {
    /// The review graph with the fraud block injected.
    pub graph: BipartiteGraph,
    /// Parameters used to build the scenario.
    pub params: ScenarioParams,
}

impl CamouflageScenario {
    /// Generates the scenario.
    pub fn generate(params: ScenarioParams) -> Self {
        let mut rng = StdRng::seed_from_u64(params.seed);

        // Background review graph (skewed degrees, like real review data).
        // γ = 3.0 keeps the hubs of the synthetic background moderate; the
        // extreme skew of γ ≈ 2.2 would create an artificial dense core of
        // honest users that real review data does not have.
        let background = chung_lu_bipartite(
            params.real_users,
            params.real_products,
            params.real_reviews,
            3.0,
            params.seed ^ 0x5eed,
        );

        let num_left = params.real_users + params.fake_users;
        let num_right = params.real_products + params.fake_products;
        let mut builder = BipartiteBuilder::new(num_left, num_right);
        for (v, u) in background.edges() {
            builder.add_edge_unchecked(v, u);
        }

        // Fake comments: random pairs inside the fraud block, spread evenly
        // over the fake users (each fake user posts the same number of fake
        // comments, as in the paper's attack model).
        let per_user_fake = (params.fake_comments / params.fake_users.max(1) as u64) as u32;
        for fu in 0..params.fake_users {
            let user = params.real_users + fu;
            for _ in 0..per_user_fake {
                let product = params.real_products + rng.gen_range(0..params.fake_products);
                builder.add_edge_unchecked(user, product);
            }
        }

        // Camouflage comments: random real products, again spread evenly.
        let per_user_cam = (params.camouflage_comments / params.fake_users.max(1) as u64) as u32;
        for fu in 0..params.fake_users {
            let user = params.real_users + fu;
            for _ in 0..per_user_cam {
                let product = rng.gen_range(0..params.real_products);
                builder.add_edge_unchecked(user, product);
            }
        }

        CamouflageScenario { graph: builder.build(), params }
    }

    /// `true` iff left vertex `v` is a fake user.
    pub fn is_fake_user(&self, v: u32) -> bool {
        v >= self.params.real_users
    }

    /// `true` iff right vertex `u` is a fake product.
    pub fn is_fake_product(&self, u: u32) -> bool {
        u >= self.params.real_products
    }

    /// Total number of fake vertices (users + products).
    pub fn num_fake(&self) -> u64 {
        self.params.fake_users as u64 + self.params.fake_products as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_sizes_match_parameters() {
        let s = CamouflageScenario::generate(ScenarioParams::tiny(1));
        assert_eq!(s.graph.num_left(), 300 + 12);
        assert_eq!(s.graph.num_right(), 60 + 12);
        assert!(s.graph.num_edges() > 500);
        assert_eq!(s.num_fake(), 24);
    }

    #[test]
    fn ground_truth_labels() {
        let s = CamouflageScenario::generate(ScenarioParams::tiny(2));
        assert!(!s.is_fake_user(0));
        assert!(s.is_fake_user(300));
        assert!(!s.is_fake_product(0));
        assert!(s.is_fake_product(60));
    }

    #[test]
    fn fake_block_is_denser_than_background() {
        let s = CamouflageScenario::generate(ScenarioParams::tiny(3));
        let p = &s.params;
        // Average degree of fake users vs. real users.
        let fake_avg: f64 = (p.real_users..p.real_users + p.fake_users)
            .map(|v| s.graph.left_degree(v))
            .sum::<usize>() as f64
            / p.fake_users as f64;
        let real_avg: f64 = (0..p.real_users).map(|v| s.graph.left_degree(v)).sum::<usize>() as f64
            / p.real_users as f64;
        assert!(fake_avg > 3.0 * real_avg, "fake {fake_avg} real {real_avg}");
    }

    #[test]
    fn deterministic() {
        let a = CamouflageScenario::generate(ScenarioParams::tiny(7));
        let b = CamouflageScenario::generate(ScenarioParams::tiny(7));
        assert_eq!(a.graph.edges().collect::<Vec<_>>(), b.graph.edges().collect::<Vec<_>>());
    }
}
