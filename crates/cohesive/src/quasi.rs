//! δ-quasi-biclique detection (heuristic).
//!
//! A δ-quasi-biclique (δ-QB) `(L', R')` allows each left vertex to miss at
//! most `δ·|R'|` right vertices and each right vertex to miss at most
//! `δ·|L'|` left vertices (Liu, Li & Wang). Unlike k-biplexes the structure
//! is *not* hereditary, and enumerating maximal δ-QBs is much harder; the
//! paper only uses δ-QBs as one of the detectors in the fraud case study.
//! Following that use, this module provides
//!
//! * an exact [`is_delta_qb`] predicate, and
//! * a greedy seed-and-expand *finder* ([`find_delta_qbs`]) that grows a
//!   δ-QB around every sufficiently dense seed vertex — a heuristic with
//!   the same role as the (unspecified) mining procedure of the paper's
//!   case study.

use bigraph::BipartiteGraph;
use kbiplex::biplex::Biplex;

/// Parameters of the δ-QB finder.
#[derive(Clone, Debug)]
pub struct QuasiConfig {
    /// Tolerated miss fraction `δ ∈ [0, 1)`.
    pub delta: f64,
    /// Minimum left-side size of reported subgraphs.
    pub min_left: usize,
    /// Minimum right-side size of reported subgraphs.
    pub min_right: usize,
    /// Maximum number of seeds expanded (bounds the running time).
    pub max_seeds: usize,
}

impl QuasiConfig {
    /// Finder with the given δ and size thresholds.
    pub fn new(delta: f64, min_left: usize, min_right: usize) -> Self {
        assert!((0.0..1.0).contains(&delta), "δ must lie in [0, 1)");
        QuasiConfig { delta, min_left, min_right, max_seeds: usize::MAX }
    }

    /// Bounds the number of expanded seeds.
    pub fn with_max_seeds(mut self, n: usize) -> Self {
        self.max_seeds = n;
        self
    }
}

/// `true` iff `(left, right)` is a δ-quasi-biclique of `g`.
pub fn is_delta_qb(g: &BipartiteGraph, left: &[u32], right: &[u32], delta: f64) -> bool {
    let max_left_miss = (delta * right.len() as f64).floor() as usize;
    let max_right_miss = (delta * left.len() as f64).floor() as usize;
    left.iter().all(|&v| right.iter().filter(|&&u| !g.has_edge(v, u)).count() <= max_left_miss)
        && right
            .iter()
            .all(|&u| left.iter().filter(|&&v| !g.has_edge(v, u)).count() <= max_right_miss)
}

/// Greedy δ-QB finder. Every right vertex with degree at least `min_left`
/// seeds one expansion: the seed's neighbourhood forms the initial left
/// side, then right and left vertices are added greedily (densest first)
/// while the δ-QB property and the size thresholds remain satisfiable.
/// Results are deduplicated.
pub fn find_delta_qbs(g: &BipartiteGraph, config: &QuasiConfig) -> Vec<Biplex> {
    let mut results: Vec<Biplex> = Vec::new();
    let mut seen = std::collections::HashSet::new();

    let mut seeds: Vec<u32> =
        (0..g.num_right()).filter(|&u| g.right_degree(u) >= config.min_left).collect();
    // Densest seeds first: they yield the most cohesive blocks.
    seeds.sort_by_key(|&u| std::cmp::Reverse(g.right_degree(u)));
    seeds.truncate(config.max_seeds);

    for &seed in &seeds {
        let mut left: Vec<u32> = g.right_neighbors(seed).to_vec();
        let mut right: Vec<u32> = vec![seed];

        // Greedily absorb right vertices with the highest connectivity to
        // the current left side.
        let mut candidates: Vec<(usize, u32)> = (0..g.num_right())
            .filter(|&u| u != seed)
            .map(|u| {
                let conn =
                    g.right_neighbors(u).iter().filter(|v| left.binary_search(v).is_ok()).count();
                (conn, u)
            })
            .filter(|&(conn, _)| conn > 0)
            .collect();
        candidates.sort_by_key(|&(conn, u)| (std::cmp::Reverse(conn), u));

        for (_, u) in candidates {
            let mut trial_right = right.clone();
            trial_right.push(u);
            trial_right.sort_unstable();
            if is_delta_qb(g, &left, &trial_right, config.delta) {
                right = trial_right;
            }
        }

        // Trim left vertices that violate their budget w.r.t. the final
        // right side (can happen because δ-QBs are not hereditary), then
        // re-check.
        let max_left_miss = (config.delta * right.len() as f64).floor() as usize;
        left.retain(|&v| right.iter().filter(|&&u| !g.has_edge(v, u)).count() <= max_left_miss);

        if left.len() >= config.min_left
            && right.len() >= config.min_right
            && is_delta_qb(g, &left, &right, config.delta)
        {
            let b = Biplex::new(left, right);
            if seen.insert(b.canonical_key()) {
                results.push(b);
            }
        }
    }
    results.sort();
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete(nl: u32, nr: u32) -> BipartiteGraph {
        let mut edges = Vec::new();
        for v in 0..nl {
            for u in 0..nr {
                edges.push((v, u));
            }
        }
        BipartiteGraph::from_edges(nl, nr, &edges).unwrap()
    }

    #[test]
    fn predicate_on_complete_and_near_complete_graphs() {
        let g = complete(4, 4);
        let all_l: Vec<u32> = (0..4).collect();
        let all_r: Vec<u32> = (0..4).collect();
        assert!(is_delta_qb(&g, &all_l, &all_r, 0.0));

        // Remove one edge: with δ = 0 it fails, with δ = 0.25 it passes.
        let mut edges: Vec<(u32, u32)> = g.edges().collect();
        edges.retain(|&(v, u)| !(v == 0 && u == 0));
        let g2 = BipartiteGraph::from_edges(4, 4, &edges).unwrap();
        assert!(!is_delta_qb(&g2, &all_l, &all_r, 0.0));
        assert!(is_delta_qb(&g2, &all_l, &all_r, 0.25));
        assert!(!is_delta_qb(&g2, &all_l, &all_r, 0.24));
    }

    #[test]
    fn empty_sides_are_quasi_bicliques() {
        let g = complete(2, 2);
        assert!(is_delta_qb(&g, &[], &[], 0.1));
        assert!(is_delta_qb(&g, &[0], &[], 0.1));
    }

    #[test]
    fn finder_recovers_planted_block() {
        // Dense 5x5 block among 20x20 sparse noise.
        let mut edges = Vec::new();
        for v in 0u32..5 {
            for u in 0u32..5 {
                if !(v == u && v < 1) {
                    edges.push((v, u));
                }
            }
        }
        edges.push((10, 10));
        edges.push((11, 10));
        let g = BipartiteGraph::from_edges(20, 20, &edges).unwrap();
        let found = find_delta_qbs(&g, &QuasiConfig::new(0.2, 4, 4));
        assert!(!found.is_empty());
        let best = found.iter().max_by_key(|b| b.num_vertices()).unwrap();
        assert!(best.left.len() >= 4 && best.right.len() >= 4);
        assert!(is_delta_qb(&g, &best.left, &best.right, 0.2));
        // The block vertices dominate the result.
        assert!(best.left.iter().filter(|&&v| v < 5).count() >= 4);
    }

    #[test]
    fn finder_respects_thresholds_and_delta() {
        let g = complete(3, 3);
        let found = find_delta_qbs(&g, &QuasiConfig::new(0.0, 2, 2));
        for b in &found {
            assert!(b.left.len() >= 2 && b.right.len() >= 2);
            assert!(is_delta_qb(&g, &b.left, &b.right, 0.0));
        }
        // Impossible thresholds produce nothing.
        let none = find_delta_qbs(&g, &QuasiConfig::new(0.0, 4, 4));
        assert!(none.is_empty());
    }

    #[test]
    fn max_seeds_bounds_work() {
        let g = complete(5, 5);
        let found = find_delta_qbs(&g, &QuasiConfig::new(0.1, 2, 2).with_max_seeds(1));
        assert!(found.len() <= 1);
    }

    #[test]
    #[should_panic(expected = "δ must lie in")]
    fn invalid_delta_is_rejected() {
        QuasiConfig::new(1.5, 1, 1);
    }
}
