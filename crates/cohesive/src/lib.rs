//! # cohesive — other dense bipartite structures
//!
//! The paper compares k-biplexes against three other cohesive-subgraph
//! definitions in its fraud-detection case study (Section 6.3) and surveys
//! a fourth in its related-work section. This crate implements them:
//!
//! * [`biclique`] — maximal biclique enumeration (MBEA-style);
//! * [`quasi`] — δ-quasi-biclique predicate and a greedy finder;
//! * [`bitruss`] — butterfly support and k-bitruss decomposition;
//! * the (α,β)-core lives in [`bigraph::core_decomp`] since the main
//!   algorithms also use it as a preprocessing step.
//!
//! Everything here is exercised by the `frauddet` crate (the Figure 13
//! reproduction) and doubles as a standalone toolkit for dense bipartite
//! subgraph mining.

#![forbid(unsafe_code)]

pub mod biclique;
pub mod bitruss;
pub mod quasi;

pub use biclique::{
    collect_maximal_bicliques, enumerate_maximal_bicliques, is_biclique, BicliqueConfig,
};
pub use bitruss::{bitruss_decomposition, butterfly_support, k_bitruss_edges};
pub use quasi::{find_delta_qbs, is_delta_qb, QuasiConfig};
