//! Butterfly support and k-bitruss decomposition.
//!
//! A *butterfly* is a complete 2×2 biclique; the k-bitruss of a bipartite
//! graph is the maximal subgraph in which every edge is contained in at
//! least `k` butterflies. The paper lists the bitruss among the related
//! cohesive structures (Section 7); this module provides a peeling-based
//! decomposition so that the library covers the full landscape of
//! structures discussed, and so the case study can be extended to it.

use std::collections::HashMap;

use bigraph::BipartiteGraph;

/// Per-edge butterfly support: `support[(v, u)]` is the number of
/// butterflies containing the edge `(v, u)`.
pub fn butterfly_support(g: &BipartiteGraph) -> HashMap<(u32, u32), u64> {
    let mut support: HashMap<(u32, u32), u64> = g.edges().map(|e| (e, 0)).collect();
    // For each pair of right vertices sharing >= 2 left neighbours, every
    // shared left vertex contributes (common - 1) butterflies to each of its
    // two edges towards the pair.
    for u1 in 0..g.num_right() {
        for &v in g.right_neighbors(u1) {
            for &u2 in g.left_neighbors(v) {
                if u2 <= u1 {
                    continue;
                }
                // Count the other common neighbours of u1 and u2.
                let common = common_neighbors(g, u1, u2);
                if common >= 2 {
                    *support.get_mut(&(v, u1)).unwrap() += common as u64 - 1;
                    *support.get_mut(&(v, u2)).unwrap() += common as u64 - 1;
                }
            }
        }
    }
    support
}

fn common_neighbors(g: &BipartiteGraph, u1: u32, u2: u32) -> usize {
    let a = g.right_neighbors(u1);
    let b = g.right_neighbors(u2);
    let mut i = 0;
    let mut j = 0;
    let mut count = 0;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

/// Computes the *bitruss number* of every edge: the largest `k` such that
/// the edge survives in the k-bitruss. Implemented by iterative peeling of
/// the edge with the smallest remaining support.
pub fn bitruss_decomposition(g: &BipartiteGraph) -> HashMap<(u32, u32), u64> {
    // Work on a mutable copy of the adjacency as edge sets.
    let mut alive: std::collections::HashSet<(u32, u32)> = g.edges().collect();
    let mut support = butterfly_support(g);
    let mut trussness: HashMap<(u32, u32), u64> = HashMap::with_capacity(alive.len());
    let mut current_k = 0u64;

    while !alive.is_empty() {
        // Find the minimum-support edge.
        let (&edge, &s) = support
            .iter()
            .filter(|(e, _)| alive.contains(e))
            .min_by_key(|&(e, &s)| (s, *e))
            .expect("alive edges always have a support entry");
        current_k = current_k.max(s);
        trussness.insert(edge, current_k);
        alive.remove(&edge);

        // Removing (v, u1) destroys every butterfly it participated in:
        // for each wedge partner, decrement the supports of the other three
        // edges of the butterfly.
        let (v, u1) = edge;
        for &u2 in g.left_neighbors(v) {
            if u2 == u1 || !alive.contains(&(v, u2)) {
                continue;
            }
            for &w in g.right_neighbors(u1) {
                if w == v {
                    continue;
                }
                if alive.contains(&(w, u1)) && alive.contains(&(w, u2)) {
                    for other in [(v, u2), (w, u1), (w, u2)] {
                        if let Some(s) = support.get_mut(&other) {
                            *s = s.saturating_sub(1);
                        }
                    }
                }
            }
        }
    }
    trussness
}

/// Returns the edges of the k-bitruss of `g` (every surviving edge lies in
/// at least `k` butterflies within the surviving subgraph).
pub fn k_bitruss_edges(g: &BipartiteGraph, k: u64) -> Vec<(u32, u32)> {
    let trussness = bitruss_decomposition(g);
    let mut edges: Vec<(u32, u32)> =
        trussness.into_iter().filter_map(|(e, t)| (t >= k).then_some(e)).collect();
    edges.sort_unstable();
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigraph::stats::count_butterflies;

    fn complete(nl: u32, nr: u32) -> BipartiteGraph {
        let mut edges = Vec::new();
        for v in 0..nl {
            for u in 0..nr {
                edges.push((v, u));
            }
        }
        BipartiteGraph::from_edges(nl, nr, &edges).unwrap()
    }

    #[test]
    fn support_sums_to_four_times_butterflies() {
        for g in [complete(3, 3), complete(2, 4)] {
            let support = butterfly_support(&g);
            let total: u64 = support.values().sum();
            assert_eq!(total, 4 * count_butterflies(&g));
        }
    }

    #[test]
    fn support_of_complete_graph() {
        // In K_{3,3} every edge lies in (3-1)*(3-1) = 4 butterflies.
        let g = complete(3, 3);
        let support = butterfly_support(&g);
        assert!(support.values().all(|&s| s == 4));
    }

    #[test]
    fn path_has_no_butterflies() {
        let g = BipartiteGraph::from_edges(3, 2, &[(0, 0), (1, 0), (1, 1), (2, 1)]).unwrap();
        let support = butterfly_support(&g);
        assert!(support.values().all(|&s| s == 0));
        let trussness = bitruss_decomposition(&g);
        assert!(trussness.values().all(|&t| t == 0));
    }

    #[test]
    fn complete_graph_bitruss() {
        let g = complete(3, 3);
        let edges = k_bitruss_edges(&g, 4);
        assert_eq!(edges.len(), 9);
        let edges = k_bitruss_edges(&g, 5);
        assert!(edges.is_empty());
    }

    #[test]
    fn planted_block_survives_peeling() {
        // K_{3,3} block plus a pendant edge: the pendant edge has bitruss
        // number 0, the block keeps 4.
        let mut edges: Vec<(u32, u32)> = complete(3, 3).edges().collect();
        edges.push((3, 3));
        let g = BipartiteGraph::from_edges(4, 4, &edges).unwrap();
        let trussness = bitruss_decomposition(&g);
        assert_eq!(trussness[&(3, 3)], 0);
        assert_eq!(trussness[&(0, 0)], 4);
        let core = k_bitruss_edges(&g, 1);
        assert_eq!(core.len(), 9);
    }
}
