//! Maximal biclique enumeration (MBEA-style).
//!
//! Used by the fraud-detection case study (Section 6.3), where *biclique*
//! is one of the four cohesive structures compared, and as an independent
//! cross-check of the k-biplex machinery (a biclique is a 0-biplex).
//!
//! The algorithm is the classic consensus/MBEA scheme: right vertices are
//! added one at a time, the left side is maintained as the common
//! neighbourhood of the current right set, right vertices connected to the
//! whole left side are absorbed eagerly, and a candidate is discarded when
//! an already-excluded right vertex dominates the left side (the duplicate
//! check). Only bicliques with both sides non-empty are reported.

use bigraph::BipartiteGraph;
use kbiplex::biplex::Biplex;

/// Configuration for maximal biclique enumeration.
#[derive(Clone, Debug)]
pub struct BicliqueConfig {
    /// Minimum left-side size of reported bicliques.
    pub min_left: usize,
    /// Minimum right-side size of reported bicliques.
    pub min_right: usize,
    /// Stop after this many bicliques (`u64::MAX` = all).
    pub max_results: u64,
}

impl Default for BicliqueConfig {
    fn default() -> Self {
        BicliqueConfig { min_left: 1, min_right: 1, max_results: u64::MAX }
    }
}

impl BicliqueConfig {
    /// Requires at least `min_left × min_right` vertices per biclique.
    pub fn with_min_sizes(mut self, min_left: usize, min_right: usize) -> Self {
        self.min_left = min_left.max(1);
        self.min_right = min_right.max(1);
        self
    }

    /// Caps the number of reported bicliques.
    pub fn with_max_results(mut self, n: u64) -> Self {
        self.max_results = n;
        self
    }
}

/// Enumerates maximal bicliques of `g` with both sides non-empty, calling
/// `sink` for each; the sink returns `false` to stop early. Returns the
/// number of bicliques reported.
pub fn enumerate_maximal_bicliques<F>(
    g: &BipartiteGraph,
    config: &BicliqueConfig,
    mut sink: F,
) -> u64
where
    F: FnMut(&Biplex) -> bool,
{
    let mut state = Mbea { g, config, reported: 0, stop: false, sink: &mut sink };
    let all_left: Vec<u32> = (0..g.num_left()).collect();
    let cand: Vec<u32> = (0..g.num_right()).filter(|&u| g.right_degree(u) > 0).collect();
    state.expand(&all_left, &[], cand, Vec::new());
    state.reported
}

/// Collects all maximal bicliques satisfying the size constraints.
pub fn collect_maximal_bicliques(g: &BipartiteGraph, config: &BicliqueConfig) -> Vec<Biplex> {
    let mut out = Vec::new();
    enumerate_maximal_bicliques(g, config, |b| {
        out.push(b.clone());
        true
    });
    out.sort();
    out
}

/// `true` iff `(left, right)` is a biclique of `g` (complete bipartite).
pub fn is_biclique(g: &BipartiteGraph, left: &[u32], right: &[u32]) -> bool {
    left.iter().all(|&v| right.iter().all(|&u| g.has_edge(v, u)))
}

struct Mbea<'a, F: FnMut(&Biplex) -> bool> {
    g: &'a BipartiteGraph,
    config: &'a BicliqueConfig,
    reported: u64,
    stop: bool,
    sink: &'a mut F,
}

impl<F: FnMut(&Biplex) -> bool> Mbea<'_, F> {
    fn expand(&mut self, left: &[u32], right: &[u32], mut cand: Vec<u32>, mut excl: Vec<u32>) {
        while let Some(u) = cand.first().copied() {
            if self.stop {
                return;
            }
            cand.remove(0);

            // L' = left ∩ N(u)
            let new_left: Vec<u32> =
                left.iter().copied().filter(|&v| self.g.has_edge(v, u)).collect();
            if new_left.is_empty() || new_left.len() < self.config.min_left {
                excl.push(u);
                continue;
            }

            // Duplicate check: an excluded right vertex adjacent to all of
            // L' means this biclique was (or will be) found elsewhere.
            let dominated = excl.iter().any(|&q| new_left.iter().all(|&v| self.g.has_edge(v, q)));
            if dominated {
                excl.push(u);
                continue;
            }

            // Absorb the right vertices adjacent to all of L'; the rest stay
            // candidates (if they still share something with L').
            let mut new_right: Vec<u32> = right.to_vec();
            new_right.push(u);
            let mut new_cand: Vec<u32> = Vec::new();
            for &p in &cand {
                if new_left.iter().all(|&v| self.g.has_edge(v, p)) {
                    new_right.push(p);
                } else if new_left.iter().any(|&v| self.g.has_edge(v, p)) {
                    new_cand.push(p);
                }
            }
            new_right.sort_unstable();
            let new_excl: Vec<u32> = excl
                .iter()
                .copied()
                .filter(|&q| new_left.iter().any(|&v| self.g.has_edge(v, q)))
                .collect();

            if new_right.len() + new_cand.len() >= self.config.min_right {
                if new_right.len() >= self.config.min_right {
                    self.reported += 1;
                    let b = Biplex::new(new_left.clone(), new_right.clone());
                    if !(self.sink)(&b) || self.reported >= self.config.max_results {
                        self.stop = true;
                        return;
                    }
                }
                if !new_cand.is_empty() {
                    self.expand(&new_left, &new_right, new_cand, new_excl);
                }
            }

            excl.push(u);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kbiplex::bruteforce::brute_force_mbps;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_graph(nl: u32, nr: u32, p: f64, seed: u64) -> BipartiteGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut edges = Vec::new();
        for v in 0..nl {
            for u in 0..nr {
                if rng.gen_bool(p) {
                    edges.push((v, u));
                }
            }
        }
        BipartiteGraph::from_edges(nl, nr, &edges).unwrap()
    }

    /// Maximal bicliques with both sides non-empty are exactly the maximal
    /// 0-biplexes with both sides non-empty.
    #[test]
    fn matches_zero_biplex_brute_force() {
        for seed in 0..20u64 {
            let g = random_graph(5, 5, 0.55, seed);
            let got = collect_maximal_bicliques(&g, &BicliqueConfig::default());
            let expected: Vec<Biplex> = brute_force_mbps(&g, 0)
                .into_iter()
                .filter(|b| !b.left.is_empty() && !b.right.is_empty())
                .collect();
            assert_eq!(got, expected, "seed {seed}");
        }
    }

    #[test]
    fn complete_graph_has_one_biclique() {
        let mut edges = Vec::new();
        for v in 0u32..3 {
            for u in 0u32..4 {
                edges.push((v, u));
            }
        }
        let g = BipartiteGraph::from_edges(3, 4, &edges).unwrap();
        let got = collect_maximal_bicliques(&g, &BicliqueConfig::default());
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].left.len(), 3);
        assert_eq!(got[0].right.len(), 4);
    }

    #[test]
    fn size_constraints_filter() {
        for seed in 0..8u64 {
            let g = random_graph(6, 6, 0.6, seed);
            let all = collect_maximal_bicliques(&g, &BicliqueConfig::default());
            let cfg = BicliqueConfig::default().with_min_sizes(2, 2);
            let constrained = collect_maximal_bicliques(&g, &cfg);
            let expected: Vec<Biplex> =
                all.into_iter().filter(|b| b.left.len() >= 2 && b.right.len() >= 2).collect();
            assert_eq!(constrained, expected, "seed {seed}");
        }
    }

    #[test]
    fn results_are_bicliques_and_maximal() {
        let g = random_graph(7, 7, 0.5, 3);
        for b in collect_maximal_bicliques(&g, &BicliqueConfig::default()) {
            assert!(is_biclique(&g, &b.left, &b.right));
            assert!(kbiplex::is_maximal_k_biplex(&g, &b.left, &b.right, 0));
        }
    }

    #[test]
    fn max_results_stops_early() {
        let g = random_graph(6, 6, 0.6, 9);
        let mut count = 0;
        enumerate_maximal_bicliques(&g, &BicliqueConfig::default().with_max_results(2), |_| {
            count += 1;
            true
        });
        assert!(count <= 2);
    }

    #[test]
    fn empty_graph_has_none() {
        let g = BipartiteGraph::from_edges(3, 3, &[]).unwrap();
        assert!(collect_maximal_bicliques(&g, &BicliqueConfig::default()).is_empty());
    }
}
