//! Criterion bench backing Figure 12: the EnumAlmostSat implementations on
//! almost-satisfying graphs sampled from the Crime stand-in.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kbiplex::{EnumKind, Enumerator, PartialBiplex};

fn bench(c: &mut Criterion) {
    let g = bigraph::gen::datasets::DatasetSpec::by_name("Crime").unwrap().generate_scaled();
    // Sample a handful of (host MBP, new vertex) pairs once.
    let mut sink = kbiplex::FirstN::new(20);
    Enumerator::new(&g).k(1).run(&mut sink).expect("valid");
    let samples: Vec<(PartialBiplex, u32)> = sink
        .solutions
        .iter()
        .filter_map(|mbp| {
            let host = PartialBiplex::from_sets(&g, &mbp.left, &mbp.right);
            (0..g.num_left()).find(|&v| !host.contains_left(v)).map(|v| (host, v))
        })
        .collect();

    let mut group = c.benchmark_group("fig12_enumalmostsat");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for k in [1usize, 2] {
        for kind in EnumKind::ALL {
            group.bench_with_input(BenchmarkId::new(kind.label(), k), &kind, |b, &kind| {
                b.iter(|| {
                    let mut total = 0u64;
                    for (host, v) in &samples {
                        kbiplex::enum_almost_sat(&g, k, kind, host, *v, |_| {
                            total += 1;
                            true
                        });
                    }
                    total
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
