//! Criterion bench backing Figure 10: large-MBP enumeration (iTraversal
//! with size pruning + core reduction vs iMB with size constraints).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kbiplex::{Algorithm, CountingSink, Enumerator};

fn bench(c: &mut Criterion) {
    let g = bigraph::gen::datasets::DatasetSpec::by_name("Opsahl").unwrap().generate_scaled();
    let mut group = c.benchmark_group("fig10_large_mbps");
    group.sample_size(10).measurement_time(Duration::from_secs(4));
    for theta in [4usize, 5, 6] {
        group.bench_with_input(BenchmarkId::new("iTraversal", theta), &theta, |b, &theta| {
            b.iter(|| {
                let mut sink = CountingSink::new();
                Enumerator::new(&g)
                    .k(1)
                    .algorithm(Algorithm::Large)
                    .thresholds(theta, theta)
                    .run(&mut sink)
                    .expect("valid");
                sink.count
            });
        });
        group.bench_with_input(BenchmarkId::new("iMB", theta), &theta, |b, &theta| {
            b.iter(|| {
                let core = bigraph::core_decomp::alpha_beta_core_subgraph(&g, theta - 1, theta - 1);
                let mut sink = CountingSink::new();
                baselines::enumerate_imb(
                    &core.graph,
                    &baselines::ImbConfig::new(1).with_thresholds(theta, theta),
                    &mut sink,
                );
                sink.count
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
