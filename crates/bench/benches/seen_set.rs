//! Micro-bench of the concurrent seen-set under contention: the retired
//! fixed-capacity design (one contiguous pinned 2¹⁶-bucket segment,
//! growth disabled) against the segmented growable default (one segment,
//! cooperative doubling), at three scales with 4 inserter threads over a
//! fully overlapping key range. The
//! machine-readable variant is `src/bin/bench_seen.rs`, which CI runs as
//! part of the `bench-smoke` job (`BENCH_seen.json`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mbpe_bench::seen_harness::{build, hammer};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("seen_set");
    group.sample_size(10);

    for (label, fixed) in [("fixed_64k", true), ("segmented", false)] {
        for (keys, threads) in [(4_000usize, 4usize), (20_000, 4), (100_000, 4)] {
            let id = BenchmarkId::new(label, format!("{keys}keys_{threads}t"));
            group.bench_with_input(id, &(keys, threads), |b, &(keys, threads)| {
                b.iter(|| {
                    let set = build(fixed);
                    hammer(&set, keys, threads)
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
