//! Criterion bench backing Figure 11: full-enumeration time of bTraversal
//! and the iTraversal ablations on the Divorce stand-in.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kbiplex::{CountingSink, TraversalConfig};

fn bench(c: &mut Criterion) {
    let g = bigraph::gen::datasets::DatasetSpec::by_name("Divorce").unwrap().generate_scaled();
    let mut group = c.benchmark_group("fig11_variants");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for k in [1usize, 2] {
        let variants = [
            ("bTraversal", TraversalConfig::btraversal(k)),
            ("iTraversal-ES-RS", TraversalConfig::itraversal_left_anchored_only(k)),
            ("iTraversal-ES", TraversalConfig::itraversal_no_exclusion(k)),
            ("iTraversal", TraversalConfig::itraversal(k)),
        ];
        for (name, cfg) in variants {
            group.bench_with_input(BenchmarkId::new(name, k), &cfg, |b, cfg| {
                b.iter(|| {
                    let mut sink = CountingSink::new();
                    kbiplex::enumerate_mbps(&g, cfg, &mut sink);
                    sink.count
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
