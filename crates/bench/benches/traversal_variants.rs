//! Criterion bench backing Figure 11: full-enumeration time of bTraversal
//! and the iTraversal ablations on the Divorce stand-in.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kbiplex::{Algorithm, CountingSink, Enumerator};

fn bench(c: &mut Criterion) {
    let g = bigraph::gen::datasets::DatasetSpec::by_name("Divorce").unwrap().generate_scaled();
    let mut group = c.benchmark_group("fig11_variants");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for k in [1usize, 2] {
        let variants = [
            ("bTraversal", Algorithm::BTraversal),
            ("iTraversal-ES-RS", Algorithm::LeftAnchoredOnly),
            ("iTraversal-ES", Algorithm::ITraversalNoExclusion),
            ("iTraversal", Algorithm::ITraversal),
        ];
        for (name, algorithm) in variants {
            group.bench_with_input(BenchmarkId::new(name, k), &algorithm, |b, &algorithm| {
                b.iter(|| {
                    let mut sink = CountingSink::new();
                    Enumerator::new(&g).k(k).algorithm(algorithm).run(&mut sink).expect("valid");
                    sink.count
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
