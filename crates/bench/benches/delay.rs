//! Criterion bench backing Figure 8: per-solution delay of the algorithms
//! on the Divorce stand-in (full enumeration).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use mbpe_bench::{measure_delay, Algo};

fn bench(c: &mut Criterion) {
    let g = bigraph::gen::datasets::DatasetSpec::by_name("Divorce").unwrap().generate_scaled();
    let mut group = c.benchmark_group("fig8_delay_full_enumeration");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for algo in [Algo::ITraversal, Algo::BTraversal, Algo::Imb, Algo::FaPlexen] {
        group.bench_function(algo.label(), |b| {
            b.iter(|| measure_delay(&g, algo, 1, Duration::from_secs(20)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
