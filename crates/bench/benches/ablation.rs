//! Ablation benches for the engineering choices `DESIGN.md` calls out but
//! the paper does not plot:
//!
//! * solution store: hash set versus the paper's B-tree (ordered) store;
//! * anchor side: the left-anchored initial solution `(L0, R)` versus the
//!   symmetric right-anchored `(L, R0)` (the comparison the paper relegates
//!   to its technical report);
//! * `EnumAlmostSat` variants on the full traversal (complementing the
//!   isolated-procedure measurements of Figure 12).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kbiplex::store::{BTreeStore, HashStore, SolutionStore};
use kbiplex::{Anchor, Biplex, CountingSink, EnumKind, Enumerator};

fn bench_store(c: &mut Criterion) {
    // Isolate the store: insert the full MBP set of a mid-sized graph into
    // each store implementation.
    let g = bigraph::gen::er::er_bipartite(300, 300, 1_200, 5);
    let solutions: Vec<Biplex> = Enumerator::new(&g).k(1).collect().expect("valid");

    let mut group = c.benchmark_group("ablation_store");
    group.sample_size(20).measurement_time(Duration::from_secs(3));
    group.bench_function(BenchmarkId::new("insert", "hash"), |b| {
        b.iter(|| {
            let mut store = HashStore::new();
            solutions.iter().filter(|s| store.insert(s)).count()
        });
    });
    group.bench_function(BenchmarkId::new("insert", "btree"), |b| {
        b.iter(|| {
            let mut store = BTreeStore::new();
            solutions.iter().filter(|s| store.insert(s)).count()
        });
    });
    group.finish();
}

fn bench_anchor(c: &mut Criterion) {
    let specs = [
        ("balanced", bigraph::gen::er::er_bipartite(250, 250, 1_000, 3)),
        ("wide_right", bigraph::gen::er::er_bipartite(80, 600, 1_000, 3)),
        ("wide_left", bigraph::gen::er::er_bipartite(600, 80, 1_000, 3)),
    ];
    let mut group = c.benchmark_group("ablation_anchor");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for (name, g) in &specs {
        for anchor in [Anchor::Left, Anchor::Right] {
            let label = match anchor {
                Anchor::Left => "left_anchored",
                Anchor::Right => "right_anchored",
                Anchor::Arbitrary => unreachable!(),
            };
            group.bench_with_input(BenchmarkId::new(label, name), g, |b, g| {
                b.iter(|| {
                    let mut sink = CountingSink::new();
                    Enumerator::new(g).k(1).anchor(anchor).run(&mut sink).expect("valid");
                    sink.count
                });
            });
        }
    }
    group.finish();
}

fn bench_enum_kind_end_to_end(c: &mut Criterion) {
    let g = bigraph::gen::datasets::DatasetSpec::by_name("Cfat").unwrap().generate_scaled();
    let mut group = c.benchmark_group("ablation_enumalmostsat_end_to_end");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for kind in EnumKind::ALL {
        group.bench_with_input(BenchmarkId::new("full_run", kind.label()), &kind, |b, &kind| {
            b.iter(|| {
                let mut sink = CountingSink::new();
                Enumerator::new(&g).k(1).enum_kind(kind).run(&mut sink).expect("valid");
                sink.count
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_store, bench_anchor, bench_enum_kind_end_to_end);
criterion_main!(benches);
