//! Criterion bench backing Figure 9: first-1000-MBP time of iTraversal and
//! bTraversal on Erdős–Rényi graphs of growing size and density.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mbpe_bench::{run_algo, Algo};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_scalability");
    group.sample_size(10).measurement_time(Duration::from_secs(4));
    // (a) growing vertex count at density 10.
    for n in [2_000u64, 20_000] {
        let half = (n / 2) as u32;
        let g = bigraph::gen::er::er_bipartite(half, half, 10 * n, 42);
        for algo in [Algo::ITraversal, Algo::BTraversal] {
            group.bench_with_input(
                BenchmarkId::new(format!("{}_vertices", algo.label()), n),
                &g,
                |b, g| {
                    b.iter(|| run_algo(g, algo, 1, 200, Duration::from_secs(20)));
                },
            );
        }
    }
    // (b) growing density at 10k vertices.
    for density in [1u64, 10] {
        let g = bigraph::gen::er::er_bipartite(5_000, 5_000, density * 10_000, 7);
        for algo in [Algo::ITraversal, Algo::BTraversal] {
            group.bench_with_input(
                BenchmarkId::new(format!("{}_density", algo.label()), density),
                &g,
                |b, g| {
                    b.iter(|| run_algo(g, algo, 1, 200, Duration::from_secs(20)));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
