//! Criterion bench backing Figure 7(a): first-N-MBP running time of the four
//! algorithms on the small dataset stand-ins (k = 1).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mbpe_bench::{run_algo, Algo};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7a_first_mbps");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for name in ["Divorce", "Cfat", "Crime"] {
        let spec = bigraph::gen::datasets::DatasetSpec::by_name(name).unwrap();
        let g = spec.generate_scaled();
        for algo in [Algo::ITraversal, Algo::BTraversal, Algo::Imb, Algo::FaPlexen] {
            group.bench_with_input(BenchmarkId::new(algo.label(), name), &g, |b, g| {
                b.iter(|| run_algo(g, algo, 1, 200, Duration::from_secs(10)));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
