//! Criterion bench backing Figure 13: end-to-end detector runtime on a
//! miniature camouflage-attack scenario.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use frauddet::{run_detector, CamouflageScenario, Detector, ScenarioParams};

fn bench(c: &mut Criterion) {
    let scenario = CamouflageScenario::generate(ScenarioParams {
        real_users: 1_000,
        real_products: 300,
        real_reviews: 3_000,
        fake_users: 40,
        fake_products: 40,
        fake_comments: 480,
        camouflage_comments: 480,
        seed: 5,
    });
    let mut group = c.benchmark_group("fig13_detectors");
    group.sample_size(10).measurement_time(Duration::from_secs(4));
    for det in [
        Detector::Biclique,
        Detector::KBiplex { k: 1 },
        Detector::AlphaBetaCore,
        Detector::DeltaQuasiBiclique { delta: 0.2 },
    ] {
        group.bench_function(det.label(), |b| {
            b.iter(|| run_detector(&scenario, det, 4, 4));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
