//! Ablation bench (extension, not a paper figure): scaling of the parallel
//! full enumeration with the worker-thread count, against the sequential
//! `iTraversal` baseline on the same input.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kbiplex::{par_enumerate_mbps, CountingSink, ParallelConfig, TraversalConfig};

fn bench(c: &mut Criterion) {
    let g = bigraph::gen::er::er_bipartite(400, 400, 1_600, 11);
    let k = 1;

    let mut group = c.benchmark_group("parallel_scaling");
    group.sample_size(10).measurement_time(Duration::from_secs(4));

    group.bench_function("sequential_iTraversal", |b| {
        b.iter(|| {
            let mut sink = CountingSink::new();
            kbiplex::enumerate_mbps(&g, &TraversalConfig::itraversal(k), &mut sink);
            sink.count
        });
    });

    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("parallel", threads), &threads, |b, &threads| {
            b.iter(|| {
                let (_, stats) =
                    par_enumerate_mbps(&g, &ParallelConfig::new(k).with_threads(threads));
                stats.solutions
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
