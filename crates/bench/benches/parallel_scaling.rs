//! Ablation bench (extension, not a paper figure): scaling of the parallel
//! full enumeration with the worker-thread count, for both scheduler
//! engines (work-stealing vs the legacy global queue), against the
//! sequential `iTraversal` baseline on the same input. The machine-readable
//! variant of this comparison is `src/bin/bench_parallel.rs`, which CI runs
//! as the `bench-smoke` job.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kbiplex::{CountingSink, Engine, Enumerator, VertexOrder};

fn bench(c: &mut Criterion) {
    let g = bigraph::gen::er::er_bipartite(400, 400, 1_600, 11);
    let k = 1;

    let mut group = c.benchmark_group("parallel_scaling");
    group.sample_size(10).measurement_time(Duration::from_secs(4));

    group.bench_function("sequential_iTraversal", |b| {
        b.iter(|| {
            let mut sink = CountingSink::new();
            Enumerator::new(&g).k(k).run(&mut sink).expect("valid");
            sink.count
        });
    });

    for (engine, label) in
        [(Engine::GlobalQueue, "global_queue"), (Engine::WorkSteal, "work_steal")]
    {
        for threads in [1usize, 2, 4, 8] {
            group.bench_with_input(BenchmarkId::new(label, threads), &threads, |b, &threads| {
                b.iter(|| {
                    let mut sink = CountingSink::new();
                    Enumerator::new(&g)
                        .k(k)
                        .engine(engine)
                        .threads(threads)
                        .run(&mut sink)
                        .expect("valid");
                    sink.count
                });
            });
        }
    }

    // The ordering pass composed with the fastest engine.
    group.bench_function("work_steal_4t_degeneracy", |b| {
        b.iter(|| {
            let mut sink = CountingSink::new();
            Enumerator::new(&g)
                .k(k)
                .engine(Engine::WorkSteal)
                .threads(4)
                .order(VertexOrder::Degeneracy)
                .run(&mut sink)
                .expect("valid");
            sink.count
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
