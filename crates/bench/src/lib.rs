//! # mbpe-bench — experiment harness
//!
//! Shared utilities for the per-figure binaries (`src/bin/`) and the
//! criterion benches (`benches/`): dataset preparation, algorithm runners
//! with first-N cut-offs and time budgets, and plain-text table printing in
//! the shape of the paper's tables and figures.
//!
//! Every binary accepts `--help`; the most common knobs are `--scale <n>`
//! (extra down-scaling of the dataset stand-ins), `--results <n>` (the
//! "first N MBPs" cut-off) and `--budget-secs <s>` (the per-run analogue of
//! the paper's 24 h INF limit).

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

use bigraph::gen::datasets::DatasetSpec;
use bigraph::BipartiteGraph;
use kbiplex::{Algorithm, Biplex, Control, EnumKind, Enumerator, SolutionSink, StopReason};

/// The algorithms compared throughout Section 6.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Algo {
    /// The paper's algorithm (left-anchored + right-shrinking + exclusion).
    ITraversal,
    /// The conventional reverse-search framework.
    BTraversal,
    /// The iMB backtracking baseline.
    Imb,
    /// The FaPlexen-style inflation baseline.
    FaPlexen,
}

impl Algo {
    /// All four algorithms in the order used by Figure 7(a).
    pub const ALL: [Algo; 4] = [Algo::Imb, Algo::FaPlexen, Algo::BTraversal, Algo::ITraversal];

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            Algo::ITraversal => "iTraversal",
            Algo::BTraversal => "bTraversal",
            Algo::Imb => "iMB",
            Algo::FaPlexen => "FaPlexen",
        }
    }
}

/// Outcome of one timed run.
#[derive(Clone, Copy, Debug)]
pub enum RunOutcome {
    /// Finished (or reached the requested number of results) within budget.
    Finished {
        /// Wall-clock time.
        elapsed: Duration,
        /// Number of MBPs reported.
        results: u64,
    },
    /// Hit the time budget — the analogue of the paper's "INF".
    TimedOut,
    /// Refused because the (simulated) memory budget was exceeded — the
    /// paper's "OUT".
    OutOfMemory,
}

impl RunOutcome {
    /// Seconds, or `None` for INF / OUT entries.
    pub fn secs(&self) -> Option<f64> {
        match self {
            RunOutcome::Finished { elapsed, .. } => Some(elapsed.as_secs_f64()),
            _ => None,
        }
    }

    /// Column text in the paper's style.
    pub fn cell(&self) -> String {
        match self {
            RunOutcome::Finished { elapsed, .. } => format!("{:>10.4}", elapsed.as_secs_f64()),
            RunOutcome::TimedOut => format!("{:>10}", "INF"),
            RunOutcome::OutOfMemory => format!("{:>10}", "OUT"),
        }
    }
}

/// A sink that collects up to `limit` solutions and aborts once a time
/// budget is exceeded, reporting which of the two happened.
pub struct BudgetSink {
    limit: u64,
    deadline: Instant,
    /// Number of solutions received.
    pub count: u64,
    /// Set when the deadline fired before `limit` solutions arrived.
    pub timed_out: bool,
}

impl BudgetSink {
    /// Collects at most `limit` solutions within `budget`.
    pub fn new(limit: u64, budget: Duration) -> Self {
        BudgetSink { limit, deadline: Instant::now() + budget, count: 0, timed_out: false }
    }
}

impl SolutionSink for BudgetSink {
    fn on_solution(&mut self, _solution: &Biplex) -> Control {
        self.count += 1;
        if Instant::now() > self.deadline {
            self.timed_out = true;
            return Control::Stop;
        }
        if self.count >= self.limit {
            Control::Stop
        } else {
            Control::Continue
        }
    }
}

/// Runs `algo` on `g`, asking for the first `results` MBPs with the given
/// `k`, within `budget`.
pub fn run_algo(
    g: &BipartiteGraph,
    algo: Algo,
    k: usize,
    results: u64,
    budget: Duration,
) -> RunOutcome {
    let start = Instant::now();
    let mut sink = BudgetSink::new(results, budget);
    match algo {
        Algo::ITraversal | Algo::BTraversal => {
            // The facade owns the limit and the time budget for the paper's
            // algorithms; the baselines below keep the BudgetSink.
            let algorithm = if algo == Algo::ITraversal {
                Algorithm::ITraversal
            } else {
                Algorithm::BTraversal
            };
            let mut counter = kbiplex::CountingSink::new();
            let report = Enumerator::new(g)
                .k(k)
                .algorithm(algorithm)
                .limit(results)
                .time_budget(budget)
                .run(&mut counter)
                .expect("valid facade configuration");
            return match report.stop {
                StopReason::TimeBudget => RunOutcome::TimedOut,
                _ => RunOutcome::Finished { elapsed: start.elapsed(), results: report.solutions },
            };
        }
        Algo::Imb => {
            let budget_nodes = 2_000_000u64.saturating_mul(budget.as_secs().max(1));
            let stats = baselines::enumerate_imb(
                g,
                &baselines::ImbConfig::new(k).with_max_nodes(budget_nodes),
                &mut sink,
            );
            if stats.budget_exhausted {
                return RunOutcome::TimedOut;
            }
        }
        Algo::FaPlexen => {
            // 32 GB at ~12 bytes per CSR edge entry ≈ 2.7e9 edges.
            let memory_budget_edges = 2_700_000_000u64;
            let budget_nodes = 2_000_000u64.saturating_mul(budget.as_secs().max(1));
            let report = baselines::enumerate_inflation(
                g,
                &baselines::InflationConfig::new(k)
                    .with_max_nodes(budget_nodes)
                    .with_memory_budget_edges(memory_budget_edges),
                &mut sink,
            );
            if report.out_of_memory {
                return RunOutcome::OutOfMemory;
            }
            if report.plex.budget_exhausted {
                return RunOutcome::TimedOut;
            }
        }
    }
    if sink.timed_out {
        RunOutcome::TimedOut
    } else {
        RunOutcome::Finished { elapsed: start.elapsed(), results: sink.count }
    }
}

/// Measures the delay (maximum gap between consecutive outputs) of `algo`
/// when enumerating *all* MBPs, within `budget`. Returns `None` when the
/// run does not finish in time.
pub fn measure_delay(
    g: &BipartiteGraph,
    algo: Algo,
    k: usize,
    budget: Duration,
) -> Option<kbiplex::DelayReport> {
    struct DelayBudget {
        rec: kbiplex::DelayRecorder,
        deadline: Instant,
        timed_out: bool,
    }
    impl SolutionSink for DelayBudget {
        fn on_solution(&mut self, solution: &Biplex) -> Control {
            let c = self.rec.on_solution(solution);
            if Instant::now() > self.deadline {
                self.timed_out = true;
                return Control::Stop;
            }
            c
        }
    }
    match algo {
        Algo::ITraversal | Algo::BTraversal => {
            let algorithm = if algo == Algo::ITraversal {
                Algorithm::ITraversal
            } else {
                Algorithm::BTraversal
            };
            let mut rec = kbiplex::DelayRecorder::new();
            let report = Enumerator::new(g)
                .k(k)
                .algorithm(algorithm)
                .time_budget(budget)
                .run(&mut rec)
                .expect("valid facade configuration");
            if report.stop == StopReason::TimeBudget {
                None
            } else {
                Some(rec.finish())
            }
        }
        Algo::Imb | Algo::FaPlexen => {
            let mut sink = DelayBudget {
                rec: kbiplex::DelayRecorder::new(),
                deadline: Instant::now() + budget,
                timed_out: false,
            };
            if algo == Algo::Imb {
                baselines::enumerate_imb(g, &baselines::ImbConfig::new(k), &mut sink);
            } else {
                baselines::enumerate_inflation(g, &baselines::InflationConfig::new(k), &mut sink);
            }
            if sink.timed_out {
                None
            } else {
                Some(sink.rec.finish())
            }
        }
    }
}

/// Runs the `EnumAlmostSat` variant comparison of Figure 12 on random
/// almost-satisfying graphs derived from the first `samples` MBPs of `g`.
pub fn enum_almost_sat_avg_time(
    g: &BipartiteGraph,
    k: usize,
    kind: EnumKind,
    samples: usize,
) -> Duration {
    use kbiplex::PartialBiplex;
    let mut sink = kbiplex::FirstN::new(samples);
    Enumerator::new(g).k(k).run(&mut sink).expect("valid facade configuration");
    let mut total = Duration::ZERO;
    let mut runs = 0u32;
    for (i, mbp) in sink.solutions.iter().enumerate() {
        if g.num_left() == 0 {
            break;
        }
        let host = PartialBiplex::from_sets(g, &mbp.left, &mbp.right);
        // Deterministically pick a left vertex outside the MBP.
        let offset = (i as u32) % g.num_left();
        let v = (0..g.num_left())
            .map(|j| (j + offset) % g.num_left())
            .find(|&v| !host.contains_left(v));
        let Some(v) = v else { continue };
        let start = Instant::now();
        kbiplex::enum_almost_sat(g, k, kind, &host, v, |_| true);
        total += start.elapsed();
        runs += 1;
    }
    if runs == 0 {
        Duration::ZERO
    } else {
        total / runs
    }
}

/// Prepares a dataset stand-in: the registry's laptop scale divided by an
/// extra `extra_scale` factor.
pub fn prepare_dataset(spec: &DatasetSpec, extra_scale: u32) -> BipartiteGraph {
    spec.generate_with_scale(spec.default_scale.saturating_mul(extra_scale).max(1))
}

/// Minimal command-line flag parser used by the harness binaries:
/// `--flag value` pairs and boolean `--flag`.
#[derive(Debug, Default)]
pub struct Args {
    pairs: Vec<(String, String)>,
    flags: Vec<String>,
}

impl Args {
    /// Parses `std::env::args` (skipping the binary name).
    pub fn parse() -> Self {
        Self::from_tokens(std::env::args().skip(1))
    }

    /// Parses an explicit iterator (used by tests).
    pub fn from_tokens<I: IntoIterator<Item = String>>(iter: I) -> Self {
        let mut args = Args::default();
        let tokens: Vec<String> = iter.into_iter().collect();
        let mut i = 0;
        while i < tokens.len() {
            let t = &tokens[i];
            if let Some(name) = t.strip_prefix("--") {
                if i + 1 < tokens.len() && !tokens[i + 1].starts_with("--") {
                    args.pairs.push((name.to_string(), tokens[i + 1].clone()));
                    i += 2;
                } else {
                    args.flags.push(name.to_string());
                    i += 1;
                }
            } else {
                i += 1;
            }
        }
        args
    }

    /// Value of `--name` parsed as `T`, or `default`.
    pub fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        self.pairs
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.parse().ok())
            .unwrap_or(default)
    }

    /// String value of `--name`.
    pub fn get_str(&self, name: &str) -> Option<&str> {
        self.pairs.iter().rev().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// `true` when the boolean flag `--name` is present.
    pub fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name) || self.pairs.iter().any(|(n, _)| n == name)
    }
}

/// Shared harness of the seen-set contention benchmarks: the `bench_seen`
/// binary (machine-readable `BENCH_seen.json`) and the `seen_set` criterion
/// bench measure the same two geometries under the same insert storm.
pub mod seen_harness {
    use kbiplex::parallel::seen::ConcurrentSeenSet;

    /// Builds the set under test. `fixed` reproduces the retired
    /// fixed-capacity design exactly: one contiguous pinned 2¹⁶-bucket
    /// segment (a single up-front allocation, no growth, no era probes —
    /// only the shared root indirection differs from the old code);
    /// otherwise the default graph-sized geometry applies, starting at one
    /// segment and growing cooperatively.
    pub fn build(fixed: bool) -> ConcurrentSeenSet {
        if fixed {
            ConcurrentSeenSet::with_geometry(1, 1 << 16).pinned()
        } else {
            ConcurrentSeenSet::new(0)
        }
    }

    /// All `threads` workers insert every key of `0..keys` (maximal
    /// duplicate overlap — the dedup-heavy access pattern of the
    /// enumeration engines), with staggered starting offsets so threads
    /// collide on different keys at any instant instead of marching in
    /// lock-step. Returns the final distinct-key count.
    pub fn hammer(set: &ConcurrentSeenSet, keys: usize, threads: usize) -> u64 {
        std::thread::scope(|scope| {
            for t in 0..threads {
                scope.spawn(move || {
                    let offset = t * keys / threads.max(1);
                    for i in 0..keys {
                        let key = ((i + offset) % keys) as u32;
                        set.insert(vec![key, key ^ 0x5bd1_e995, key.rotate_left(7)]);
                    }
                });
            }
        });
        set.len()
    }
}

/// Nearest-rank percentile of an ascending-sorted sample: the smallest
/// element with at least `p`% of the sample at or below it, i.e. index
/// `⌈p/100 · n⌉ − 1`. Unlike the rounded `p/100 · (n − 1)` index it
/// replaces, this never reads past the intended rank on small samples
/// (where rounding turned p95 into p100 or collapsed p99 onto p50).
///
/// `p` is clamped to `(0, 100]`; an empty sample returns 0.
pub fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let p = p.clamp(f64::MIN_POSITIVE, 100.0);
    let rank = (p / 100.0 * sorted.len() as f64).ceil() as usize;
    sorted[rank.max(1) - 1]
}

/// Prints a table header followed by a separator line.
pub fn print_header(title: &str, columns: &[&str]) {
    println!("\n== {title} ==");
    let header: Vec<String> = columns.iter().map(|c| format!("{c:>10}")).collect();
    println!("{}", header.join(" "));
    println!("{}", "-".repeat(11 * columns.len()));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_graph() -> BipartiteGraph {
        bigraph::gen::er::er_bipartite(20, 20, 80, 7)
    }

    #[test]
    fn all_algorithms_agree_on_counts() {
        let g = tiny_graph();
        let k = 1;
        let budget = Duration::from_secs(60);
        let mut counts = Vec::new();
        for algo in Algo::ALL {
            match run_algo(&g, algo, k, u64::MAX, budget) {
                RunOutcome::Finished { results, .. } => counts.push(results),
                other => panic!("{algo:?} did not finish: {other:?}"),
            }
        }
        assert!(counts.windows(2).all(|w| w[0] == w[1]), "counts {counts:?}");
    }

    #[test]
    fn budget_sink_limits_results() {
        let g = tiny_graph();
        match run_algo(&g, Algo::ITraversal, 1, 3, Duration::from_secs(10)) {
            RunOutcome::Finished { results, .. } => assert_eq!(results, 3),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn delay_measurement_produces_a_report() {
        let g = tiny_graph();
        let report = measure_delay(&g, Algo::ITraversal, 1, Duration::from_secs(30)).unwrap();
        assert!(report.solutions > 0);
        assert!(report.max_delay <= report.total);
    }

    #[test]
    fn enum_almost_sat_timer_runs() {
        let g = tiny_graph();
        for kind in [EnumKind::L2R2, EnumKind::Inflation] {
            let d = enum_almost_sat_avg_time(&g, 1, kind, 5);
            assert!(d < Duration::from_secs(5));
        }
    }

    #[test]
    fn args_parser() {
        let args = Args::from_tokens(
            ["--k", "3", "--huge", "--dataset", "Writer"].iter().map(|s| s.to_string()),
        );
        assert_eq!(args.get::<usize>("k", 1), 3);
        assert_eq!(args.get::<usize>("missing", 7), 7);
        assert!(args.has("huge"));
        assert!(!args.has("absent"));
        assert_eq!(args.get_str("dataset"), Some("Writer"));
    }

    #[test]
    fn percentile_uses_the_nearest_rank_rule() {
        let ms = |n: u64| Duration::from_millis(n);
        // n = 1: every percentile is the single sample (the old rounding
        // agreed here, but only by accident).
        let one = [ms(5)];
        for p in [50.0, 95.0, 99.0, 100.0] {
            assert_eq!(percentile(&one, p), ms(5), "n=1 p{p}");
        }
        // n = 2: p50 is the first sample, p95/p99/p100 the second. The old
        // `round(p/100·(n−1))` read the *second* sample for p50 too.
        let two = [ms(1), ms(9)];
        assert_eq!(percentile(&two, 50.0), ms(1));
        assert_eq!(percentile(&two, 95.0), ms(9));
        assert_eq!(percentile(&two, 99.0), ms(9));
        assert_eq!(percentile(&two, 100.0), ms(9));
        // n = 19: ⌈0.95·19⌉ = 19 → the maximum; ⌈0.5·19⌉ = 10 → the median.
        // The old rounding mapped p95 to index 17 (the 18th sample) and p99
        // to index 18 — p95 under-read while p99 and p100 collided.
        let nineteen: Vec<Duration> = (1..=19).map(ms).collect();
        assert_eq!(percentile(&nineteen, 50.0), ms(10));
        assert_eq!(percentile(&nineteen, 95.0), ms(19));
        assert_eq!(percentile(&nineteen, 99.0), ms(19));
        // n = 100: the textbook case — p95 is the 95th sample, p99 the
        // 99th, and they are distinct from the maximum.
        let hundred: Vec<Duration> = (1..=100).map(ms).collect();
        assert_eq!(percentile(&hundred, 50.0), ms(50));
        assert_eq!(percentile(&hundred, 95.0), ms(95));
        assert_eq!(percentile(&hundred, 99.0), ms(99));
        assert_eq!(percentile(&hundred, 100.0), ms(100));
        // Degenerate inputs stay total: empty → 0, p clamped into (0, 100].
        assert_eq!(percentile(&[], 95.0), Duration::ZERO);
        assert_eq!(percentile(&hundred, 0.0), ms(1));
        assert_eq!(percentile(&hundred, 250.0), ms(100));
    }

    #[test]
    fn outcome_cells() {
        assert_eq!(RunOutcome::TimedOut.cell().trim(), "INF");
        assert_eq!(RunOutcome::OutOfMemory.cell().trim(), "OUT");
        assert!(
            RunOutcome::Finished { elapsed: Duration::from_millis(1500), results: 1 }
                .secs()
                .unwrap()
                > 1.0
        );
    }
}
