//! Seen-set contention benchmark with machine-readable output.
//!
//! Hammers the concurrent seen-set with `--threads` inserter threads over a
//! heavily overlapping key range at three scales — *small* (fits in one
//! segment, the tiny-graph case where the old fixed design paid its 1 MiB
//! floor), *mid* (forces several cooperative growth publications, the
//! regime where the segmented design pays its historical-era probes) and
//! *large* (past the point where a fixed bucket array degrades into long
//! chains) — for two geometries:
//!
//! * `fixed_64k` — one contiguous pinned 2¹⁶-bucket segment (a single
//!   up-front allocation, growth disabled): the retired fixed-capacity
//!   design, chains absorbing all excess load;
//! * `segmented` — the default geometry, starting at one segment and
//!   growing cooperatively as the load factor crosses 1.
//!
//! Results go to `BENCH_seen.json` (CI's `bench-smoke` job uploads it as a
//! workflow artifact next to `BENCH_parallel.json`), including the
//! fixed/segmented wall-clock ratio at both scales.
//!
//! Usage: `cargo run --release -p mbpe-bench --bin bench_seen --
//!         [--threads 4] [--keys-small 4000] [--keys-mid 20000]
//!         [--keys-large 1000000] [--iters 3] [--out BENCH_seen.json]`

use std::fmt::Write as _;
use std::time::Instant;

use kbiplex::parallel::seen::SEGMENT_BUCKETS;
use mbpe_bench::seen_harness::{build, hammer};
use mbpe_bench::Args;

/// One measured configuration.
struct Row {
    config: &'static str,
    scale: &'static str,
    keys: usize,
    threads: usize,
    secs: f64,
    final_segments: usize,
    final_capacity: usize,
}

fn main() {
    let args = Args::parse();
    let threads: usize = args.get("threads", 4usize);
    let keys_small: usize = args.get("keys-small", 4_000usize);
    let keys_mid: usize = args.get("keys-mid", 20_000usize);
    let keys_large: usize = args.get("keys-large", 1_000_000usize);
    let iters: u32 = args.get("iters", 3u32);
    let out_path = args.get_str("out").unwrap_or("BENCH_seen.json").to_string();

    eprintln!(
        "seen-set contention: threads={threads} keys-small={keys_small} \
         keys-mid={keys_mid} keys-large={keys_large} iters={iters} \
         (segment={SEGMENT_BUCKETS} buckets)"
    );

    let mut rows: Vec<Row> = Vec::new();
    for (scale, keys) in [("small", keys_small), ("mid", keys_mid), ("large", keys_large)] {
        for (config, fixed) in [("fixed_64k", true), ("segmented", false)] {
            let mut best = f64::INFINITY;
            let mut final_segments = 0;
            let mut final_capacity = 0;
            for _ in 0..iters.max(1) {
                // Construction is part of the measurement: the enumeration
                // engines build a fresh set per run, and the up-front
                // bucket allocation is exactly where the fixed design pays
                // for small workloads.
                let start = Instant::now();
                let set = build(fixed);
                hammer(&set, keys, threads);
                let secs = start.elapsed().as_secs_f64();
                assert_eq!(set.len(), keys as u64, "{config}/{scale}: lost or duplicated keys");
                if secs < best {
                    // Keep the geometry of the iteration being reported:
                    // interleaving can leave different iterations one
                    // doubling apart.
                    best = secs;
                    final_segments = set.segments();
                    final_capacity = set.capacity();
                }
            }
            eprintln!(
                "{config:>10} {scale:>5}: {best:.4}s  {keys} keys  \
                 {final_segments} segments  {final_capacity} buckets"
            );
            rows.push(Row {
                config,
                scale,
                keys,
                threads,
                secs: best,
                final_segments,
                final_capacity,
            });
        }
    }

    let json = render_json(iters, &rows);
    std::fs::write(&out_path, json).expect("write bench json");
    eprintln!("wrote {out_path}");
}

/// Renders the measurements by hand (the workspace has no serde).
fn render_json(iters: u32, rows: &[Row]) -> String {
    let secs_of = |config: &str, scale: &str| -> Option<f64> {
        rows.iter().find(|r| r.config == config && r.scale == scale).map(|r| r.secs)
    };
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"iters\": {iters},");
    let _ = writeln!(s, "  \"segment_buckets\": {SEGMENT_BUCKETS},");
    s.push_str("  \"runs\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{\"config\": \"{}\", \"scale\": \"{}\", \"keys\": {}, \"threads\": {}, \
             \"secs\": {:.6}, \"final_segments\": {}, \"final_capacity\": {}}}{}",
            r.config, r.scale, r.keys, r.threads, r.secs, r.final_segments, r.final_capacity, comma
        );
    }
    s.push_str("  ],\n");
    // fixed / segmented: > 1 means the growable directory is faster.
    s.push_str("  \"fixed_over_segmented\": {");
    let mut first = true;
    for scale in ["small", "mid", "large"] {
        let ratio = match (secs_of("fixed_64k", scale), secs_of("segmented", scale)) {
            (Some(f), Some(seg)) if seg > 0.0 => format!("{:.3}", f / seg),
            _ => "null".to_string(),
        };
        if !first {
            s.push(',');
        }
        first = false;
        let _ = write!(s, "\n    \"{scale}\": {ratio}");
    }
    s.push_str("\n  }\n}\n");
    s
}
