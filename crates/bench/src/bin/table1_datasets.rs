//! Reproduces **Table 1**: the dataset registry (synthetic stand-ins for the
//! paper's KONECT datasets) with the generated graph statistics at the
//! default laptop scale.
//!
//! With `--mbps`, a `#MBPs (k=1)` column is added for the small datasets;
//! the engine is selected by `--threads` (1 = sequential iTraversal,
//! anything else = the parallel work-stealing engine, 0 = auto threads).
//!
//! Usage: `cargo run --release -p mbpe-bench --bin table1_datasets --
//!         [--full] [--mbps] [--threads 1]`

use bigraph::gen::datasets::DATASETS;
use bigraph::stats::GraphStats;
use bigraph::BipartiteGraph;
use kbiplex::{CountingSink, Engine, Enumerator};
use mbpe_bench::Args;

fn main() {
    let args = Args::parse();
    let full = args.has("full");
    let count_mbps = args.has("mbps");
    let threads: usize = args.get("threads", 1usize);
    println!("Table 1: datasets (synthetic stand-ins; paper sizes vs generated sizes)");
    println!(
        "{:<10} {:<14} {:>12} {:>12} {:>12} | {:>10} {:>10} {:>12} {:>8}{}",
        "Name",
        "Category",
        "|L| (paper)",
        "|R| (paper)",
        "|E| (paper)",
        "|L| (gen)",
        "|R| (gen)",
        "|E| (gen)",
        "density",
        if count_mbps { "  #MBPs (k=1)" } else { "" }
    );
    for spec in DATASETS {
        // The biggest stand-ins are only generated at full size on request.
        let g = if full { spec.generate_full() } else { spec.generate_scaled() };
        let s = GraphStats::of(&g);
        let mbps_cell =
            if count_mbps { format!("  {:>11}", count_column(&g, threads)) } else { String::new() };
        println!(
            "{:<10} {:<14} {:>12} {:>12} {:>12} | {:>10} {:>10} {:>12} {:>8.2}{}",
            spec.name,
            spec.category,
            spec.num_left,
            spec.num_right,
            spec.num_edges,
            s.num_left,
            s.num_right,
            s.num_edges,
            s.edge_density,
            mbps_cell
        );
    }
    if !full {
        println!("\n(stand-ins above Writer are down-scaled; pass --full for Table-1 sizes)");
    }
}

/// The `#MBPs (k=1)` cell: counted with the engine selected by `--threads`.
/// Full enumeration explodes combinatorially with the edge count (even the
/// 730-edge Cfat stand-in runs for minutes), so the count is only filled
/// for stand-ins at Divorce scale and "-" is printed otherwise.
fn count_column(g: &BipartiteGraph, threads: usize) -> String {
    const SMALL_EDGE_LIMIT: u64 = 300;
    if g.num_edges() > SMALL_EDGE_LIMIT {
        return "-".to_string();
    }
    let k = 1usize;
    let mut e = Enumerator::new(g).k(k);
    if threads != 1 {
        e = e.engine(Engine::WorkSteal).threads(threads);
    }
    let mut sink = CountingSink::new();
    e.run(&mut sink).expect("valid configuration");
    sink.count.to_string()
}
