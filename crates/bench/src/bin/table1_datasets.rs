//! Reproduces **Table 1**: the dataset registry (synthetic stand-ins for the
//! paper's KONECT datasets) with the generated graph statistics at the
//! default laptop scale.
//!
//! Usage: `cargo run --release -p mbpe-bench --bin table1_datasets [--full]`

use bigraph::gen::datasets::DATASETS;
use bigraph::stats::GraphStats;
use mbpe_bench::Args;

fn main() {
    let args = Args::parse();
    let full = args.has("full");
    println!("Table 1: datasets (synthetic stand-ins; paper sizes vs generated sizes)");
    println!(
        "{:<10} {:<14} {:>12} {:>12} {:>12} | {:>10} {:>10} {:>12} {:>8}",
        "Name",
        "Category",
        "|L| (paper)",
        "|R| (paper)",
        "|E| (paper)",
        "|L| (gen)",
        "|R| (gen)",
        "|E| (gen)",
        "density"
    );
    for spec in DATASETS {
        // The biggest stand-ins are only generated at full size on request.
        let g = if full { spec.generate_full() } else { spec.generate_scaled() };
        let s = GraphStats::of(&g);
        println!(
            "{:<10} {:<14} {:>12} {:>12} {:>12} | {:>10} {:>10} {:>12} {:>8.2}",
            spec.name,
            spec.category,
            spec.num_left,
            spec.num_right,
            spec.num_edges,
            s.num_left,
            s.num_right,
            s.num_edges,
            s.edge_density
        );
    }
    if !full {
        println!("\n(stand-ins above Writer are down-scaled; pass --full for Table-1 sizes)");
    }
}
