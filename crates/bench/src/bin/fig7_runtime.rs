//! Reproduces **Figure 7**: running time of iMB, FaPlexen, bTraversal and
//! iTraversal when returning the first N MBPs.
//!
//! * part (a): all datasets, k = 1;
//! * parts (b, c): Writer / DBLP stand-ins, k = 1..5;
//! * parts (d, e): Writer / DBLP stand-ins, number of returned MBPs
//!   10^0..10^5.
//!
//! Usage:
//! `cargo run --release -p mbpe-bench --bin fig7_runtime -- [--part a|bc|de|all]
//!  [--results 1000] [--budget-secs 60] [--scale 1] [--kmax 5]`

use std::time::Duration;

use bigraph::gen::datasets::{DatasetSpec, DATASETS};
use mbpe_bench::{prepare_dataset, print_header, run_algo, Algo, Args};

fn main() {
    let args = Args::parse();
    let part = args.get_str("part").unwrap_or("all").to_string();
    let results: u64 = args.get("results", 1000u64);
    let budget = Duration::from_secs(args.get("budget-secs", 60u64));
    let scale: u32 = args.get("scale", 1u32);
    let kmax: usize = args.get("kmax", 5usize);

    if part == "a" || part == "all" {
        print_header(
            "Figure 7(a): running time (s), first 1000 MBPs, k = 1",
            &["dataset", "iMB", "FaPlexen", "bTraversal", "iTraversal"],
        );
        let upto = args.get("datasets", 6usize); // Divorce..Writer by default
        for spec in DATASETS.iter().take(upto) {
            let g = prepare_dataset(spec, scale);
            let mut row = format!("{:>10}", spec.name);
            for algo in Algo::ALL {
                let outcome = run_algo(&g, algo, 1, results, budget);
                row.push(' ');
                row.push_str(&outcome.cell());
            }
            println!("{row}");
        }
    }

    if part == "bc" || part == "all" {
        for name in ["Writer", "DBLP"] {
            let spec = DatasetSpec::by_name(name).unwrap();
            let g = prepare_dataset(spec, scale);
            print_header(
                &format!("Figure 7(b/c): running time (s) vs k on {name} (first {results} MBPs)"),
                &["k", "bTraversal", "iTraversal"],
            );
            for k in 1..=kmax {
                let b = run_algo(&g, Algo::BTraversal, k, results, budget);
                let i = run_algo(&g, Algo::ITraversal, k, results, budget);
                println!("{:>10} {} {}", k, b.cell(), i.cell());
            }
        }
    }

    if part == "de" || part == "all" {
        for name in ["Writer", "DBLP"] {
            let spec = DatasetSpec::by_name(name).unwrap();
            let g = prepare_dataset(spec, scale);
            print_header(
                &format!("Figure 7(d/e): running time (s) vs #results on {name} (k = 1)"),
                &["#results", "bTraversal", "iTraversal"],
            );
            for exp in 0..=5u32 {
                let n = 10u64.pow(exp);
                let b = run_algo(&g, Algo::BTraversal, 1, n, budget);
                let i = run_algo(&g, Algo::ITraversal, 1, n, budget);
                println!("{:>10} {} {}", n, b.cell(), i.cell());
            }
        }
    }
}
