//! Incremental-maintenance benchmark: per-update cost of the dynamic
//! maintainer vs rebuild-from-scratch, with machine-readable output.
//!
//! Generates a Chung–Lu bipartite background with `--blocks` planted
//! quasi-biclique blocks (the fraud case study's workload shape: the
//! planted blocks are the solutions worth maintaining, the power-law
//! background is noise), seeds the maintained large-MBP set, then replays a
//! random toggle script (insert if absent, delete if present); a
//! `--target-frac` share of the updates lands inside a planted block so the
//! diffs are real. Every update is timed through [`DynamicEnumerator`];
//! every `--rebuild-every`-th update additionally times a full snapshot +
//! re-enumeration and asserts the two solution sets agree, so the benchmark
//! doubles as an at-scale equivalence check. The headline number is
//! `median_speedup` = median rebuild time / median incremental time.
//!
//! Results go to `BENCH_dynamic.json` (uploaded by CI's `bench-smoke` job).
//!
//! Usage: `cargo run --release -p mbpe-bench --bin bench_dynamic --
//!         [--left 20000] [--right 20000] [--edges 100000] [--updates 1000]
//!         [--blocks 8] [--block-size 20] [--target-frac 0.5]
//!         [--k 1] [--theta 16] [--rebuild-every 50] [--gamma 2.5]
//!         [--seed 7] [--out BENCH_dynamic.json]`

use std::fmt::Write as _;
use std::time::Instant;

use bigraph::gen::chung_lu_bipartite;
use bigraph::BipartiteGraph;
use kbiplex::{DynamicConfig, DynamicEnumerator};
use mbpe_bench::Args;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let args = Args::parse();
    let left: u32 = args.get("left", 2_000u32);
    let right: u32 = args.get("right", 2_000u32);
    let edges: u64 = args.get("edges", 100_000u64);
    let updates: usize = args.get("updates", 1_000usize);
    let k: usize = args.get("k", 1usize);
    let theta: usize = args.get("theta", 16usize);
    let rebuild_every: usize = args.get("rebuild-every", 50usize);
    let gamma: f64 = args.get("gamma", 2.5f64);
    let blocks: usize = args.get("blocks", 8usize);
    let block_size: u32 = args.get("block-size", 20u32);
    let target_frac: f64 = args.get("target-frac", 0.5f64);
    let seed: u64 = args.get("seed", 7u64);
    let out_path = args.get_str("out").unwrap_or("BENCH_dynamic.json").to_string();
    assert!(
        blocks as u64 * block_size as u64 <= left.min(right) as u64,
        "planted blocks exceed the vertex ranges"
    );
    assert!((0.0..=1.0).contains(&target_frac), "--target-frac must be in [0, 1]");

    eprintln!(
        "dynamic maintenance: {left}x{right} ~{edges} edges (gamma {gamma}) \
         + {blocks} planted {block_size}x{block_size} blocks, {updates} updates \
         ({target_frac} targeted), k={k} theta={theta} rebuild-every={rebuild_every} seed={seed}"
    );

    let g = build_graph(left, right, edges, gamma, blocks, block_size, seed);
    eprintln!("generated: |E| = {}", g.num_edges());

    let cfg =
        DynamicConfig { k, theta_left: theta, theta_right: theta, ..DynamicConfig::default() };
    let localizable = cfg.is_localizable();
    let seed_start = Instant::now();
    let mut m = DynamicEnumerator::new(&g, cfg).expect("seed enumeration");
    let seed_secs = seed_start.elapsed().as_secs_f64();
    eprintln!(
        "seeded: {} solutions in {seed_secs:.3}s  mode = {}",
        m.len(),
        if localizable { "localized" } else { "fallback" }
    );

    // Planted block b occupies left/right ids [b·stride, b·stride + size).
    let stride = if blocks == 0 { 0 } else { left.min(right) / blocks as u32 };
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD1FF);
    let mut inc_secs: Vec<f64> = Vec::with_capacity(updates);
    let mut rebuild_secs: Vec<f64> = Vec::new();
    for step in 0..updates {
        let (v, u) = if blocks > 0 && rng.gen_bool(target_frac) {
            let b = rng.gen_range(0..blocks as u32);
            (b * stride + rng.gen_range(0..block_size), b * stride + rng.gen_range(0..block_size))
        } else {
            (rng.gen_range(0..left), rng.gen_range(0..right))
        };
        let insert = !m.graph().has_edge(v, u);
        let start = Instant::now();
        let diff = if insert { m.insert_edge(v, u) } else { m.delete_edge(v, u) }
            .expect("in-range update");
        inc_secs.push(start.elapsed().as_secs_f64());
        let _ = diff;
        if rebuild_every != 0 && (step + 1) % rebuild_every == 0 {
            let start = Instant::now();
            let rebuilt = m.rebuild().expect("rebuild enumeration");
            rebuild_secs.push(start.elapsed().as_secs_f64());
            assert_eq!(
                m.solutions(),
                rebuilt,
                "maintained set diverged from rebuild at update {}",
                step + 1
            );
        }
    }

    let stats = m.stats().clone();
    let inc_median = median(&mut inc_secs.clone());
    let rebuild_median = median(&mut rebuild_secs.clone());
    let speedup = if inc_median > 0.0 { rebuild_median / inc_median } else { f64::INFINITY };
    eprintln!(
        "incremental: median {:.6}s  mean {:.6}s  | rebuild: median {:.4}s ({} samples)",
        inc_median,
        inc_secs.iter().sum::<f64>() / inc_secs.len().max(1) as f64,
        rebuild_median,
        rebuild_secs.len()
    );
    eprintln!(
        "updates: {} (noop {}, localized {}, fallback {})  diffs +{} -{}  max region {}",
        stats.updates,
        stats.noop_updates,
        stats.localized_updates,
        stats.fallback_updates,
        stats.added_total,
        stats.removed_total,
        stats.max_region
    );
    eprintln!("median speedup (rebuild / incremental): {speedup:.1}x");

    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"left\": {left}, \"right\": {right}, \"edges\": {},", g.num_edges());
    let _ = writeln!(s, "  \"updates\": {updates}, \"k\": {k}, \"theta\": {theta},");
    let _ = writeln!(s, "  \"seed\": {seed}, \"localized_mode\": {localizable},");
    let _ = writeln!(
        s,
        "  \"initial_solutions\": {}, \"final_solutions\": {},",
        stats_initial(&stats, m.len()),
        m.len()
    );
    let _ = writeln!(s, "  \"seed_secs\": {seed_secs:.6},");
    let _ = writeln!(s, "  \"incremental_median_secs\": {inc_median:.9},");
    let _ = writeln!(
        s,
        "  \"incremental_mean_secs\": {:.9},",
        inc_secs.iter().sum::<f64>() / inc_secs.len().max(1) as f64
    );
    let _ = writeln!(s, "  \"rebuild_median_secs\": {rebuild_median:.6},");
    let _ = writeln!(s, "  \"rebuild_samples\": {},", rebuild_secs.len());
    let _ = writeln!(s, "  \"median_speedup\": {speedup:.2},");
    let _ = writeln!(
        s,
        "  \"stats\": {{\"noop\": {}, \"localized\": {}, \"fallback\": {}, \
         \"added\": {}, \"removed\": {}, \"max_region\": {}, \"region_vertices_total\": {}}}",
        stats.noop_updates,
        stats.localized_updates,
        stats.fallback_updates,
        stats.added_total,
        stats.removed_total,
        stats.max_region,
        stats.region_vertices_total
    );
    s.push_str("}\n");
    std::fs::write(&out_path, s).expect("write bench json");
    eprintln!("wrote {out_path}");
}

/// Chung–Lu background plus `blocks` planted complete bicliques of
/// `block_size × block_size`, block `b` occupying ids
/// `[b·stride, b·stride + block_size)` on both sides.
fn build_graph(
    left: u32,
    right: u32,
    edges: u64,
    gamma: f64,
    blocks: usize,
    block_size: u32,
    seed: u64,
) -> BipartiteGraph {
    let bg = chung_lu_bipartite(left, right, edges, gamma, seed);
    let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(bg.num_edges() as usize);
    for v in 0..left {
        for &u in bg.left_neighbors(v) {
            pairs.push((v, u));
        }
    }
    let stride = if blocks == 0 { 0 } else { left.min(right) / blocks as u32 };
    for b in 0..blocks as u32 {
        for dv in 0..block_size {
            for du in 0..block_size {
                pairs.push((b * stride + dv, b * stride + du));
            }
        }
    }
    BipartiteGraph::from_edges(left, right, &pairs).expect("in-range composed edges")
}

/// The seed solution count is the final count minus the net diff.
fn stats_initial(stats: &kbiplex::MaintainStats, final_len: usize) -> i64 {
    final_len as i64 - stats.added_total as i64 + stats.removed_total as i64
}

/// Median of a sample (0 when empty).
fn median(xs: &mut [f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    xs[xs.len() / 2]
}
