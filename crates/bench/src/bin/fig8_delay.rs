//! Reproduces **Figure 8**: the delay (maximum time between two consecutive
//! outputs) of all four algorithms on the small datasets, and its growth
//! with k on Divorce.
//!
//! Usage: `cargo run --release -p mbpe-bench --bin fig8_delay --
//!         [--budget-secs 120] [--kmax 4]`

use std::time::Duration;

use bigraph::gen::datasets::DatasetSpec;
use mbpe_bench::{measure_delay, print_header, Algo, Args};

fn cell(d: Option<kbiplex::DelayReport>) -> String {
    match d {
        Some(r) => format!("{:>12.6}", r.max_delay.as_secs_f64()),
        None => format!("{:>12}", "INF"),
    }
}

fn main() {
    let args = Args::parse();
    let budget = Duration::from_secs(args.get("budget-secs", 120u64));
    let kmax: usize = args.get("kmax", 4usize);

    print_header(
        "Figure 8(a): delay (s), small datasets, k = 1",
        &["dataset", "iTraversal", "iMB", "FaPlexen", "bTraversal"],
    );
    for spec in DatasetSpec::small_datasets() {
        let g = spec.generate_scaled();
        let order = [Algo::ITraversal, Algo::Imb, Algo::FaPlexen, Algo::BTraversal];
        let mut row = format!("{:>10}", spec.name);
        for algo in order {
            row.push(' ');
            row.push_str(&cell(measure_delay(&g, algo, 1, budget)));
        }
        println!("{row}");
    }

    let divorce = DatasetSpec::by_name("Divorce").unwrap().generate_scaled();
    print_header(
        "Figure 8(b): delay (s) vs k on Divorce",
        &["k", "iMB", "bTraversal", "FaPlexen", "iTraversal"],
    );
    for k in 1..=kmax {
        let order = [Algo::Imb, Algo::BTraversal, Algo::FaPlexen, Algo::ITraversal];
        let mut row = format!("{k:>10}");
        for algo in order {
            row.push(' ');
            row.push_str(&cell(measure_delay(&divorce, algo, k, budget)));
        }
        println!("{row}");
    }
}
