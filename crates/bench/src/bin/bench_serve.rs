//! Service benchmark: closed-loop traffic against an in-process
//! `mbpe-serve` daemon, with machine-readable latency output.
//!
//! Starts the daemon over a Chung–Lu bipartite graph, then drives it with
//! `--tenants` concurrent clients (each its own connection and scheduling
//! tenant), every client issuing `--requests` queries back-to-back from a
//! small rotating mix of [`QuerySpec`]s (thresholded, limited, btraversal,
//! parallel). Every response's solution count is cross-checked against a
//! direct in-process [`Enumerator`] run of the identical spec on the same
//! graph, so the benchmark doubles as a service-vs-facade equivalence
//! check. The headline numbers are per-query latency percentiles
//! (p50/p95/p99) and aggregate throughput.
//!
//! Results go to `BENCH_serve.json` (uploaded by CI's `serve-smoke` job).
//!
//! Usage: `cargo run --release -p mbpe-bench --bin bench_serve --
//!         [--left 400] [--right 400] [--edges 4000] [--gamma 2.5]
//!         [--tenants 8] [--requests 25] [--workers 0] [--seed 7]
//!         [--out BENCH_serve.json]`

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use bigraph::gen::chung_lu_bipartite;
use kbiplex::{CountingSink, Engine, Enumerator, QuerySpec};
use mbpe_bench::{percentile, Args};
use mbpe_serve::{Client, ServeConfig, Server};

/// The rotating query mix: label + spec. Every variant carries a solution
/// limit so one request is bounded work even on adversarial graphs (the
/// counts stay deterministic — `min(limit, total)` — so the facade
/// cross-check still bites).
fn query_mix() -> Vec<(&'static str, QuerySpec)> {
    let base =
        QuerySpec { theta_left: 3, theta_right: 3, limit: Some(2_000), ..QuerySpec::default() };
    let mut limited = base.clone();
    limited.limit = Some(200);
    let mut dense = base.clone();
    dense.theta_left = 4;
    dense.theta_right = 4;
    let mut parallel = base.clone();
    parallel.engine = Engine::WorkSteal;
    parallel.threads = 2;
    vec![("itraversal", base), ("limit-200", limited), ("theta-4", dense), ("parallel-2", parallel)]
}

fn main() {
    let args = Args::parse();
    let left: u32 = args.get("left", 400u32);
    let right: u32 = args.get("right", 400u32);
    let edges: u64 = args.get("edges", 4_000u64);
    let gamma: f64 = args.get("gamma", 2.5f64);
    let tenants: usize = args.get("tenants", 8usize);
    let requests: usize = args.get("requests", 25usize);
    let workers: usize = args.get("workers", 0usize);
    let seed: u64 = args.get("seed", 7u64);
    let out_path = args.get_str("out").unwrap_or("BENCH_serve.json").to_string();
    assert!(tenants > 0 && requests > 0, "--tenants and --requests must be positive");

    let g = chung_lu_bipartite(left, right, edges, gamma, seed);
    eprintln!(
        "serve bench: {left}x{right} |E| = {} (gamma {gamma} seed {seed}), \
         {tenants} tenants x {requests} requests, workers = {workers}",
        g.num_edges()
    );

    // Ground truth: the same specs run through the facade directly.
    let mix = query_mix();
    let expected: Vec<u64> = mix
        .iter()
        .map(|(label, spec)| {
            let mut sink = CountingSink::new();
            let report = Enumerator::from_spec(&g, spec).run(&mut sink).expect("direct facade run");
            eprintln!("facade {label}: {} solutions ({:?})", report.solutions, report.stop);
            report.solutions
        })
        .collect();

    let cfg = ServeConfig { workers, ..ServeConfig::default() };
    let handle = Server::start(cfg, g).expect("server starts");
    let addr = handle.addr();

    let bench_start = Instant::now();
    let threads: Vec<_> = (0..tenants)
        .map(|t| {
            let mix = query_mix();
            let expected = expected.clone();
            std::thread::spawn(move || -> Vec<Duration> {
                let tenant = format!("tenant-{t}");
                let mut client = Client::connect(addr, &tenant).expect("connect");
                let mut latencies = Vec::with_capacity(requests);
                for i in 0..requests {
                    let pick = (t + i) % mix.len();
                    let (label, spec) = &mix[pick];
                    let start = Instant::now();
                    let report = client.count(spec).expect("service query");
                    latencies.push(start.elapsed());
                    assert_eq!(
                        report.solutions, expected[pick],
                        "service diverged from the direct facade on {label}"
                    );
                }
                latencies
            })
        })
        .collect();
    let mut latencies: Vec<Duration> = Vec::with_capacity(tenants * requests);
    for thread in threads {
        latencies.extend(thread.join().expect("tenant thread"));
    }
    let wall = bench_start.elapsed().as_secs_f64();
    handle.shutdown();

    latencies.sort_unstable();
    let total = latencies.len();
    let p50 = percentile(&latencies, 50.0).as_secs_f64();
    let p95 = percentile(&latencies, 95.0).as_secs_f64();
    let p99 = percentile(&latencies, 99.0).as_secs_f64();
    let throughput = total as f64 / wall;
    eprintln!(
        "{total} requests in {wall:.3}s  throughput {throughput:.1} req/s  \
         p50 {:.1}ms  p95 {:.1}ms  p99 {:.1}ms",
        p50 * 1e3,
        p95 * 1e3,
        p99 * 1e3
    );
    eprintln!("service counts matched the direct facade on all {total} responses");

    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"left\": {left}, \"right\": {right}, \"edges\": {edges},");
    let _ = writeln!(s, "  \"gamma\": {gamma}, \"seed\": {seed},");
    let _ = writeln!(
        s,
        "  \"tenants\": {tenants}, \"requests_per_tenant\": {requests}, \"workers\": {workers},"
    );
    let _ = writeln!(s, "  \"total_requests\": {total},");
    let _ = writeln!(s, "  \"wall_secs\": {wall:.6},");
    let _ = writeln!(s, "  \"throughput_rps\": {throughput:.3},");
    let _ = writeln!(s, "  \"latency_p50_secs\": {p50:.9},");
    let _ = writeln!(s, "  \"latency_p95_secs\": {p95:.9},");
    let _ = writeln!(s, "  \"latency_p99_secs\": {p99:.9},");
    let _ = writeln!(s, "  \"facade_match\": true,");
    s.push_str("  \"mix\": [\n");
    for (i, ((label, _), count)) in query_mix().iter().zip(&expected).enumerate() {
        let comma = if i + 1 < expected.len() { "," } else { "" };
        let _ = writeln!(s, "    {{\"label\": \"{label}\", \"solutions\": {count}}}{comma}");
    }
    s.push_str("  ]\n}\n");
    std::fs::write(&out_path, s).expect("write bench json");
    eprintln!("wrote {out_path}");
}
