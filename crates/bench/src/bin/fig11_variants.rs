//! Reproduces **Figure 11**: the ablation of iTraversal's pruning
//! techniques — number of links in the underlying solution graph and total
//! running time of bTraversal, iTraversal-ES-RS (left-anchored only),
//! iTraversal-ES (no exclusion strategy) and the full iTraversal, on the
//! small datasets and for varying k on Divorce. All variants use the
//! L2.0+R2.0 EnumAlmostSat implementation, as in the paper.
//!
//! Usage: `cargo run --release -p mbpe-bench --bin fig11_variants --
//!         [--budget-secs 120] [--kmax 4]`

use std::time::{Duration, Instant};

use bigraph::gen::datasets::DatasetSpec;
use bigraph::BipartiteGraph;
use kbiplex::{Algorithm, CountingSink, EngineStats, Enumerator, StopReason};
use mbpe_bench::{print_header, Args};

/// The ablation ladder of Figure 11, as facade algorithm variants.
fn variants() -> [(&'static str, Algorithm); 4] {
    [
        ("bTraversal", Algorithm::BTraversal),
        ("iT-ES-RS", Algorithm::LeftAnchoredOnly),
        ("iT-ES", Algorithm::ITraversalNoExclusion),
        ("iTraversal", Algorithm::ITraversal),
    ]
}

/// Runs a full enumeration and returns (links, seconds, solutions), or None
/// if the budget fired.
fn run(
    g: &BipartiteGraph,
    algorithm: Algorithm,
    k: usize,
    budget: Duration,
) -> Option<(u64, f64, u64)> {
    let start = Instant::now();
    let mut sink = CountingSink::new();
    let report = Enumerator::new(g)
        .k(k)
        .algorithm(algorithm)
        .time_budget(budget)
        .run(&mut sink)
        .expect("valid configuration");
    if report.stop == StopReason::TimeBudget {
        return None;
    }
    let EngineStats::Sequential(stats) = report.stats else {
        unreachable!("sequential runs report traversal stats");
    };
    Some((stats.links, start.elapsed().as_secs_f64(), stats.solutions))
}

fn main() {
    let args = Args::parse();
    let budget = Duration::from_secs(args.get("budget-secs", 120u64));
    let kmax: usize = args.get("kmax", 4usize);

    print_header(
        "Figure 11(a): #links of the solution graph (k = 1)",
        &["dataset", "bTraversal", "iT-ES-RS", "iT-ES", "iTraversal", "#MBPs"],
    );
    for spec in DatasetSpec::small_datasets() {
        let g = spec.generate_scaled();
        let mut row = format!("{:>10}", spec.name);
        let mut solutions = 0;
        for (_, algorithm) in variants() {
            match run(&g, algorithm, 1, budget) {
                Some((links, _, sols)) => {
                    row.push_str(&format!(" {links:>10}"));
                    solutions = sols;
                }
                None => row.push_str(&format!(" {:>10}", "UPP")),
            }
        }
        println!("{row} {solutions:>10}");
    }

    print_header(
        "Figure 11(b): running time (s) of a full enumeration (k = 1)",
        &["dataset", "bTraversal", "iT-ES-RS", "iT-ES", "iTraversal"],
    );
    for spec in DatasetSpec::small_datasets() {
        let g = spec.generate_scaled();
        let mut row = format!("{:>10}", spec.name);
        for (_, algorithm) in variants() {
            match run(&g, algorithm, 1, budget) {
                Some((_, secs, _)) => row.push_str(&format!(" {secs:>10.4}")),
                None => row.push_str(&format!(" {:>10}", "INF")),
            }
        }
        println!("{row}");
    }

    let divorce = DatasetSpec::by_name("Divorce").unwrap().generate_scaled();
    print_header(
        "Figure 11(c): #links vs k (Divorce)",
        &["k", "bTraversal", "iT-ES-RS", "iT-ES", "iTraversal"],
    );
    for k in 1..=kmax {
        let mut row = format!("{k:>10}");
        for (_, algorithm) in variants() {
            match run(&divorce, algorithm, k, budget) {
                Some((links, _, _)) => row.push_str(&format!(" {links:>10}")),
                None => row.push_str(&format!(" {:>10}", "UPP")),
            }
        }
        println!("{row}");
    }

    print_header(
        "Figure 11(d): running time (s) vs k (Divorce)",
        &["k", "bTraversal", "iT-ES-RS", "iT-ES", "iTraversal"],
    );
    for k in 1..=kmax {
        let mut row = format!("{k:>10}");
        for (_, algorithm) in variants() {
            match run(&divorce, algorithm, k, budget) {
                Some((_, secs, _)) => row.push_str(&format!(" {secs:>10.4}")),
                None => row.push_str(&format!(" {:>10}", "INF")),
            }
        }
        println!("{row}");
    }

    // A check the ablation is sound: every variant reports the same number
    // of solutions (verified on Divorce, k = 1).
    let counts: Vec<u64> = variants()
        .iter()
        .map(|(_, algorithm)| {
            let mut sink = CountingSink::new();
            Enumerator::new(&divorce).k(1).algorithm(*algorithm).run(&mut sink).expect("valid");
            sink.count
        })
        .collect();
    println!("\nsanity: #MBPs per variant on Divorce (must be identical): {counts:?}");
}
