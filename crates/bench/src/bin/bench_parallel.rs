//! Parallel-scaling benchmark with machine-readable output.
//!
//! Runs the sequential `iTraversal`, the legacy global-queue parallel
//! engine and the work-stealing engine over a Chung–Lu stand-in graph at a
//! list of thread counts, and writes the wall-clock numbers to a JSON file
//! (`BENCH_parallel.json` by default). The CI `bench-smoke` job runs this on
//! a tiny graph and uploads the JSON as a workflow artifact, so the
//! performance trajectory of the scheduler accumulates across commits.
//!
//! Usage: `cargo run --release -p mbpe-bench --bin bench_parallel --
//!         [--left 60] [--right 60] [--edges 240] [--gamma 2.2]
//!         [--seed 7] [--k 1] [--iters 3] [--threads 1,2,4,8]
//!         [--order degeneracy] [--seen-segments 0] [--steal-adaptive on]
//!         [--out BENCH_parallel.json]`
//!
//! Power-law stand-ins pack a lot of MBPs per edge: the 60×60/240-edge
//! default already enumerates ~20k solutions per run. Scale with care.

use std::fmt::Write as _;
use std::time::Instant;

use bigraph::gen::chung_lu::chung_lu_bipartite;
use bigraph::intersect::{dispatch_with, Kernel};
use bigraph::order::VertexOrder;
use bigraph::BipartiteGraph;
use kbiplex::{CountingSink, Engine, EngineStats, Enumerator};
use mbpe_bench::Args;

/// One measured configuration.
struct Row {
    engine: &'static str,
    threads: usize,
    order: VertexOrder,
    secs: f64,
    solutions: u64,
    steals: u64,
}

/// One kernel measurement on one input size-class.
struct KernelRow {
    class: &'static str,
    kernel: Kernel,
    len_a: usize,
    len_b: usize,
    elems_per_sec: f64,
}

fn main() {
    let args = Args::parse();
    let left: u32 = args.get("left", 60u32);
    let right: u32 = args.get("right", 60u32);
    let edges: u64 = args.get("edges", 240u64);
    let gamma: f64 = args.get("gamma", 2.2f64);
    let seed: u64 = args.get("seed", 7u64);
    let k: usize = args.get("k", 1usize);
    let iters: u32 = args.get("iters", 3u32);
    let out_path = args.get_str("out").unwrap_or("BENCH_parallel.json").to_string();
    let threads_list: Vec<usize> = args
        .get_str("threads")
        .unwrap_or("1,2,4,8")
        .split(',')
        .map(|t| t.trim().parse().expect("--threads takes a comma-separated list"))
        .collect();
    let order: VertexOrder = args.get_str("order").unwrap_or("input").parse().expect("bad --order");
    let seen_segments: usize = args.get("seen-segments", 0usize);
    let steal_adaptive = match args.get_str("steal-adaptive").unwrap_or("on") {
        "on" | "true" | "1" => true,
        "off" | "false" | "0" => false,
        other => panic!("--steal-adaptive expects on or off, got {other:?}"),
    };

    let g = chung_lu_bipartite(left, right, edges, gamma, seed);
    eprintln!(
        "graph: chung_lu |L|={} |R|={} |E|={} k={} iters={} order={} seen-segments={} steal-adaptive={}",
        g.num_left(),
        g.num_right(),
        g.num_edges(),
        k,
        iters,
        order,
        seen_segments,
        steal_adaptive
    );

    let mut rows: Vec<Row> = Vec::new();

    // Sequential baseline (the full iTraversal, exclusion strategy on).
    let (secs, solutions, _) = best_of(iters, || {
        let mut sink = CountingSink::new();
        Enumerator::new(&g).k(k).order(order).run(&mut sink).expect("valid configuration");
        (sink.count, 0)
    });
    eprintln!("sequential_itraversal: {secs:.4}s  {solutions} solutions");
    rows.push(Row { engine: "sequential", threads: 1, order, secs, solutions, steals: 0 });

    for (engine, label) in
        [(Engine::GlobalQueue, "global_queue"), (Engine::WorkSteal, "work_steal")]
    {
        for &threads in &threads_list {
            let (secs, solutions, steals) = best_of(iters, || {
                let mut e = Enumerator::new(&g).k(k).engine(engine).order(order).threads(threads);
                if engine == Engine::WorkSteal {
                    e = e.seen_segments(seen_segments).steal_adaptive(steal_adaptive);
                }
                let mut sink = CountingSink::new();
                let report = e.run(&mut sink).expect("valid configuration");
                match report.stats {
                    EngineStats::Parallel(stats) => (stats.solutions, stats.steals),
                    _ => unreachable!("parallel engines report parallel stats"),
                }
            });
            eprintln!("{label} x{threads}: {secs:.4}s  {solutions} solutions  {steals} steals");
            rows.push(Row { engine: label, threads, order, secs, solutions, steals });
        }
    }

    let kernel_rows = kernel_microbench(iters, seed);

    let json = render_json(&g, k, iters, seen_segments, steal_adaptive, &rows, &kernel_rows);
    std::fs::write(&out_path, json).expect("write bench json");
    eprintln!("wrote {out_path}");
}

/// xorshift64* step (the same deterministic generator the engines use for
/// victim selection — no external RNG dependency).
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_f491_4f6c_dd1d)
}

/// Strictly ascending list of `len` ids whose consecutive gaps are drawn
/// uniformly from `1..=max_gap` — `max_gap` is the density dial (1 packs
/// the ids contiguously, large values spread them out).
fn sorted_ids(len: usize, max_gap: u32, rng: &mut u64) -> Vec<u32> {
    let mut v = Vec::with_capacity(len);
    let mut next = xorshift(rng) as u32 % 64;
    for _ in 0..len {
        v.push(next);
        next += 1 + (xorshift(rng) as u32) % max_gap;
    }
    v
}

/// Per-kernel intersection throughput by input size-class, the measured
/// basis of the `intersect::dispatch` crossover constants. Every kernel
/// runs on identical inputs; results are cross-checked against the scalar
/// merge so a wrong kernel can never post a fast number.
fn kernel_microbench(iters: u32, seed: u64) -> Vec<KernelRow> {
    // (class, |a|, gap_a, |b|, gap_b): the regimes the dispatcher's
    // heuristic distinguishes. "dense" keeps both sides near-contiguous
    // (bitset territory), "skewed" has a 512x length ratio (galloping
    // territory), "tiny" sits below the SMALL_LEN cut-off, and
    // "balanced-sparse" is the branchless chunked kernel's home turf.
    const CLASSES: [(&str, usize, u32, usize, u32); 4] = [
        ("tiny", 12, 8, 12, 8),
        ("balanced-sparse", 4096, 16, 4096, 16),
        ("skewed", 128, 512, 65536, 16),
        ("dense", 4096, 3, 4096, 3),
    ];
    let mut rows = Vec::new();
    for (class, len_a, gap_a, len_b, gap_b) in CLASSES {
        let mut rng = seed ^ 0x9e37_79b9_7f4a_7c15;
        let a = sorted_ids(len_a, gap_a, &mut rng);
        let b = sorted_ids(len_b, gap_b, &mut rng);
        let expected = dispatch_with(Kernel::Merge, &a, &b);
        let elems = (len_a + len_b) as u64;
        // Aim for ~20M touched elements per timing so even the fastest
        // kernel runs long enough to measure.
        let reps = (20_000_000 / elems).max(64);
        for kernel in Kernel::ALL {
            let mut best = f64::INFINITY;
            for _ in 0..iters.max(1) {
                let start = Instant::now();
                let mut hits = 0usize;
                for _ in 0..reps {
                    hits = dispatch_with(kernel, &a, &b);
                }
                let secs = start.elapsed().as_secs_f64();
                assert_eq!(hits, expected, "kernel {kernel} diverged on class {class}");
                best = best.min(secs);
            }
            let elems_per_sec = (elems * reps) as f64 / best;
            eprintln!(
                "kernel {class}/{kernel}: {:.1}M elems/s ({expected} hits)",
                elems_per_sec / 1e6
            );
            rows.push(KernelRow { class, kernel, len_a, len_b, elems_per_sec });
        }
    }
    rows
}

/// Runs `f` (returning `(solutions, steals)`) `iters` times; returns the
/// best wall-clock time, the solution count (asserted identical across
/// runs) and the steal count *of the best-timed run*, so every JSON row
/// pairs measurements from the same iteration.
fn best_of(iters: u32, mut f: impl FnMut() -> (u64, u64)) -> (f64, u64, u64) {
    let mut best = f64::INFINITY;
    let mut best_steals = 0u64;
    let mut value = None;
    for _ in 0..iters.max(1) {
        let start = Instant::now();
        let (v, steals) = f();
        let elapsed = start.elapsed().as_secs_f64();
        if elapsed < best {
            best = elapsed;
            best_steals = steals;
        }
        if let Some(prev) = value.replace(v) {
            assert_eq!(prev, v, "nondeterministic solution count");
        }
    }
    (best, value.unwrap(), best_steals)
}

/// Renders the measurements as a small self-describing JSON document; the
/// workspace has no serde, so the document is assembled by hand.
fn render_json(
    g: &BipartiteGraph,
    k: usize,
    iters: u32,
    seen_segments: usize,
    steal_adaptive: bool,
    rows: &[Row],
    kernel_rows: &[KernelRow],
) -> String {
    let secs_of = |engine: &str, threads: usize| -> Option<f64> {
        rows.iter().find(|r| r.engine == engine && r.threads == threads).map(|r| r.secs)
    };
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(
        s,
        "  \"graph\": {{\"generator\": \"chung_lu\", \"num_left\": {}, \"num_right\": {}, \"num_edges\": {}}},",
        g.num_left(),
        g.num_right(),
        g.num_edges()
    );
    let _ = writeln!(s, "  \"k\": {k},");
    let _ = writeln!(s, "  \"iters\": {iters},");
    let _ = writeln!(s, "  \"seen_segments\": {seen_segments},");
    let _ = writeln!(s, "  \"steal_adaptive\": {steal_adaptive},");
    s.push_str("  \"runs\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{\"engine\": \"{}\", \"threads\": {}, \"order\": \"{}\", \"secs\": {:.6}, \"solutions\": {}, \"steals\": {}}}{}",
            r.engine, r.threads, r.order, r.secs, r.solutions, r.steals, comma
        );
    }
    s.push_str("  ],\n");
    // Headline ratios: work-steal speedup over the global queue at the same
    // thread count, and over the sequential baseline.
    let seq = secs_of("sequential", 1);
    s.push_str("  \"speedups\": {");
    let mut first = true;
    for r in rows.iter().filter(|r| r.engine == "work_steal") {
        let vs_global = secs_of("global_queue", r.threads).map(|g| g / r.secs);
        let vs_seq = seq.map(|g| g / r.secs);
        if !first {
            s.push(',');
        }
        first = false;
        let _ = write!(
            s,
            "\n    \"t{}\": {{\"vs_global_queue\": {}, \"vs_sequential\": {}}}",
            r.threads,
            vs_global.map_or("null".to_string(), |v| format!("{v:.3}")),
            vs_seq.map_or("null".to_string(), |v| format!("{v:.3}"))
        );
    }
    s.push_str("\n  },\n");
    // Per-kernel intersection throughput by size-class, with each kernel's
    // speedup over the scalar merge on the same inputs — the numbers the
    // crossover constants in `bigraph::intersect` are chosen from.
    s.push_str("  \"kernels\": {");
    let classes: Vec<&str> = {
        let mut cs: Vec<&str> = Vec::new();
        for r in kernel_rows {
            if !cs.contains(&r.class) {
                cs.push(r.class);
            }
        }
        cs
    };
    for (ci, class) in classes.iter().enumerate() {
        let in_class: Vec<&KernelRow> = kernel_rows.iter().filter(|r| r.class == *class).collect();
        let merge = in_class
            .iter()
            .find(|r| r.kernel == Kernel::Merge)
            .map(|r| r.elems_per_sec)
            .unwrap_or(f64::NAN);
        let comma = if ci > 0 { "," } else { "" };
        let _ = write!(
            s,
            "{comma}\n    \"{class}\": {{\"len_a\": {}, \"len_b\": {}",
            in_class[0].len_a, in_class[0].len_b
        );
        for r in &in_class {
            let _ = write!(
                s,
                ", \"{}\": {{\"elems_per_sec\": {:.0}, \"vs_merge\": {:.3}}}",
                r.kernel,
                r.elems_per_sec,
                r.elems_per_sec / merge
            );
        }
        s.push('}');
    }
    s.push_str("\n  }\n}\n");
    s
}
