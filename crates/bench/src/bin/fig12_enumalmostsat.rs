//! Reproduces **Figure 12**: average running time of the EnumAlmostSat
//! implementations (Inflation, L1.0+R1.0, L1.0+R2.0, L2.0+R1.0, L2.0+R2.0)
//! on almost-satisfying graphs built from the first MBPs of the Writer and
//! DBLP stand-ins, for varying k.
//!
//! Usage: `cargo run --release -p mbpe-bench --bin fig12_enumalmostsat --
//!         [--samples 200] [--kmax 4] [--scale 1]`

use bigraph::gen::datasets::DatasetSpec;
use kbiplex::EnumKind;
use mbpe_bench::{enum_almost_sat_avg_time, prepare_dataset, print_header, Args};

fn main() {
    let args = Args::parse();
    let samples: usize = args.get("samples", 200usize);
    let kmax: usize = args.get("kmax", 4usize);
    let scale: u32 = args.get("scale", 1u32);

    for name in ["Writer", "DBLP"] {
        let spec = DatasetSpec::by_name(name).unwrap();
        let g = prepare_dataset(spec, scale);
        print_header(
            &format!("Figure 12: EnumAlmostSat avg time (s) on {name} ({samples} almost-satisfying graphs)"),
            &["k", "Inflation", "L1.0+R1.0", "L1.0+R2.0", "L2.0+R1.0", "L2.0+R2.0"],
        );
        let order =
            [EnumKind::Inflation, EnumKind::L1R1, EnumKind::L1R2, EnumKind::L2R1, EnumKind::L2R2];
        for k in 1..=kmax {
            let mut row = format!("{k:>10}");
            for kind in order {
                let avg = enum_almost_sat_avg_time(&g, k, kind, samples);
                row.push_str(&format!(" {:>10.6}", avg.as_secs_f64()));
            }
            println!("{row}");
        }
    }
}
