//! Reproduces **Figure 10**: enumerating *large* MBPs (both sides ≥ θ) with
//! iMB versus iTraversal, both preceded by a (θ−k)-core reduction, on the
//! Writer and DBLP stand-ins for varying θ.
//!
//! With `--threads` other than 1, the iTraversal column runs the parallel
//! work-stealing engine (`0` = auto thread count) instead of the sequential
//! one — the same facade path the CLI's `--algo parallel` uses. The
//! facade's time budget bounds both iTraversal columns: the sequential
//! engine polls the deadline at every DFS step and the parallel workers at
//! steal/expand boundaries, so the budget binds even when the size
//! thresholds filter out every solution. (The iMB column approximates its
//! budget through a node count, as before.)
//!
//! Usage: `cargo run --release -p mbpe-bench --bin fig10_large --
//!         [--budget-secs 120] [--scale 1] [--threads 1]`

use std::time::{Duration, Instant};

use bigraph::gen::datasets::DatasetSpec;
use kbiplex::{Algorithm, CountingSink, Engine, Enumerator, StopReason};
use mbpe_bench::{prepare_dataset, print_header, Args, BudgetSink};

fn main() {
    let args = Args::parse();
    let budget = Duration::from_secs(args.get("budget-secs", 120u64));
    let scale: u32 = args.get("scale", 1u32);
    let threads: usize = args.get("threads", 1usize);
    let k = 1usize;

    for (name, thetas) in [("Writer", vec![5usize, 6, 7, 8]), ("DBLP", vec![8usize, 9, 10, 11])] {
        let spec = DatasetSpec::by_name(name).unwrap();
        let g = prepare_dataset(spec, scale);
        let engine_label =
            if threads == 1 { "iTraversal".to_string() } else { format!("iTrav x{threads}") };
        print_header(
            &format!(
                "Figure 10: large MBP enumeration on {name} (k = 1), time (s) and #large MBPs"
            ),
            &["theta", "iMB", &engine_label, "#MBPs", "core |V|"],
        );
        for &theta in &thetas {
            // iMB with the same (θ−k)-core preprocessing the paper applies.
            let core = bigraph::core_decomp::alpha_beta_core_subgraph(
                &g,
                theta.saturating_sub(k),
                theta.saturating_sub(k),
            );
            let imb_start = Instant::now();
            let mut imb_sink = BudgetSink::new(u64::MAX, budget);
            let imb_stats = baselines::enumerate_imb(
                &core.graph,
                &baselines::ImbConfig::new(k)
                    .with_thresholds(theta, theta)
                    .with_max_nodes(500_000_000),
                &mut imb_sink,
            );
            let imb_cell = if imb_sink.timed_out || imb_stats.budget_exhausted {
                format!("{:>10}", "INF")
            } else {
                format!("{:>10.4}", imb_start.elapsed().as_secs_f64())
            };

            // iTraversal with the built-in large-MBP pipeline, sequential or
            // parallel — one facade call either way.
            let engine = if threads == 1 { Engine::Sequential } else { Engine::WorkSteal };
            let mut e = Enumerator::new(&g)
                .k(k)
                .algorithm(Algorithm::Large)
                .thresholds(theta, theta)
                .engine(engine)
                .time_budget(budget);
            if engine != Engine::Sequential {
                e = e.threads(threads);
            }
            let it_start = Instant::now();
            let mut it_sink = CountingSink::new();
            let report = e.run(&mut it_sink).expect("valid configuration");
            let it_cell = if report.stop == StopReason::TimeBudget {
                format!("{:>10}", "INF")
            } else {
                format!("{:>10.4}", it_start.elapsed().as_secs_f64())
            };
            let reduced = report.reduced.expect("large runs report the reduction");

            println!(
                "{:>10} {} {} {:>10} {:>10}",
                theta,
                imb_cell,
                it_cell,
                report.solutions,
                u64::from(reduced.left) + u64::from(reduced.right)
            );
        }
    }
}
