//! Reproduces **Figure 10**: enumerating *large* MBPs (both sides ≥ θ) with
//! iMB versus iTraversal, both preceded by a (θ−k)-core reduction, on the
//! Writer and DBLP stand-ins for varying θ.
//!
//! With `--threads` other than 1, the iTraversal column runs the parallel
//! engine (work-stealing scheduler, `0` = auto thread count) instead of the
//! sequential one, so the bench exercises the same path the CLI's
//! `--algo parallel` uses. `--budget-secs` only bounds the sequential
//! paths — the parallel engine has no cancellation and runs to completion.
//!
//! Usage: `cargo run --release -p mbpe-bench --bin fig10_large --
//!         [--budget-secs 120] [--scale 1] [--threads 1]`

use std::time::{Duration, Instant};

use bigraph::gen::datasets::DatasetSpec;
use kbiplex::{par_collect_large_mbps, LargeMbpParams, ParallelConfig, TraversalConfig};
use mbpe_bench::{prepare_dataset, print_header, Args, BudgetSink};

fn main() {
    let args = Args::parse();
    let budget = Duration::from_secs(args.get("budget-secs", 120u64));
    let scale: u32 = args.get("scale", 1u32);
    let threads: usize = args.get("threads", 1usize);
    let k = 1usize;
    if threads != 1 && args.get_str("budget-secs").is_some() {
        eprintln!(
            "note: --budget-secs only bounds the iMB column and the sequential \
             iTraversal path; the parallel engine has no cancellation and runs to \
             completion"
        );
    }

    for (name, thetas) in [("Writer", vec![5usize, 6, 7, 8]), ("DBLP", vec![8usize, 9, 10, 11])] {
        let spec = DatasetSpec::by_name(name).unwrap();
        let g = prepare_dataset(spec, scale);
        let engine_label =
            if threads == 1 { "iTraversal".to_string() } else { format!("iTrav x{threads}") };
        print_header(
            &format!(
                "Figure 10: large MBP enumeration on {name} (k = 1), time (s) and #large MBPs"
            ),
            &["theta", "iMB", &engine_label, "#MBPs", "core |V|"],
        );
        for &theta in &thetas {
            // iMB with the same (θ−k)-core preprocessing the paper applies.
            let core = bigraph::core_decomp::alpha_beta_core_subgraph(
                &g,
                theta.saturating_sub(k),
                theta.saturating_sub(k),
            );
            let imb_start = Instant::now();
            let mut imb_sink = BudgetSink::new(u64::MAX, budget);
            let imb_stats = baselines::enumerate_imb(
                &core.graph,
                &baselines::ImbConfig::new(k)
                    .with_thresholds(theta, theta)
                    .with_max_nodes(500_000_000),
                &mut imb_sink,
            );
            let imb_cell = if imb_sink.timed_out || imb_stats.budget_exhausted {
                format!("{:>10}", "INF")
            } else {
                format!("{:>10.4}", imb_start.elapsed().as_secs_f64())
            };

            // iTraversal with the built-in large-MBP pipeline: sequential
            // when --threads 1, the parallel engine otherwise.
            let params = LargeMbpParams::symmetric(k, theta);
            let it_start = Instant::now();
            let (it_cell, count, reduced) = if threads == 1 {
                let mut it_sink = BudgetSink::new(u64::MAX, budget);
                let report = kbiplex::enumerate_large_mbps(
                    &g,
                    &params,
                    &TraversalConfig::itraversal(k),
                    &mut it_sink,
                );
                let cell = if it_sink.timed_out {
                    format!("{:>10}", "INF")
                } else {
                    format!("{:>10.4}", it_start.elapsed().as_secs_f64())
                };
                (cell, it_sink.count, report.reduced_size)
            } else {
                let cfg = ParallelConfig::new(k).with_threads(threads);
                let (solutions, report) = par_collect_large_mbps(&g, &params, &cfg);
                let cell = format!("{:>10.4}", it_start.elapsed().as_secs_f64());
                (cell, solutions.len() as u64, report.reduced_size)
            };

            println!(
                "{:>10} {} {} {:>10} {:>10}",
                theta,
                imb_cell,
                it_cell,
                count,
                reduced.0 as u64 + reduced.1 as u64
            );
        }
    }
}
