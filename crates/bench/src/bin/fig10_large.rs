//! Reproduces **Figure 10**: enumerating *large* MBPs (both sides ≥ θ) with
//! iMB versus iTraversal, both preceded by a (θ−k)-core reduction, on the
//! Writer and DBLP stand-ins for varying θ.
//!
//! Usage: `cargo run --release -p mbpe-bench --bin fig10_large --
//!         [--budget-secs 120] [--scale 1]`

use std::time::{Duration, Instant};

use bigraph::gen::datasets::DatasetSpec;
use kbiplex::{LargeMbpParams, TraversalConfig};
use mbpe_bench::{prepare_dataset, print_header, Args, BudgetSink};

fn main() {
    let args = Args::parse();
    let budget = Duration::from_secs(args.get("budget-secs", 120u64));
    let scale: u32 = args.get("scale", 1u32);
    let k = 1usize;

    for (name, thetas) in [("Writer", vec![5usize, 6, 7, 8]), ("DBLP", vec![8usize, 9, 10, 11])] {
        let spec = DatasetSpec::by_name(name).unwrap();
        let g = prepare_dataset(spec, scale);
        print_header(
            &format!(
                "Figure 10: large MBP enumeration on {name} (k = 1), time (s) and #large MBPs"
            ),
            &["theta", "iMB", "iTraversal", "#MBPs", "core |V|"],
        );
        for &theta in &thetas {
            // iMB with the same (θ−k)-core preprocessing the paper applies.
            let core = bigraph::core_decomp::alpha_beta_core_subgraph(
                &g,
                theta.saturating_sub(k),
                theta.saturating_sub(k),
            );
            let imb_start = Instant::now();
            let mut imb_sink = BudgetSink::new(u64::MAX, budget);
            let imb_stats = baselines::enumerate_imb(
                &core.graph,
                &baselines::ImbConfig::new(k)
                    .with_thresholds(theta, theta)
                    .with_max_nodes(500_000_000),
                &mut imb_sink,
            );
            let imb_cell = if imb_sink.timed_out || imb_stats.budget_exhausted {
                format!("{:>10}", "INF")
            } else {
                format!("{:>10.4}", imb_start.elapsed().as_secs_f64())
            };

            // iTraversal with the built-in large-MBP pipeline.
            let it_start = Instant::now();
            let mut it_sink = BudgetSink::new(u64::MAX, budget);
            let params = LargeMbpParams::symmetric(k, theta);
            let report = kbiplex::enumerate_large_mbps(
                &g,
                &params,
                &TraversalConfig::itraversal(k),
                &mut it_sink,
            );
            let it_cell = if it_sink.timed_out {
                format!("{:>10}", "INF")
            } else {
                format!("{:>10.4}", it_start.elapsed().as_secs_f64())
            };

            println!(
                "{:>10} {} {} {:>10} {:>10}",
                theta,
                imb_cell,
                it_cell,
                it_sink.count,
                report.reduced_size.0 as u64 + report.reduced_size.1 as u64
            );
        }
    }
}
