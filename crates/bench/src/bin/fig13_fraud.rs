//! Reproduces **Figure 13**: the fraud-detection case study under a random
//! camouflage attack. Four structure families (biclique, 1-/2-biplex,
//! (α,β)-core, δ-QB) are mined with θ_L = 4 and θ_R swept, and precision /
//! recall / F1 against the injected ground truth are reported.
//!
//! Usage: `cargo run --release -p mbpe-bench --bin fig13_fraud --
//!         [--theta-l 4] [--theta-r-max 7] [--seed 2022]`

use frauddet::{run_detector, CamouflageScenario, Detector, ScenarioParams};
use mbpe_bench::{print_header, Args};

fn fmt_pct(x: Option<f64>) -> String {
    match x {
        Some(v) => format!("{:>8.1}", v * 100.0),
        None => format!("{:>8}", "ND"),
    }
}

fn fmt_f1(x: Option<f64>) -> String {
    match x {
        Some(v) => format!("{v:>8.2}"),
        None => format!("{:>8}", "ND"),
    }
}

fn main() {
    let args = Args::parse();
    let theta_l: usize = args.get("theta-l", 4usize);
    let theta_r_max: usize = args.get("theta-r-max", 7usize);
    let seed: u64 = args.get("seed", 2022u64);

    let params = ScenarioParams { seed, ..ScenarioParams::default() };
    println!(
        "Scenario: {} real users x {} real products ({} reviews), fraud block {} x {} ({} fake + {} camouflage comments)",
        params.real_users,
        params.real_products,
        params.real_reviews,
        params.fake_users,
        params.fake_products,
        params.fake_comments,
        params.camouflage_comments
    );
    let scenario = CamouflageScenario::generate(params);

    let detectors = [
        Detector::Biclique,
        Detector::KBiplex { k: 1 },
        Detector::KBiplex { k: 2 },
        Detector::AlphaBetaCore,
        Detector::DeltaQuasiBiclique { delta: 0.1 },
        Detector::DeltaQuasiBiclique { delta: 0.2 },
    ];

    for metric in ["precision (%)", "recall (%)", "F1"] {
        print_header(
            &format!("Figure 13: {metric} (θ_L/β = {theta_l}, θ_R/α varies)"),
            &["detector", "θR=3", "θR=4", "θR=5", "θR=6", "θR=7"],
        );
        for det in detectors {
            let mut row = format!("{:>16}", det.label());
            for theta_r in 3..=theta_r_max.min(7) {
                let m = run_detector(&scenario, det, theta_l, theta_r);
                let cell = match metric {
                    "precision (%)" => fmt_pct(m.precision),
                    "recall (%)" => fmt_pct(Some(m.recall)),
                    _ => fmt_f1(m.f1),
                };
                row.push(' ');
                row.push_str(&cell);
            }
            println!("{row}");
        }
    }
}
