//! Reproduces **Figure 9**: scalability on synthetic Erdős–Rényi graphs —
//! (a) running time vs number of vertices, (b) vs edge density — for
//! bTraversal and iTraversal, returning the first 1000 MBPs.
//!
//! The paper sweeps up to 100M vertices / 1B edges; the default sweep here
//! stops at 1M vertices so it finishes on a laptop. Pass `--huge` to extend
//! the sweep by two more points (10M and 100M vertices).
//!
//! Usage: `cargo run --release -p mbpe-bench --bin fig9_synthetic --
//!         [--part a|b|all] [--results 1000] [--budget-secs 120] [--huge]`

use std::time::Duration;

use bigraph::gen::er::{er_bipartite, er_bipartite_with_density};
use mbpe_bench::{print_header, run_algo, Algo, Args};

fn main() {
    let args = Args::parse();
    let part = args.get_str("part").unwrap_or("all").to_string();
    let results: u64 = args.get("results", 1000u64);
    let budget = Duration::from_secs(args.get("budget-secs", 120u64));

    if part == "a" || part == "all" {
        print_header(
            "Figure 9(a): running time (s) vs #vertices (density 10, k = 1, first 1000 MBPs)",
            &["#vertices", "bTraversal", "iTraversal"],
        );
        let mut sizes: Vec<u64> = vec![10_000, 100_000, 1_000_000];
        if args.has("huge") {
            sizes.push(10_000_000);
            sizes.push(100_000_000);
        }
        for n in sizes {
            let half = (n / 2) as u32;
            let g = er_bipartite(half, half, 10 * n, 42 + n);
            let b = run_algo(&g, Algo::BTraversal, 1, results, budget);
            let i = run_algo(&g, Algo::ITraversal, 1, results, budget);
            println!("{:>10} {} {}", n, b.cell(), i.cell());
        }
    }

    if part == "b" || part == "all" {
        print_header(
            "Figure 9(b): running time (s) vs edge density (100k vertices, k = 1, first 1000 MBPs)",
            &["density", "bTraversal", "iTraversal"],
        );
        for density in [0.1f64, 1.0, 10.0, 100.0] {
            let g = er_bipartite_with_density(50_000, 50_000, density, 7);
            let b = run_algo(&g, Algo::BTraversal, 1, results, budget);
            let i = run_algo(&g, Algo::ITraversal, 1, results, budget);
            println!("{:>10} {} {}", density, b.cell(), i.cell());
        }
    }
}
