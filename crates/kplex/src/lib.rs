//! # kplex — maximal k-plex enumeration on general graphs
//!
//! A *k-plex* of a general (unipartite) graph is a vertex set `S` in which
//! every vertex has at most `k` non-neighbours **counting itself**, i.e.
//! every `v ∈ S` has at least `|S| − k` neighbours inside `S` (the
//! definition used by Berlowitz, Cohen & Kimelfeld and by FaPlexen, and the
//! one quoted in the paper). k-plexes are hereditary, and a k-biplex of a
//! bipartite graph is exactly a (k+1)-plex of its *inflation*.
//!
//! This crate provides a branch-and-bound maximal k-plex enumerator over
//! the [`GraphView`] abstraction from `bigraph`, which lets it run both on
//! explicit general graphs and on the implicit inflated view of a bipartite
//! graph. It is the substrate for
//!
//! * the FaPlexen-style global baseline (`baselines::inflation`), and
//! * the `Inflation` implementation of the `EnumAlmostSat` procedure that
//!   the paper attributes to the original `bTraversal` (Figure 12).
//!
//! The enumerator is a classic set-enumeration tree with include/exclude
//! branching, candidate filtering by the hereditary property, and a
//! maximality check against the exclusion set — it intentionally has the
//! *exponential delay* behaviour of the baselines it models.

#![forbid(unsafe_code)]

use bigraph::general::GraphView;

/// Configuration for the k-plex enumeration.
#[derive(Clone, Debug)]
pub struct PlexConfig {
    /// `k` of the k-plex definition (each vertex misses at most `k`
    /// vertices of the subgraph, itself included). Must be ≥ 1.
    pub k: usize,
    /// Only report k-plexes with at least this many vertices.
    pub min_size: usize,
    /// If set, every reported k-plex must contain this vertex and the
    /// search is seeded with it (used for local enumeration inside
    /// almost-satisfying graphs).
    pub must_include: Option<u32>,
    /// Stop after this many k-plexes have been reported (`u64::MAX` = all).
    pub max_results: u64,
    /// Abort after this many search-tree nodes have been expanded
    /// (`u64::MAX` = no budget). When the budget is hit the enumeration is
    /// truncated; [`PlexStats::budget_exhausted`] is set.
    pub max_nodes: u64,
}

impl PlexConfig {
    /// All maximal k-plexes, no constraints.
    pub fn new(k: usize) -> Self {
        PlexConfig {
            k,
            min_size: 0,
            must_include: None,
            max_results: u64::MAX,
            max_nodes: u64::MAX,
        }
    }

    /// Sets the minimum reported size.
    pub fn with_min_size(mut self, min_size: usize) -> Self {
        self.min_size = min_size;
        self
    }

    /// Requires every reported k-plex to contain `v`.
    pub fn with_must_include(mut self, v: u32) -> Self {
        self.must_include = Some(v);
        self
    }

    /// Caps the number of reported k-plexes.
    pub fn with_max_results(mut self, n: u64) -> Self {
        self.max_results = n;
        self
    }

    /// Caps the number of expanded search nodes.
    pub fn with_max_nodes(mut self, n: u64) -> Self {
        self.max_nodes = n;
        self
    }
}

/// Counters describing one enumeration run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PlexStats {
    /// Number of maximal k-plexes reported.
    pub reported: u64,
    /// Number of search-tree nodes expanded.
    pub nodes: u64,
    /// True when the node budget stopped the search early.
    pub budget_exhausted: bool,
}

/// Enumerates maximal k-plexes of `g` according to `config`, invoking
/// `sink` for each one (vertices sorted ascending). The sink returns `true`
/// to continue and `false` to stop the enumeration early.
pub fn enumerate_maximal_plexes<G, F>(g: &G, config: &PlexConfig, mut sink: F) -> PlexStats
where
    G: GraphView,
    F: FnMut(&[u32]) -> bool,
{
    assert!(config.k >= 1, "k must be at least 1 for k-plexes");
    let n = g.num_vertices();
    let mut stats = PlexStats::default();
    if n == 0 {
        return stats;
    }

    let mut state = SearchState {
        g,
        config,
        stats: &mut stats,
        stop: false,
        sink: &mut sink,
        scratch: Vec::new(),
    };

    let mut plex: Vec<u32> = Vec::new();
    let cand: Vec<u32>;
    let excl: Vec<u32> = Vec::new();

    if let Some(seed) = config.must_include {
        assert!((seed as usize) < n, "must_include vertex out of range");
        plex.push(seed);
        cand = (0..n as u32).filter(|&v| v != seed && state.can_add(&plex, v)).collect();
    } else {
        cand = (0..n as u32).collect();
    }

    state.expand(&mut plex, &cand, &excl);
    stats
}

/// Convenience wrapper collecting all maximal k-plexes into vectors.
pub fn collect_maximal_plexes<G: GraphView>(g: &G, config: &PlexConfig) -> Vec<Vec<u32>> {
    let mut out = Vec::new();
    enumerate_maximal_plexes(g, config, |plex| {
        out.push(plex.to_vec());
        true
    });
    out
}

/// Checks whether the vertex set `s` (no duplicates) is a k-plex of `g`.
pub fn is_k_plex<G: GraphView>(g: &G, s: &[u32], k: usize) -> bool {
    s.iter().all(|&v| {
        let non_nbrs = s.iter().filter(|&&w| w != v && !g.adjacent(v, w)).count();
        non_nbrs < k
    })
}

/// Checks whether `s` is a *maximal* k-plex of `g`.
pub fn is_maximal_k_plex<G: GraphView>(g: &G, s: &[u32], k: usize) -> bool {
    if !is_k_plex(g, s, k) {
        return false;
    }
    let mut sorted = s.to_vec();
    sorted.sort_unstable();
    (0..g.num_vertices() as u32).all(|v| {
        if sorted.binary_search(&v).is_ok() {
            return true;
        }
        let mut with_v = sorted.clone();
        with_v.push(v);
        !is_k_plex(g, &with_v, k)
    })
}

struct SearchState<'a, G: GraphView, F: FnMut(&[u32]) -> bool> {
    g: &'a G,
    config: &'a PlexConfig,
    stats: &'a mut PlexStats,
    stop: bool,
    sink: &'a mut F,
    scratch: Vec<u32>,
}

impl<G: GraphView, F: FnMut(&[u32]) -> bool> SearchState<'_, G, F> {
    /// `plex ∪ {v}` is still a k-plex?
    fn can_add(&self, plex: &[u32], v: u32) -> bool {
        let k = self.config.k;
        let mut v_non_nbrs = 1; // itself
        for &w in plex {
            if !self.g.adjacent(v, w) {
                v_non_nbrs += 1;
                if v_non_nbrs > k {
                    return false;
                }
                // w gains a non-neighbour; check w's budget.
                let w_non_nbrs =
                    plex.iter().filter(|&&x| x != w && !self.g.adjacent(w, x)).count() + 1;
                if w_non_nbrs + 1 > k {
                    return false;
                }
            }
        }
        v_non_nbrs <= k
    }

    fn expand(&mut self, plex: &mut Vec<u32>, cand: &[u32], excl: &[u32]) {
        if self.stop {
            return;
        }
        self.stats.nodes += 1;
        if self.stats.nodes > self.config.max_nodes {
            self.stats.budget_exhausted = true;
            self.stop = true;
            return;
        }

        // Prune: even taking every candidate cannot reach the minimum size.
        if plex.len() + cand.len() < self.config.min_size {
            return;
        }

        if cand.is_empty() {
            // Maximality check against the exclusion set.
            if excl.iter().any(|&v| self.can_add(plex, v)) {
                return;
            }
            if plex.len() >= self.config.min_size && !plex.is_empty() {
                self.scratch.clear();
                self.scratch.extend_from_slice(plex);
                self.scratch.sort_unstable();
                self.stats.reported += 1;
                let keep_going = (self.sink)(&self.scratch);
                if !keep_going || self.stats.reported >= self.config.max_results {
                    self.stop = true;
                }
            }
            return;
        }

        let v = cand[0];

        // Branch 1: include v.
        plex.push(v);
        let new_cand: Vec<u32> =
            cand[1..].iter().copied().filter(|&u| self.can_add(plex, u)).collect();
        let new_excl: Vec<u32> = excl.iter().copied().filter(|&u| self.can_add(plex, u)).collect();
        self.expand(plex, &new_cand, &new_excl);
        plex.pop();
        if self.stop {
            return;
        }

        // Branch 2: exclude v.
        let rest: Vec<u32> = cand[1..].to_vec();
        let mut excl_with_v: Vec<u32> = excl.to_vec();
        excl_with_v.push(v);
        self.expand(plex, &rest, &excl_with_v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigraph::general::{DenseSubview, GeneralGraph};

    /// Brute-force oracle: all maximal k-plexes by subset enumeration.
    fn brute_force_maximal_plexes<G: GraphView>(g: &G, k: usize) -> Vec<Vec<u32>> {
        let n = g.num_vertices();
        assert!(n <= 16);
        let mut plexes: Vec<Vec<u32>> = Vec::new();
        for mask in 1u32..(1 << n) {
            let s: Vec<u32> = (0..n as u32).filter(|&v| mask & (1 << v) != 0).collect();
            if is_k_plex(g, &s, k) {
                plexes.push(s);
            }
        }
        plexes
            .iter()
            .filter(|s| {
                !plexes.iter().any(|t| t.len() > s.len() && s.iter().all(|v| t.contains(v)))
            })
            .cloned()
            .collect()
    }

    fn sorted(mut v: Vec<Vec<u32>>) -> Vec<Vec<u32>> {
        v.sort();
        v
    }

    fn triangle_plus_pendant() -> GeneralGraph {
        // 0-1-2 triangle, 3 attached to 2.
        GeneralGraph::from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]).unwrap()
    }

    #[test]
    fn maximal_1_plexes_are_maximal_cliques() {
        let g = triangle_plus_pendant();
        let got = sorted(collect_maximal_plexes(&g, &PlexConfig::new(1)));
        assert_eq!(got, vec![vec![0, 1, 2], vec![2, 3]]);
    }

    #[test]
    fn two_plexes_of_small_graph_match_brute_force() {
        let g = triangle_plus_pendant();
        for k in 1..=3 {
            let got = sorted(collect_maximal_plexes(&g, &PlexConfig::new(k)));
            let expect = sorted(brute_force_maximal_plexes(&g, k));
            assert_eq!(got, expect, "k = {k}");
        }
    }

    #[test]
    fn random_graphs_match_brute_force() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        for seed in 0..30u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let n = rng.gen_range(3..9usize);
            let mut d = DenseSubview::new(n);
            for a in 0..n as u32 {
                for b in (a + 1)..n as u32 {
                    if rng.gen_bool(0.45) {
                        d.add_edge(a, b);
                    }
                }
            }
            for k in 1..=3usize {
                let got = sorted(collect_maximal_plexes(&d, &PlexConfig::new(k)));
                let expect = sorted(brute_force_maximal_plexes(&d, k));
                assert_eq!(got, expect, "seed {seed} k {k}");
            }
        }
    }

    #[test]
    fn all_reported_plexes_are_maximal() {
        let g = GeneralGraph::from_edges(
            7,
            &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 0), (1, 4), (2, 5)],
        )
        .unwrap();
        for k in 1..=2 {
            for plex in collect_maximal_plexes(&g, &PlexConfig::new(k)) {
                assert!(is_maximal_k_plex(&g, &plex, k), "k {k} plex {plex:?}");
            }
        }
    }

    #[test]
    fn min_size_filter() {
        let g = triangle_plus_pendant();
        let got = collect_maximal_plexes(&g, &PlexConfig::new(1).with_min_size(3));
        assert_eq!(got, vec![vec![0, 1, 2]]);
    }

    #[test]
    fn must_include_seeding() {
        let g = triangle_plus_pendant();
        let got = sorted(collect_maximal_plexes(&g, &PlexConfig::new(1).with_must_include(3)));
        // Maximal cliques containing vertex 3.
        assert_eq!(got, vec![vec![2, 3]]);
        let got = sorted(collect_maximal_plexes(&g, &PlexConfig::new(2).with_must_include(0)));
        assert!(!got.is_empty());
        for plex in &got {
            assert!(plex.contains(&0));
            assert!(is_k_plex(&g, plex, 2));
        }
    }

    #[test]
    fn max_results_stops_early() {
        let g = triangle_plus_pendant();
        let mut count = 0;
        let stats = enumerate_maximal_plexes(&g, &PlexConfig::new(1).with_max_results(1), |_| {
            count += 1;
            true
        });
        assert_eq!(count, 1);
        assert_eq!(stats.reported, 1);
    }

    #[test]
    fn node_budget_truncates() {
        let g = GeneralGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]).unwrap();
        let stats = enumerate_maximal_plexes(&g, &PlexConfig::new(2).with_max_nodes(3), |_| true);
        assert!(stats.budget_exhausted);
        assert!(stats.nodes <= 4);
    }

    #[test]
    fn empty_graph() {
        let g = GeneralGraph::from_edges(0, &[]).unwrap();
        let got = collect_maximal_plexes(&g, &PlexConfig::new(1));
        assert!(got.is_empty());
    }

    #[test]
    fn graph_with_no_edges() {
        // With no edges, a k-plex can hold at most k vertices (each vertex
        // misses all others plus itself).
        let g = GeneralGraph::from_edges(4, &[]).unwrap();
        let got = collect_maximal_plexes(&g, &PlexConfig::new(2));
        // Maximal 2-plexes are all pairs.
        assert_eq!(got.len(), 6);
        for p in &got {
            assert_eq!(p.len(), 2);
        }
    }

    #[test]
    fn is_k_plex_checker() {
        let g = triangle_plus_pendant();
        assert!(is_k_plex(&g, &[0, 1, 2], 1));
        assert!(!is_k_plex(&g, &[0, 1, 2, 3], 1));
        // vertex 3 misses 0 and 1 (plus itself) so the full vertex set is a
        // 3-plex but not a 2-plex.
        assert!(!is_k_plex(&g, &[0, 1, 2, 3], 2));
        assert!(is_k_plex(&g, &[0, 1, 2, 3], 3));
        assert!(is_k_plex(&g, &[], 1));
        assert!(is_maximal_k_plex(&g, &[0, 1, 2], 1));
        assert!(!is_maximal_k_plex(&g, &[0, 1], 1));
    }

    #[test]
    fn works_on_inflated_view() {
        use bigraph::general::InflatedView;
        use bigraph::BipartiteGraph;
        // K_{2,2} bipartite -> inflation is K_4 -> single maximal 1-plex.
        let b = BipartiteGraph::from_edges(2, 2, &[(0, 0), (0, 1), (1, 0), (1, 1)]).unwrap();
        let inf = InflatedView::new(&b);
        let got = collect_maximal_plexes(&inf, &PlexConfig::new(1));
        assert_eq!(got, vec![vec![0, 1, 2, 3]]);
    }
}
