//! # kbiplex — maximal k-biplex enumeration
//!
//! Rust implementation of *"Efficient Algorithms for Maximal k-Biplex
//! Enumeration"* (SIGMOD 2022). A **k-biplex** of a bipartite graph
//! `G = (L ∪ R, E)` is an induced subgraph `(L', R')` in which every vertex
//! misses at most `k` vertices of the opposite side; this crate enumerates
//! all *maximal* k-biplexes (MBPs).
//!
//! ## Quick start
//!
//! ```
//! use bigraph::BipartiteGraph;
//! use kbiplex::{CollectSink, Enumerator, StopReason};
//!
//! // A small bipartite graph: 3 users × 3 products.
//! let g = BipartiteGraph::from_edges(3, 3, &[(0, 0), (0, 1), (1, 0), (1, 1), (1, 2), (2, 2)])
//!     .unwrap();
//!
//! // Enumerate all maximal 1-biplexes with the paper's iTraversal.
//! let mut sink = CollectSink::new();
//! let report = Enumerator::new(&g).k(1).run(&mut sink).unwrap();
//! assert_eq!(report.stop, StopReason::Exhausted);
//! assert_eq!(report.solutions as usize, sink.solutions.len());
//! assert!(!sink.solutions.is_empty());
//!
//! // Or pull the first two solutions from a stream.
//! let first_two: Vec<_> = Enumerator::new(&g).k(1).limit(2).stream().unwrap().collect();
//! assert_eq!(first_two.len(), 2);
//! ```
//!
//! ## What is inside
//!
//! * [`api`] — the [`Enumerator`] builder facade: the single entry point
//!   for every algorithm variant × engine combination, with streaming,
//!   first-N limits, time budgets and cooperative cancellation.
//! * [`traversal`] — the reverse-search engine implementing both
//!   `bTraversal` (Algorithm 1) and `iTraversal` (Algorithm 2) with the
//!   left-anchored, right-shrinking and exclusion-strategy prunings as
//!   individually toggleable options.
//! * [`mod@enum_almost_sat`] — the `EnumAlmostSat` procedure (Section 4) in its
//!   four refined variants plus the inflation-based baseline (Figure 12).
//! * [`large`] — large-MBP enumeration with size thresholds (Section 5).
//! * [`asym`] — asymmetric `(k_L, k_R)` budgets (the generalisation the
//!   paper mentions after Definition 2.1).
//! * [`parallel`] — a thread-parallel enumeration of the full MBP set (the
//!   paper's stated future work).
//! * [`dynamic`] — incremental maintenance of the maximal-k-biplex set
//!   under edge insertions/deletions, with per-update added/removed diffs
//!   and a core-bounded localized re-enumeration path.
//! * [`biplex`], [`extend`], [`initial`], [`store`], [`sink`], [`stats`] —
//!   the supporting data structures.
//! * [`bruteforce`] — an exponential oracle used for cross-validation.
//!
//! The crate never panics on well-formed inputs, uses no `unsafe`, and all
//! algorithms are deterministic (fixed preset orders), so runs are exactly
//! reproducible.

#![forbid(unsafe_code)]

pub mod api;
pub mod asym;
pub mod biplex;
pub mod bruteforce;
pub mod dynamic;
pub mod enum_almost_sat;
pub mod extend;
pub mod initial;
pub mod json;
pub mod large;
pub mod parallel;
pub mod sink;
pub mod stats;
pub mod store;
pub mod sync;
pub mod traversal;
pub mod wire;

pub use api::{
    Algorithm, ApiError, Engine, EngineStats, Enumerator, QuerySpec, ReducedGraph, RunReport,
    SolutionStream, StopReason,
};
pub use asym::{is_asym_biplex, KPair};
pub use bigraph::intersect::Kernel;
pub use bigraph::order::VertexOrder;
pub use biplex::{is_k_biplex, is_maximal_k_biplex, Biplex, PartialBiplex};
pub use dynamic::{DynamicConfig, DynamicEnumerator, DynamicError, MaintainStats, UpdateDiff};
pub use enum_almost_sat::{enum_almost_sat, AlmostSatStats, EnumKind};
pub use json::{Json, JsonError};
pub use large::{LargeMbpParams, LargeMbpReport, ParLargeMbpReport};
pub use parallel::seen::ConcurrentSeenSet;
pub use parallel::{ParallelConfig, ParallelEngine, ParallelStats};
pub use sink::{
    CollectSink, Control, CountingSink, DelayRecorder, DelayReport, FirstN, SizeFilter,
    SolutionSink,
};
pub use stats::TraversalStats;
pub use store::{BTreeStore, HashStore, SolutionStore};
pub use traversal::{Anchor, EmitMode, TraversalConfig};
