//! Incremental maintenance of the maximal k-biplex set under edge updates.
//!
//! [`DynamicEnumerator`] owns a [`DynamicBipartiteGraph`] plus the set of
//! maximal k-biplexes meeting the configured size thresholds, and keeps the
//! set consistent across [`insert_edge`](DynamicEnumerator::insert_edge) /
//! [`delete_edge`](DynamicEnumerator::delete_edge) calls, emitting an
//! [`UpdateDiff`] (`added` / `removed` solutions) per update instead of
//! re-enumerating from scratch.
//!
//! # Locality argument
//!
//! A single edge update `(v, u)` changes the adjacency of exactly one
//! left/right vertex pair, so a maximal k-biplex containing **neither** `v`
//! nor `u` keeps both its k-biplex property (its internal edges are
//! untouched) and its maximality (the addability of any outside vertex `w`
//! only depends on edges between `w` and the solution, which changed only
//! for `w ∈ {v, u}` — and then only towards solutions containing the other
//! endpoint). The whole diff is therefore confined to solutions containing
//! `v` on the left or `u` on the right.
//!
//! When the thresholds satisfy `θ_L > 2k` and `θ_R > 2k`, those solutions
//! are *geometrically local* too: every qualifying solution `H ∋ v` lies in
//! the (θ_R−k, θ_L−k)-core (each member's in-solution degree meets that
//! bound), two left vertices of `H` share a right neighbour inside `H`
//! because `|R'| ≥ θ_R > 2k` (two subsets of `R'` missing ≤ k each must
//! intersect), and every right vertex of `H` has a left neighbour inside
//! `H`. So `H` sits within BFS radius 3 of `v` *inside the core-induced
//! subgraph*. The update path exploits this: repair the
//! [`IncrementalCore`] membership, BFS a radius-3 ball around the touched
//! endpoints over core members only, enumerate the ball's induced subgraph
//! through the regular [`Enumerator`] facade, keep the solutions that
//! contain `v` or `u` *and* are maximal in the full graph, and diff against
//! the stored set.
//!
//! With smaller thresholds (including the θ = 0 "maintain everything"
//! setting) tiny solutions are not localizable — a far-away vertex can
//! complete or break maximality of a small biplex — so the maintainer falls
//! back to full re-enumeration per update (still emitting exact diffs).
//! [`MaintainStats`] records which path each update took.

use std::collections::{BTreeSet, HashMap};

use bigraph::csr::intersection_len;
use bigraph::{BipartiteBuilder, BipartiteGraph, DynamicBipartiteGraph, IncrementalCore};

use crate::api::{Algorithm, ApiError, Engine, Enumerator};
use crate::biplex::Biplex;

/// BFS radius of the re-enumeration region around a touched endpoint,
/// measured in edges inside the core-induced subgraph. Radius 3 is exact for
/// `θ > 2k` (left vertices of an affected solution are ≤ 2 hops from the
/// touched endpoint, right vertices ≤ 3 — see the module docs).
const REGION_RADIUS: usize = 3;

/// Configuration of a [`DynamicEnumerator`].
#[derive(Clone, Debug)]
pub struct DynamicConfig {
    /// The k of the maintained k-biplexes.
    pub k: usize,
    /// Minimum left-side size `θ_L` of maintained solutions (0 = no bound).
    pub theta_left: usize,
    /// Minimum right-side size `θ_R` of maintained solutions (0 = no bound).
    pub theta_right: usize,
    /// Engine used for the (re-)enumeration runs. Parallel engines only pay
    /// off when individual regions are large; the default is sequential.
    pub engine: Engine,
    /// Worker threads for the parallel engines (0 = automatic). Must be 0
    /// when `engine` is [`Engine::Sequential`].
    pub threads: usize,
}

impl Default for DynamicConfig {
    fn default() -> Self {
        DynamicConfig {
            k: 1,
            theta_left: 0,
            theta_right: 0,
            engine: Engine::Sequential,
            threads: 0,
        }
    }
}

impl DynamicConfig {
    /// `true` when updates can be localized to a core-bounded region
    /// (`θ_L > 2k` and `θ_R > 2k` — the premise of the locality proof).
    pub fn is_localizable(&self) -> bool {
        self.theta_left > 2 * self.k && self.theta_right > 2 * self.k
    }
}

/// The solution-set delta produced by one edge update.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct UpdateDiff {
    /// Solutions that became maximal k-biplexes with this update (sorted).
    pub added: Vec<Biplex>,
    /// Solutions that stopped being maximal k-biplexes (sorted).
    pub removed: Vec<Biplex>,
    /// `true` when the update was handled by localized re-enumeration,
    /// `false` when it fell back to a full re-enumeration.
    pub localized: bool,
}

impl UpdateDiff {
    /// `true` when the update changed nothing in the maintained set.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }
}

/// Counters accumulated by a [`DynamicEnumerator`] across updates.
#[derive(Clone, Debug, Default)]
pub struct MaintainStats {
    /// Total update calls (including no-ops).
    pub updates: u64,
    /// Updates that did not change the edge set (duplicate insert, missing
    /// delete) and were answered without any enumeration.
    pub noop_updates: u64,
    /// Updates answered through the localized region path.
    pub localized_updates: u64,
    /// Updates that fell back to full re-enumeration.
    pub fallback_updates: u64,
    /// Total solutions added across all diffs.
    pub added_total: u64,
    /// Total solutions removed across all diffs.
    pub removed_total: u64,
    /// Largest localized region (vertices of both sides) seen so far.
    pub max_region: usize,
    /// Sum of localized region sizes (for mean-region reporting).
    pub region_vertices_total: u64,
}

/// Errors surfaced by the maintenance layer.
#[derive(Debug)]
pub enum DynamicError {
    /// The underlying graph rejected the update (endpoint out of range).
    Graph(bigraph::Error),
    /// The re-enumeration facade rejected the configuration.
    Api(ApiError),
}

impl std::fmt::Display for DynamicError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DynamicError::Graph(e) => write!(f, "graph update error: {e}"),
            DynamicError::Api(e) => write!(f, "enumeration error: {e}"),
        }
    }
}

impl std::error::Error for DynamicError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DynamicError::Graph(e) => Some(e),
            DynamicError::Api(e) => Some(e),
        }
    }
}

impl From<bigraph::Error> for DynamicError {
    fn from(e: bigraph::Error) -> Self {
        DynamicError::Graph(e)
    }
}

impl From<ApiError> for DynamicError {
    fn from(e: ApiError) -> Self {
        DynamicError::Api(e)
    }
}

/// Maintains the set of maximal k-biplexes (meeting the configured size
/// thresholds) of a mutable bipartite graph across edge updates.
#[derive(Clone, Debug)]
pub struct DynamicEnumerator {
    graph: DynamicBipartiteGraph,
    cfg: DynamicConfig,
    core: Option<IncrementalCore>,
    solutions: BTreeSet<Biplex>,
    stats: MaintainStats,
}

impl DynamicEnumerator {
    /// Seeds the maintainer with a full enumeration of `graph` under `cfg`.
    pub fn new(graph: &BipartiteGraph, cfg: DynamicConfig) -> Result<Self, DynamicError> {
        let initial = enumerate_on(&cfg, graph)?;
        let dynamic = DynamicBipartiteGraph::from_graph(graph);
        let core = cfg.is_localizable().then(|| {
            // Left vertices keep ≥ θ_R − k right neighbours inside a
            // qualifying solution and vice versa — note the side swap.
            IncrementalCore::new(&dynamic, cfg.theta_right - cfg.k, cfg.theta_left - cfg.k)
        });
        Ok(DynamicEnumerator {
            graph: dynamic,
            cfg,
            core,
            solutions: initial.into_iter().collect(),
            stats: MaintainStats::default(),
        })
    }

    /// Inserts the edge `(left v, right u)` and returns the solution diff.
    /// Inserting an already-present edge is a no-op with an empty diff.
    pub fn insert_edge(&mut self, v: u32, u: u32) -> Result<UpdateDiff, DynamicError> {
        self.apply(true, v, u)
    }

    /// Deletes the edge `(left v, right u)` and returns the solution diff.
    /// Deleting an absent edge is a no-op with an empty diff.
    pub fn delete_edge(&mut self, v: u32, u: u32) -> Result<UpdateDiff, DynamicError> {
        self.apply(false, v, u)
    }

    /// The currently maintained solutions, sorted canonically.
    pub fn solutions(&self) -> Vec<Biplex> {
        self.solutions.iter().cloned().collect()
    }

    /// Number of currently maintained solutions.
    pub fn len(&self) -> usize {
        self.solutions.len()
    }

    /// `true` when no solution is currently maintained.
    pub fn is_empty(&self) -> bool {
        self.solutions.is_empty()
    }

    /// The underlying mutable graph.
    pub fn graph(&self) -> &DynamicBipartiteGraph {
        &self.graph
    }

    /// An immutable CSR snapshot of the current graph.
    pub fn snapshot(&self) -> BipartiteGraph {
        self.graph.snapshot()
    }

    /// The maintenance configuration.
    pub fn config(&self) -> &DynamicConfig {
        &self.cfg
    }

    /// Accumulated update counters.
    pub fn stats(&self) -> &MaintainStats {
        &self.stats
    }

    /// `true` when updates run through the localized region path.
    pub fn is_localized(&self) -> bool {
        self.core.is_some()
    }

    /// Enumerates the current graph from scratch (the rebuild baseline the
    /// incremental path is checked — and benchmarked — against).
    pub fn rebuild(&self) -> Result<Vec<Biplex>, DynamicError> {
        Ok(enumerate_on(&self.cfg, &self.graph.snapshot())?)
    }

    fn apply(&mut self, insert: bool, v: u32, u: u32) -> Result<UpdateDiff, DynamicError> {
        let changed =
            if insert { self.graph.insert_edge(v, u)? } else { self.graph.delete_edge(v, u)? };
        self.stats.updates += 1;
        if !changed {
            self.stats.noop_updates += 1;
            return Ok(UpdateDiff { localized: self.core.is_some(), ..UpdateDiff::default() });
        }
        if let Some(core) = self.core.as_mut() {
            if insert {
                core.on_insert(&self.graph, v, u);
            } else {
                core.on_delete(&self.graph, v, u);
            }
        }

        let mut added = Vec::new();
        let mut removed = Vec::new();
        let localized = self.core.is_some();
        if let Some(core) = self.core.as_ref() {
            self.stats.localized_updates += 1;
            let (region_l, region_r) = region(&self.graph, core, v, u);
            let size = region_l.len() + region_r.len();
            self.stats.max_region = self.stats.max_region.max(size);
            self.stats.region_vertices_total += size as u64;
            let fresh: BTreeSet<Biplex> =
                localized_fresh(&self.graph, &self.cfg, &region_l, &region_r, v, u)?
                    .into_iter()
                    .collect();
            // Only solutions containing v or u can change; everything else
            // in the stored set is untouched by construction.
            let candidates: Vec<Biplex> = self
                .solutions
                .iter()
                .filter(|b| b.contains_left(v) || b.contains_right(u))
                .cloned()
                .collect();
            for c in candidates {
                if !fresh.contains(&c) {
                    self.solutions.remove(&c);
                    removed.push(c);
                }
            }
            for f in fresh {
                if self.solutions.insert(f.clone()) {
                    added.push(f);
                }
            }
        } else {
            self.stats.fallback_updates += 1;
            let fresh: BTreeSet<Biplex> =
                enumerate_on(&self.cfg, &self.graph.snapshot())?.into_iter().collect();
            removed.extend(self.solutions.difference(&fresh).cloned());
            added.extend(fresh.difference(&self.solutions).cloned());
            self.solutions = fresh;
        }
        self.stats.added_total += added.len() as u64;
        self.stats.removed_total += removed.len() as u64;
        Ok(UpdateDiff { added, removed, localized })
    }
}

/// One full (or region) enumeration through the facade, under the
/// maintainer's configuration.
fn enumerate_on(cfg: &DynamicConfig, g: &BipartiteGraph) -> Result<Vec<Biplex>, ApiError> {
    let mut e = Enumerator::new(g)
        .k(cfg.k)
        .algorithm(Algorithm::Large)
        .thresholds(cfg.theta_left, cfg.theta_right)
        .engine(cfg.engine);
    if cfg.threads != 0 {
        // Forwarded even for the sequential engine so that an inconsistent
        // config surfaces as the facade's validation error.
        e = e.threads(cfg.threads);
    }
    e.collect()
}

/// Radius-[`REGION_RADIUS`] BFS ball around the touched endpoints, walking
/// only vertices inside the maintained (α,β)-core. Endpoints that were
/// peeled out of the core seed nothing: no qualifying solution can contain
/// them.
fn region(
    g: &DynamicBipartiteGraph,
    core: &IncrementalCore,
    v: u32,
    u: u32,
) -> (Vec<u32>, Vec<u32>) {
    let mut seen_l: BTreeSet<u32> = BTreeSet::new();
    let mut seen_r: BTreeSet<u32> = BTreeSet::new();
    let mut frontier: Vec<(bool, u32)> = Vec::new();
    if core.contains_left(v) {
        seen_l.insert(v);
        frontier.push((true, v));
    }
    if core.contains_right(u) {
        seen_r.insert(u);
        frontier.push((false, u));
    }
    for _ in 0..REGION_RADIUS {
        let mut next: Vec<(bool, u32)> = Vec::new();
        for (is_left, id) in frontier {
            if is_left {
                for &n in g.left_neighbors(id) {
                    if core.contains_right(n) && seen_r.insert(n) {
                        next.push((false, n));
                    }
                }
            } else {
                for &n in g.right_neighbors(id) {
                    if core.contains_left(n) && seen_l.insert(n) {
                        next.push((true, n));
                    }
                }
            }
        }
        frontier = next;
    }
    (seen_l.into_iter().collect(), seen_r.into_iter().collect())
}

/// Enumerates the region's induced subgraph and keeps the solutions that
/// (a) contain a touched endpoint and (b) stay maximal in the full graph.
/// Returns solutions in original vertex ids.
fn localized_fresh(
    g: &DynamicBipartiteGraph,
    cfg: &DynamicConfig,
    region_l: &[u32],
    region_r: &[u32],
    v: u32,
    u: u32,
) -> Result<Vec<Biplex>, ApiError> {
    if region_l.is_empty() || region_r.is_empty() {
        return Ok(Vec::new());
    }
    let right_inv: HashMap<u32, u32> =
        region_r.iter().enumerate().map(|(i, &orig)| (orig, i as u32)).collect();
    let mut builder = BipartiteBuilder::new(region_l.len() as u32, region_r.len() as u32);
    for (new_v, &orig_v) in region_l.iter().enumerate() {
        for &orig_u in g.left_neighbors(orig_v) {
            if let Some(&new_u) = right_inv.get(&orig_u) {
                builder.add_edge_unchecked(new_v as u32, new_u);
            }
        }
    }
    let sub = builder.build();

    let mut out = Vec::new();
    for s in enumerate_on(cfg, &sub)? {
        // region_l/region_r are sorted, so the mapped lists stay sorted.
        let left: Vec<u32> = s.left.iter().map(|&x| region_l[x as usize]).collect();
        let right: Vec<u32> = s.right.iter().map(|&x| region_r[x as usize]).collect();
        let touches = left.binary_search(&v).is_ok() || right.binary_search(&u).is_ok();
        if !touches {
            // Maximal solutions of the region that avoid both endpoints are
            // unaffected by the update; if globally maximal they are already
            // in the stored set, and re-reporting them would corrupt the
            // diff.
            continue;
        }
        if is_globally_maximal(g, &left, &right, cfg.k) {
            out.push(Biplex { left, right });
        }
    }
    Ok(out)
}

/// Global maximality check for a solution found inside a region subgraph.
///
/// Requires `|left| > k` and `|right| > k` (guaranteed by `θ > 2k` on the
/// localized path): then any addable outside vertex must be adjacent to at
/// least one solution vertex of the opposite side, so scanning the
/// solution's neighbourhoods covers all candidates — no `O(|V|)` sweep.
fn is_globally_maximal(g: &DynamicBipartiteGraph, left: &[u32], right: &[u32], k: usize) -> bool {
    debug_assert!(left.len() > k && right.len() > k);
    let left_miss: Vec<usize> =
        left.iter().map(|&l| right.len() - intersection_len(g.left_neighbors(l), right)).collect();
    let right_miss: Vec<usize> =
        right.iter().map(|&r| left.len() - intersection_len(g.right_neighbors(r), left)).collect();

    let mut cand_left: BTreeSet<u32> = BTreeSet::new();
    for &r in right {
        for &w in g.right_neighbors(r) {
            if left.binary_search(&w).is_err() {
                cand_left.insert(w);
            }
        }
    }
    for w in cand_left {
        let nbrs = g.left_neighbors(w);
        if right.len() - intersection_len(nbrs, right) > k {
            continue;
        }
        let addable = right
            .iter()
            .enumerate()
            .all(|(i, &r)| nbrs.binary_search(&r).is_ok() || right_miss[i] < k);
        if addable {
            return false;
        }
    }

    let mut cand_right: BTreeSet<u32> = BTreeSet::new();
    for &l in left {
        for &w in g.left_neighbors(l) {
            if right.binary_search(&w).is_err() {
                cand_right.insert(w);
            }
        }
    }
    for w in cand_right {
        let nbrs = g.right_neighbors(w);
        if left.len() - intersection_len(nbrs, left) > k {
            continue;
        }
        let addable = left
            .iter()
            .enumerate()
            .all(|(i, &l)| nbrs.binary_search(&l).is_ok() || left_miss[i] < k);
        if addable {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigraph::gen::chung_lu_bipartite;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn localized_cfg() -> DynamicConfig {
        DynamicConfig { k: 1, theta_left: 3, theta_right: 3, ..DynamicConfig::default() }
    }

    fn assert_in_sync(m: &DynamicEnumerator) {
        let rebuilt = m.rebuild().unwrap();
        assert_eq!(m.solutions(), rebuilt, "maintained set diverged from rebuild");
    }

    #[test]
    fn localized_insert_and_delete_track_rebuild() {
        // Complete 3×3 biclique on L{0,1,2} × R{0,1,2}; left vertex 3 sees
        // only right 0, so it misses 2 > k and stays outside the solution.
        let mut edges = Vec::new();
        for v in 0..3u32 {
            for u in 0..3u32 {
                edges.push((v, u));
            }
        }
        edges.push((3, 0));
        let g = BipartiteGraph::from_edges(4, 3, &edges).unwrap();
        let mut m = DynamicEnumerator::new(&g, localized_cfg()).unwrap();
        assert!(m.is_localized());
        assert_eq!(m.len(), 1, "the 3×3 biclique is the only qualifying solution");
        assert_in_sync(&m);

        // Vertex 3 now misses only right 2 and joins: the old solution stops
        // being maximal and the enlarged one replaces it.
        let diff = m.insert_edge(3, 1).unwrap();
        assert!(diff.localized);
        assert_eq!(diff.added.len(), 1);
        assert_eq!(diff.removed.len(), 1);
        assert!(diff.added[0].contains_left(3));
        assert_in_sync(&m);

        let diff = m.delete_edge(3, 1).unwrap();
        assert!(diff.localized);
        assert!(!diff.is_empty(), "removing the edge must evict vertex 3 again");
        assert_in_sync(&m);
        assert_eq!(m.stats().localized_updates, 2);
        assert_eq!(m.stats().fallback_updates, 0);
    }

    #[test]
    fn fallback_path_tracks_rebuild() {
        let g = chung_lu_bipartite(10, 10, 35, 2.0, 3);
        let cfg = DynamicConfig::default(); // θ = 0 → not localizable
        let mut m = DynamicEnumerator::new(&g, cfg).unwrap();
        assert!(!m.is_localized());
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..12 {
            let v = rng.gen_range(0..10);
            let u = rng.gen_range(0..10);
            let diff = if m.graph().has_edge(v, u) {
                m.delete_edge(v, u).unwrap()
            } else {
                m.insert_edge(v, u).unwrap()
            };
            assert!(!diff.localized);
            assert_in_sync(&m);
        }
        assert_eq!(m.stats().fallback_updates, 12);
    }

    #[test]
    fn noop_updates_produce_empty_diffs() {
        let g = BipartiteGraph::from_edges(4, 4, &[(0, 0), (0, 1), (1, 0), (1, 1)]).unwrap();
        let mut m = DynamicEnumerator::new(&g, localized_cfg()).unwrap();
        let before = m.solutions();
        let diff = m.insert_edge(0, 0).unwrap();
        assert!(diff.is_empty());
        let diff = m.delete_edge(3, 3).unwrap();
        assert!(diff.is_empty());
        assert_eq!(m.solutions(), before);
        assert_eq!(m.stats().noop_updates, 2);
        assert_eq!(m.stats().updates, 2);
    }

    #[test]
    fn out_of_range_update_is_an_error() {
        let g = BipartiteGraph::from_edges(2, 2, &[(0, 0)]).unwrap();
        let mut m = DynamicEnumerator::new(&g, DynamicConfig::default()).unwrap();
        let err = m.insert_edge(5, 0).unwrap_err();
        assert!(matches!(err, DynamicError::Graph(_)));
        assert!(!err.to_string().is_empty());
        // The failed update left the maintained state untouched.
        assert_in_sync(&m);
    }

    #[test]
    fn invalid_engine_config_is_an_api_error() {
        let g = BipartiteGraph::from_edges(2, 2, &[(0, 0)]).unwrap();
        let cfg = DynamicConfig { threads: 2, ..DynamicConfig::default() };
        let err = DynamicEnumerator::new(&g, cfg).unwrap_err();
        assert!(matches!(err, DynamicError::Api(_)));
    }

    /// Random edit scripts on a Chung–Lu graph: the localized path must stay
    /// in lockstep with rebuild-from-scratch at every prefix.
    #[test]
    fn localized_random_script_matches_rebuild() {
        for seed in 0..2u64 {
            let g = chung_lu_bipartite(16, 16, 80, 2.0, seed);
            let mut m = DynamicEnumerator::new(&g, localized_cfg()).unwrap();
            assert!(m.is_localized());
            let mut rng = StdRng::seed_from_u64(seed ^ 0xBEEF);
            for _ in 0..25 {
                let v = rng.gen_range(0..16);
                let u = rng.gen_range(0..16);
                if m.graph().has_edge(v, u) {
                    m.delete_edge(v, u).unwrap();
                } else {
                    m.insert_edge(v, u).unwrap();
                }
                assert_in_sync(&m);
            }
            assert!(m.stats().localized_updates > 0);
            assert_eq!(m.stats().fallback_updates, 0);
        }
    }

    #[test]
    fn diffs_compose_to_the_final_set() {
        let g = chung_lu_bipartite(14, 14, 60, 2.0, 11);
        let mut m = DynamicEnumerator::new(&g, localized_cfg()).unwrap();
        let mut tracked: BTreeSet<Biplex> = m.solutions().into_iter().collect();
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..25 {
            let v = rng.gen_range(0..14);
            let u = rng.gen_range(0..14);
            let diff = if m.graph().has_edge(v, u) {
                m.delete_edge(v, u).unwrap()
            } else {
                m.insert_edge(v, u).unwrap()
            };
            for b in &diff.removed {
                assert!(tracked.remove(b), "removed a solution that was not tracked");
            }
            for b in &diff.added {
                assert!(tracked.insert(b.clone()), "added a solution that was already tracked");
            }
        }
        assert_eq!(tracked.into_iter().collect::<Vec<_>>(), m.solutions());
    }
}
