//! The solution store used by the reverse-search frameworks to avoid
//! reporting / traversing a solution more than once.
//!
//! The paper uses a B-tree keyed on the vertex set of a solution
//! (Algorithm 1, lines 1 and 7–8); the standard library's `BTreeSet` plays
//! that role here. A hash-based store is also provided — it trades the
//! ordered iteration (not needed by the algorithms) for faster lookups and
//! is the default used by the traversal engine.

use std::collections::{BTreeSet, HashSet};

use crate::biplex::Biplex;

/// De-duplicating store of solutions keyed on their canonical vertex sets.
pub trait SolutionStore {
    /// Inserts the solution; returns `true` if it was not present before.
    fn insert(&mut self, solution: &Biplex) -> bool;
    /// Membership test.
    fn contains(&self, solution: &Biplex) -> bool;
    /// Number of distinct solutions stored.
    fn len(&self) -> usize;
    /// `true` when no solution has been stored yet.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// B-tree backed store (the data structure named by the paper).
#[derive(Debug, Default)]
pub struct BTreeStore {
    keys: BTreeSet<Vec<u32>>,
}

impl BTreeStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SolutionStore for BTreeStore {
    fn insert(&mut self, solution: &Biplex) -> bool {
        self.keys.insert(solution.canonical_key())
    }

    fn contains(&self, solution: &Biplex) -> bool {
        self.keys.contains(&solution.canonical_key())
    }

    fn len(&self) -> usize {
        self.keys.len()
    }
}

/// Hash-set backed store (default for the traversal engine).
#[derive(Debug, Default)]
pub struct HashStore {
    keys: HashSet<Vec<u32>>,
}

impl HashStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SolutionStore for HashStore {
    fn insert(&mut self, solution: &Biplex) -> bool {
        self.keys.insert(solution.canonical_key())
    }

    fn contains(&self, solution: &Biplex) -> bool {
        self.keys.contains(&solution.canonical_key())
    }

    fn len(&self) -> usize {
        self.keys.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise<S: SolutionStore + Default>() {
        let mut store = S::default();
        let a = Biplex::new(vec![0, 1], vec![2]);
        let b = Biplex::new(vec![0], vec![1, 2]);
        let a_again = Biplex::new(vec![1, 0], vec![2]);

        assert!(store.is_empty());
        assert!(store.insert(&a));
        assert!(!store.insert(&a));
        assert!(!store.insert(&a_again), "order of construction must not matter");
        assert!(store.insert(&b));
        assert_eq!(store.len(), 2);
        assert!(store.contains(&a));
        assert!(store.contains(&b));
        assert!(!store.contains(&Biplex::new(vec![5], vec![])));
        assert!(!store.is_empty());
    }

    #[test]
    fn btree_store() {
        exercise::<BTreeStore>();
    }

    #[test]
    fn hash_store() {
        exercise::<HashStore>();
    }

    #[test]
    fn side_ambiguity_is_resolved() {
        // ({1}, {2}) and ({1,2}, {}) must be distinct entries.
        let mut store = HashStore::new();
        assert!(store.insert(&Biplex::new(vec![1], vec![2])));
        assert!(store.insert(&Biplex::new(vec![1, 2], vec![])));
        assert_eq!(store.len(), 2);
    }
}
