//! Greedy maximal extension of a k-biplex (Step 3 of the `ThreeStep` /
//! `iThreeStep` procedures).
//!
//! Given a k-biplex, vertices are considered in a fixed *preset order* (all
//! left vertices by ascending id, then all right vertices by ascending id)
//! and added whenever the k-biplex property is preserved. Because the
//! property is hereditary, a vertex that cannot be added at the moment it is
//! considered can never become addable later, so a single pass yields a
//! maximal k-biplex and the result is a deterministic function of the input
//! — the requirement the reverse-search framework places on the extension
//! step.

use bigraph::intersect::intersection_into;
use bigraph::BipartiteGraph;

use crate::biplex::PartialBiplex;

/// Which sides the extension step is allowed to draw new vertices from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExtendMode {
    /// Add vertices from both sides (used by `bTraversal`, Algorithm 1).
    BothSides,
    /// Add vertices from the left side only (used by `iTraversal` under the
    /// right-shrinking traversal, Algorithm 2 line 8).
    LeftOnly,
}

/// Collects the left vertices that could possibly be added to a solution
/// whose right side is `right`: a left vertex needs at least
/// `|right| − k` neighbours inside `right`. When `|right| ≤ k` every left
/// vertex qualifies trivially and the full range is returned.
///
/// The returned list is sorted and excludes nothing else — the caller still
/// runs the exact [`PartialBiplex::can_add_left`] check.
pub fn left_extension_candidates(g: &BipartiteGraph, right: &[u32], k: usize) -> Vec<u32> {
    if right.len() <= k {
        return (0..g.num_left()).collect();
    }
    if k == 0 {
        return intersect_all(right.iter().map(|&u| g.right_neighbors(u)));
    }
    let need = right.len() - k;
    count_candidates(right.iter().map(|&u| g.right_neighbors(u)), need)
}

/// Symmetric to [`left_extension_candidates`] for the right side.
pub fn right_extension_candidates(g: &BipartiteGraph, left: &[u32], k: usize) -> Vec<u32> {
    if left.len() <= k {
        return (0..g.num_right()).collect();
    }
    if k == 0 {
        return intersect_all(left.iter().map(|&v| g.left_neighbors(v)));
    }
    let need = left.len() - k;
    count_candidates(left.iter().map(|&v| g.left_neighbors(v)), need)
}

/// `k = 0` counting filter: a candidate must occur in *every* list, so the
/// answer is exactly the intersection of all neighbour lists. Iterated
/// kernel intersections through [`bigraph::intersect`] (shortest list
/// first, the accumulator only shrinks, skewed steps gallop) beat the
/// gather-sort pool scan of [`count_candidates`], which is linear in the
/// *sum* of the list lengths.
fn intersect_all<'a, I: Iterator<Item = &'a [u32]>>(lists: I) -> Vec<u32> {
    let mut lists: Vec<&[u32]> = lists.collect();
    let Some(min_idx) = (0..lists.len()).min_by_key(|&i| lists[i].len()) else {
        return Vec::new();
    };
    let mut acc: Vec<u32> = lists.swap_remove(min_idx).to_vec();
    let mut scratch = Vec::new();
    for list in lists {
        if acc.is_empty() {
            break;
        }
        intersection_into(&acc, list, &mut scratch);
        std::mem::swap(&mut acc, &mut scratch);
    }
    acc
}

/// Concatenates the given sorted CSR neighbour slices, sorts the pool once
/// and scans it for ids occurring at least `need` times. Everything is a
/// contiguous array pass (gather, sort, run-length scan) — measurably
/// cheaper than the hash-map histogram it replaces, whose random probes
/// dominated the extension step on skewed graphs.
fn count_candidates<'a, I: Iterator<Item = &'a [u32]>>(lists: I, need: usize) -> Vec<u32> {
    let mut pool: Vec<u32> = Vec::new();
    for list in lists {
        pool.extend_from_slice(list);
    }
    pool.sort_unstable();
    let mut cands = Vec::new();
    let mut i = 0;
    while i < pool.len() {
        let id = pool[i];
        let mut j = i + 1;
        while j < pool.len() && pool[j] == id {
            j += 1;
        }
        if j - i >= need {
            cands.push(id);
        }
        i = j;
    }
    cands
}

/// Extends `partial` (which must already be a k-biplex) to a maximal
/// k-biplex of `g` in place, following the preset order. `mode` selects
/// which sides may contribute new vertices.
pub fn extend_to_maximal(
    g: &BipartiteGraph,
    partial: &mut PartialBiplex,
    k: usize,
    mode: ExtendMode,
) {
    debug_assert!(partial.is_k_biplex(k));

    // Left side first (ascending id), then — for BothSides — the right side.
    if partial.right().len() <= k {
        extend_left_small_right(g, partial, k);
    } else {
        let left_cands = left_extension_candidates(g, partial.right(), k);
        for v in left_cands {
            if !partial.contains_left(v) && partial.can_add_left(g, v, k) {
                partial.add_left(g, v);
            }
        }
    }

    if mode == ExtendMode::BothSides {
        let right_cands = right_extension_candidates(g, partial.left(), k);
        for u in right_cands {
            if !partial.contains_right(u) && partial.can_add_right(g, u, k) {
                partial.add_right(g, u);
            }
        }
        // Adding right vertices can never unlock additional left vertices
        // (constraints only tighten), so a single pass per side suffices.
    }
}

/// Left extension for the degenerate regime `|R| ≤ k`, where *every* left
/// vertex passes the counting filter. While no right vertex is saturated
/// (miss count `= k`) every left vertex is addable, so vertices are taken in
/// id order without any check; as soon as some right vertex saturates, only
/// neighbours of that vertex can still join, so the scan switches to its
/// adjacency list instead of walking the whole left side. This keeps the
/// extension near-linear in the output size on graphs with millions of
/// vertices.
fn extend_left_small_right(g: &BipartiteGraph, partial: &mut PartialBiplex, k: usize) {
    let num_left = g.num_left();
    let mut v = 0u32;
    // Phase 1: no right vertex saturated yet.
    while v < num_left {
        if let Some(idx) = (0..partial.right().len()).find(|&i| partial.right_miss(i) as usize >= k)
        {
            // Phase 2: only neighbours of the saturated vertex qualify.
            let anchor = partial.right()[idx];
            let nbrs = g.right_neighbors(anchor).to_vec();
            for w in nbrs {
                if w >= v && !partial.contains_left(w) && partial.can_add_left(g, w, k) {
                    partial.add_left(g, w);
                }
            }
            return;
        }
        if !partial.contains_left(v) && partial.can_add_left(g, v, k) {
            partial.add_left(g, v);
        }
        v += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::biplex::{is_k_biplex, is_maximal_k_biplex};
    use bigraph::BipartiteGraph;

    fn fixture() -> BipartiteGraph {
        // 5 x 5, complete except a scattering of misses.
        let mut edges = Vec::new();
        for v in 0u32..5 {
            for u in 0u32..5 {
                if !matches!((v, u), (0, 4) | (1, 3) | (2, 2) | (3, 1) | (4, 0) | (4, 4)) {
                    edges.push((v, u));
                }
            }
        }
        BipartiteGraph::from_edges(5, 5, &edges).unwrap()
    }

    #[test]
    fn extension_produces_a_maximal_biplex() {
        let g = fixture();
        for k in 0..=2usize {
            let mut p = PartialBiplex::from_sets(&g, &[0], &[0]);
            extend_to_maximal(&g, &mut p, k, ExtendMode::BothSides);
            assert!(
                is_maximal_k_biplex(&g, p.left(), p.right(), k),
                "k = {k}, got ({:?}, {:?})",
                p.left(),
                p.right()
            );
        }
    }

    #[test]
    fn left_only_extension_is_maximal_wrt_left() {
        let g = fixture();
        let k = 1;
        let mut p = PartialBiplex::from_sets(&g, &[1], &[0, 1, 2]);
        extend_to_maximal(&g, &mut p, k, ExtendMode::LeftOnly);
        assert!(is_k_biplex(&g, p.left(), p.right(), k));
        // No further left vertex can be added.
        for v in 0..g.num_left() {
            if !p.contains_left(v) {
                assert!(!p.can_add_left(&g, v, k));
            }
        }
    }

    #[test]
    fn extension_is_deterministic() {
        let g = fixture();
        let mut a = PartialBiplex::from_sets(&g, &[2], &[3]);
        let mut b = PartialBiplex::from_sets(&g, &[2], &[3]);
        extend_to_maximal(&g, &mut a, 1, ExtendMode::BothSides);
        extend_to_maximal(&g, &mut b, 1, ExtendMode::BothSides);
        assert_eq!(a.left(), b.left());
        assert_eq!(a.right(), b.right());
    }

    #[test]
    fn extension_keeps_existing_vertices() {
        let g = fixture();
        let mut p = PartialBiplex::from_sets(&g, &[3], &[4]);
        extend_to_maximal(&g, &mut p, 1, ExtendMode::BothSides);
        assert!(p.contains_left(3));
        assert!(p.contains_right(4));
    }

    #[test]
    fn candidate_filters_are_supersets_of_addable_vertices() {
        let g = fixture();
        for k in 0..=2usize {
            let right = vec![0u32, 1, 3];
            let p = PartialBiplex::from_sets(&g, &[], &right);
            let cands = left_extension_candidates(&g, &right, k);
            for v in 0..g.num_left() {
                if p.can_add_left(&g, v, k) {
                    assert!(cands.contains(&v), "k {k}: addable vertex {v} filtered out");
                }
            }
        }
    }

    #[test]
    fn candidate_filter_small_right_side_returns_everything() {
        let g = fixture();
        let cands = left_extension_candidates(&g, &[2], 1);
        assert_eq!(cands.len(), g.num_left() as usize);
        let cands = right_extension_candidates(&g, &[], 0);
        assert_eq!(cands.len(), g.num_right() as usize);
    }

    #[test]
    fn k0_intersection_path_matches_the_counting_filter() {
        let g = fixture();
        for right in [vec![0u32, 1, 3], vec![0, 1, 2, 3, 4], vec![2, 4]] {
            let via_intersect = left_extension_candidates(&g, &right, 0);
            let via_pool =
                count_candidates(right.iter().map(|&u| g.right_neighbors(u)), right.len());
            assert_eq!(via_intersect, via_pool, "right = {right:?}");
        }
        for left in [vec![0u32, 2], vec![1, 3, 4]] {
            let via_intersect = right_extension_candidates(&g, &left, 0);
            let via_pool = count_candidates(left.iter().map(|&v| g.left_neighbors(v)), left.len());
            assert_eq!(via_intersect, via_pool, "left = {left:?}");
        }
    }

    #[test]
    fn empty_start_extends_to_nonempty_maximal() {
        let g = fixture();
        let mut p = PartialBiplex::new();
        extend_to_maximal(&g, &mut p, 1, ExtendMode::BothSides);
        assert!(p.left().len() + p.right().len() > 0);
        assert!(is_maximal_k_biplex(&g, p.left(), p.right(), 1));
    }
}
