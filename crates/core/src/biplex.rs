//! The k-biplex structure: representation, validity and maximality checks,
//! and the mutable [`PartialBiplex`] used as the workhorse of the
//! enumeration algorithms.

use bigraph::{BipartiteGraph, Side};

/// An induced bipartite subgraph `(L, R)`, stored as two sorted vertex-id
/// vectors. This is the unit reported by every enumeration algorithm in the
/// workspace.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Biplex {
    /// Sorted left vertex ids.
    pub left: Vec<u32>,
    /// Sorted right vertex ids.
    pub right: Vec<u32>,
}

impl Biplex {
    /// Builds a biplex from (possibly unsorted) vertex lists.
    pub fn new(mut left: Vec<u32>, mut right: Vec<u32>) -> Self {
        left.sort_unstable();
        left.dedup();
        right.sort_unstable();
        right.dedup();
        Biplex { left, right }
    }

    /// Total number of vertices `|L| + |R|`.
    pub fn num_vertices(&self) -> usize {
        self.left.len() + self.right.len()
    }

    /// `true` when both sides are empty.
    pub fn is_empty(&self) -> bool {
        self.left.is_empty() && self.right.is_empty()
    }

    /// Membership test on the left side (binary search).
    pub fn contains_left(&self, v: u32) -> bool {
        self.left.binary_search(&v).is_ok()
    }

    /// Membership test on the right side (binary search).
    pub fn contains_right(&self, u: u32) -> bool {
        self.right.binary_search(&u).is_ok()
    }

    /// `true` iff `self` is a subgraph of `other` (`L ⊆ L'` and `R ⊆ R'`).
    pub fn is_subgraph_of(&self, other: &Biplex) -> bool {
        self.left.iter().all(|v| other.contains_left(*v))
            && self.right.iter().all(|u| other.contains_right(*u))
    }

    /// Number of edges of `G` present inside the biplex (used by the case
    /// study to report densities).
    pub fn num_edges(&self, g: &BipartiteGraph) -> usize {
        self.left.iter().map(|&v| self.right.iter().filter(|&&u| g.has_edge(v, u)).count()).sum()
    }

    /// Canonical key used by the solution store: left ids, a separator, then
    /// right ids. Two biplexes are equal iff their keys are equal.
    pub fn canonical_key(&self) -> Vec<u32> {
        let mut key = Vec::with_capacity(self.num_vertices() + 1);
        key.extend_from_slice(&self.left);
        key.push(u32::MAX);
        key.extend_from_slice(&self.right);
        key
    }

    /// The similarity measure `S(H, H')` of the paper's Lemma 3.3 proof: the
    /// number of shared vertices.
    pub fn similarity(&self, other: &Biplex) -> usize {
        sorted_intersection_len(&self.left, &other.left)
            + sorted_intersection_len(&self.right, &other.right)
    }

    /// Swaps the two sides (used when running on a transposed graph).
    pub fn transpose(self) -> Biplex {
        Biplex { left: self.right, right: self.left }
    }

    /// Maps a solution found on a relabeled graph back to the original
    /// vertex ids. Both the sequential and the parallel engines route their
    /// [`VertexOrder`](bigraph::order::VertexOrder) handling through this,
    /// so the inverse mapping lives in exactly one place.
    pub fn map_back(&self, relabeling: &bigraph::order::Relabeling) -> Biplex {
        Biplex {
            left: relabeling.original_left_ids(&self.left),
            right: relabeling.original_right_ids(&self.right),
        }
    }
}

/// Length of the intersection of two sorted slices. Delegates to the
/// kernel dispatcher (`bigraph::intersect::dispatch`, through its stable
/// CSR alias), which picks merge/gallop/chunked/bitset from the measured
/// crossover heuristic and honours the engines' per-thread `--kernel`
/// override.
pub(crate) fn sorted_intersection_len(a: &[u32], b: &[u32]) -> usize {
    bigraph::csr::intersection_len(a, b)
}

/// Number of vertices of the sorted set `right` that are *not* neighbours of
/// left vertex `v` — the paper's `δ̄(v, R)`.
pub fn left_misses(g: &BipartiteGraph, v: u32, right: &[u32]) -> usize {
    right.len() - sorted_intersection_len(g.left_neighbors(v), right)
}

/// Number of vertices of the sorted set `left` that are *not* neighbours of
/// right vertex `u` — the paper's `δ̄(u, L)`.
pub fn right_misses(g: &BipartiteGraph, u: u32, left: &[u32]) -> usize {
    left.len() - sorted_intersection_len(g.right_neighbors(u), left)
}

/// `true` iff `(left, right)` (both sorted) induces a k-biplex of `g`
/// (Definition 2.1).
pub fn is_k_biplex(g: &BipartiteGraph, left: &[u32], right: &[u32], k: usize) -> bool {
    left.iter().all(|&v| left_misses(g, v, right) <= k)
        && right.iter().all(|&u| right_misses(g, u, left) <= k)
}

/// `true` iff `(left, right)` is a *maximal* k-biplex of `g`
/// (Definition 2.3): it is a k-biplex and no single vertex of `G` can be
/// added while preserving the property. (For hereditary properties,
/// single-vertex extensibility is equivalent to the existence of a proper
/// superset.)
pub fn is_maximal_k_biplex(g: &BipartiteGraph, left: &[u32], right: &[u32], k: usize) -> bool {
    if !is_k_biplex(g, left, right, k) {
        return false;
    }
    let partial = PartialBiplex::from_sets(g, left, right);
    for v in 0..g.num_left() {
        if left.binary_search(&v).is_err() && partial.can_add_left(g, v, k) {
            return false;
        }
    }
    for u in 0..g.num_right() {
        if right.binary_search(&u).is_err() && partial.can_add_right(g, u, k) {
            return false;
        }
    }
    true
}

/// A mutable working solution with cached per-vertex miss counts.
///
/// `left[i]` misses exactly `left_miss[i]` vertices of `right`, and
/// symmetrically for the right side. All enumeration inner loops
/// (extension, candidate checks, local-solution validation) go through this
/// structure so the miss counts are maintained incrementally instead of
/// being recomputed.
#[derive(Clone, Debug, Default)]
pub struct PartialBiplex {
    left: Vec<u32>,
    right: Vec<u32>,
    left_miss: Vec<u32>,
    right_miss: Vec<u32>,
}

impl PartialBiplex {
    /// Empty working solution.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds the working solution from two (possibly unsorted) vertex sets,
    /// computing all miss counts.
    pub fn from_sets(g: &BipartiteGraph, left: &[u32], right: &[u32]) -> Self {
        let mut left = left.to_vec();
        left.sort_unstable();
        left.dedup();
        let mut right = right.to_vec();
        right.sort_unstable();
        right.dedup();
        let left_miss = left.iter().map(|&v| left_misses(g, v, &right) as u32).collect();
        let right_miss = right.iter().map(|&u| right_misses(g, u, &left) as u32).collect();
        PartialBiplex { left, right, left_miss, right_miss }
    }

    /// Builds from an existing [`Biplex`].
    pub fn from_biplex(g: &BipartiteGraph, b: &Biplex) -> Self {
        Self::from_sets(g, &b.left, &b.right)
    }

    /// Sorted left vertices.
    pub fn left(&self) -> &[u32] {
        &self.left
    }

    /// Sorted right vertices.
    pub fn right(&self) -> &[u32] {
        &self.right
    }

    /// `δ̄(v, R)` for the `i`-th left member.
    pub fn left_miss(&self, i: usize) -> u32 {
        self.left_miss[i]
    }

    /// `δ̄(u, L)` for the `i`-th right member.
    pub fn right_miss(&self, i: usize) -> u32 {
        self.right_miss[i]
    }

    /// Membership test on the left side.
    pub fn contains_left(&self, v: u32) -> bool {
        self.left.binary_search(&v).is_ok()
    }

    /// Membership test on the right side.
    pub fn contains_right(&self, u: u32) -> bool {
        self.right.binary_search(&u).is_ok()
    }

    /// `true` iff the working solution currently satisfies the k-biplex
    /// condition.
    pub fn is_k_biplex(&self, k: usize) -> bool {
        self.left_miss.iter().all(|&m| m as usize <= k)
            && self.right_miss.iter().all(|&m| m as usize <= k)
    }

    /// Checks whether left vertex `v ∉ L` can be added while keeping the
    /// k-biplex property: `v` must miss at most `k` vertices of `R`, and no
    /// right vertex that misses `v` may already be at its budget `k`.
    pub fn can_add_left(&self, g: &BipartiteGraph, v: u32, k: usize) -> bool {
        debug_assert!(!self.contains_left(v));
        let nbrs = g.left_neighbors(v);
        // Kernel-counted misses first: most candidates either miss nothing
        // (no budgets to re-check) or bust their own budget outright, and
        // the counting kernels beat the budget merge walk below.
        let v_misses = self.right.len() - sorted_intersection_len(nbrs, &self.right);
        if v_misses > k {
            return false;
        }
        if v_misses == 0 {
            return true;
        }
        // 1..=k misses: walk `right` against `nbrs` to check the budgets of
        // the right vertices that would gain a miss.
        let mut ni = 0;
        for (ri, &u) in self.right.iter().enumerate() {
            while ni < nbrs.len() && nbrs[ni] < u {
                ni += 1;
            }
            let adjacent = ni < nbrs.len() && nbrs[ni] == u;
            if !adjacent && self.right_miss[ri] as usize + 1 > k {
                return false;
            }
        }
        true
    }

    /// Symmetric to [`can_add_left`](Self::can_add_left) for a right vertex.
    pub fn can_add_right(&self, g: &BipartiteGraph, u: u32, k: usize) -> bool {
        debug_assert!(!self.contains_right(u));
        let nbrs = g.right_neighbors(u);
        let u_misses = self.left.len() - sorted_intersection_len(nbrs, &self.left);
        if u_misses > k {
            return false;
        }
        if u_misses == 0 {
            return true;
        }
        let mut ni = 0;
        for (li, &v) in self.left.iter().enumerate() {
            while ni < nbrs.len() && nbrs[ni] < v {
                ni += 1;
            }
            let adjacent = ni < nbrs.len() && nbrs[ni] == v;
            if !adjacent && self.left_miss[li] as usize + 1 > k {
                return false;
            }
        }
        true
    }

    /// Side-dispatching version of the `can_add_*` checks.
    pub fn can_add(&self, g: &BipartiteGraph, side: Side, id: u32, k: usize) -> bool {
        match side {
            Side::Left => self.can_add_left(g, id, k),
            Side::Right => self.can_add_right(g, id, k),
        }
    }

    /// Adds left vertex `v`, updating all miss counters. The caller is
    /// responsible for having checked `can_add_left` when the k-biplex
    /// property must be preserved.
    pub fn add_left(&mut self, g: &BipartiteGraph, v: u32) {
        let pos = match self.left.binary_search(&v) {
            Ok(_) => return,
            Err(pos) => pos,
        };
        let miss = left_misses(g, v, &self.right) as u32;
        self.left.insert(pos, v);
        self.left_miss.insert(pos, miss);
        // Every right vertex not adjacent to v gains one miss.
        let nbrs = g.left_neighbors(v);
        let mut ni = 0;
        for (ri, &u) in self.right.iter().enumerate() {
            while ni < nbrs.len() && nbrs[ni] < u {
                ni += 1;
            }
            let adjacent = ni < nbrs.len() && nbrs[ni] == u;
            if !adjacent {
                self.right_miss[ri] += 1;
            }
        }
    }

    /// Adds right vertex `u`, updating all miss counters.
    pub fn add_right(&mut self, g: &BipartiteGraph, u: u32) {
        let pos = match self.right.binary_search(&u) {
            Ok(_) => return,
            Err(pos) => pos,
        };
        let miss = right_misses(g, u, &self.left) as u32;
        self.right.insert(pos, u);
        self.right_miss.insert(pos, miss);
        let nbrs = g.right_neighbors(u);
        let mut ni = 0;
        for (li, &v) in self.left.iter().enumerate() {
            while ni < nbrs.len() && nbrs[ni] < v {
                ni += 1;
            }
            let adjacent = ni < nbrs.len() && nbrs[ni] == v;
            if !adjacent {
                self.left_miss[li] += 1;
            }
        }
    }

    /// Side-dispatching insertion.
    pub fn add(&mut self, g: &BipartiteGraph, side: Side, id: u32) {
        match side {
            Side::Left => self.add_left(g, id),
            Side::Right => self.add_right(g, id),
        }
    }

    /// Removes left vertex `v` (if present), updating all miss counters.
    pub fn remove_left(&mut self, g: &BipartiteGraph, v: u32) {
        let pos = match self.left.binary_search(&v) {
            Ok(pos) => pos,
            Err(_) => return,
        };
        self.left.remove(pos);
        self.left_miss.remove(pos);
        let nbrs = g.left_neighbors(v);
        let mut ni = 0;
        for (ri, &u) in self.right.iter().enumerate() {
            while ni < nbrs.len() && nbrs[ni] < u {
                ni += 1;
            }
            let adjacent = ni < nbrs.len() && nbrs[ni] == u;
            if !adjacent {
                self.right_miss[ri] -= 1;
            }
        }
    }

    /// Freezes the working solution into an immutable [`Biplex`].
    pub fn to_biplex(&self) -> Biplex {
        Biplex { left: self.left.clone(), right: self.right.clone() }
    }

    /// Returns the side-swapped working solution, valid with respect to the
    /// *transposed* graph. Used to run the left-oriented `EnumAlmostSat`
    /// implementation on a new vertex from the right side.
    pub fn flipped(&self) -> PartialBiplex {
        PartialBiplex {
            left: self.right.clone(),
            right: self.left.clone(),
            left_miss: self.right_miss.clone(),
            right_miss: self.left_miss.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> BipartiteGraph {
        // L = {0..3}, R = {0..3}; complete except (0,3), (1,2), (3,0), (3,1).
        let mut edges = Vec::new();
        for v in 0u32..4 {
            for u in 0u32..4 {
                if !matches!((v, u), (0, 3) | (1, 2) | (3, 0) | (3, 1)) {
                    edges.push((v, u));
                }
            }
        }
        BipartiteGraph::from_edges(4, 4, &edges).unwrap()
    }

    #[test]
    fn biplex_constructor_sorts_and_dedups() {
        let b = Biplex::new(vec![3, 1, 1], vec![2, 0, 2]);
        assert_eq!(b.left, vec![1, 3]);
        assert_eq!(b.right, vec![0, 2]);
        assert_eq!(b.num_vertices(), 4);
        assert!(!b.is_empty());
        assert!(Biplex::default().is_empty());
    }

    #[test]
    fn misses_and_k_biplex_check() {
        let g = fixture();
        // v0 misses u3 only.
        assert_eq!(left_misses(&g, 0, &[0, 1, 2, 3]), 1);
        assert_eq!(left_misses(&g, 3, &[0, 1, 2, 3]), 2);
        assert_eq!(right_misses(&g, 0, &[0, 1, 2, 3]), 1);
        // Whole graph: v3 misses 2 -> not a 1-biplex, but a 2-biplex.
        assert!(!is_k_biplex(&g, &[0, 1, 2, 3], &[0, 1, 2, 3], 1));
        assert!(is_k_biplex(&g, &[0, 1, 2, 3], &[0, 1, 2, 3], 2));
        // Empty sides are always k-biplexes.
        assert!(is_k_biplex(&g, &[], &[], 0));
        assert!(is_k_biplex(&g, &[0, 1], &[], 0));
    }

    #[test]
    fn maximality_check() {
        let g = fixture();
        // (all, all) is a maximal 2-biplex (nothing left to add).
        assert!(is_maximal_k_biplex(&g, &[0, 1, 2, 3], &[0, 1, 2, 3], 2));
        // A proper sub-biplex of it is not maximal.
        assert!(!is_maximal_k_biplex(&g, &[0, 1, 2], &[0, 1, 2, 3], 2));
        // Not even a k-biplex -> not maximal.
        assert!(!is_maximal_k_biplex(&g, &[0, 1, 2, 3], &[0, 1, 2, 3], 1));
    }

    #[test]
    fn partial_biplex_matches_naive_counts() {
        let g = fixture();
        let p = PartialBiplex::from_sets(&g, &[0, 1, 3], &[0, 2, 3]);
        for (i, &v) in p.left().iter().enumerate() {
            assert_eq!(p.left_miss(i) as usize, left_misses(&g, v, p.right()));
        }
        for (i, &u) in p.right().iter().enumerate() {
            assert_eq!(p.right_miss(i) as usize, right_misses(&g, u, p.left()));
        }
    }

    #[test]
    fn incremental_add_matches_recompute() {
        let g = fixture();
        let mut p = PartialBiplex::new();
        let additions: Vec<(Side, u32)> = vec![
            (Side::Right, 0),
            (Side::Left, 1),
            (Side::Right, 2),
            (Side::Left, 0),
            (Side::Right, 3),
            (Side::Left, 3),
        ];
        for (side, id) in additions {
            p.add(&g, side, id);
            let fresh = PartialBiplex::from_sets(&g, p.left(), p.right());
            assert_eq!(p.left_miss, fresh.left_miss);
            assert_eq!(p.right_miss, fresh.right_miss);
        }
    }

    #[test]
    fn remove_left_restores_counts() {
        let g = fixture();
        let mut p = PartialBiplex::from_sets(&g, &[0, 1, 2, 3], &[0, 1, 2, 3]);
        p.remove_left(&g, 3);
        let fresh = PartialBiplex::from_sets(&g, &[0, 1, 2], &[0, 1, 2, 3]);
        assert_eq!(p.left(), fresh.left());
        assert_eq!(p.right_miss, fresh.right_miss);
        // Removing a vertex that is not present is a no-op.
        p.remove_left(&g, 3);
        assert_eq!(p.left(), &[0, 1, 2]);
    }

    #[test]
    fn can_add_checks_both_directions() {
        let g = fixture();
        // Start from ({0,1}, {0,1}): complete, so misses are all zero.
        let p = PartialBiplex::from_sets(&g, &[0, 1], &[0, 1]);
        assert!(p.can_add_left(&g, 2, 0));
        // v3 misses u0 and u1 -> needs k >= 2.
        assert!(!p.can_add_left(&g, 3, 1));
        assert!(p.can_add_left(&g, 3, 2));
        assert!(p.can_add_right(&g, 2, 1));
        // With k = 0, u2 cannot join because it misses v1.
        assert!(!p.can_add_right(&g, 2, 0));
        assert!(p.can_add(&g, Side::Right, 3, 1));
    }

    #[test]
    fn can_add_respects_existing_budgets() {
        let g = fixture();
        // ({0,3}, {2,3}): v0 misses u3, v3 misses nothing here? v3 ~ u2,u3.
        // u2 misses v... v0~u2 yes, v3~u2 yes -> 0. u3: v0 misses it -> 1.
        let p = PartialBiplex::from_sets(&g, &[0, 3], &[2, 3]);
        // Adding u0 with k = 1: u0 misses v3 (1 <= 1), but does any left
        // vertex exceed its budget? v0 ~ u0 so no change; v3 !~ u0 so v3
        // would go from 0 to 1 <= 1. OK.
        assert!(p.can_add_right(&g, 0, 1));
        // Adding v1 with k = 1: v1 misses u2 (1 <= 1); u2 goes 0 -> 1 ok;
        // so it is allowed.
        assert!(p.can_add_left(&g, 1, 1));
        // With k = 0 nothing that introduces a miss can be added.
        assert!(!p.can_add_right(&g, 0, 0));
    }

    #[test]
    fn canonical_key_disambiguates_sides() {
        let a = Biplex::new(vec![1], vec![2]);
        let b = Biplex::new(vec![1, 2], vec![]);
        assert_ne!(a.canonical_key(), b.canonical_key());
        let c = Biplex::new(vec![1], vec![2]);
        assert_eq!(a.canonical_key(), c.canonical_key());
    }

    #[test]
    fn similarity_counts_shared_vertices() {
        let a = Biplex::new(vec![0, 1, 2], vec![5, 6]);
        let b = Biplex::new(vec![1, 2, 3], vec![6, 7]);
        assert_eq!(a.similarity(&b), 3);
        assert_eq!(b.similarity(&a), 3);
        assert_eq!(a.similarity(&a), 5);
    }

    #[test]
    fn subgraph_relation() {
        let a = Biplex::new(vec![0, 1], vec![2]);
        let b = Biplex::new(vec![0, 1, 4], vec![2, 3]);
        assert!(a.is_subgraph_of(&b));
        assert!(!b.is_subgraph_of(&a));
        assert!(Biplex::default().is_subgraph_of(&a));
    }

    #[test]
    fn num_edges_inside() {
        let g = fixture();
        let b = Biplex::new(vec![0, 1], vec![0, 1, 2]);
        // (0,0),(0,1),(0,2),(1,0),(1,1) present; (1,2) missing.
        assert_eq!(b.num_edges(&g), 5);
    }

    #[test]
    fn transpose_biplex() {
        let b = Biplex::new(vec![1, 2], vec![7]);
        let t = b.clone().transpose();
        assert_eq!(t.left, vec![7]);
        assert_eq!(t.right, vec![1, 2]);
    }
}
