//! Large maximal k-biplex enumeration (Section 5).
//!
//! A *large MBP* has at least `θ_L` vertices on the left and `θ_R` on the
//! right. The pipeline combines
//!
//! 1. a (θ_R − k, θ_L − k)-core reduction of the input graph — every large
//!    MBP survives it because each of its left vertices keeps at least
//!    `θ_R − k` neighbours and each right vertex at least `θ_L − k`;
//! 2. the `iTraversal` size prunings inside the engine (almost-satisfying
//!    graph pruning, local-solution pruning, solution pruning and the
//!    exclusion-based left-side pruning), enabled through
//!    [`TraversalConfig::with_thresholds`].
//!
//! Solutions are translated back to the original vertex ids before being
//! reported.

use bigraph::core_decomp::alpha_beta_core_subgraph;
use bigraph::BipartiteGraph;

use crate::biplex::Biplex;
use crate::parallel::{par_run, ParRuntime};
use crate::sink::SolutionSink;
use crate::stats::TraversalStats;
use crate::traversal::{traverse, TraversalConfig};

/// Parameters of a large-MBP enumeration.
#[derive(Clone, Copy, Debug)]
pub struct LargeMbpParams {
    /// The k of the k-biplex definition.
    pub k: usize,
    /// Minimum left-side size θ_L.
    pub theta_left: usize,
    /// Minimum right-side size θ_R.
    pub theta_right: usize,
    /// Whether to run the (θ−k)-core reduction before enumerating.
    pub core_reduction: bool,
}

impl LargeMbpParams {
    /// Both sides at least `theta` (the setting used in the paper's
    /// Figure 10 experiments).
    pub fn symmetric(k: usize, theta: usize) -> Self {
        LargeMbpParams { k, theta_left: theta, theta_right: theta, core_reduction: true }
    }
}

/// Result of a large-MBP run: statistics of the traversal plus the size of
/// the reduced graph actually enumerated.
#[derive(Clone, Debug, Default)]
pub struct LargeMbpReport {
    /// Traversal statistics (on the reduced graph).
    pub stats: TraversalStats,
    /// Vertices of the reduced graph (left, right).
    pub reduced_size: (u32, u32),
    /// Edges of the reduced graph.
    pub reduced_edges: u64,
}

/// The large-MBP pipeline behind the [`crate::api::Enumerator`] facade:
/// (θ−k)-core reduction, size-pruned traversal, translation back to
/// original ids.
pub(crate) fn run_large<S: SolutionSink + ?Sized>(
    g: &BipartiteGraph,
    params: &LargeMbpParams,
    base_config: &TraversalConfig,
    sink: &mut S,
) -> LargeMbpReport {
    let mut config = base_config.clone();
    config.k = params.k;
    config.theta_left = params.theta_left;
    config.theta_right = params.theta_right;

    if !params.core_reduction {
        let stats = traverse(g, &config, sink);
        return LargeMbpReport {
            stats,
            reduced_size: (g.num_left(), g.num_right()),
            reduced_edges: g.num_edges(),
        };
    }

    // (θ_R − k)-core on the left degrees, (θ_L − k)-core on the right
    // degrees: each left vertex of a large MBP has ≥ θ_R − k neighbours and
    // vice versa.
    let alpha = params.theta_right.saturating_sub(params.k);
    let beta = params.theta_left.saturating_sub(params.k);
    let reduced = alpha_beta_core_subgraph(g, alpha, beta);

    let mut mapping_sink = |b: &Biplex| {
        let (left, right) = reduced.original_pair(&b.left, &b.right);
        sink.on_solution(&Biplex::new(left, right))
    };
    let stats = traverse(&reduced.graph, &config, &mut mapping_sink);
    LargeMbpReport {
        stats,
        reduced_size: (reduced.graph.num_left(), reduced.graph.num_right()),
        reduced_edges: reduced.graph.num_edges(),
    }
}

/// Report of a parallel large-MBP run.
#[derive(Debug)]
pub struct ParLargeMbpReport {
    /// Parallel run statistics (on the reduced graph).
    pub stats: crate::parallel::ParallelStats,
    /// Vertices of the reduced graph (left, right).
    pub reduced_size: (u32, u32),
    /// Edges of the reduced graph.
    pub reduced_edges: u64,
}

/// The parallel large-MBP pipeline behind the facade: the same (θ−k)-core
/// reduction, then the parallel engines with the size thresholds pushed into
/// the search. In collect mode (no emit hook on `rt`) the large MBPs come
/// back in original ids, sorted canonically; in streaming mode they go
/// through the emit hook (already translated) and the vector is empty.
pub(crate) fn par_run_large(
    g: &BipartiteGraph,
    params: &LargeMbpParams,
    base_config: &crate::parallel::ParallelConfig,
    rt: &ParRuntime<'_>,
) -> (Vec<Biplex>, ParLargeMbpReport) {
    let mut config = base_config.clone();
    config.k = params.k;
    config.theta_left = params.theta_left;
    config.theta_right = params.theta_right;

    if !params.core_reduction {
        let (mut solutions, stats) = par_run(g, &config, rt);
        solutions.sort();
        let report = ParLargeMbpReport {
            stats,
            reduced_size: (g.num_left(), g.num_right()),
            reduced_edges: g.num_edges(),
        };
        return (solutions, report);
    }

    let alpha = params.theta_right.saturating_sub(params.k);
    let beta = params.theta_left.saturating_sub(params.k);
    let reduced = alpha_beta_core_subgraph(g, alpha, beta);

    let (mapped, stats) = if let Some(emit) = rt.emit {
        // Streaming delivery: translate ids on the way through the hook.
        let mapping_emit = |b: &Biplex| {
            let (left, right) = reduced.original_pair(&b.left, &b.right);
            emit(&Biplex::new(left, right))
        };
        let mapped_rt = ParRuntime { emit: Some(&mapping_emit), ..*rt };
        let (_, stats) = par_run(&reduced.graph, &config, &mapped_rt);
        (Vec::new(), stats)
    } else {
        let (solutions, stats) = par_run(&reduced.graph, &config, rt);
        let mut mapped: Vec<Biplex> = solutions
            .into_iter()
            .map(|b| {
                let (left, right) = reduced.original_pair(&b.left, &b.right);
                Biplex::new(left, right)
            })
            .collect();
        mapped.sort();
        (mapped, stats)
    };
    let report = ParLargeMbpReport {
        stats,
        reduced_size: (reduced.graph.num_left(), reduced.graph.num_right()),
        reduced_edges: reduced.graph.num_edges(),
    };
    (mapped, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bruteforce::brute_force_large_mbps;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Non-deprecated stand-ins for the legacy collect wrappers.
    fn collect_large(
        g: &BipartiteGraph,
        params: &LargeMbpParams,
        base_config: &TraversalConfig,
    ) -> Vec<Biplex> {
        let mut sink = crate::sink::CollectSink::new();
        run_large(g, params, base_config, &mut sink);
        sink.into_sorted()
    }

    fn par_collect_large(
        g: &BipartiteGraph,
        params: &LargeMbpParams,
        base_config: &crate::parallel::ParallelConfig,
    ) -> (Vec<Biplex>, ParLargeMbpReport) {
        par_run_large(g, params, base_config, &ParRuntime::default())
    }

    fn random_graph(nl: u32, nr: u32, p: f64, seed: u64) -> BipartiteGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut edges = Vec::new();
        for v in 0..nl {
            for u in 0..nr {
                if rng.gen_bool(p) {
                    edges.push((v, u));
                }
            }
        }
        BipartiteGraph::from_edges(nl, nr, &edges).unwrap()
    }

    #[test]
    fn matches_brute_force_with_and_without_core_reduction() {
        for seed in 0..12u64 {
            let g = random_graph(6, 6, 0.6, seed);
            for k in 1..=2usize {
                for theta in 2..=3usize {
                    let expected = {
                        let mut e = brute_force_large_mbps(&g, k, theta, theta);
                        e.sort();
                        e
                    };
                    for core in [true, false] {
                        let params = LargeMbpParams {
                            k,
                            theta_left: theta,
                            theta_right: theta,
                            core_reduction: core,
                        };
                        let got = collect_large(&g, &params, &TraversalConfig::itraversal(k));
                        assert_eq!(got, expected, "seed {seed} k {k} θ {theta} core {core}");
                    }
                }
            }
        }
    }

    #[test]
    fn parallel_large_mbps_match_sequential() {
        use crate::parallel::ParallelConfig;
        for seed in 0..6u64 {
            let g = random_graph(7, 7, 0.55, seed);
            let k = 1;
            for theta in 2..=3usize {
                for core in [true, false] {
                    let params = LargeMbpParams {
                        k,
                        theta_left: theta,
                        theta_right: theta,
                        core_reduction: core,
                    };
                    let expected = collect_large(&g, &params, &TraversalConfig::itraversal(k));
                    let (got, report) =
                        par_collect_large(&g, &params, &ParallelConfig::new(k).with_threads(3));
                    assert_eq!(got, expected, "seed {seed} θ {theta} core {core}");
                    assert_eq!(report.stats.reported as usize, got.len());
                    assert!(report.reduced_size.0 <= g.num_left());
                }
            }
        }
    }

    #[test]
    fn asymmetric_thresholds() {
        for seed in 20..26u64 {
            let g = random_graph(6, 5, 0.6, seed);
            let k = 1;
            let expected = {
                let mut e = brute_force_large_mbps(&g, k, 3, 2);
                e.sort();
                e
            };
            let params = LargeMbpParams { k, theta_left: 3, theta_right: 2, core_reduction: true };
            let got = collect_large(&g, &params, &TraversalConfig::itraversal(k));
            assert_eq!(got, expected, "seed {seed}");
        }
    }

    #[test]
    fn core_reduction_shrinks_the_graph() {
        let g = random_graph(40, 40, 0.08, 3);
        let params = LargeMbpParams::symmetric(1, 4);
        let mut sink = crate::sink::CountingSink::new();
        let report = run_large(&g, &params, &TraversalConfig::itraversal(1), &mut sink);
        assert!(report.reduced_size.0 <= g.num_left());
        assert!(report.reduced_size.1 <= g.num_right());
        assert!(report.reduced_edges <= g.num_edges());
    }

    #[test]
    fn high_threshold_returns_nothing() {
        let g = random_graph(6, 6, 0.3, 9);
        let params = LargeMbpParams::symmetric(1, 6);
        let got = collect_large(&g, &params, &TraversalConfig::itraversal(1));
        let expected = brute_force_large_mbps(&g, 1, 6, 6);
        assert_eq!(got.len(), expected.len());
    }
}
