//! The original global-queue scheduler, kept as the measured baseline.
//!
//! One LIFO work queue protected by a mutex plus a condition variable;
//! workers go to sleep when the queue is empty and the run terminates when
//! the queue is empty *and* no worker is mid-expansion (tracked by an
//! in-flight counter under the same lock). The seen-set is sharded into 64
//! independently locked hash sets. Every scheduling decision crosses the
//! single queue lock, which is exactly the serialisation the work-stealing
//! engine removes — the `parallel_scaling` bench and `BENCH_parallel.json`
//! quantify the difference.

use std::collections::{HashSet, VecDeque};
use std::sync::PoisonError;
use std::time::Duration;

use bigraph::BipartiteGraph;

use crate::sync::{plock, thread, Condvar, Mutex};

use super::seen::fnv1a;
use super::{expand_solution, ParRuntime, ParallelConfig, ParallelStats, WorkerCounters};
use crate::biplex::Biplex;
use crate::initial::initial_left_anchored;

/// Number of independently locked shards of the seen-set.
const SHARDS: usize = 64;

/// Shared state of one global-queue run.
struct Shared {
    /// Pending solutions awaiting expansion + count of in-flight expansions.
    queue: Mutex<(VecDeque<Biplex>, usize)>,
    /// Wakes idle workers when work arrives or the run finishes.
    wake: Condvar,
    /// Sharded seen-set keyed on canonical keys.
    seen: Vec<Mutex<HashSet<Vec<u32>>>>,
    /// Solutions passing the size filter, collected across workers.
    results: Mutex<Vec<Biplex>>,
}

impl Shared {
    fn new() -> Self {
        Shared {
            queue: Mutex::new((VecDeque::new(), 0)),
            wake: Condvar::new(),
            seen: (0..SHARDS).map(|_| Mutex::new(HashSet::new())).collect(),
            results: Mutex::new(Vec::new()),
        }
    }

    /// Inserts `solution` into the sharded seen-set; `true` if it was new.
    fn insert(&self, solution: &Biplex) -> bool {
        let key = solution.canonical_key();
        let shard = fnv1a(&key) as usize % SHARDS;
        plock(&self.seen[shard]).insert(key)
    }

    /// Pushes a freshly discovered solution onto the work queue.
    fn push_work(&self, solution: Biplex) {
        let mut q = plock(&self.queue);
        q.0.push_back(solution);
        drop(q);
        self.wake.notify_one();
    }

    /// Pops a work item, blocking until one is available or the run is
    /// complete (queue empty and nothing in flight) or cancelled. Maintains
    /// the in-flight counter: the caller *must* call [`Shared::finish_work`]
    /// after processing a returned item.
    fn pop_work(&self, rt: &ParRuntime<'_>) -> Option<Biplex> {
        let mut q = plock(&self.queue);
        loop {
            if rt.should_stop() {
                // Abandon queued work; wake everyone so they observe the
                // flag instead of sleeping on an emptying queue.
                self.wake.notify_all();
                return None;
            }
            if let Some(item) = q.0.pop_back() {
                q.1 += 1;
                return Some(item);
            }
            if q.1 == 0 {
                // Nothing queued and nothing in flight: the traversal is
                // complete. Wake everyone so they observe the same state.
                self.wake.notify_all();
                return None;
            }
            q = if rt.cancel.is_some() || rt.deadline.is_some() {
                // With a cancellation flag or deadline in play the sleep is
                // bounded, so an external cancel (e.g. a dropped stream) or
                // an expiring deadline is observed without a notifier.
                self.wake
                    .wait_timeout(q, Duration::from_millis(1))
                    .unwrap_or_else(PoisonError::into_inner)
                    .0
            } else {
                self.wake.wait(q).unwrap_or_else(PoisonError::into_inner)
            };
        }
    }

    /// Marks the current work item as fully expanded.
    fn finish_work(&self) {
        let mut q = plock(&self.queue);
        q.1 -= 1;
        if q.0.is_empty() && q.1 == 0 {
            drop(q);
            self.wake.notify_all();
        }
    }
}

/// Runs the global-queue enumeration. Called through [`super::par_run`]
/// with [`ParallelEngine::GlobalQueue`](super::ParallelEngine::GlobalQueue).
pub(super) fn run(
    g: &BipartiteGraph,
    config: &ParallelConfig,
    rt: &ParRuntime<'_>,
) -> (Vec<Biplex>, ParallelStats) {
    let threads = config.resolved_threads().max(1);
    let shared = Shared::new();
    let mut stats = ParallelStats { threads, ..ParallelStats::default() };

    let initial = initial_left_anchored(g, config.k);
    shared.insert(&initial);
    stats.solutions = 1;
    if initial.left.len() >= config.theta_left && initial.right.len() >= config.theta_right {
        stats.reported = 1;
        if !rt.deliver(&initial) {
            plock(&shared.results).push(initial.clone());
        }
    }
    shared.push_work(initial);

    thread::scope(|scope| {
        let handles: Vec<_> =
            (0..threads).map(|_| scope.spawn(|| worker(g, config, rt, &shared))).collect();
        for handle in handles {
            match handle.join() {
                Ok(counters) => counters.merge_into(&mut stats),
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
    });

    stats.stopped_early = rt.cancelled();
    let results = shared.results.into_inner().unwrap_or_else(PoisonError::into_inner);
    (results, stats)
}

/// One worker: repeatedly pops a solution and expands it.
fn worker(
    g: &BipartiteGraph,
    config: &ParallelConfig,
    rt: &ParRuntime<'_>,
    shared: &Shared,
) -> WorkerCounters {
    let mut counters = WorkerCounters::default();
    // Install the configured intersection kernel for this worker's whole
    // tenure (`--kernel` A/B override; workers start from `Kernel::Auto`).
    let _kernel = bigraph::intersect::set_thread_kernel(config.kernel);
    while let Some(host) = shared.pop_work(rt) {
        let mut on_new = |solution: Biplex, report: bool, expandable: bool| {
            if report && !rt.deliver(&solution) {
                plock(&shared.results).push(solution.clone());
            }
            if expandable && !rt.cancelled() {
                shared.push_work(solution);
            }
        };
        expand_solution(
            g,
            config,
            &host,
            &mut counters,
            &|s: &Biplex| shared.insert(s),
            &mut on_new,
            rt.cancel,
        );
        shared.finish_work();
    }
    counters
}
