//! The work-stealing scheduler.
//!
//! Every worker owns a LIFO deque of pending solutions. Expanding a
//! solution pushes the newly discovered solutions onto the *owner's* deque;
//! the owner pops from the same end, so each worker runs a depth-first
//! exploration over its private region of the solution graph and its
//! working set stays cache-warm. A worker whose deque runs dry picks a
//! random victim and steals from the *old* end of its deque — the items
//! closest to the root of the victim's DFS, which head the largest
//! unexplored subtrees — amortising one steal over many subsequent local
//! pops. The steal *granularity* adapts to the victim's depth when
//! [`ParallelConfig::steal_adaptive`] is on (the default): a deque at most
//! [`STEAL_SHALLOW`] deep gives up a single item (grabbing half of almost
//! nothing just moves the starvation to the victim and bounces the same
//! items between deques), a deeper one gives up its oldest half.
//!
//! Termination uses a single pending-work counter: it is incremented
//! *before* an item becomes visible in any deque and decremented only
//! *after* the item's expansion has completed, so `pending == 0` proves
//! that no queued item and no in-flight expansion exists anywhere and no
//! new work can appear. Idle workers spin briefly, then yield, then sleep
//! in microsecond steps until work reappears or the counter hits zero.
//!
//! De-duplication goes through the lock-free [`ConcurrentSeenSet`]; reported
//! solutions are buffered per worker and appended to the shared output
//! vector in batches of [`ParallelConfig::result_batch`].

use std::collections::VecDeque;
use std::sync::PoisonError;

use bigraph::BipartiteGraph;

use crate::sync::atomic::AtomicUsize;
use crate::sync::{hint, order, plock, thread, Mutex};

use super::seen::{ConcurrentSeenSet, SEGMENT_BUCKETS};
use super::{expand_solution, ParRuntime, ParallelConfig, ParallelStats, WorkerCounters};
use crate::biplex::Biplex;
use crate::initial::initial_left_anchored;

/// Victim-deque depth at or below which an adaptive steal takes one item
/// instead of half.
pub const STEAL_SHALLOW: usize = 4;

/// Runs the work-stealing enumeration. Called through [`super::par_run`].
/// The [`ParRuntime`] cancellation flag is polled at every pop/steal
/// boundary and inside expansions, so a stop request is honoured within one
/// expansion instead of running the search to completion.
pub(super) fn run(
    g: &BipartiteGraph,
    config: &ParallelConfig,
    rt: &ParRuntime<'_>,
) -> (Vec<Biplex>, ParallelStats) {
    let threads = config.resolved_threads().max(1);
    let deques: Vec<Mutex<VecDeque<Biplex>>> =
        (0..threads).map(|_| Mutex::new(VecDeque::new())).collect();
    let seen = match config.seen_segments {
        0 => ConcurrentSeenSet::new((g.num_vertices() as usize) * 2),
        n => ConcurrentSeenSet::with_geometry(n, SEGMENT_BUCKETS),
    };
    let pending = AtomicUsize::new(0);
    let results: Mutex<Vec<Biplex>> = Mutex::new(Vec::new());

    let mut stats = ParallelStats { threads, ..ParallelStats::default() };

    let initial = initial_left_anchored(g, config.k);
    seen.insert(initial.canonical_key());
    stats.solutions = 1;
    if initial.left.len() >= config.theta_left && initial.right.len() >= config.theta_right {
        stats.reported = 1;
        if !rt.deliver(&initial) {
            plock(&results).push(initial.clone());
        }
    }
    // ordering: SeqCst — the seed item is counted before any worker can
    // observe the deque; see DESIGN.md "steal-pending".
    pending.store(1, order!(SeqCst, "steal-pending"));
    plock(&deques[0]).push_back(initial);

    thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                let deques = &deques;
                let seen = &seen;
                let pending = &pending;
                let results = &results;
                scope.spawn(move || worker(w, g, config, rt, deques, seen, pending, results))
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(counters) => counters.merge_into(&mut stats),
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
    });

    stats.stopped_early = rt.cancelled();
    let results = results.into_inner().unwrap_or_else(PoisonError::into_inner);
    (results, stats)
}

/// One worker: pop locally, steal when dry, exit when the pending counter
/// proves global completion or the run is cancelled.
#[allow(clippy::too_many_arguments)]
fn worker(
    w: usize,
    g: &BipartiteGraph,
    config: &ParallelConfig,
    rt: &ParRuntime<'_>,
    deques: &[Mutex<VecDeque<Biplex>>],
    seen: &ConcurrentSeenSet,
    pending: &AtomicUsize,
    results: &Mutex<Vec<Biplex>>,
) -> WorkerCounters {
    let mut counters = WorkerCounters::default();
    // Every intersection this worker performs honours the configured kernel
    // (worker threads start from `Kernel::Auto`, so this installs the
    // `--kernel` A/B override end-to-end).
    let _kernel = bigraph::intersect::set_thread_kernel(config.kernel);
    let mut batch: Vec<Biplex> = Vec::new();
    // Per-worker deterministic xorshift state for victim selection.
    let mut rng: u64 = 0x9e37_79b9_7f4a_7c15 ^ (w as u64 + 1).wrapping_mul(0x2545_f491_4f6c_dd1d);
    let mut idle = 0u32;
    let batch_limit = config.result_batch.max(1);

    loop {
        // Steal boundary: a cancelled (or deadline-expired) run abandons
        // queued work outright.
        if rt.should_stop() {
            break;
        }
        let host = pop_own(&deques[w])
            .or_else(|| steal(w, deques, config.steal_adaptive, &mut rng, &mut counters));
        let Some(host) = host else {
            // ordering: SeqCst — the termination check must observe every
            // fetch_add that happened before the matching deque push it
            // failed to find; see DESIGN.md "steal-pending".
            if pending.load(order!(SeqCst, "steal-pending")) == 0 {
                break;
            }
            idle += 1;
            if idle < 8 {
                hint::spin_loop();
            } else if idle < 64 {
                // Oversubscribed boxes (threads > cores) need the yield to
                // let the worker that owns the remaining work run.
                thread::yield_now();
            } else {
                // Escalate the sleep so long-idle workers stop competing
                // with the workers that still have work: 100 µs doubling up
                // to 1.6 ms. Steal latency on refill stays bounded while the
                // idle loop's CPU share goes to ~zero.
                let step = ((idle - 64) / 32).min(4);
                thread::sleep(std::time::Duration::from_micros(100 << step));
            }
            continue;
        };
        idle = 0;

        let my_deque = &deques[w];
        let mut on_new = |solution: Biplex, report: bool, expandable: bool| {
            let collect = report && !rt.deliver(&solution);
            // A cancelled run stops scheduling new expansions; the already
            // delivered solutions stay valid.
            if expandable && !rt.cancelled() {
                if collect {
                    batch.push(solution.clone());
                }
                // Count the item before it becomes stealable so the
                // termination check can never miss it.
                // ordering: SeqCst — must not be reordered after the deque
                // push below; see DESIGN.md "steal-pending".
                pending.fetch_add(1, order!(SeqCst, "steal-pending"));
                plock(my_deque).push_back(solution);
            } else if collect {
                batch.push(solution);
            }
            if batch.len() >= batch_limit {
                plock(results).append(&mut batch);
            }
        };
        expand_solution(
            g,
            config,
            &host,
            &mut counters,
            &|s: &Biplex| seen.insert(s.canonical_key()),
            &mut on_new,
            rt.cancel,
        );
        // Only now is this item fully accounted for.
        // ordering: SeqCst — all child fetch_adds from this expansion are
        // sequenced before this decrement, so the counter can only hit zero
        // once no queued or in-flight item remains; see DESIGN.md
        // "steal-pending".
        pending.fetch_sub(1, order!(SeqCst, "steal-pending"));
    }

    if !batch.is_empty() {
        plock(results).append(&mut batch);
    }
    counters
}

/// LIFO pop from the worker's own deque.
fn pop_own(deque: &Mutex<VecDeque<Biplex>>) -> Option<Biplex> {
    plock(deque).pop_back()
}

/// Scans the other deques from a random start and steals from the old end
/// of the first non-empty victim — one item when `adaptive` and the victim
/// is at most [`STEAL_SHALLOW`] deep, its oldest half otherwise. The first
/// stolen item is returned for immediate processing, the rest land on the
/// thief's own deque.
fn steal(
    w: usize,
    deques: &[Mutex<VecDeque<Biplex>>],
    adaptive: bool,
    rng: &mut u64,
    counters: &mut WorkerCounters,
) -> Option<Biplex> {
    let n = deques.len();
    if n == 1 {
        return None;
    }
    let start = (xorshift(rng) as usize) % n;
    for i in 0..n {
        let v = (start + i) % n;
        if v == w {
            continue;
        }
        let mut victim = plock(&deques[v]);
        let len = victim.len();
        if len == 0 {
            continue;
        }
        let take = if adaptive && len <= STEAL_SHALLOW { 1 } else { len.div_ceil(2) };
        let mut stolen: VecDeque<Biplex> = victim.drain(..take).collect();
        drop(victim);
        counters.steals += 1;
        let first = stolen.pop_front();
        if !stolen.is_empty() {
            let mut mine = plock(&deques[w]);
            mine.extend(stolen);
        }
        return first;
    }
    None
}

/// xorshift64* step.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_f491_4f6c_dd1d)
}
