//! A lock-free, insert-only concurrent set of canonical solution keys with
//! a segmented, cooperatively-growable bucket index.
//!
//! # Chains
//!
//! Each bucket is a singly linked chain of immutable nodes whose `next`
//! pointers are [`OnceLock`]s. An insert walks the chain comparing keys
//! and, at the tail, *atomically swaps* its freshly allocated node into the
//! empty `next` slot; losing the swap race simply means another thread
//! extended the chain first, and the walk continues from the node that won.
//! No entry is ever removed or mutated, so readers need no synchronisation
//! beyond the atomic pointer loads `OnceLock::get` performs.
//!
//! # Segmented directory
//!
//! Buckets are addressed through a two-level directory: a fixed root array
//! of [`MAX_SEGMENTS`] slots, each lazily holding one fixed-size *segment*
//! of bucket heads. Only a power-of-two prefix of the root is *published*
//! at any time; the global bucket index of a key is its hash masked to the
//! published capacity (`hash & (segments · segment_buckets − 1)`), split
//! into a segment number and a slot within the segment.
//!
//! Capacity grows by *publishing* more segments — allocating the next run
//! of segments and doubling the published count — never by rehashing:
//! published masks are nested, so a key inserted when the mask was small
//! still sits in a chain every later probe visits (the probe loop walks the
//! key's bucket under every historical mask, deduplicating repeated bucket
//! indices). Whichever inserting thread pushes
//! [`len`](ConcurrentSeenSet::len) past the published capacity triggers the
//! next doubling.
//!
//! # Cooperative growth protocol
//!
//! Growth must not race with in-flight inserts of the same key landing in
//! chains of different eras. The set therefore counts in-flight inserts
//! and linearises publication against them:
//!
//! 1. an inserter increments `inflight`, then re-checks the `growing`
//!    flag — if set, it backs out and spins until publication completes;
//! 2. the growing thread sets `growing`, waits for `inflight` to drain to
//!    zero, publishes the new segments, and clears the flag.
//!
//! Any node linked under an old mask is therefore linked *before* the next
//! mask is published, so an insert running under the new mask probes the
//! old chain after that link is visible and can never duplicate the key.
//! The insert path is lock-free except during a publication event, where
//! inserters cooperatively pause for the new segments' allocation plus (at
//! most) the longest in-flight chain walk; probes never block.

use crate::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use crate::sync::{order, OnceLock};

/// Buckets per segment (2¹²): one segment is 64 KiB of bucket heads, so a
/// tiny enumeration pays ~128 KiB (one segment plus the 4096-slot root
/// directory) instead of the old 1 MiB fixed floor.
pub const SEGMENT_BUCKETS: usize = 1 << 12;

/// Root directory slots. With [`SEGMENT_BUCKETS`] this caps the index at
/// 2²⁴ buckets (≈16.8 M); past the cap, chains absorb the load exactly as
/// the old fixed design did at 2¹⁶.
pub const MAX_SEGMENTS: usize = 1 << 12;

/// One chain link holding a canonical solution key (plus its full 64-bit
/// hash, so chain walks only compare vectors on a hash match).
struct Node {
    hash: u64,
    key: Vec<u32>,
    next: OnceLock<Box<Node>>,
}

/// Stripes of the in-flight insert counter. Each thread is assigned a
/// stripe round-robin on first insert, so the two counter bumps per insert
/// don't all contend on one cache line even when every thread races on the
/// same hot key; only the (rare) growth drain reads every stripe.
const INFLIGHT_STRIPES: usize = 16;

/// Round-robin stripe assignment, cached per thread. Correctness only
/// needs every in-flight insert counted on *some* stripe (the drain reads
/// them all), so the choice is free to optimise for contention.
#[cfg(not(kbiplex_model))]
fn my_stripe() -> usize {
    use std::cell::Cell;
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static STRIPE: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    STRIPE.with(|s| {
        let mut v = s.get();
        if v == usize::MAX {
            // ordering: Relaxed — the counter only spreads threads across
            // stripes; no data is published through it.
            v = NEXT.fetch_add(1, Ordering::Relaxed) % INFLIGHT_STRIPES;
            s.set(v);
        }
        v
    })
}

/// Model-backend stripe assignment: derived from the model-thread index so
/// it is deterministic per execution (a thread-local cache would leak
/// stripe choices across model executions and break schedule replay).
#[cfg(kbiplex_model)]
fn my_stripe() -> usize {
    crate::sync::thread::current_index() % INFLIGHT_STRIPES
}

/// One cache-line-padded counter stripe.
#[repr(align(64))]
#[derive(Default)]
struct InflightStripe(AtomicUsize);

/// One lazily allocated run of bucket heads.
struct Segment {
    buckets: Vec<OnceLock<Box<Node>>>,
}

impl Segment {
    fn new(buckets: usize) -> Box<Segment> {
        Box::new(Segment { buckets: (0..buckets).map(|_| OnceLock::new()).collect() })
    }
}

/// The concurrent seen-set. See the module docs for the design.
pub struct ConcurrentSeenSet {
    /// Root directory; slots `0..segments` are published.
    root: Vec<OnceLock<Box<Segment>>>,
    /// Buckets per segment (power of two; [`SEGMENT_BUCKETS`] unless built
    /// through [`with_geometry`](Self::with_geometry)).
    segment_buckets: usize,
    /// Published segment count (power-of-two multiple of `min_segments`).
    segments: AtomicUsize,
    /// Segment count at construction — the smallest mask probes must cover.
    min_segments: usize,
    /// Number of inserts between reading `segments` and linking their node,
    /// striped by inserting thread.
    inflight: [InflightStripe; INFLIGHT_STRIPES],
    /// Set while a thread is waiting out `inflight` to publish segments.
    growing: AtomicBool,
    /// Growth disabled (benchmark/test hook, see [`pinned`](Self::pinned)).
    pinned: bool,
    len: AtomicU64,
}

impl ConcurrentSeenSet {
    /// Creates a set pre-sized for roughly `expected` keys: the initial
    /// published capacity is `expected` rounded up to a whole number of
    /// segments (one 2¹²-bucket segment minimum, so small runs start
    /// small). Capacity is *not* fixed: whenever the number of distinct
    /// keys crosses the published bucket count, the inserting thread that
    /// crossed it doubles the segment count, keeping chains near length
    /// one up to [`MAX_SEGMENTS`] segments (≈16.8 M buckets).
    pub fn new(expected: usize) -> Self {
        Self::with_geometry(expected.div_ceil(SEGMENT_BUCKETS), SEGMENT_BUCKETS)
    }

    /// Creates a set with an explicit geometry: `initial_segments` segments
    /// (clamped to `1..=`[`MAX_SEGMENTS`], rounded up to a power of two) of
    /// `segment_buckets` buckets each (rounded up to a power of two). The
    /// growth policy is the same as [`new`](Self::new); a set whose initial
    /// capacity already covers the whole workload never grows and behaves
    /// exactly like the old fixed-capacity design. Intended for tuning
    /// (`ParallelConfig::seen_segments`), benchmarks and tests; everything
    /// else should use [`new`](Self::new).
    pub fn with_geometry(initial_segments: usize, segment_buckets: usize) -> Self {
        let segment_buckets = segment_buckets.max(1).next_power_of_two();
        let initial = initial_segments.clamp(1, MAX_SEGMENTS).next_power_of_two();
        let root: Vec<OnceLock<Box<Segment>>> =
            (0..MAX_SEGMENTS).map(|_| OnceLock::new()).collect();
        for slot in root.iter().take(initial) {
            let fresh = slot.set(Segment::new(segment_buckets)).is_ok();
            debug_assert!(fresh, "fresh root slot");
        }
        ConcurrentSeenSet {
            root,
            segment_buckets,
            segments: AtomicUsize::new(initial),
            min_segments: initial,
            inflight: Default::default(),
            growing: AtomicBool::new(false),
            pinned: false,
            len: AtomicU64::new(0),
        }
    }

    /// Disables growth: the directory stays at its constructed geometry and
    /// chains absorb all excess load. A benchmark/test hook — combined with
    /// `with_geometry(1, 1 << 16)` it reproduces the retired fixed-capacity
    /// design exactly (one contiguous 2¹⁶-bucket array, no era probes),
    /// which is what `bench_seen` measures the growable default against.
    pub fn pinned(mut self) -> Self {
        self.pinned = true;
        self
    }

    /// Inserts `key`; returns `true` iff this call added it (exactly one of
    /// any number of concurrent inserts of the same key returns `true`).
    pub fn insert(&self, key: Vec<u32>) -> bool {
        let h = fnv1a(&key);
        let stripe = &self.inflight[my_stripe()].0;
        let segments = self.enter(stripe);
        let added = self.insert_under(h, key, segments);
        // ordering: SeqCst — the exit decrement must come after the node
        // link in the single total order the growth drain reads (mutation
        // site, see DESIGN.md "seen-exit-stripe").
        stripe.fetch_sub(1, order!(SeqCst, "seen-exit-stripe"));
        if added {
            // ordering: Relaxed — len is a statistic plus a growth trigger;
            // the growth protocol itself re-reads it under the flag.
            let len = self.len.fetch_add(1, Ordering::Relaxed) + 1;
            // Load factor 1: whoever crosses the published bucket count
            // kicks off the next doubling.
            if len as usize > segments * self.segment_buckets {
                self.try_grow();
            }
        }
        added
    }

    /// Registers this thread as an in-flight inserter on `stripe` and
    /// returns the published segment count its insert runs under. Backs
    /// out and spins while a publication is in progress, so the growth
    /// protocol's drain wait terminates.
    fn enter(&self, stripe: &AtomicUsize) -> usize {
        loop {
            // ordering: SeqCst — Dekker-style with `growing`: the increment
            // and the flag check must not reorder, or the grower could miss
            // this in-flight insert (mutation site, see DESIGN.md
            // "seen-enter-stripe").
            stripe.fetch_add(1, order!(SeqCst, "seen-enter-stripe"));
            // ordering: SeqCst — pairs with the increment above against the
            // grower's swap/drain; see DESIGN.md "seen-enter-growing".
            if !self.growing.load(order!(SeqCst, "seen-enter-growing")) {
                // ordering: SeqCst — the count read here decides which era
                // the insert links under; it must be at least as new as the
                // publication the cleared flag proves finished; see
                // DESIGN.md "seen-enter-segments".
                return self.segments.load(order!(SeqCst, "seen-enter-segments"));
            }
            // ordering: SeqCst — backout must be ordered before the re-read
            // of the flag so the drain can terminate.
            stripe.fetch_sub(1, Ordering::SeqCst);
            // ordering: SeqCst — spin until the publication completes.
            while self.growing.load(Ordering::SeqCst) {
                // Publication is rare and the wait is bounded by one drain;
                // yielding (rather than spinning) keeps oversubscribed
                // boxes from burning the publisher's timeslice.
                crate::sync::thread::yield_now();
            }
        }
    }

    /// The chain walk + tail race, against the directory state `segments`.
    fn insert_under(&self, h: u64, key: Vec<u32>, segments: usize) -> bool {
        // Walk the current era's chain first: each doubling means the
        // newest era holds about half of all keys, so the expected
        // duplicate is found after one or two walks when probing newest to
        // oldest (versus touching every era when probing oldest-first).
        // This walk doubles as the tail search for the insert race below.
        let target = self.bucket_index(h, segments);
        let mut slot = self.bucket_slot(target);
        loop {
            match slot.get() {
                Some(node) if node.hash == h && node.key == key => return false,
                Some(node) => slot = &node.next,
                None => break,
            }
        }
        // Probe the key's bucket under every older mask, newest era first;
        // nested masks mean consecutive eras often alias to the same
        // bucket, in which case the revisit is skipped. A new key must
        // visit them all before it may link.
        let mut era = segments / 2;
        let mut last = target;
        while era >= self.min_segments {
            let idx = self.bucket_index(h, era);
            era /= 2;
            if idx == last {
                continue;
            }
            last = idx;
            if self.chain_contains(idx, h, &key) {
                return false;
            }
        }
        // Not present anywhere: allocate once and race for empty tail slots
        // of the current era's chain, where all same-key racers meet.
        let mut node = Box::new(Node { hash: h, key, next: OnceLock::new() });
        loop {
            match slot.set(node) {
                Ok(()) => return true,
                Err(returned) => {
                    node = returned;
                    let Some(occupant) = slot.get() else {
                        // A failed set proves the slot was occupied, and
                        // chain links are never removed.
                        unreachable!("slot observed occupied");
                    };
                    if occupant.hash == node.hash && occupant.key == node.key {
                        return false;
                    }
                    slot = &occupant.next;
                }
            }
        }
    }

    /// Walks one chain read-only; `true` if it holds `key`.
    fn chain_contains(&self, idx: usize, h: u64, key: &[u32]) -> bool {
        let mut slot = self.bucket_slot(idx);
        while let Some(node) = slot.get() {
            if node.hash == h && node.key == *key {
                return true;
            }
            slot = &node.next;
        }
        false
    }

    /// Global bucket index of hash `h` under a published count of
    /// `segments` (both factors are powers of two, so this is a mask).
    fn bucket_index(&self, h: u64, segments: usize) -> usize {
        (h as usize) & (segments * self.segment_buckets - 1)
    }

    /// Resolves a global bucket index through the directory.
    fn bucket_slot(&self, idx: usize) -> &OnceLock<Box<Node>> {
        let Some(segment) = self.root[idx / self.segment_buckets].get() else {
            // Indices are always masked to a published count, and segments
            // are set strictly before the count covering them.
            unreachable!("published segment");
        };
        &segment.buckets[idx % self.segment_buckets]
    }

    /// Doubles the published segment count (capped at [`MAX_SEGMENTS`]),
    /// waiting out in-flight inserts first; no-op if another thread is
    /// already publishing.
    fn try_grow(&self) {
        // ordering: SeqCst — the pre-election snapshot the post-election
        // re-check compares against.
        let observed = self.segments.load(Ordering::SeqCst);
        // ordering: Relaxed (len) — the threshold is heuristic; the
        // authoritative re-check happens under the flag below.
        // ordering: SeqCst (growing.swap) — the swap elects exactly one
        // grower *before* anything is allocated, so racing
        // threshold-crossers never each build (and discard) a capacity's
        // worth of segments; see DESIGN.md "seen-elect-growing".
        if self.pinned
            || observed >= MAX_SEGMENTS
            || (self.len.load(Ordering::Relaxed) as usize) <= observed * self.segment_buckets
            || self.growing.swap(true, order!(SeqCst, "seen-elect-growing"))
        {
            return;
        }
        // Elected. Re-check under the flag: a racer may have published
        // while this thread was entering, in which case the doubling it
        // observed is already done and the flag comes straight back down.
        // ordering: SeqCst — reads the count the previous publication wrote
        // before clearing the flag this thread now holds.
        let current = self.segments.load(Ordering::SeqCst);
        // ordering: Relaxed (len) — same heuristic as above; a stale read
        // only delays growth by one insert.
        if current == observed
            && self.len.load(Ordering::Relaxed) as usize > current * self.segment_buckets
        {
            // Allocation happens under the flag — inserters arriving now
            // stall for the allocation as well as the drain, but only on
            // this rare true-growth path, and only one thread allocates.
            for (slot, _) in self.root.iter().skip(current).zip(0..current) {
                let unpublished = slot.set(Segment::new(self.segment_buckets)).is_ok();
                debug_assert!(unpublished, "unpublished root slot");
            }
            // Drain: every insert that read the old count links its node
            // before decrementing, so after the drain the new mask can be
            // published without a same-key insert straddling two eras.
            // ordering: SeqCst — each stripe read must observe every
            // increment ordered before this thread's flag swap (mutation
            // site, see DESIGN.md "seen-drain-stripe").
            while self.inflight.iter().any(|s| s.0.load(order!(SeqCst, "seen-drain-stripe")) > 0) {
                // The holders are mid-chain-walk; let them run (matters on
                // oversubscribed boxes where they may not be scheduled).
                crate::sync::thread::yield_now();
            }
            // ordering: SeqCst — publication: every later `enter` must see
            // this count once the flag below is observed clear; see
            // DESIGN.md "seen-publish-segments".
            self.segments.store(current * 2, order!(SeqCst, "seen-publish-segments"));
        }
        // ordering: SeqCst — releases the election; ordered after the
        // publication store so waiters resume under the new mask; see
        // DESIGN.md "seen-publish-segments".
        self.growing.store(false, order!(SeqCst, "seen-publish-segments"));
    }

    /// Number of distinct keys inserted so far.
    pub fn len(&self) -> u64 {
        // ordering: Relaxed — a monotonic statistic; readers tolerate lag.
        self.len.load(Ordering::Relaxed)
    }

    /// `true` when nothing has been inserted yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Published segment count (grows from the constructor's value up to
    /// [`MAX_SEGMENTS`], doubling each time the load factor crosses 1).
    pub fn segments(&self) -> usize {
        // ordering: SeqCst — observers see counts no older than the inserts
        // they synchronised with.
        self.segments.load(Ordering::SeqCst)
    }

    /// Published bucket count — `segments() · segment_buckets`.
    pub fn capacity(&self) -> usize {
        self.segments() * self.segment_buckets
    }

    /// Snapshot of the inserted keys, in no particular order. Keys whose
    /// insert completed before the call are all present; keys racing with
    /// the call may or may not be.
    pub fn keys(&self) -> Vec<Vec<u32>> {
        // ordering: SeqCst — walk everything published before the call.
        let segments = self.segments.load(Ordering::SeqCst);
        let mut out = Vec::with_capacity(self.len() as usize);
        for slot in self.root.iter().take(segments) {
            let Some(segment) = slot.get() else { continue };
            for head in &segment.buckets {
                let mut slot = head;
                while let Some(node) = slot.get() {
                    out.push(node.key.clone());
                    slot = &node.next;
                }
            }
        }
        out
    }
}

impl Drop for ConcurrentSeenSet {
    /// Unlinks chains iteratively: the default recursive `Box` drop would
    /// overflow the stack on the long chains a saturated set builds up.
    fn drop(&mut self) {
        // Only the published prefix can hold segments (publication sets a
        // slot strictly before the count covering it is stored, and counts
        // never shrink).
        // ordering: SeqCst — `&mut self` already guarantees exclusivity; a
        // plain load keeps the facade surface small (the model backend has
        // no `get_mut`).
        let published = self.segments.load(Ordering::SeqCst);
        for slot in &mut self.root[..published] {
            let Some(segment) = slot.get_mut() else { continue };
            for head in &mut segment.buckets {
                let mut cur = head.take();
                while let Some(mut node) = cur {
                    cur = node.next.take();
                }
            }
        }
    }
}

/// FNV-1a over a slice of `u32` keys (bucket selector — speed over quality).
pub(crate) fn fnv1a(key: &[u32]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &x in key {
        for b in x.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_reports_first_only() {
        let set = ConcurrentSeenSet::new(0);
        assert!(set.is_empty());
        assert_eq!(set.segments(), 1, "tiny expectation starts at one segment");
        assert!(set.insert(vec![1, 2, 3]));
        assert!(!set.insert(vec![1, 2, 3]));
        assert!(set.insert(vec![1, 2]));
        assert!(set.insert(vec![]));
        assert!(!set.insert(vec![]));
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn new_rounds_expected_up_to_whole_segments() {
        assert_eq!(ConcurrentSeenSet::new(1).capacity(), SEGMENT_BUCKETS);
        assert_eq!(ConcurrentSeenSet::new(SEGMENT_BUCKETS).capacity(), SEGMENT_BUCKETS);
        assert_eq!(ConcurrentSeenSet::new(SEGMENT_BUCKETS + 1).capacity(), 2 * SEGMENT_BUCKETS);
        let huge = ConcurrentSeenSet::with_geometry(2 * MAX_SEGMENTS, SEGMENT_BUCKETS);
        assert_eq!(huge.segments(), MAX_SEGMENTS);
    }

    #[test]
    fn chains_handle_collisions_without_growth() {
        // Far more keys than buckets in a maxed-out directory of tiny
        // segments: every bucket degrades into a multi-node chain, exactly
        // the old fixed-capacity behaviour.
        let set = ConcurrentSeenSet::with_geometry(MAX_SEGMENTS, 1);
        for i in 0..10_000u32 {
            assert!(set.insert(vec![i, i + 1]));
        }
        for i in 0..10_000u32 {
            assert!(!set.insert(vec![i, i + 1]));
        }
        assert_eq!(set.len(), 10_000);
    }

    #[test]
    fn growth_crosses_eras_without_losing_keys() {
        // One 16-bucket segment grows several times; every key inserted
        // before, across and after the growth points stays claimed exactly
        // once.
        let set = ConcurrentSeenSet::with_geometry(1, 16);
        assert_eq!(set.segments(), 1);
        for i in 0..2_000u32 {
            assert!(set.insert(vec![i]));
            assert!(!set.insert(vec![i]), "key {i} duplicated after growth");
        }
        assert!(set.segments() > 1, "load factor 1 triggers publication");
        for i in 0..2_000u32 {
            assert!(!set.insert(vec![i]), "key {i} lost across eras");
        }
        assert_eq!(set.len(), 2_000);
        let mut keys = set.keys();
        keys.sort();
        assert_eq!(keys.len(), 2_000);
        assert_eq!(keys[0], vec![0]);
        assert_eq!(keys[1_999], vec![1_999]);
    }

    #[test]
    fn concurrent_inserts_claim_each_key_once() {
        // Small segments force several publications mid-run while 8 threads
        // hammer overlapping key ranges.
        let set = ConcurrentSeenSet::with_geometry(1, 64);
        let threads = 8;
        let keys = 2_000u32;
        let claimed: u64 = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let set = &set;
                    scope.spawn(move || {
                        let mut wins = 0u64;
                        for i in 0..keys {
                            if set.insert(vec![i]) {
                                wins += 1;
                            }
                        }
                        wins
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(claimed, keys as u64, "every key claimed exactly once");
        assert_eq!(set.len(), keys as u64);
        assert!(set.segments() > 1, "concurrent load grew the directory");
    }

    #[test]
    fn pinned_geometry_never_grows() {
        // The benchmark/test hook: a pinned one-segment set absorbs any
        // load in chains instead of publishing, like the retired fixed
        // design.
        let set = ConcurrentSeenSet::with_geometry(1, 16).pinned();
        for i in 0..1_000u32 {
            assert!(set.insert(vec![i]));
        }
        assert_eq!(set.segments(), 1, "pinned directory must not publish");
        for i in 0..1_000u32 {
            assert!(!set.insert(vec![i]));
        }
        assert_eq!(set.len(), 1_000);
    }

    #[test]
    fn saturated_directory_keeps_claiming_past_the_cap() {
        // A directory already at MAX_SEGMENTS cannot grow; inserts beyond
        // its capacity must still claim exactly once (chains absorb the
        // load), and the iterative drop must unlink them all.
        let set = ConcurrentSeenSet::with_geometry(MAX_SEGMENTS, 1);
        let n = 4 * MAX_SEGMENTS as u32;
        for i in 0..n {
            assert!(set.insert(vec![i, i]));
        }
        assert_eq!(set.segments(), MAX_SEGMENTS, "cap holds");
        assert_eq!(set.len(), n as u64);
        for i in 0..n {
            assert!(!set.insert(vec![i, i]));
        }
        drop(set);
    }
}
