//! A lock-free, insert-only concurrent set of canonical solution keys.
//!
//! The set is a fixed array of bucket heads; each bucket is a singly linked
//! chain of immutable nodes whose `next` pointers are [`OnceLock`]s. An
//! insert walks the chain comparing keys and, at the tail, *atomically
//! swaps* its freshly allocated node into the empty `next` slot; losing the
//! swap race simply means another thread extended the chain first, and the
//! walk continues from the node that won. No entry is ever removed or
//! mutated, so readers need no synchronisation beyond the atomic pointer
//! loads `OnceLock::get` performs.
//!
//! Compared with the previous design (64 `Mutex<HashSet>` shards) this
//! removes the lock acquisition from every dedup probe: the common path —
//! the key is already present, or the bucket tail swap succeeds first try —
//! executes no blocking operation at all. Contention is limited to two
//! threads racing to extend the *same* bucket chain in the same instant,
//! and the loser re-uses its allocation on the next link.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// One chain link holding a canonical solution key (plus its full 64-bit
/// hash, so chain walks only compare vectors on a hash match).
struct Node {
    hash: u64,
    key: Vec<u32>,
    next: OnceLock<Box<Node>>,
}

/// The concurrent seen-set. See the module docs for the design.
pub struct ConcurrentSeenSet {
    buckets: Vec<OnceLock<Box<Node>>>,
    mask: u64,
    len: AtomicU64,
}

impl ConcurrentSeenSet {
    /// Creates a set with at least `expected` buckets (rounded up to a power
    /// of two, minimum 2¹⁶). The bucket count is fixed for the lifetime of
    /// the set; chains absorb any excess load gracefully. Solution counts
    /// are not predictable from the graph size, so the floor is chosen
    /// large (1 MiB of bucket heads) to keep chains near length one on
    /// enumeration workloads in the millions.
    pub fn new(expected: usize) -> Self {
        let buckets = expected.max(1 << 16).next_power_of_two();
        ConcurrentSeenSet {
            buckets: (0..buckets).map(|_| OnceLock::new()).collect(),
            mask: buckets as u64 - 1,
            len: AtomicU64::new(0),
        }
    }

    /// Inserts `key`; returns `true` iff this call added it (exactly one of
    /// any number of concurrent inserts of the same key returns `true`).
    pub fn insert(&self, key: Vec<u32>) -> bool {
        let h = fnv1a(&key);
        let mut slot = &self.buckets[(h & self.mask) as usize];
        // Walk the chain allocation-free first: the overwhelmingly common
        // outcomes are "duplicate found" or "tail reached".
        loop {
            match slot.get() {
                Some(node) if node.hash == h && node.key == key => return false,
                Some(node) => slot = &node.next,
                None => break,
            }
        }
        // Tail reached: allocate once and race for empty slots from here on.
        let mut node = Box::new(Node { hash: h, key, next: OnceLock::new() });
        loop {
            match slot.set(node) {
                Ok(()) => {
                    self.len.fetch_add(1, Ordering::Relaxed);
                    return true;
                }
                Err(returned) => {
                    node = returned;
                    let occupant = slot.get().expect("slot observed occupied");
                    if occupant.hash == node.hash && occupant.key == node.key {
                        return false;
                    }
                    slot = &occupant.next;
                }
            }
        }
    }

    /// Test-only constructor without the bucket floor, so chain behaviour
    /// can be exercised with a handful of keys.
    #[cfg(test)]
    fn with_buckets(buckets: usize) -> Self {
        let buckets = buckets.max(1).next_power_of_two();
        ConcurrentSeenSet {
            buckets: (0..buckets).map(|_| OnceLock::new()).collect(),
            mask: buckets as u64 - 1,
            len: AtomicU64::new(0),
        }
    }

    /// Number of distinct keys inserted so far.
    pub fn len(&self) -> u64 {
        self.len.load(Ordering::Relaxed)
    }

    /// `true` when nothing has been inserted yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// FNV-1a over a slice of `u32` keys (bucket selector — speed over quality).
pub(crate) fn fnv1a(key: &[u32]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &x in key {
        for b in x.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_reports_first_only() {
        let set = ConcurrentSeenSet::new(0);
        assert!(set.is_empty());
        assert!(set.insert(vec![1, 2, 3]));
        assert!(!set.insert(vec![1, 2, 3]));
        assert!(set.insert(vec![1, 2]));
        assert!(set.insert(vec![]));
        assert!(!set.insert(vec![]));
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn chains_handle_collisions() {
        // Far more keys than buckets forces every bucket into multi-node
        // chains.
        let set = ConcurrentSeenSet::with_buckets(16);
        for i in 0..10_000u32 {
            assert!(set.insert(vec![i, i + 1]));
        }
        for i in 0..10_000u32 {
            assert!(!set.insert(vec![i, i + 1]));
        }
        assert_eq!(set.len(), 10_000);
    }

    #[test]
    fn concurrent_inserts_claim_each_key_once() {
        let set = ConcurrentSeenSet::with_buckets(64);
        let threads = 8;
        let keys = 2_000u32;
        let claimed: u64 = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let set = &set;
                    scope.spawn(move || {
                        let mut wins = 0u64;
                        for i in 0..keys {
                            if set.insert(vec![i]) {
                                wins += 1;
                            }
                        }
                        wins
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(claimed, keys as u64, "every key claimed exactly once");
        assert_eq!(set.len(), keys as u64);
    }
}
