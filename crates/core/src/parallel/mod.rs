//! Thread-parallel maximal k-biplex enumeration.
//!
//! The paper's conclusion lists *"efficient parallel and distributed
//! implementations"* as future work; this module provides two shared-memory
//! parallel engines for `iTraversal`. The solution-graph exploration is an
//! irregular graph traversal, which parallelises naturally: every discovered
//! solution becomes a work item, and expanding a solution (one `iThreeStep`
//! invocation — forming almost-satisfying graphs, enumerating local
//! solutions, extending them and de-duplicating) is independent of every
//! other expansion apart from the shared *seen* set.
//!
//! Engines ([`ParallelEngine`]):
//!
//! * **Work stealing** (default, [`work_steal`]) — per-worker LIFO deques;
//!   a worker pushes the solutions it discovers onto its own deque and pops
//!   from the same end (depth-first, cache-warm), and steals from the old
//!   end of a random victim's deque when it runs dry — one item from a
//!   shallow victim, the oldest half of a deep one (adaptive granularity,
//!   [`ParallelConfig::steal_adaptive`]). De-duplication goes through a
//!   lock-free [`seen::ConcurrentSeenSet`] (atomic-swap bucket chains
//!   behind a segmented directory that grows under load), and results are
//!   handed to the shared output vector in batches to keep the output lock
//!   out of the hot path.
//! * **Global queue** ([`global_queue`]) — the original engine: one
//!   mutex+condvar-protected LIFO work queue and a 64-way mutex-sharded
//!   seen-set. Kept as the measured baseline of the scaling benchmarks
//!   (`BENCH_parallel.json`).
//!
//! Both engines run the left-anchored + right-shrinking `iTraversal`
//! configuration (those prunings' correctness arguments never reference the
//! order in which solutions are expanded). The sequential engine's *full*
//! exclusion strategy is inherently order-dependent — ℰ(H) inherits the
//! completed sibling branches of every ancestor — and stays disabled; in
//! its place the expansion procedure applies a **host-local exclusion
//! approximation** ([`ParallelConfig::exclusion_local`], default on): while
//! expanding one host H, every fully enumerated earlier candidate `w` of H
//! joins a local excluded set, and later links out of the *same* expansion
//! whose solution contains `w` are pruned. This is the same-host slice of
//! ℰ(H), so it is position-determined (a function of H and the fixed
//! ascending candidate order only, never of worker timing) and prunes a
//! large share of the within-expansion duplicate links that the sequential
//! engine dodges — the bulk of the sequential-vs-parallel per-thread gap
//! recorded in EXPERIMENTS.md. Correctness (oracle-checked by the
//! `parallel` test battery and the engine cross-validation suite): if the
//! link (H, v′) → S is pruned because `w ∈ S.left` for an earlier fully
//! enumerated candidate `w < v′`, then (H, w) → S is itself a link of the
//! solution graph (the same-host exclusion lemma the sequential strategy
//! already relies on), and it was considered during `w`'s enumeration at H
//! — where, by induction over the strictly decreasing candidate id, it was
//! either followed (S claimed in the seen-set) or pruned in favour of an
//! even earlier candidate. Since the seen-set expands every claimed
//! solution exactly once, every maximal k-biplex is still discovered,
//! independent of scheduling. The *set* of solutions returned — and every
//! per-run counter — therefore remains deterministic and identical to the
//! sequential enumeration; the discovery order is not. The
//! [`crate::api::Enumerator::collect`] terminal returns the canonically
//! sorted set.
//!
//! A [`VertexOrder`] relabeling pass can be applied up front (see
//! [`bigraph::order`]): the engines then run on the relabeled graph and the
//! solutions are mapped back to the original ids on the way out.
//!
//! Both engines support *cooperative cancellation*: the facade
//! ([`crate::api::Enumerator`]) hands them a shared `AtomicBool` which the
//! workers poll at steal/expand boundaries (and between local solutions of
//! one expansion), so early-stopping "first N" and time-budgeted runs stop
//! within one expansion instead of running to completion. Streaming
//! delivery goes through an optional per-solution callback instead of the
//! collected output vector.

pub mod global_queue;
pub mod seen;
pub mod work_steal;

use std::time::Instant;

use bigraph::intersect::{intersects, Kernel};
use bigraph::order::{Relabeling, VertexOrder};
use bigraph::BipartiteGraph;

use crate::biplex::{sorted_intersection_len, Biplex, PartialBiplex};
use crate::enum_almost_sat::{enum_almost_sat, EnumKind};
use crate::extend::{extend_to_maximal, ExtendMode};
use crate::sink::Control;
use crate::sync::atomic::AtomicBool;
use crate::sync::order;

/// Scheduler-independent runtime hooks of one parallel run, injected by the
/// facade: an optional per-solution callback (streaming delivery instead of
/// the collected output vector) and an optional shared cancellation flag
/// polled by every worker at steal/expand boundaries.
#[derive(Clone, Copy, Default)]
pub(crate) struct ParRuntime<'a> {
    /// When set, reported solutions are handed to this callback (in
    /// nondeterministic discovery order) instead of being collected; a
    /// [`Control::Stop`] verdict requests cancellation of the whole run.
    pub emit: Option<&'a (dyn Fn(&Biplex) -> Control + Sync)>,
    /// Shared stop flag. Workers exit their scheduling loops and abandon
    /// in-flight expansions as soon as it reads `true`.
    pub cancel: Option<&'a AtomicBool>,
    /// Hard deadline polled alongside the flag at scheduling boundaries, so
    /// a time-budgeted run stops even when no solution ever reaches the
    /// emit callback (e.g. thresholds filter everything out).
    pub deadline: Option<Instant>,
}

impl ParRuntime<'_> {
    /// `true` once cancellation has been requested.
    pub(crate) fn cancelled(&self) -> bool {
        // ordering: Relaxed — the flag is a pure liveness signal, no data is
        // published through it; see DESIGN.md "cancel-flag".
        self.cancel.is_some_and(|c| c.load(order!(Relaxed, "cancel-flag")))
    }

    /// Boundary check: `true` once the run is cancelled or past its
    /// deadline (an expired deadline raises the shared flag so in-flight
    /// expansions on other workers also wind down).
    pub(crate) fn should_stop(&self) -> bool {
        if self.cancelled() {
            return true;
        }
        if self.deadline.is_some_and(|d| Instant::now() >= d) {
            self.request_cancel();
            return true;
        }
        false
    }

    /// Requests cancellation (no-op without a flag).
    pub(crate) fn request_cancel(&self) {
        if let Some(c) = self.cancel {
            // ordering: Relaxed — liveness-only signal, no data published
            // through the flag; see DESIGN.md "cancel-flag".
            c.store(true, order!(Relaxed, "cancel-flag"));
        }
    }

    /// Delivers one reported solution through the callback, translating a
    /// stop verdict into a cancellation request. Returns `false` when the
    /// engine should keep the solution for the collected output instead.
    pub(crate) fn deliver(&self, solution: &Biplex) -> bool {
        match self.emit {
            Some(emit) => {
                if emit(solution) == Control::Stop {
                    self.request_cancel();
                }
                true
            }
            None => false,
        }
    }
}

/// Which parallel scheduler executes the run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ParallelEngine {
    /// Per-worker LIFO deques with random stealing (default).
    #[default]
    WorkSteal,
    /// The original single mutex+condvar work queue (benchmark baseline).
    GlobalQueue,
}

impl std::str::FromStr for ParallelEngine {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "steal" | "work-steal" => Ok(ParallelEngine::WorkSteal),
            "global" | "global-queue" => Ok(ParallelEngine::GlobalQueue),
            other => Err(format!("unknown parallel engine {other:?} (expected steal or global)")),
        }
    }
}

/// Configuration of a parallel enumeration run.
#[derive(Clone, Debug)]
pub struct ParallelConfig {
    /// The `k` of the k-biplex definition.
    pub k: usize,
    /// Worker thread count. `0` means "use the available parallelism
    /// reported by the operating system".
    pub threads: usize,
    /// Which `EnumAlmostSat` implementation each worker uses.
    pub enum_kind: EnumKind,
    /// Minimum left-side size of reported MBPs (`0` disables).
    pub theta_left: usize,
    /// Minimum right-side size of reported MBPs (`0` disables).
    pub theta_right: usize,
    /// Vertex relabeling applied before the run (solutions are mapped back).
    pub order: VertexOrder,
    /// Scheduler implementation.
    pub engine: ParallelEngine,
    /// Number of reported solutions a worker buffers locally before taking
    /// the shared output lock (work-stealing engine only).
    pub result_batch: usize,
    /// Initial segment count of the seen-set's bucket directory
    /// (work-stealing engine only). `0` means "size from the graph"; any
    /// other value pre-publishes that many [`seen::SEGMENT_BUCKETS`]-bucket
    /// segments (rounded up to a power of two, capped at
    /// [`seen::MAX_SEGMENTS`]). Either way the directory keeps growing
    /// under load — the knob only moves the starting point.
    pub seen_segments: usize,
    /// Adaptive steal granularity (work-stealing engine only, default on):
    /// steal a single item from a victim deque at most
    /// [`work_steal::STEAL_SHALLOW`] deep, the oldest half otherwise.
    /// `false` always steals half, the previous fixed policy.
    pub steal_adaptive: bool,
    /// Intersection kernel installed on every worker thread
    /// ([`Kernel::Auto`] applies the measured crossover heuristic; the rest
    /// force one kernel for `--kernel` A/B runs).
    pub kernel: Kernel,
    /// Host-local exclusion approximation (default on): prune duplicate
    /// links within one expansion against the already-enumerated earlier
    /// candidates of the same host. Timing-independent and oracle-checked —
    /// see the module docs for the correctness argument; the knob exists
    /// for A/B measurement and as a diagnostic escape hatch.
    pub exclusion_local: bool,
}

impl ParallelConfig {
    /// Default configuration: `L2.0+R2.0` local enumeration, OS-chosen
    /// thread count, no size thresholds, input order, work stealing.
    pub fn new(k: usize) -> Self {
        ParallelConfig {
            k,
            threads: 0,
            enum_kind: EnumKind::L2R2,
            theta_left: 0,
            theta_right: 0,
            order: VertexOrder::Input,
            engine: ParallelEngine::WorkSteal,
            result_batch: 64,
            seen_segments: 0,
            steal_adaptive: true,
            kernel: Kernel::Auto,
            exclusion_local: true,
        }
    }

    /// Sets the number of worker threads (`0` = auto).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Selects the `EnumAlmostSat` implementation.
    pub fn with_enum_kind(mut self, kind: EnumKind) -> Self {
        self.enum_kind = kind;
        self
    }

    /// Sets the large-MBP size thresholds (`0` disables a side).
    pub fn with_thresholds(mut self, theta_left: usize, theta_right: usize) -> Self {
        self.theta_left = theta_left;
        self.theta_right = theta_right;
        self
    }

    /// Selects the vertex relabeling pass.
    pub fn with_order(mut self, order: VertexOrder) -> Self {
        self.order = order;
        self
    }

    /// Selects the scheduler engine.
    pub fn with_engine(mut self, engine: ParallelEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Sets the seen-set's initial segment count (`0` = size from the
    /// graph). See [`ParallelConfig::seen_segments`].
    pub fn with_seen_segments(mut self, segments: usize) -> Self {
        self.seen_segments = segments;
        self
    }

    /// Toggles adaptive steal granularity. See
    /// [`ParallelConfig::steal_adaptive`].
    pub fn with_steal_adaptive(mut self, adaptive: bool) -> Self {
        self.steal_adaptive = adaptive;
        self
    }

    /// Selects the intersection kernel (default [`Kernel::Auto`]).
    pub fn with_kernel(mut self, kernel: Kernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// Toggles the host-local exclusion approximation. See
    /// [`ParallelConfig::exclusion_local`].
    pub fn with_exclusion_local(mut self, enabled: bool) -> Self {
        self.exclusion_local = enabled;
        self
    }

    pub(crate) fn resolved_threads(&self) -> usize {
        if self.threads > 0 {
            return self.threads;
        }
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    }
}

/// Aggregate statistics of a parallel run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ParallelStats {
    /// Distinct maximal k-biplexes discovered.
    pub solutions: u64,
    /// Solutions passing the size thresholds (what the caller received).
    pub reported: u64,
    /// Almost-satisfying graphs formed across all workers.
    pub almost_sat_graphs: u64,
    /// Local solutions produced across all workers.
    pub local_solutions: u64,
    /// Solution-graph links followed (including duplicates).
    pub links: u64,
    /// Successful steal operations (work-stealing engine; 0 otherwise).
    pub steals: u64,
    /// Worker threads actually used.
    pub threads: usize,
    /// `true` when the run was cut short by cooperative cancellation (limit,
    /// time budget or a stopping sink) instead of exhausting the search.
    pub stopped_early: bool,
}

/// Per-worker tallies, merged into [`ParallelStats`] when the worker joins
/// so the hot loop never touches shared atomics.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct WorkerCounters {
    pub solutions: u64,
    pub reported: u64,
    pub almost_sat_graphs: u64,
    pub local_solutions: u64,
    pub links: u64,
    pub steals: u64,
}

impl WorkerCounters {
    pub(crate) fn merge_into(&self, stats: &mut ParallelStats) {
        stats.solutions += self.solutions;
        stats.reported += self.reported;
        stats.almost_sat_graphs += self.almost_sat_graphs;
        stats.local_solutions += self.local_solutions;
        stats.links += self.links;
        stats.steals += self.steals;
    }
}

/// Expands one solution — the parallel `iThreeStep`: left-anchored candidate
/// loop, local enumeration, right-shrinking filter, left-only extension,
/// de-duplication. Shared by both engines; the scheduler-specific parts are
/// injected:
///
/// * `seen_insert` claims a solution in the concurrent seen-set, returning
///   `true` exactly once per distinct solution across all workers;
/// * `on_new(solution, report, expandable)` is called for every solution
///   claimed by this worker — `report` says it passed the size thresholds,
///   `expandable` that its expansion is not pruned and it must be scheduled;
/// * `cancel`, when set, is polled between candidate vertices and between
///   local solutions so a cancelled run abandons the expansion mid-way.
pub(crate) fn expand_solution(
    g: &BipartiteGraph,
    config: &ParallelConfig,
    host: &Biplex,
    counters: &mut WorkerCounters,
    seen_insert: &dyn Fn(&Biplex) -> bool,
    on_new: &mut dyn FnMut(Biplex, bool, bool),
    cancel: Option<&AtomicBool>,
) {
    let k = config.k;
    let host_partial = PartialBiplex::from_sets(g, &host.left, &host.right);

    // Host-local exclusion (see the module docs): candidates of this host
    // that have been fully enumerated, ascending because `v` is. Later
    // links of the *same* expansion towards a solution containing one of
    // them are duplicates of a link already considered, and are pruned.
    let mut excluded: Vec<u32> = Vec::new();

    for v in 0..g.num_left() {
        // ordering: Relaxed — cancellation poll, liveness only; see
        // DESIGN.md "cancel-flag".
        if cancel.is_some_and(|c| c.load(order!(Relaxed, "cancel-flag"))) {
            return;
        }
        if host_partial.contains_left(v) {
            continue;
        }
        // Almost-satisfying-graph pruning for large-MBP runs (Section 5):
        // every solution reached through v keeps v and, under
        // right-shrinking, at most deg(v, R_H) + k right vertices.
        if config.theta_right > 0 {
            let deg_in_r = sorted_intersection_len(g.left_neighbors(v), host_partial.right());
            if deg_in_r + k < config.theta_right {
                continue;
            }
        }
        counters.almost_sat_graphs += 1;

        enum_almost_sat(g, k, config.enum_kind, &host_partial, v, |local: Biplex| -> bool {
            // ordering: Relaxed — cancellation poll, liveness only; see
            // DESIGN.md "cancel-flag".
            if cancel.is_some_and(|c| c.load(order!(Relaxed, "cancel-flag"))) {
                return false;
            }
            counters.local_solutions += 1;

            // Host-local exclusion on the local solution: its extension
            // keeps `local.left`, so a hit here prunes the link before the
            // right-shrinking scan and the extension are paid for.
            if intersects(&local.left, &excluded) {
                return true;
            }

            // Local-solution pruning (Section 5): under right-shrinking the
            // final right side equals the local one.
            if config.theta_right > 0 && local.right.len() < config.theta_right {
                return true;
            }

            let mut partial = PartialBiplex::from_sets(g, &local.left, &local.right);

            // Right-shrinking traversal (Algorithm 2 line 7): discard the
            // local solution if any right vertex of G outside it can be
            // added while preserving the k-biplex property.
            if exists_addable_right(g, &partial, k) {
                return true;
            }

            extend_to_maximal(g, &mut partial, k, ExtendMode::LeftOnly);
            let solution = partial.to_biplex();

            // Host-local exclusion on the extended solution (the extension
            // may pull in an excluded left vertex the local solution lacked).
            if intersects(&solution.left, &excluded) {
                return true;
            }
            counters.links += 1;

            if seen_insert(&solution) {
                counters.solutions += 1;
                let report = solution.left.len() >= config.theta_left
                    && solution.right.len() >= config.theta_right;
                if report {
                    counters.reported += 1;
                }
                // Solution pruning (Section 5): descendants cannot regain
                // right-side size under right-shrinking.
                let expandable =
                    !(config.theta_right > 0 && solution.right.len() < config.theta_right);
                on_new(solution, report, expandable);
            }
            true
        });

        // Only fully enumerated candidates may be excluded against — the
        // completeness induction needs every link via `v` to have been
        // considered. θ-pruned and skipped candidates never join, and a
        // cancelled expansion stops using the set at the next poll.
        if config.exclusion_local {
            excluded.push(v);
        }
    }
}

/// The literal right-shrinking test of Algorithm 2 line 7: does a right
/// vertex of `G` outside the local solution exist whose addition preserves
/// the k-biplex property?
fn exists_addable_right(g: &BipartiteGraph, partial: &PartialBiplex, k: usize) -> bool {
    for u in 0..g.num_right() {
        if !partial.contains_right(u) && partial.can_add_right(g, u, k) {
            return true;
        }
    }
    false
}

/// Engine dispatch plus the relabeling pass behind the
/// [`crate::api::Enumerator`] facade. A relabeling pass
/// runs the engines on the permuted graph and maps the solutions back (in
/// collect mode through the output vector, in streaming mode by wrapping the
/// emit callback); the canonical solution set is unchanged.
pub(crate) fn par_run(
    g: &BipartiteGraph,
    config: &ParallelConfig,
    rt: &ParRuntime<'_>,
) -> (Vec<Biplex>, ParallelStats) {
    if config.order != VertexOrder::Input {
        let relab = Relabeling::compute(g, config.order);
        let rg = relab.apply(g);
        let cfg = ParallelConfig { order: VertexOrder::Input, ..config.clone() };
        if let Some(emit) = rt.emit {
            let mapped_emit = |b: &Biplex| emit(&b.map_back(&relab));
            let mapped_rt = ParRuntime { emit: Some(&mapped_emit), ..*rt };
            return par_run(&rg, &cfg, &mapped_rt);
        }
        let (solutions, stats) = par_run(&rg, &cfg, rt);
        let mapped = solutions.iter().map(|b| b.map_back(&relab)).collect();
        return (mapped, stats);
    }
    match config.engine {
        ParallelEngine::WorkSteal => work_steal::run(g, config, rt),
        ParallelEngine::GlobalQueue => global_queue::run(g, config, rt),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::tests_support::enumerate_all;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// The engines under their default runtime (no emit hook, no cancel).
    fn par_enumerate_mbps(
        g: &BipartiteGraph,
        cfg: &ParallelConfig,
    ) -> (Vec<Biplex>, ParallelStats) {
        par_run(g, cfg, &ParRuntime::default())
    }

    fn random_graph(nl: u32, nr: u32, p: f64, seed: u64) -> BipartiteGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut edges = Vec::new();
        for v in 0..nl {
            for u in 0..nr {
                if rng.gen_bool(p) {
                    edges.push((v, u));
                }
            }
        }
        BipartiteGraph::from_edges(nl, nr, &edges).unwrap()
    }

    const ENGINES: [ParallelEngine; 2] = [ParallelEngine::WorkSteal, ParallelEngine::GlobalQueue];

    #[test]
    fn parallel_matches_sequential_on_random_graphs() {
        for seed in 0..10u64 {
            let g = random_graph(6, 6, 0.5, seed);
            for k in 1..=2usize {
                let expected = enumerate_all(&g, k);
                for engine in ENGINES {
                    for threads in [1, 2, 4] {
                        let cfg = ParallelConfig::new(k).with_threads(threads).with_engine(engine);
                        let (mut got, _) = par_enumerate_mbps(&g, &cfg);
                        got.sort();
                        assert_eq!(got, expected, "seed {seed} k {k} threads {threads} {engine:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn relabeling_orders_return_the_same_set() {
        for seed in 0..6u64 {
            let g = random_graph(7, 6, 0.45, seed);
            let k = 1;
            let expected = enumerate_all(&g, k);
            for order in [VertexOrder::Degree, VertexOrder::Degeneracy] {
                let cfg = ParallelConfig::new(k).with_threads(3).with_order(order);
                let (mut got, _) = par_enumerate_mbps(&g, &cfg);
                got.sort();
                assert_eq!(got, expected, "seed {seed} order {order}");
            }
        }
    }

    #[test]
    fn parallel_stats_are_consistent() {
        let g = random_graph(7, 7, 0.5, 3);
        for engine in ENGINES {
            let cfg = ParallelConfig::new(1).with_threads(3).with_engine(engine);
            let (results, stats) = par_enumerate_mbps(&g, &cfg);
            assert_eq!(stats.solutions, results.len() as u64, "{engine:?}");
            assert_eq!(stats.reported, stats.solutions, "{engine:?}");
            assert!(stats.links >= stats.solutions.saturating_sub(1), "{engine:?}");
            assert_eq!(stats.threads, 3, "{engine:?}");
        }
    }

    #[test]
    fn parallel_size_thresholds_match_post_filtering() {
        for seed in 0..6u64 {
            let g = random_graph(6, 6, 0.6, seed);
            let k = 1;
            let all = enumerate_all(&g, k);
            for (tl, tr) in [(2, 2), (3, 2), (2, 3)] {
                let mut expected: Vec<Biplex> = all
                    .iter()
                    .filter(|b| b.left.len() >= tl && b.right.len() >= tr)
                    .cloned()
                    .collect();
                expected.sort();
                for engine in ENGINES {
                    let cfg = ParallelConfig::new(k)
                        .with_threads(4)
                        .with_thresholds(tl, tr)
                        .with_engine(engine);
                    let (mut got, _) = par_enumerate_mbps(&g, &cfg);
                    got.sort();
                    assert_eq!(got, expected, "seed {seed} θ=({tl},{tr}) {engine:?}");
                }
            }
        }
    }

    #[test]
    fn every_enum_kind_matches_in_parallel() {
        let g = random_graph(6, 6, 0.5, 11);
        let k = 1;
        let expected = enumerate_all(&g, k);
        for kind in EnumKind::ALL {
            let cfg = ParallelConfig::new(k).with_threads(2).with_enum_kind(kind);
            let (mut got, _) = par_enumerate_mbps(&g, &cfg);
            got.sort();
            assert_eq!(got, expected, "kind {kind:?}");
        }
    }

    #[test]
    fn degenerate_graphs() {
        for engine in ENGINES {
            let g = BipartiteGraph::from_edges(0, 0, &[]).unwrap();
            let cfg = ParallelConfig::new(1).with_threads(2).with_engine(engine);
            let (got, _) = par_enumerate_mbps(&g, &cfg);
            assert_eq!(got.len(), 1, "{engine:?}");
            assert!(got[0].is_empty(), "{engine:?}");

            let g = BipartiteGraph::from_edges(3, 3, &[]).unwrap();
            for k in 0..=2usize {
                let cfg = ParallelConfig::new(k).with_threads(2).with_engine(engine);
                let (mut got, _) = par_enumerate_mbps(&g, &cfg);
                got.sort();
                assert_eq!(got, enumerate_all(&g, k), "k {k} {engine:?}");
            }
        }
    }

    #[test]
    fn host_local_exclusion_is_oracle_checked_against_sequential() {
        // The approximation must change only the link counts, never the
        // solution set — on either engine, at any thread count.
        for seed in 0..8u64 {
            let g = random_graph(7, 6, 0.5, seed);
            for k in 1..=2usize {
                let expected = enumerate_all(&g, k);
                for engine in ENGINES {
                    for exclusion in [true, false] {
                        let cfg = ParallelConfig::new(k)
                            .with_threads(3)
                            .with_engine(engine)
                            .with_exclusion_local(exclusion);
                        let (mut got, _) = par_enumerate_mbps(&g, &cfg);
                        got.sort();
                        assert_eq!(
                            got, expected,
                            "seed {seed} k {k} {engine:?} exclusion_local {exclusion}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn host_local_exclusion_prunes_duplicate_links() {
        // On a dense graph the within-expansion duplicate links are
        // plentiful; the approximation must strictly reduce them while
        // keeping the solution count identical.
        let g = random_graph(8, 8, 0.7, 5);
        let run = |exclusion: bool| {
            let cfg = ParallelConfig::new(1).with_threads(2).with_exclusion_local(exclusion);
            par_enumerate_mbps(&g, &cfg)
        };
        let (mut with, stats_with) = run(true);
        let (mut without, stats_without) = run(false);
        with.sort();
        without.sort();
        assert_eq!(with, without);
        assert_eq!(stats_with.solutions, stats_without.solutions);
        assert!(
            stats_with.links < stats_without.links,
            "exclusion pruned nothing: {} vs {}",
            stats_with.links,
            stats_without.links
        );
    }

    #[test]
    fn kernel_overrides_never_change_the_solution_set() {
        for seed in 0..4u64 {
            let g = random_graph(7, 7, 0.5, seed);
            let k = 1;
            let expected = enumerate_all(&g, k);
            for engine in ENGINES {
                for kernel in Kernel::ALL {
                    let cfg = ParallelConfig::new(k)
                        .with_threads(2)
                        .with_engine(engine)
                        .with_kernel(kernel);
                    let (mut got, _) = par_enumerate_mbps(&g, &cfg);
                    got.sort();
                    assert_eq!(got, expected, "seed {seed} {engine:?} kernel {kernel}");
                }
            }
        }
    }

    #[test]
    fn auto_thread_count_resolves() {
        let cfg = ParallelConfig::new(1);
        assert!(cfg.resolved_threads() >= 1);
    }

    #[test]
    fn engine_parsing() {
        assert_eq!("steal".parse::<ParallelEngine>().unwrap(), ParallelEngine::WorkSteal);
        assert_eq!("global".parse::<ParallelEngine>().unwrap(), ParallelEngine::GlobalQueue);
        assert!("quantum".parse::<ParallelEngine>().is_err());
    }
}
