//! Asymmetric k-biplex enumeration — different miss budgets per side.
//!
//! The paper (Section 2, remark after Definition 2.1) notes that *"it is
//! possible to use different k's at different sides and the techniques
//! developed in this paper can be easily adapted to this case"*. This module
//! implements that adaptation: a **(k_L, k_R)-biplex** is an induced
//! subgraph `(L', R')` where every left vertex misses at most `k_L` vertices
//! of `R'` and every right vertex misses at most `k_R` vertices of `L'`.
//! With `k_L = k_R = k` the definitions coincide with the symmetric
//! k-biplex of the rest of this crate.
//!
//! Because the asymmetric structure is still hereditary, the reverse-search
//! framework applies verbatim. The enumeration below is a faithful
//! generalisation of `bTraversal` (Algorithm 1): an arbitrary initial
//! maximal solution, almost-satisfying graphs formed from *both* sides, the
//! refined local enumeration of Section 4 generalised to two budgets, and a
//! deterministic maximal extension. It is cross-validated against a
//! brute-force oracle in the unit tests and in `tests/asymmetric.rs`.

use bigraph::{BipartiteGraph, Side};
use std::collections::HashSet;

use crate::biplex::{left_misses, right_misses, Biplex, PartialBiplex};
use crate::sink::{Control, SolutionSink};

/// Per-side miss budgets `(k_L, k_R)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct KPair {
    /// Maximum number of right-side vertices a *left* vertex may miss.
    pub left: usize,
    /// Maximum number of left-side vertices a *right* vertex may miss.
    pub right: usize,
}

impl KPair {
    /// The symmetric budget `k_L = k_R = k` (equivalent to the plain
    /// k-biplex definition).
    pub fn symmetric(k: usize) -> Self {
        KPair { left: k, right: k }
    }

    /// Builds an asymmetric budget.
    pub fn new(left: usize, right: usize) -> Self {
        KPair { left, right }
    }

    /// Budgets as seen from the transposed graph (sides swapped).
    pub fn transpose(self) -> Self {
        KPair { left: self.right, right: self.left }
    }

    /// `true` when both budgets coincide.
    pub fn is_symmetric(&self) -> bool {
        self.left == self.right
    }
}

/// `true` iff `(left, right)` (both sorted) induces a (k_L, k_R)-biplex.
pub fn is_asym_biplex(g: &BipartiteGraph, left: &[u32], right: &[u32], kp: KPair) -> bool {
    left.iter().all(|&v| left_misses(g, v, right) <= kp.left)
        && right.iter().all(|&u| right_misses(g, u, left) <= kp.right)
}

/// `true` iff `(left, right)` is a *maximal* (k_L, k_R)-biplex of `g`: no
/// single vertex can be added while preserving both budgets. (As for the
/// symmetric case, single-vertex extensibility is equivalent to proper
/// superset existence because the structure is hereditary.)
pub fn is_maximal_asym_biplex(g: &BipartiteGraph, left: &[u32], right: &[u32], kp: KPair) -> bool {
    if !is_asym_biplex(g, left, right, kp) {
        return false;
    }
    let partial = PartialBiplex::from_sets(g, left, right);
    for v in 0..g.num_left() {
        if left.binary_search(&v).is_err() && can_add_left_asym(g, &partial, v, kp) {
            return false;
        }
    }
    for u in 0..g.num_right() {
        if right.binary_search(&u).is_err() && can_add_right_asym(g, &partial, u, kp) {
            return false;
        }
    }
    true
}

/// Checks whether left vertex `v ∉ L` can be added to `partial` while
/// keeping the asymmetric budgets: `v` must miss at most `k_L` vertices of
/// the current right side, and no right vertex missing `v` may already sit
/// at its budget `k_R`.
pub fn can_add_left_asym(g: &BipartiteGraph, partial: &PartialBiplex, v: u32, kp: KPair) -> bool {
    debug_assert!(!partial.contains_left(v));
    let nbrs = g.left_neighbors(v);
    let mut v_misses = 0usize;
    let mut ni = 0usize;
    for (ri, &u) in partial.right().iter().enumerate() {
        while ni < nbrs.len() && nbrs[ni] < u {
            ni += 1;
        }
        let adjacent = ni < nbrs.len() && nbrs[ni] == u;
        if !adjacent {
            v_misses += 1;
            if v_misses > kp.left {
                return false;
            }
            if partial.right_miss(ri) as usize + 1 > kp.right {
                return false;
            }
        }
    }
    true
}

/// Symmetric to [`can_add_left_asym`] for a right vertex `u ∉ R`.
pub fn can_add_right_asym(g: &BipartiteGraph, partial: &PartialBiplex, u: u32, kp: KPair) -> bool {
    debug_assert!(!partial.contains_right(u));
    let nbrs = g.right_neighbors(u);
    let mut u_misses = 0usize;
    let mut ni = 0usize;
    for (li, &v) in partial.left().iter().enumerate() {
        while ni < nbrs.len() && nbrs[ni] < v {
            ni += 1;
        }
        let adjacent = ni < nbrs.len() && nbrs[ni] == v;
        if !adjacent {
            u_misses += 1;
            if u_misses > kp.right {
                return false;
            }
            if partial.left_miss(li) as usize + 1 > kp.left {
                return false;
            }
        }
    }
    true
}

/// Extends `partial` (already a (k_L, k_R)-biplex) to a *maximal* one in
/// place, scanning all vertices in the preset order (left ids ascending,
/// then right ids ascending). Deterministic, as the reverse-search framework
/// requires of its extension step.
pub fn extend_to_maximal_asym(g: &BipartiteGraph, partial: &mut PartialBiplex, kp: KPair) {
    for v in 0..g.num_left() {
        if !partial.contains_left(v) && can_add_left_asym(g, partial, v, kp) {
            partial.add_left(g, v);
        }
    }
    for u in 0..g.num_right() {
        if !partial.contains_right(u) && can_add_right_asym(g, partial, u, kp) {
            partial.add_right(g, u);
        }
    }
    debug_assert!(is_asym_biplex(g, partial.left(), partial.right(), kp));
}

/// Computes an arbitrary initial maximal (k_L, k_R)-biplex by greedy
/// extension of the empty subgraph.
pub fn initial_asym(g: &BipartiteGraph, kp: KPair) -> Biplex {
    let mut partial = PartialBiplex::new();
    extend_to_maximal_asym(g, &mut partial, kp);
    partial.to_biplex()
}

/// Statistics of an asymmetric enumeration run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AsymStats {
    /// Distinct maximal (k_L, k_R)-biplexes discovered.
    pub solutions: u64,
    /// Almost-satisfying graphs formed (Step 1 invocations).
    pub almost_sat_graphs: u64,
    /// Local solutions produced by the local enumeration.
    pub local_solutions: u64,
    /// Links of the underlying solution graph (extension results, including
    /// duplicates).
    pub links: u64,
    /// `true` when the sink requested an early stop.
    pub stopped_early: bool,
}

/// The asymmetric enumeration engine behind the
/// [`crate::api::Enumerator`] facade. Enumerates all maximal
/// (k_L, k_R)-biplexes of `g` with the `bTraversal` reverse-search
/// framework (Algorithm 1) generalised to two budgets, delivering each
/// exactly once to `sink`.
pub(crate) fn run_asym<S: SolutionSink + ?Sized>(
    g: &BipartiteGraph,
    kp: KPair,
    sink: &mut S,
) -> AsymStats {
    let mut stats = AsymStats::default();
    let mut seen: HashSet<Vec<u32>> = HashSet::new();
    let initial = initial_asym(g, kp);
    seen.insert(initial.canonical_key());
    stats.solutions = 1;
    if sink.on_solution(&initial) == Control::Stop {
        stats.stopped_early = true;
        return stats;
    }

    let gt = g.transpose();
    let mut stack: Vec<Biplex> = vec![initial];

    while let Some(host) = stack.pop() {
        let host_partial = PartialBiplex::from_sets(g, &host.left, &host.right);
        // Candidates from both sides (0..|L| are left ids, the rest right).
        let num_left = g.num_left() as u64;
        let num_right = g.num_right() as u64;
        for pos in 0..(num_left + num_right) {
            if stats.stopped_early {
                return stats;
            }
            let (side, id) = if pos < num_left {
                (Side::Left, pos as u32)
            } else {
                (Side::Right, (pos - num_left) as u32)
            };
            match side {
                Side::Left => {
                    if host_partial.contains_left(id) {
                        continue;
                    }
                }
                Side::Right => {
                    if host_partial.contains_right(id) {
                        continue;
                    }
                }
            }
            stats.almost_sat_graphs += 1;

            // The local enumeration is written for a left-side candidate;
            // right-side candidates run on the transposed graph with the
            // budgets swapped and the result flipped back.
            let locals = match side {
                Side::Left => local_solutions_asym(g, kp, &host_partial, id),
                Side::Right => {
                    local_solutions_asym(&gt, kp.transpose(), &host_partial.flipped(), id)
                        .into_iter()
                        .map(Biplex::transpose)
                        .collect()
                }
            };

            for local in locals {
                stats.local_solutions += 1;
                let mut partial = PartialBiplex::from_sets(g, &local.left, &local.right);
                extend_to_maximal_asym(g, &mut partial, kp);
                let solution = partial.to_biplex();
                stats.links += 1;
                if seen.insert(solution.canonical_key()) {
                    stats.solutions += 1;
                    if sink.on_solution(&solution) == Control::Stop {
                        stats.stopped_early = true;
                        return stats;
                    }
                    stack.push(solution);
                }
            }
        }
    }
    stats
}

/// Enumerates the local solutions of the almost-satisfying graph
/// `(L ∪ {v}, R)` where `host = (L, R)` is a (k_L, k_R)-biplex and `v ∉ L`:
/// all (k_L, k_R)-biplexes of the almost-satisfying graph that contain `v`
/// and are maximal *within it*.
///
/// The structure mirrors the refined enumeration of Section 4 with the two
/// budgets substituted in the right places:
///
/// * `R_keep` = neighbours of `v` in `R` appear in every local solution
///   (Lemma 4.1 carries over unchanged);
/// * `R_enum` = non-neighbours of `v`; subsets `R''` of size at most `k_L`
///   are enumerated (`v` tolerates `k_L` misses);
/// * right vertices of `R''` whose miss count versus `L ∪ {v}` exceeds
///   `k_R` force the removal of left vertices; minimal removal sets of size
///   at most `|R''_over|` are enumerated from the vertices that miss at
///   least one over-budget right vertex (Section 4.3 with budget `k_R`).
fn local_solutions_asym(
    g: &BipartiteGraph,
    kp: KPair,
    host: &PartialBiplex,
    v: u32,
) -> Vec<Biplex> {
    debug_assert!(!host.contains_left(v));
    let left = host.left();
    let right = host.right();
    let v_nbrs = g.left_neighbors(v);

    // Partition R into R_keep (neighbours of v) and R_enum (non-neighbours).
    let mut r_keep: Vec<u32> = Vec::new();
    let mut r_enum: Vec<u32> = Vec::new();
    for &u in right {
        if v_nbrs.binary_search(&u).is_ok() {
            r_keep.push(u);
        } else {
            r_enum.push(u);
        }
    }

    let mut out: Vec<Biplex> = Vec::new();
    let mut seen: HashSet<Vec<u32>> = HashSet::new();

    // Enumerate R'' ⊆ R_enum with |R''| ≤ k_L.
    let max_pick = kp.left.min(r_enum.len());
    let mut subset: Vec<u32> = Vec::new();
    enumerate_subsets(&r_enum, max_pick, &mut subset, &mut |r2: &[u32]| {
        let mut r_prime: Vec<u32> = r_keep.clone();
        r_prime.extend_from_slice(r2);
        r_prime.sort_unstable();

        // Right vertices over budget w.r.t. L ∪ {v}: only members of R''
        // can be over budget (R_keep gained no new miss from v, and every
        // right vertex had at most k_R misses w.r.t. L).
        let mut l_with_v: Vec<u32> = left.to_vec();
        match l_with_v.binary_search(&v) {
            Ok(_) => {}
            Err(pos) => l_with_v.insert(pos, v),
        }
        let over: Vec<u32> =
            r2.iter().copied().filter(|&u| right_misses(g, u, &l_with_v) > kp.right).collect();

        if over.is_empty() {
            // L' = L works; check validity and maximality within the
            // almost-satisfying graph.
            push_if_local_solution(g, kp, host, v, left, &r_prime, &mut seen, &mut out);
            return;
        }

        // Left vertices eligible for removal: those missing at least one
        // over-budget right vertex (removing anything else cannot help).
        let l_remo: Vec<u32> = left
            .iter()
            .copied()
            .filter(|&w| {
                let nbrs = g.left_neighbors(w);
                over.iter().any(|&u| nbrs.binary_search(&u).is_err())
            })
            .collect();
        let budget = over.len().min(l_remo.len());
        let mut removal: Vec<u32> = Vec::new();
        let mut found_minimal: Vec<Vec<u32>> = Vec::new();
        enumerate_subsets(&l_remo, budget, &mut removal, &mut |rem: &[u32]| {
            // Skip supersets of an already-accepted removal set (Section 4.4).
            if found_minimal.iter().any(|m| m.iter().all(|x| rem.contains(x))) {
                return;
            }
            let l_prime: Vec<u32> = left.iter().copied().filter(|w| !rem.contains(w)).collect();
            if push_if_local_solution(g, kp, host, v, &l_prime, &r_prime, &mut seen, &mut out) {
                found_minimal.push(rem.to_vec());
            }
        });
    });
    out
}

/// Validates `(l_prime ∪ {v}, r_prime)` as a local solution of the
/// almost-satisfying graph `(host.left ∪ {v}, host.right)` and records it.
/// Returns `true` when the candidate was a valid (k_L, k_R)-biplex that is
/// maximal within the almost-satisfying graph.
#[allow(clippy::too_many_arguments)]
fn push_if_local_solution(
    g: &BipartiteGraph,
    kp: KPair,
    host: &PartialBiplex,
    v: u32,
    l_prime: &[u32],
    r_prime: &[u32],
    seen: &mut HashSet<Vec<u32>>,
    out: &mut Vec<Biplex>,
) -> bool {
    let mut left: Vec<u32> = l_prime.to_vec();
    match left.binary_search(&v) {
        Ok(_) => {}
        Err(pos) => left.insert(pos, v),
    }
    if !is_asym_biplex(g, &left, r_prime, kp) {
        return false;
    }
    // Maximality within the almost-satisfying graph: no vertex of
    // host ∪ {v} outside the candidate can be added.
    let partial = PartialBiplex::from_sets(g, &left, r_prime);
    for &w in host.left() {
        if !partial.contains_left(w) && can_add_left_asym(g, &partial, w, kp) {
            return false;
        }
    }
    for &u in host.right() {
        if !partial.contains_right(u) && can_add_right_asym(g, &partial, u, kp) {
            return false;
        }
    }
    let b = Biplex { left, right: r_prime.to_vec() };
    if seen.insert(b.canonical_key()) {
        out.push(b);
    }
    true
}

/// Enumerates every subset of `items` of size at most `max_size` (including
/// the empty set), invoking `f` on each. Subsets are produced in
/// non-decreasing size order within each prefix branch, which is what the
/// superset pruning of Section 4.4 relies on.
fn enumerate_subsets(
    items: &[u32],
    max_size: usize,
    current: &mut Vec<u32>,
    f: &mut impl FnMut(&[u32]),
) {
    fn rec(
        items: &[u32],
        start: usize,
        max_size: usize,
        current: &mut Vec<u32>,
        f: &mut impl FnMut(&[u32]),
    ) {
        f(current);
        if current.len() == max_size {
            return;
        }
        for i in start..items.len() {
            current.push(items[i]);
            rec(items, i + 1, max_size, current, f);
            current.pop();
        }
    }
    // Re-implemented iteratively over sizes to call `f` on each subset once.
    // (The recursive helper above already visits each subset exactly once;
    // the top-level call with an empty prefix covers sizes 0..=max_size.)
    rec(items, 0, max_size, current, f);
}

/// Brute-force oracle: enumerates every maximal (k_L, k_R)-biplex by testing
/// all `2^(|L|+|R|)` vertex subsets. Exponential — for tests on tiny graphs
/// only.
pub fn brute_force_asym_mbps(g: &BipartiteGraph, kp: KPair) -> Vec<Biplex> {
    let nl = g.num_left() as usize;
    let nr = g.num_right() as usize;
    assert!(nl + nr <= 24, "brute force oracle limited to tiny graphs");
    let mut biplexes: Vec<Biplex> = Vec::new();
    for mask in 0u64..(1u64 << (nl + nr)) {
        let left: Vec<u32> = (0..nl as u32).filter(|&v| mask & (1 << v) != 0).collect();
        let right: Vec<u32> =
            (0..nr as u32).filter(|&u| mask & (1 << (nl as u32 + u)) != 0).collect();
        if is_asym_biplex(g, &left, &right, kp) {
            biplexes.push(Biplex { left, right });
        }
    }
    let mut maximal: Vec<Biplex> = Vec::new();
    'outer: for (i, b) in biplexes.iter().enumerate() {
        for (j, other) in biplexes.iter().enumerate() {
            if i != j && b.is_subgraph_of(other) && b != other {
                continue 'outer;
            }
        }
        maximal.push(b.clone());
    }
    maximal.sort();
    maximal.dedup();
    maximal
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Non-deprecated stand-in for `collect_asym_mbps`.
    fn collect_asym(g: &BipartiteGraph, kp: KPair) -> Vec<Biplex> {
        let mut sink = crate::sink::CollectSink::new();
        run_asym(g, kp, &mut sink);
        sink.into_sorted()
    }

    fn random_graph(nl: u32, nr: u32, p: f64, seed: u64) -> BipartiteGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut edges = Vec::new();
        for v in 0..nl {
            for u in 0..nr {
                if rng.gen_bool(p) {
                    edges.push((v, u));
                }
            }
        }
        BipartiteGraph::from_edges(nl, nr, &edges).unwrap()
    }

    #[test]
    fn symmetric_budgets_match_the_symmetric_enumerator() {
        for seed in 0..10u64 {
            let g = random_graph(5, 5, 0.5, seed);
            for k in 0..=2usize {
                let sym = crate::traversal::tests_support::enumerate_all(&g, k);
                let asym = collect_asym(&g, KPair::symmetric(k));
                assert_eq!(sym, asym, "seed {seed} k {k}");
            }
        }
    }

    #[test]
    fn asymmetric_budgets_match_brute_force() {
        for seed in 0..12u64 {
            let g = random_graph(4, 5, 0.5, seed);
            for (kl, kr) in [(0, 1), (1, 0), (1, 2), (2, 1), (0, 2)] {
                let kp = KPair::new(kl, kr);
                let expected = brute_force_asym_mbps(&g, kp);
                let got = collect_asym(&g, kp);
                assert_eq!(got, expected, "seed {seed} k=({kl},{kr})");
            }
        }
    }

    #[test]
    fn every_reported_solution_is_a_maximal_asym_biplex() {
        let g = random_graph(6, 6, 0.4, 42);
        let kp = KPair::new(1, 2);
        for b in collect_asym(&g, kp) {
            assert!(is_maximal_asym_biplex(&g, &b.left, &b.right, kp));
        }
    }

    #[test]
    fn transposed_graph_swaps_budgets() {
        let g = random_graph(5, 4, 0.5, 7);
        let gt = g.transpose();
        let kp = KPair::new(1, 2);
        let direct = collect_asym(&g, kp);
        let mut via_transpose: Vec<Biplex> =
            collect_asym(&gt, kp.transpose()).into_iter().map(Biplex::transpose).collect();
        via_transpose.sort();
        assert_eq!(direct, via_transpose);
    }

    #[test]
    fn kpair_helpers() {
        let kp = KPair::new(1, 3);
        assert!(!kp.is_symmetric());
        assert_eq!(kp.transpose(), KPair::new(3, 1));
        assert!(KPair::symmetric(2).is_symmetric());
    }

    #[test]
    fn zero_budgets_enumerate_maximal_bicliques() {
        // (0,0)-biplexes are exactly bicliques; every maximal one must be a
        // maximal biclique (cross-check structure only, not the full set).
        let g = random_graph(5, 5, 0.6, 3);
        let kp = KPair::symmetric(0);
        for b in collect_asym(&g, kp) {
            for &v in &b.left {
                for &u in &b.right {
                    assert!(g.has_edge(v, u));
                }
            }
        }
    }

    #[test]
    fn early_stop_via_sink() {
        let g = random_graph(6, 6, 0.5, 9);
        let kp = KPair::new(1, 2);
        let all = collect_asym(&g, kp);
        assert!(all.len() > 2);
        let mut sink = crate::sink::FirstN::new(2);
        let stats = run_asym(&g, kp, &mut sink);
        assert_eq!(sink.len(), 2);
        assert!(stats.stopped_early);
    }
}
