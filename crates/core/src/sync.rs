//! Synchronisation facade for the lock-free core.
//!
//! Everything in [`crate::parallel`] reaches its atomics, locks, condvars
//! and threads through this module instead of `std` directly (the
//! `cargo xtask lint` pass enforces it for `parallel/`). The facade has two
//! backends selected at compile time by the `kbiplex_model` cfg:
//!
//! * **Production** (default): direct re-exports of the `std` types. No
//!   wrapper types, no indirection — binaries are byte-for-byte identical
//!   to importing `std::sync` directly, and the `modelsim` crate is not in
//!   the dependency graph at all.
//! * **Model** (`--cfg kbiplex_model` + `--features model`): the vendored
//!   `modelsim` deterministic concurrency model checker. Every operation
//!   becomes a scheduling point, atomics run under a weak-memory visibility
//!   simulation, and `modelsim::check` explores interleavings. Used by
//!   `tests/model_check.rs` and the CI `analysis` job.
//!
//! # Ordering mutations
//!
//! The `order!` macro (crate-internal) names a memory ordering *site*:
//! `order!(SeqCst, "seen-drain-stripe")`. In production it expands to the
//! literal ordering. Under the model backend it consults
//! `modelsim::mutation_active` so a model test can *downgrade* one site to
//! `Relaxed` at runtime and prove the checker catches the resulting bug —
//! mutation coverage for memory orderings, without per-mutant rebuilds.
//! Sites are documented in DESIGN.md § "Memory-ordering arguments".

// The model backend is only compiled when explicitly requested; forgetting
// the feature while setting the cfg would otherwise produce confusing
// "unresolved import" errors deep inside the facade.
#[cfg(all(kbiplex_model, not(feature = "model")))]
compile_error!(
    "--cfg kbiplex_model requires the `model` feature of kbiplex \
     (cargo test -p kbiplex --features model with RUSTFLAGS=\"--cfg kbiplex_model\")"
);

#[cfg(not(kbiplex_model))]
pub use std::sync::{Condvar, Mutex, MutexGuard, OnceLock};

#[cfg(kbiplex_model)]
pub use modelsim::{Condvar, Mutex, MutexGuard, OnceLock};

/// Atomic types and memory orderings (std or modelsim, by backend).
pub mod atomic {
    #[cfg(not(kbiplex_model))]
    pub use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

    #[cfg(kbiplex_model)]
    pub use modelsim::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
}

/// Thread spawning and scheduling hints (std or modelsim, by backend).
pub mod thread {
    #[cfg(not(kbiplex_model))]
    pub use std::thread::{scope, sleep, yield_now, Scope, ScopedJoinHandle};

    #[cfg(kbiplex_model)]
    pub use modelsim::thread::{scope, sleep, yield_now, Scope, ScopedJoinHandle};

    /// Model-thread index of the calling thread; used for counter striping
    /// so stripe choice is deterministic inside model executions.
    #[cfg(kbiplex_model)]
    pub use modelsim::thread::current_index;
}

/// Spin-wait hint (std or modelsim, by backend).
pub mod hint {
    #[cfg(not(kbiplex_model))]
    pub use std::hint::spin_loop;

    #[cfg(kbiplex_model)]
    pub use modelsim::hint::spin_loop;
}

/// Names a memory-ordering site: `order!(SeqCst, "site-tag")`.
///
/// Expands to `Ordering::SeqCst` in production. Under the model backend the
/// site can be downgraded to `Relaxed` by an active modelsim mutation —
/// which model tests use to prove the checker would catch an accidental
/// weakening of the real code.
#[cfg(not(kbiplex_model))]
macro_rules! order {
    ($ord:ident, $site:literal) => {
        $crate::sync::atomic::Ordering::$ord
    };
}

/// Model-backend [`order!`]: consults the modelsim mutation registry.
#[cfg(kbiplex_model)]
macro_rules! order {
    ($ord:ident, $site:literal) => {
        if ::modelsim::mutation_active($site) {
            $crate::sync::atomic::Ordering::Relaxed
        } else {
            $crate::sync::atomic::Ordering::$ord
        }
    };
}

pub(crate) use order;

/// Locks a mutex, recovering the guard from a poisoned lock. The parallel
/// engines hold locks only around short queue/buffer operations that leave
/// the data consistent at every await point, so a panic elsewhere never
/// leaves them half-updated and continuing with the inner value is sound —
/// and the engines must not *compound* a worker panic into a second one
/// while the scope unwinds.
pub(crate) fn plock<T: ?Sized>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}
