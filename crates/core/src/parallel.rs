//! Thread-parallel maximal k-biplex enumeration.
//!
//! The paper's conclusion lists *"efficient parallel and distributed
//! implementations"* as future work; this module provides a shared-memory
//! parallel version of `iTraversal`. The solution graph exploration is an
//! irregular graph traversal, which parallelises naturally: every discovered
//! solution becomes a work item, and expanding a solution (one `iThreeStep`
//! invocation — forming almost-satisfying graphs, enumerating local
//! solutions, extending them and de-duplicating) is independent of every
//! other expansion apart from the shared *seen* set.
//!
//! Design notes:
//!
//! * **Work sharing** — a global LIFO work queue protected by a mutex plus a
//!   condition variable; workers go to sleep when the queue is empty and the
//!   run terminates when the queue is empty *and* no worker is mid-expansion
//!   (tracked by an in-flight counter under the same lock).
//! * **De-duplication** — the seen-set is sharded into `64` independently
//!   locked hash sets keyed by a cheap FNV-1a hash of the canonical key, so
//!   concurrent inserts rarely contend.
//! * **Prunings** — the left-anchored and right-shrinking traversals apply
//!   unchanged (their correctness argument never references the order in
//!   which solutions are expanded). The *exclusion strategy* is inherently
//!   order-dependent (the set ℰ(H) grows as sibling branches complete), so
//!   the parallel engine runs the `iTraversal-ES` configuration; the
//!   sequential engine remains the better choice on a single core.
//! * **Determinism** — the *set* of solutions returned is deterministic
//!   (identical to the sequential enumeration); the discovery order is not.
//!   [`par_collect_mbps`] therefore returns the canonically sorted set.
//!
//! Only the full enumeration is parallelised. Early-stopping "first N" runs
//! are a latency problem, not a throughput problem, and stay sequential.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

use bigraph::BipartiteGraph;

use crate::biplex::{Biplex, PartialBiplex};
use crate::enum_almost_sat::{enum_almost_sat, EnumKind};
use crate::extend::{extend_to_maximal, ExtendMode};
use crate::initial::initial_left_anchored;

/// Number of independently locked shards of the seen-set.
const SHARDS: usize = 64;

/// Configuration of a parallel enumeration run.
#[derive(Clone, Debug)]
pub struct ParallelConfig {
    /// The `k` of the k-biplex definition.
    pub k: usize,
    /// Worker thread count. `0` means "use the available parallelism
    /// reported by the operating system".
    pub threads: usize,
    /// Which `EnumAlmostSat` implementation each worker uses.
    pub enum_kind: EnumKind,
    /// Minimum left-side size of reported MBPs (`0` disables).
    pub theta_left: usize,
    /// Minimum right-side size of reported MBPs (`0` disables).
    pub theta_right: usize,
}

impl ParallelConfig {
    /// Default configuration: `L2.0+R2.0` local enumeration, OS-chosen
    /// thread count, no size thresholds.
    pub fn new(k: usize) -> Self {
        ParallelConfig { k, threads: 0, enum_kind: EnumKind::L2R2, theta_left: 0, theta_right: 0 }
    }

    /// Sets the number of worker threads (`0` = auto).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Selects the `EnumAlmostSat` implementation.
    pub fn with_enum_kind(mut self, kind: EnumKind) -> Self {
        self.enum_kind = kind;
        self
    }

    /// Sets the large-MBP size thresholds (`0` disables a side).
    pub fn with_thresholds(mut self, theta_left: usize, theta_right: usize) -> Self {
        self.theta_left = theta_left;
        self.theta_right = theta_right;
        self
    }

    fn resolved_threads(&self) -> usize {
        if self.threads > 0 {
            return self.threads;
        }
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    }
}

/// Aggregate statistics of a parallel run.
#[derive(Debug, Default)]
pub struct ParallelStats {
    /// Distinct maximal k-biplexes discovered.
    pub solutions: u64,
    /// Solutions passing the size thresholds (what the caller received).
    pub reported: u64,
    /// Almost-satisfying graphs formed across all workers.
    pub almost_sat_graphs: u64,
    /// Local solutions produced across all workers.
    pub local_solutions: u64,
    /// Solution-graph links followed (including duplicates).
    pub links: u64,
    /// Worker threads actually used.
    pub threads: usize,
}

/// Shared state of one parallel run.
struct Shared {
    /// Pending solutions awaiting expansion + count of in-flight expansions.
    queue: Mutex<(Vec<Biplex>, usize)>,
    /// Wakes idle workers when work arrives or the run finishes.
    wake: Condvar,
    /// Sharded seen-set keyed on canonical keys.
    seen: Vec<Mutex<HashSet<Vec<u32>>>>,
    /// Solutions passing the size filter, collected across workers.
    results: Mutex<Vec<Biplex>>,
    solutions: AtomicU64,
    reported: AtomicU64,
    almost_sat_graphs: AtomicU64,
    local_solutions: AtomicU64,
    links: AtomicU64,
}

impl Shared {
    fn new() -> Self {
        Shared {
            queue: Mutex::new((Vec::new(), 0)),
            wake: Condvar::new(),
            seen: (0..SHARDS).map(|_| Mutex::new(HashSet::new())).collect(),
            results: Mutex::new(Vec::new()),
            solutions: AtomicU64::new(0),
            reported: AtomicU64::new(0),
            almost_sat_graphs: AtomicU64::new(0),
            local_solutions: AtomicU64::new(0),
            links: AtomicU64::new(0),
        }
    }

    /// Inserts `solution` into the sharded seen-set; `true` if it was new.
    fn insert(&self, solution: &Biplex) -> bool {
        let key = solution.canonical_key();
        let shard = fnv1a(&key) as usize % SHARDS;
        self.seen[shard].lock().expect("seen shard poisoned").insert(key)
    }

    /// Pushes a freshly discovered solution onto the work queue.
    fn push_work(&self, solution: Biplex) {
        let mut q = self.queue.lock().expect("queue poisoned");
        q.0.push(solution);
        drop(q);
        self.wake.notify_one();
    }

    /// Pops a work item, blocking until one is available or the run is
    /// complete (queue empty and nothing in flight). Maintains the in-flight
    /// counter: the caller *must* call [`Shared::finish_work`] after
    /// processing a returned item.
    fn pop_work(&self) -> Option<Biplex> {
        let mut q = self.queue.lock().expect("queue poisoned");
        loop {
            if let Some(item) = q.0.pop() {
                q.1 += 1;
                return Some(item);
            }
            if q.1 == 0 {
                // Nothing queued and nothing in flight: the traversal is
                // complete. Wake everyone so they observe the same state.
                self.wake.notify_all();
                return None;
            }
            q = self.wake.wait(q).expect("queue poisoned");
        }
    }

    /// Marks the current work item as fully expanded.
    fn finish_work(&self) {
        let mut q = self.queue.lock().expect("queue poisoned");
        q.1 -= 1;
        if q.0.is_empty() && q.1 == 0 {
            drop(q);
            self.wake.notify_all();
        }
    }
}

/// FNV-1a over a slice of `u32` keys (shard selector — speed over quality).
fn fnv1a(key: &[u32]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &x in key {
        for b in x.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Enumerates all maximal k-biplexes of `g` in parallel and returns the
/// solutions passing the size thresholds together with the run statistics.
/// The returned vector is in nondeterministic (discovery) order; use
/// [`par_collect_mbps`] for the canonically sorted set.
pub fn par_enumerate_mbps(
    g: &BipartiteGraph,
    config: &ParallelConfig,
) -> (Vec<Biplex>, ParallelStats) {
    let threads = config.resolved_threads().max(1);
    let shared = Shared::new();

    let initial = initial_left_anchored(g, config.k);
    shared.insert(&initial);
    shared.solutions.fetch_add(1, Ordering::Relaxed);
    if initial.left.len() >= config.theta_left && initial.right.len() >= config.theta_right {
        shared.reported.fetch_add(1, Ordering::Relaxed);
        shared.results.lock().expect("results poisoned").push(initial.clone());
    }
    shared.push_work(initial);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| worker(g, config, &shared));
        }
    });

    let results = shared.results.into_inner().expect("results poisoned");
    let stats = ParallelStats {
        solutions: shared.solutions.load(Ordering::Relaxed),
        reported: shared.reported.load(Ordering::Relaxed),
        almost_sat_graphs: shared.almost_sat_graphs.load(Ordering::Relaxed),
        local_solutions: shared.local_solutions.load(Ordering::Relaxed),
        links: shared.links.load(Ordering::Relaxed),
        threads,
    };
    (results, stats)
}

/// Convenience wrapper: parallel enumeration returning the canonically
/// sorted solution set.
pub fn par_collect_mbps(g: &BipartiteGraph, k: usize, threads: usize) -> Vec<Biplex> {
    let (mut out, _) = par_enumerate_mbps(g, &ParallelConfig::new(k).with_threads(threads));
    out.sort();
    out
}

/// Convenience wrapper: parallel count of all maximal k-biplexes.
pub fn par_count_mbps(g: &BipartiteGraph, k: usize, threads: usize) -> u64 {
    let (_, stats) = par_enumerate_mbps(g, &ParallelConfig::new(k).with_threads(threads));
    stats.solutions
}

/// One worker: repeatedly pops a solution and expands it (the parallel
/// `iThreeStep`).
fn worker(g: &BipartiteGraph, config: &ParallelConfig, shared: &Shared) {
    while let Some(host) = shared.pop_work() {
        expand(g, config, shared, &host);
        shared.finish_work();
    }
}

/// Expands one solution: left-anchored candidate loop, local enumeration,
/// right-shrinking filter, left-only extension, de-duplication.
fn expand(g: &BipartiteGraph, config: &ParallelConfig, shared: &Shared, host: &Biplex) {
    let k = config.k;
    let host_partial = PartialBiplex::from_sets(g, &host.left, &host.right);

    for v in 0..g.num_left() {
        if host_partial.contains_left(v) {
            continue;
        }
        // Almost-satisfying-graph pruning for large-MBP runs (Section 5):
        // every solution reached through v keeps v and, under
        // right-shrinking, at most deg(v, R_H) + k right vertices.
        if config.theta_right > 0 {
            let deg_in_r =
                g.left_neighbors(v).iter().filter(|&&u| host_partial.contains_right(u)).count();
            if deg_in_r + k < config.theta_right {
                continue;
            }
        }
        shared.almost_sat_graphs.fetch_add(1, Ordering::Relaxed);

        enum_almost_sat(g, k, config.enum_kind, &host_partial, v, |local: Biplex| -> bool {
            shared.local_solutions.fetch_add(1, Ordering::Relaxed);

            // Local-solution pruning (Section 5): under right-shrinking the
            // final right side equals the local one.
            if config.theta_right > 0 && local.right.len() < config.theta_right {
                return true;
            }

            let mut partial = PartialBiplex::from_sets(g, &local.left, &local.right);

            // Right-shrinking traversal (Algorithm 2 line 7): discard the
            // local solution if any right vertex of G outside it can be
            // added while preserving the k-biplex property.
            if exists_addable_right(g, &partial, k) {
                return true;
            }

            extend_to_maximal(g, &mut partial, k, ExtendMode::LeftOnly);
            let solution = partial.to_biplex();
            shared.links.fetch_add(1, Ordering::Relaxed);

            if shared.insert(&solution) {
                shared.solutions.fetch_add(1, Ordering::Relaxed);
                if solution.left.len() >= config.theta_left
                    && solution.right.len() >= config.theta_right
                {
                    shared.reported.fetch_add(1, Ordering::Relaxed);
                    shared.results.lock().expect("results poisoned").push(solution.clone());
                }
                // Solution pruning (Section 5): descendants cannot regain
                // right-side size under right-shrinking.
                if !(config.theta_right > 0 && solution.right.len() < config.theta_right) {
                    shared.push_work(solution);
                }
            }
            true
        });
    }
}

/// The literal right-shrinking test of Algorithm 2 line 7: does a right
/// vertex of `G` outside the local solution exist whose addition preserves
/// the k-biplex property?
fn exists_addable_right(g: &BipartiteGraph, partial: &PartialBiplex, k: usize) -> bool {
    for u in 0..g.num_right() {
        if !partial.contains_right(u) && partial.can_add_right(g, u, k) {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::enumerate_all;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_graph(nl: u32, nr: u32, p: f64, seed: u64) -> BipartiteGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut edges = Vec::new();
        for v in 0..nl {
            for u in 0..nr {
                if rng.gen_bool(p) {
                    edges.push((v, u));
                }
            }
        }
        BipartiteGraph::from_edges(nl, nr, &edges).unwrap()
    }

    #[test]
    fn parallel_matches_sequential_on_random_graphs() {
        for seed in 0..10u64 {
            let g = random_graph(6, 6, 0.5, seed);
            for k in 1..=2usize {
                let expected = enumerate_all(&g, k);
                for threads in [1, 2, 4] {
                    let got = par_collect_mbps(&g, k, threads);
                    assert_eq!(got, expected, "seed {seed} k {k} threads {threads}");
                }
            }
        }
    }

    #[test]
    fn parallel_stats_are_consistent() {
        let g = random_graph(7, 7, 0.5, 3);
        let (results, stats) = par_enumerate_mbps(&g, &ParallelConfig::new(1).with_threads(3));
        assert_eq!(stats.solutions, results.len() as u64);
        assert_eq!(stats.reported, stats.solutions);
        assert!(stats.links >= stats.solutions.saturating_sub(1));
        assert_eq!(stats.threads, 3);
    }

    #[test]
    fn parallel_size_thresholds_match_post_filtering() {
        for seed in 0..6u64 {
            let g = random_graph(6, 6, 0.6, seed);
            let k = 1;
            let all = enumerate_all(&g, k);
            for (tl, tr) in [(2, 2), (3, 2), (2, 3)] {
                let mut expected: Vec<Biplex> = all
                    .iter()
                    .filter(|b| b.left.len() >= tl && b.right.len() >= tr)
                    .cloned()
                    .collect();
                expected.sort();
                let cfg = ParallelConfig::new(k).with_threads(4).with_thresholds(tl, tr);
                let (mut got, _) = par_enumerate_mbps(&g, &cfg);
                got.sort();
                assert_eq!(got, expected, "seed {seed} θ=({tl},{tr})");
            }
        }
    }

    #[test]
    fn every_enum_kind_matches_in_parallel() {
        let g = random_graph(6, 6, 0.5, 11);
        let k = 1;
        let expected = enumerate_all(&g, k);
        for kind in EnumKind::ALL {
            let cfg = ParallelConfig::new(k).with_threads(2).with_enum_kind(kind);
            let (mut got, _) = par_enumerate_mbps(&g, &cfg);
            got.sort();
            assert_eq!(got, expected, "kind {kind:?}");
        }
    }

    #[test]
    fn degenerate_graphs() {
        let g = BipartiteGraph::from_edges(0, 0, &[]).unwrap();
        let got = par_collect_mbps(&g, 1, 2);
        assert_eq!(got.len(), 1);
        assert!(got[0].is_empty());

        let g = BipartiteGraph::from_edges(3, 3, &[]).unwrap();
        for k in 0..=2usize {
            assert_eq!(par_collect_mbps(&g, k, 2), enumerate_all(&g, k), "k {k}");
        }
    }

    #[test]
    fn auto_thread_count_resolves() {
        let cfg = ParallelConfig::new(1);
        assert!(cfg.resolved_threads() >= 1);
    }
}
