//! The unified enumeration facade: one builder-style entry point for every
//! algorithm variant and every execution engine.
//!
//! The crate once grew one free function per algorithm × output
//! combination (`enumerate_mbps`, `enumerate_large_mbps`,
//! `par_collect_large_mbps`, …), each with its own config plumbing.
//! [`Enumerator`] replaced them all (the legacy wrappers are gone) with a
//! single customisable surface:
//!
//! ```
//! use bigraph::BipartiteGraph;
//! use kbiplex::api::{Algorithm, Engine, Enumerator, StopReason};
//! use kbiplex::CollectSink;
//!
//! let g = BipartiteGraph::from_edges(3, 3, &[(0, 0), (0, 1), (1, 0), (1, 1), (1, 2), (2, 2)])
//!     .unwrap();
//!
//! // Enumerate all maximal 1-biplexes with the paper's iTraversal.
//! let mut sink = CollectSink::new();
//! let report = Enumerator::new(&g).k(1).run(&mut sink).unwrap();
//! assert_eq!(report.stop, StopReason::Exhausted);
//! assert_eq!(report.solutions as usize, sink.solutions.len());
//!
//! // The same enumeration on the work-stealing engine, stopping after two
//! // solutions — cooperative cancellation reaches into the workers.
//! let first_two: Vec<_> =
//!     Enumerator::new(&g).k(1).engine(Engine::WorkSteal).limit(2).stream().unwrap().collect();
//! assert_eq!(first_two.len(), 2);
//!
//! // Large-MBP pipeline ((θ−k)-core reduction + size-pruned search).
//! let mut sink = CollectSink::new();
//! let report = Enumerator::new(&g)
//!     .k(1)
//!     .algorithm(Algorithm::Large)
//!     .thresholds(2, 2)
//!     .run(&mut sink)
//!     .unwrap();
//! assert!(report.reduced.is_some());
//! ```
//!
//! ## Lifecycle
//!
//! 1. **Configure**: chain builder methods ([`Enumerator::k`],
//!    [`Enumerator::algorithm`], [`Enumerator::engine`],
//!    [`Enumerator::order`], [`Enumerator::limit`],
//!    [`Enumerator::time_budget`], …). Every knob has a sensible default;
//!    contradictory combinations are rejected at run time with an
//!    [`ApiError`], never silently ignored.
//! 2. **Execute**: either push-based — [`Enumerator::run`] drives the
//!    engine to completion, delivering solutions to a caller-provided
//!    [`SolutionSink`] and returning a [`RunReport`] — or pull-based —
//!    [`Enumerator::stream`] spawns the run on a background thread and
//!    returns a [`SolutionStream`] iterator backed by a bounded channel.
//! 3. **Stop**: the run ends when the search is exhausted, the
//!    [`Enumerator::limit`] is reached, the [`Enumerator::time_budget`]
//!    expires, the sink returns [`Control::Stop`], or the stream is dropped.
//!    The [`RunReport::stop`] reason records which. All stopping rules are
//!    cooperative: on the parallel engines a shared cancellation flag is
//!    polled at steal/expand boundaries, so the run stops within one
//!    expansion instead of running to completion.

use std::fmt;
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bigraph::intersect::Kernel;
use bigraph::order::VertexOrder;
use bigraph::BipartiteGraph;

use crate::asym::{run_asym, AsymStats, KPair};
use crate::biplex::Biplex;
use crate::bruteforce::brute_force_mbps;
use crate::enum_almost_sat::EnumKind;
use crate::large::{par_run_large, run_large, LargeMbpParams};
use crate::parallel::{par_run, ParRuntime, ParallelConfig, ParallelEngine, ParallelStats};
use crate::sink::{Control, SolutionSink};
use crate::stats::TraversalStats;
use crate::sync::atomic::{AtomicBool, Ordering};
use crate::sync::{plock, Mutex};
use crate::traversal::{traverse, Anchor, EmitMode, TraversalConfig};

/// Which enumeration algorithm the facade runs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Algorithm {
    /// The paper's full `iTraversal` (left-anchored + right-shrinking +
    /// exclusion strategy). On a parallel engine the order-dependent
    /// exclusion strategy is disabled (`iTraversal-ES`); the reported
    /// solution *set* is identical.
    #[default]
    ITraversal,
    /// `iTraversal-ES`: `iTraversal` without the exclusion strategy.
    ITraversalNoExclusion,
    /// `iTraversal-ES-RS`: left-anchored traversal only.
    LeftAnchoredOnly,
    /// The conventional `bTraversal` reverse-search framework (Algorithm 1).
    BTraversal,
    /// The large-MBP pipeline of Section 5: (θ−k)-core reduction (see
    /// [`Enumerator::core_reduction`]) plus the size-pruned `iTraversal`
    /// under the [`Enumerator::thresholds`].
    Large,
    /// Asymmetric per-side budgets (set them with [`Enumerator::k_pair`]).
    Asym,
    /// The exponential brute-force oracle (tiny graphs only; cross-checks).
    BruteForce,
}

impl Algorithm {
    /// `true` for the `iTraversal`-family algorithms the parallel engines
    /// can execute.
    fn parallelisable(self) -> bool {
        matches!(self, Algorithm::ITraversal | Algorithm::ITraversalNoExclusion | Algorithm::Large)
    }
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Algorithm::ITraversal => "itraversal",
            Algorithm::ITraversalNoExclusion => "itraversal-es",
            Algorithm::LeftAnchoredOnly => "itraversal-es-rs",
            Algorithm::BTraversal => "btraversal",
            Algorithm::Large => "large",
            Algorithm::Asym => "asym",
            Algorithm::BruteForce => "brute-force",
        };
        f.write_str(name)
    }
}

impl std::str::FromStr for Algorithm {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "itraversal" => Ok(Algorithm::ITraversal),
            "itraversal-es" => Ok(Algorithm::ITraversalNoExclusion),
            "itraversal-es-rs" => Ok(Algorithm::LeftAnchoredOnly),
            "btraversal" => Ok(Algorithm::BTraversal),
            "large" => Ok(Algorithm::Large),
            "asym" => Ok(Algorithm::Asym),
            "brute-force" | "oracle" => Ok(Algorithm::BruteForce),
            other => Err(format!(
                "unknown algorithm {other:?} (expected itraversal, itraversal-es, \
                 itraversal-es-rs, btraversal, large, asym or brute-force)"
            )),
        }
    }
}

/// Which execution engine drives the run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Engine {
    /// Single-threaded, in the calling thread (default).
    #[default]
    Sequential,
    /// The mutex+condvar global-queue scheduler (benchmark baseline).
    GlobalQueue,
    /// The work-stealing scheduler (per-worker deques, lock-free seen-set).
    WorkSteal,
}

impl fmt::Display for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Engine::Sequential => "sequential",
            Engine::GlobalQueue => "global",
            Engine::WorkSteal => "steal",
        };
        f.write_str(name)
    }
}

impl std::str::FromStr for Engine {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "sequential" | "seq" => Ok(Engine::Sequential),
            "steal" | "work-steal" => Ok(Engine::WorkSteal),
            "global" | "global-queue" => Ok(Engine::GlobalQueue),
            other => {
                Err(format!("unknown engine {other:?} (expected sequential, steal or global)"))
            }
        }
    }
}

/// Why an enumeration run ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// The search space was exhausted: every solution was reported.
    Exhausted,
    /// The [`Enumerator::limit`] was delivered.
    LimitReached,
    /// The [`Enumerator::time_budget`] expired.
    TimeBudget,
    /// The caller's sink returned [`Control::Stop`].
    SinkStopped,
    /// The run was cancelled externally (e.g. the [`SolutionStream`] was
    /// dropped or [`SolutionStream::cancel`] was called).
    Cancelled,
}

impl fmt::Display for StopReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            StopReason::Exhausted => "exhausted",
            StopReason::LimitReached => "limit-reached",
            StopReason::TimeBudget => "time-budget",
            StopReason::SinkStopped => "sink-stopped",
            StopReason::Cancelled => "cancelled",
        };
        f.write_str(name)
    }
}

impl std::str::FromStr for StopReason {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "exhausted" => Ok(StopReason::Exhausted),
            "limit-reached" => Ok(StopReason::LimitReached),
            "time-budget" => Ok(StopReason::TimeBudget),
            "sink-stopped" => Ok(StopReason::SinkStopped),
            "cancelled" => Ok(StopReason::Cancelled),
            other => Err(format!(
                "unknown stop reason {other:?} (expected exhausted, limit-reached, \
                 time-budget, sink-stopped or cancelled)"
            )),
        }
    }
}

/// Engine-specific counters of one run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineStats {
    /// A sequential traversal run (also used by [`Algorithm::Large`]).
    Sequential(TraversalStats),
    /// A parallel run (work-stealing or global-queue engine).
    Parallel(ParallelStats),
    /// An asymmetric enumeration run.
    Asym(AsymStats),
    /// The brute-force oracle (no counters beyond the report itself).
    Oracle,
}

/// Size of the (θ−k)-core-reduced graph an [`Algorithm::Large`] run actually
/// enumerated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReducedGraph {
    /// Left vertices surviving the reduction.
    pub left: u32,
    /// Right vertices surviving the reduction.
    pub right: u32,
    /// Edges surviving the reduction.
    pub edges: u64,
}

/// Outcome of one [`Enumerator::run`] (or a finished [`SolutionStream`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunReport {
    /// Solutions delivered to the sink (after thresholds and limit).
    pub solutions: u64,
    /// Why the run ended.
    pub stop: StopReason,
    /// Wall-clock time of the run.
    pub elapsed: Duration,
    /// Engine-specific counters.
    pub stats: EngineStats,
    /// Present on [`Algorithm::Large`] runs: the reduced-graph size.
    pub reduced: Option<ReducedGraph>,
}

/// A rejected [`Enumerator`] configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ApiError {
    /// The algorithm × engine (or algorithm × knob) combination does not
    /// exist in this build — e.g. [`Algorithm::Asym`] on a parallel engine.
    Unsupported(String),
    /// A knob value is invalid on its own terms.
    InvalidConfig(String),
    /// The operating system refused a resource the run needs (today: the
    /// background thread of [`Enumerator::stream`]).
    Resource(String),
}

impl ApiError {
    /// Stable machine-readable code of the variant — what remote clients
    /// match on instead of parsing the human-readable message. Pinned by
    /// `tests/api_surface.rs`; never renamed, only extended.
    pub fn code(&self) -> &'static str {
        match self {
            ApiError::Unsupported(_) => "unsupported",
            ApiError::InvalidConfig(_) => "invalid-config",
            ApiError::Resource(_) => "resource",
        }
    }

    /// The human-readable detail message of any variant.
    pub fn message(&self) -> &str {
        match self {
            ApiError::Unsupported(msg) | ApiError::InvalidConfig(msg) | ApiError::Resource(msg) => {
                msg
            }
        }
    }

    /// Rebuilds an `ApiError` from a stable [`ApiError::code`] and message —
    /// the decode half used by wire clients. Unknown codes are rejected so a
    /// newer server's variants never masquerade as an old one.
    pub fn from_code(code: &str, message: &str) -> Option<ApiError> {
        match code {
            "unsupported" => Some(ApiError::Unsupported(message.to_string())),
            "invalid-config" => Some(ApiError::InvalidConfig(message.to_string())),
            "resource" => Some(ApiError::Resource(message.to_string())),
            _ => None,
        }
    }
}

impl fmt::Display for ApiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApiError::Unsupported(msg) => write!(f, "unsupported configuration: {msg}"),
            ApiError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            ApiError::Resource(msg) => write!(f, "resource error: {msg}"),
        }
    }
}

impl std::error::Error for ApiError {}

/// The full, serializable configuration of one enumeration run — the single
/// query surface shared by the [`Enumerator`] builder, the CLI, the wire
/// protocol of the `mbpe-serve` daemon and the benches.
///
/// A `QuerySpec` is plain data: every knob of the builder is a public
/// field, [`Default`] gives the builder's defaults, and
/// [`QuerySpec::to_json`] / [`QuerySpec::from_json`] round-trip the value
/// losslessly (pinned by the `query_spec` property tests). Validation stays
/// where it always was — [`Enumerator::validate`] — so a deserialized spec
/// goes through exactly the same checks as a locally built one.
///
/// Owned (no graph reference) so it can move onto streaming threads and
/// across the wire.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QuerySpec {
    /// Miss budget `k` of the k-biplex definition (default 1).
    pub k: usize,
    /// Asymmetric per-side budgets ([`Algorithm::Asym`] only).
    pub k_pair: Option<KPair>,
    /// Algorithm variant (default [`Algorithm::ITraversal`]).
    pub algorithm: Algorithm,
    /// Execution engine (default [`Engine::Sequential`]).
    pub engine: Engine,
    /// Vertex relabeling pass (default [`VertexOrder::Input`]).
    pub order: VertexOrder,
    /// `EnumAlmostSat` implementation (default [`EnumKind::L2R2`]).
    pub enum_kind: EnumKind,
    /// Emission mode of the sequential engine (default
    /// [`EmitMode::Immediate`]).
    pub emit_mode: EmitMode,
    /// Initial-solution override of the sequential engine.
    pub anchor: Option<Anchor>,
    /// Only report MBPs with `|L| ≥ theta_left` (0 disables).
    pub theta_left: usize,
    /// Only report MBPs with `|R| ≥ theta_right` (0 disables).
    pub theta_right: usize,
    /// (θ−k)-core reduction toggle of [`Algorithm::Large`].
    pub core_reduction: Option<bool>,
    /// Worker threads of the parallel engines (0 = auto).
    pub threads: usize,
    /// Initial seen-set segments of [`Engine::WorkSteal`] (0 = auto).
    pub seen_segments: usize,
    /// Adaptive steal granularity of [`Engine::WorkSteal`] (default on).
    pub steal_adaptive: bool,
    /// Stop after delivering exactly this many solutions.
    pub limit: Option<u64>,
    /// Stop once this much wall-clock time has elapsed.
    pub time_budget: Option<Duration>,
    /// Channel capacity behind [`Enumerator::stream`] (default 256).
    pub stream_buffer: usize,
    /// Intersection kernel override (default [`Kernel::Auto`], the
    /// measured crossover heuristic). Forcing a single kernel is the A/B
    /// switch behind the CLI's `--kernel`; it never changes results.
    pub kernel: Kernel,
}

impl Default for QuerySpec {
    fn default() -> Self {
        QuerySpec {
            k: 1,
            k_pair: None,
            algorithm: Algorithm::ITraversal,
            engine: Engine::Sequential,
            order: VertexOrder::Input,
            enum_kind: EnumKind::L2R2,
            emit_mode: EmitMode::Immediate,
            anchor: None,
            theta_left: 0,
            theta_right: 0,
            core_reduction: None,
            threads: 0,
            seen_segments: 0,
            steal_adaptive: true,
            limit: None,
            time_budget: None,
            stream_buffer: 256,
            kernel: Kernel::Auto,
        }
    }
}

/// Builder-style entry point for every enumeration the crate can perform.
///
/// See the [module documentation](self) for the lifecycle and examples.
#[derive(Clone, Debug)]
pub struct Enumerator<'g> {
    graph: &'g BipartiteGraph,
    spec: QuerySpec,
}

impl<'g> Enumerator<'g> {
    /// Starts a builder over `graph` with the defaults: `k = 1`, the full
    /// `iTraversal`, the sequential engine, input vertex order, no
    /// thresholds, no limit, no time budget.
    pub fn new(graph: &'g BipartiteGraph) -> Self {
        Enumerator { graph, spec: QuerySpec::default() }
    }

    /// Builds an enumerator over `graph` from an explicit [`QuerySpec`] —
    /// the entry point of deserialized queries (wire protocol, saved specs).
    /// The spec is *not* validated here; [`Enumerator::run`],
    /// [`Enumerator::stream`] and [`Enumerator::validate`] apply exactly the
    /// same checks as for a locally built configuration.
    pub fn from_spec(graph: &'g BipartiteGraph, spec: &QuerySpec) -> Self {
        Enumerator { graph, spec: spec.clone() }
    }

    /// The current configuration as a plain, serializable [`QuerySpec`] —
    /// the inverse of [`Enumerator::from_spec`].
    pub fn to_spec(&self) -> QuerySpec {
        self.spec.clone()
    }

    /// Sets the miss budget `k` of the k-biplex definition (default 1).
    pub fn k(mut self, k: usize) -> Self {
        self.spec.k = k;
        self
    }

    /// Sets asymmetric per-side budgets (only for [`Algorithm::Asym`]; that
    /// algorithm defaults to `KPair::symmetric(k)` when this is unset).
    pub fn k_pair(mut self, kp: KPair) -> Self {
        self.spec.k_pair = Some(kp);
        self
    }

    /// Selects the algorithm variant (default [`Algorithm::ITraversal`]).
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.spec.algorithm = algorithm;
        self
    }

    /// Selects the execution engine (default [`Engine::Sequential`]).
    pub fn engine(mut self, engine: Engine) -> Self {
        self.spec.engine = engine;
        self
    }

    /// Selects the vertex relabeling pass (default [`VertexOrder::Input`]).
    pub fn order(mut self, order: VertexOrder) -> Self {
        self.spec.order = order;
        self
    }

    /// Selects the `EnumAlmostSat` implementation (default `L2.0+R2.0`).
    pub fn enum_kind(mut self, kind: EnumKind) -> Self {
        self.spec.enum_kind = kind;
        self
    }

    /// Selects the emission mode of the sequential traversal engine
    /// (default [`EmitMode::Immediate`]).
    pub fn emit(mut self, emit: EmitMode) -> Self {
        self.spec.emit_mode = emit;
        self
    }

    /// Overrides the designated initial solution of the sequential
    /// traversal engine (e.g. [`Anchor::Right`] for the right-anchored
    /// variant of Section 6.2). Defaults to the algorithm's own anchor.
    pub fn anchor(mut self, anchor: Anchor) -> Self {
        self.spec.anchor = Some(anchor);
        self
    }

    /// Only reports MBPs with `|L| ≥ theta_left` and `|R| ≥ theta_right`
    /// (`0` disables a side). With [`Algorithm::Large`] the thresholds are
    /// additionally pushed into the search as the Section 5 prunings.
    pub fn thresholds(mut self, theta_left: usize, theta_right: usize) -> Self {
        self.spec.theta_left = theta_left;
        self.spec.theta_right = theta_right;
        self
    }

    /// Toggles the (θ−k)-core reduction of [`Algorithm::Large`] (default
    /// on).
    pub fn core_reduction(mut self, enabled: bool) -> Self {
        self.spec.core_reduction = Some(enabled);
        self
    }

    /// Worker thread count for the parallel engines (`0` = auto, default).
    pub fn threads(mut self, threads: usize) -> Self {
        self.spec.threads = threads;
        self
    }

    /// Initial segment count of the work-stealing engine's seen-set
    /// directory (`0` = size from the graph, default).
    pub fn seen_segments(mut self, segments: usize) -> Self {
        self.spec.seen_segments = segments;
        self
    }

    /// Toggles adaptive steal granularity on the work-stealing engine
    /// (default on).
    pub fn steal_adaptive(mut self, adaptive: bool) -> Self {
        self.spec.steal_adaptive = adaptive;
        self
    }

    /// Stops the run after delivering exactly `n` solutions — the paper's
    /// "first N results" experiments. Works on every engine: the parallel
    /// schedulers observe the shared cancellation flag at steal/expand
    /// boundaries.
    pub fn limit(mut self, n: u64) -> Self {
        self.spec.limit = Some(n);
        self
    }

    /// Stops the run once `budget` has elapsed. Cooperative: the deadline
    /// is checked at every solution delivery, at every DFS step of the
    /// sequential engine, and at the parallel workers' steal/expand
    /// boundaries — so a budgeted run stops within one expansion even when
    /// the thresholds filter out every solution. Only applies to the
    /// traversal-family algorithms' engines; the asym and brute-force
    /// oracles check the budget at deliveries only.
    pub fn time_budget(mut self, budget: Duration) -> Self {
        self.spec.time_budget = Some(budget);
        self
    }

    /// Capacity of the bounded channel behind [`Enumerator::stream`]
    /// (default 256 solutions).
    pub fn stream_buffer(mut self, capacity: usize) -> Self {
        self.spec.stream_buffer = capacity.max(1);
        self
    }

    /// Forces a single intersection kernel instead of the crossover
    /// heuristic (default [`Kernel::Auto`]). An A/B switch for benchmarks
    /// and the CLI's `--kernel`; the enumerated solution set is identical
    /// under every kernel (pinned by the cross-validation tests).
    pub fn kernel(mut self, kernel: Kernel) -> Self {
        self.spec.kernel = kernel;
        self
    }

    /// Checks the configuration without running it.
    pub fn validate(&self) -> Result<(), ApiError> {
        let s = &self.spec;
        if s.engine != Engine::Sequential && !s.algorithm.parallelisable() {
            return Err(ApiError::Unsupported(format!(
                "algorithm {} only runs on the sequential engine (got {})",
                s.algorithm, s.engine
            )));
        }
        if s.k_pair.is_some() && s.algorithm != Algorithm::Asym {
            return Err(ApiError::InvalidConfig(format!(
                "k_pair only applies to Algorithm::Asym (got {})",
                s.algorithm
            )));
        }
        if s.order != VertexOrder::Input
            && matches!(s.algorithm, Algorithm::Asym | Algorithm::BruteForce)
        {
            return Err(ApiError::Unsupported(format!(
                "vertex relabeling is not supported by algorithm {}",
                s.algorithm
            )));
        }
        if s.anchor.is_some() && s.engine != Engine::Sequential {
            return Err(ApiError::Unsupported(
                "the anchor override only exists on the sequential engine".to_string(),
            ));
        }
        if s.anchor.is_some() && matches!(s.algorithm, Algorithm::Asym | Algorithm::BruteForce) {
            return Err(ApiError::InvalidConfig(format!(
                "anchor does not apply to algorithm {}",
                s.algorithm
            )));
        }
        if s.emit_mode != EmitMode::Immediate && s.engine != Engine::Sequential {
            return Err(ApiError::Unsupported(
                "alternating emission only exists on the sequential engine".to_string(),
            ));
        }
        if s.emit_mode != EmitMode::Immediate
            && matches!(s.algorithm, Algorithm::Asym | Algorithm::BruteForce)
        {
            return Err(ApiError::Unsupported(format!(
                "alternating emission is not supported by algorithm {}",
                s.algorithm
            )));
        }
        if s.core_reduction.is_some() && s.algorithm != Algorithm::Large {
            return Err(ApiError::InvalidConfig(format!(
                "core_reduction only applies to Algorithm::Large (got {})",
                s.algorithm
            )));
        }
        if s.threads != 0 && s.engine == Engine::Sequential {
            return Err(ApiError::InvalidConfig(
                "threads only applies to the parallel engines".to_string(),
            ));
        }
        if s.seen_segments != 0 && s.engine != Engine::WorkSteal {
            return Err(ApiError::InvalidConfig(
                "seen_segments only applies to Engine::WorkSteal".to_string(),
            ));
        }
        if !s.steal_adaptive && s.engine != Engine::WorkSteal {
            return Err(ApiError::InvalidConfig(
                "steal_adaptive only applies to Engine::WorkSteal".to_string(),
            ));
        }
        if s.algorithm == Algorithm::BruteForce
            && (self.graph.num_left() > 16 || self.graph.num_right() > 16)
        {
            return Err(ApiError::InvalidConfig(
                "the brute-force oracle is limited to at most 16 vertices per side".to_string(),
            ));
        }
        Ok(())
    }

    /// Runs the enumeration, delivering every reported solution to `sink`,
    /// and returns the [`RunReport`].
    ///
    /// `S: Send` because the parallel engines deliver solutions from worker
    /// threads (behind an internal mutex; the sink still sees one call at a
    /// time, in nondeterministic order).
    pub fn run<S: SolutionSink + Send>(&self, sink: &mut S) -> Result<RunReport, ApiError> {
        self.validate()?;
        let cancel = AtomicBool::new(false);
        // Incremental delivery is only needed when a stopping rule must be
        // able to cancel the parallel workers mid-run; a plain full
        // enumeration keeps the engines' batched result hand-off and feeds
        // the sink afterwards. (A sink that stops on its own should use
        // `limit`/`time_budget` to also stop the engine early.)
        let incremental = self.spec.limit.is_some() || self.spec.time_budget.is_some();
        Ok(execute(self.graph, &self.spec, sink, &cancel, None, incremental))
    }

    /// Terminal convenience: runs the enumeration and returns the reported
    /// solutions sorted canonically — what the retired `enumerate_all` /
    /// `collect_*` free functions used to hand back. Use [`Enumerator::run`]
    /// when the [`RunReport`] or a custom sink is needed.
    pub fn collect(&self) -> Result<Vec<Biplex>, ApiError> {
        let mut sink = crate::sink::CollectSink::new();
        self.run(&mut sink)?;
        Ok(sink.into_sorted())
    }

    /// Runs the enumeration on a background thread and returns a pull-based
    /// iterator over the solutions, backed by a bounded channel (see
    /// [`Enumerator::stream_buffer`]). The stream owns a clone of the graph
    /// so it is `'static` and can outlive the builder. Dropping the stream
    /// cancels the run cooperatively; [`SolutionStream::finish`] joins it
    /// and returns the [`RunReport`].
    pub fn stream(&self) -> Result<SolutionStream, ApiError> {
        self.validate()?;
        let graph = self.graph.clone();
        let spec = self.spec.clone();
        let cancel = Arc::new(AtomicBool::new(false));
        let (tx, rx) = std::sync::mpsc::sync_channel(self.spec.stream_buffer.max(1));
        let thread_cancel = Arc::clone(&cancel);
        let handle = std::thread::Builder::new()
            .name("kbiplex-enumerator".to_string())
            .spawn(move || {
                let undelivered = AtomicBool::new(false);
                let mut sink = ChannelSink { tx, undelivered: &undelivered };
                // Streams always deliver incrementally — that is the point
                // of pulling from a bounded channel.
                execute(&graph, &spec, &mut sink, &thread_cancel, Some(&undelivered), true)
            })
            .map_err(|e| ApiError::Resource(format!("failed to spawn enumerator thread: {e}")))?;
        Ok(SolutionStream { rx: Some(rx), cancel, handle: Some(handle) })
    }
}

/// Sink of the streaming thread: forwards into the bounded channel and
/// requests a stop once the receiver is gone, flagging the failed delivery
/// so the gate neither counts it nor mistakes it for a deliberate sink
/// stop.
struct ChannelSink<'a> {
    tx: SyncSender<Biplex>,
    undelivered: &'a AtomicBool,
}

impl SolutionSink for ChannelSink<'_> {
    fn on_solution(&mut self, solution: &Biplex) -> Control {
        match self.tx.send(solution.clone()) {
            Ok(()) => Control::Continue,
            Err(_) => {
                // ordering: Relaxed — advisory flag read under the gate
                // lock; see DESIGN.md "cancel-flag".
                self.undelivered.store(true, Ordering::Relaxed);
                Control::Stop
            }
        }
    }
}

/// Pull-based solution iterator returned by [`Enumerator::stream`].
///
/// Iterates the solutions in delivery order (nondeterministic on the
/// parallel engines). Dropping the stream cancels the underlying run and
/// joins the producer thread; [`SolutionStream::finish`] does the same but
/// hands back the [`RunReport`].
#[derive(Debug)]
pub struct SolutionStream {
    rx: Option<Receiver<Biplex>>,
    cancel: Arc<AtomicBool>,
    handle: Option<JoinHandle<RunReport>>,
}

impl SolutionStream {
    /// Requests cooperative cancellation of the producing run without
    /// consuming the stream; already-buffered solutions remain readable.
    pub fn cancel(&self) {
        // ordering: Relaxed — liveness-only stop request; see DESIGN.md
        // "cancel-flag".
        self.cancel.store(true, Ordering::Relaxed);
    }

    /// Stops the run (if still going), joins the producer thread and
    /// returns its [`RunReport`]. After a fully drained stream the report's
    /// stop reason is whatever ended the run (e.g.
    /// [`StopReason::Exhausted`] or [`StopReason::LimitReached`]); calling
    /// it early cancels the run first.
    pub fn finish(mut self) -> RunReport {
        self.shutdown()
    }

    fn shutdown(&mut self) -> RunReport {
        // ordering: Relaxed — liveness-only stop request; see DESIGN.md
        // "cancel-flag".
        self.cancel.store(true, Ordering::Relaxed);
        // Drop the receiver before joining: a producer blocked on a full
        // channel unblocks through the send error.
        drop(self.rx.take());
        let Some(handle) = self.handle.take() else {
            // `shutdown` is only reachable from `finish`, which consumes the
            // stream; `Drop` (the other taker) runs after that.
            unreachable!("stream already finished")
        };
        match handle.join() {
            Ok(report) => report,
            Err(panic) => std::panic::resume_unwind(panic),
        }
    }
}

impl Iterator for SolutionStream {
    type Item = Biplex;

    fn next(&mut self) -> Option<Biplex> {
        self.rx.as_ref()?.recv().ok()
    }
}

impl Drop for SolutionStream {
    fn drop(&mut self) {
        if let Some(handle) = self.handle.take() {
            // ordering: Relaxed — liveness-only stop request; see DESIGN.md
            // "cancel-flag".
            self.cancel.store(true, Ordering::Relaxed);
            drop(self.rx.take());
            // Swallow a producer panic here: panicking inside drop would
            // abort the process when the consumer is already unwinding and
            // mask the original failure. `finish()` still propagates it.
            let _ = handle.join();
        }
    }
}

/// Shared stopping logic wrapped around the caller's sink: counts
/// deliveries, enforces the limit and the deadline, records the stop reason
/// and raises the cancellation flag the engines poll. The mutex serialises
/// deliveries from parallel workers, which is what makes "limit n returns
/// exactly n" exact.
struct Gate<'a> {
    inner: Mutex<GateInner<'a>>,
    cancel: &'a AtomicBool,
    /// Raised by [`ChannelSink`] when a delivery attempt failed because the
    /// stream's receiver is gone: the solution was not consumed, so it must
    /// not be counted and the stop is a cancellation, not a sink stop.
    undelivered: Option<&'a AtomicBool>,
}

struct GateInner<'a> {
    sink: &'a mut (dyn SolutionSink + Send),
    delivered: u64,
    limit: Option<u64>,
    deadline: Option<Instant>,
    reason: Option<StopReason>,
}

impl<'a> Gate<'a> {
    fn new(
        sink: &'a mut (dyn SolutionSink + Send),
        limit: Option<u64>,
        deadline: Option<Instant>,
        cancel: &'a AtomicBool,
        undelivered: Option<&'a AtomicBool>,
    ) -> Self {
        Gate {
            inner: Mutex::new(GateInner { sink, delivered: 0, limit, deadline, reason: None }),
            cancel,
            undelivered,
        }
    }

    /// Applies the stopping rules without delivering a solution (used by
    /// post-filters for solutions they drop).
    fn check(&self) -> Control {
        let mut inner = plock(&self.inner);
        match self.pre_checks(&mut inner) {
            Some(control) => control,
            None => Control::Continue,
        }
    }

    /// Delivers one solution through the stopping rules.
    fn offer(&self, solution: &Biplex) -> Control {
        let mut inner = plock(&self.inner);
        if let Some(control) = self.pre_checks(&mut inner) {
            return control;
        }
        let verdict = inner.sink.on_solution(solution);
        // ordering: Relaxed — the flag was set by this same delivery attempt
        // before on_solution returned; no cross-thread data rides on it. See
        // DESIGN.md "cancel-flag".
        if verdict == Control::Stop && self.undelivered.is_some_and(|u| u.load(Ordering::Relaxed)) {
            // The stream's channel sink reports the send failed (receiver
            // dropped mid-run). The solution was not consumed: report a
            // cancellation, not a sink stop, and do not count it. A genuine
            // sink stop — even one racing an engine-side cancel — is still
            // counted and labelled SinkStopped below.
            return self.stop(&mut inner, StopReason::Cancelled);
        }
        inner.delivered += 1;
        if verdict == Control::Stop {
            return self.stop(&mut inner, StopReason::SinkStopped);
        }
        if inner.limit == Some(inner.delivered) {
            return self.stop(&mut inner, StopReason::LimitReached);
        }
        Control::Continue
    }

    /// The checks running before a delivery: an already-decided stop, an
    /// external cancellation, an expired deadline, an exhausted limit
    /// (covers `limit(0)`). Returns `Some(Stop)` when the run must stop.
    fn pre_checks(&self, inner: &mut GateInner<'_>) -> Option<Control> {
        if inner.reason.is_some() {
            return Some(Control::Stop);
        }
        // ordering: Relaxed — cancellation poll, liveness only; see
        // DESIGN.md "cancel-flag".
        if self.cancel.load(Ordering::Relaxed) {
            return Some(self.stop(inner, StopReason::Cancelled));
        }
        if let Some(deadline) = inner.deadline {
            if Instant::now() >= deadline {
                return Some(self.stop(inner, StopReason::TimeBudget));
            }
        }
        if inner.limit == Some(inner.delivered) {
            return Some(self.stop(inner, StopReason::LimitReached));
        }
        None
    }

    fn stop(&self, inner: &mut GateInner<'_>, reason: StopReason) -> Control {
        inner.reason = Some(reason);
        // ordering: Relaxed — liveness-only stop request; the decision
        // itself is published by the gate lock. See DESIGN.md "cancel-flag".
        self.cancel.store(true, Ordering::Relaxed);
        Control::Stop
    }

    fn finish(self) -> (u64, Option<StopReason>) {
        let inner = self.inner.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner);
        (inner.delivered, inner.reason)
    }
}

/// Builds the sequential traversal configuration of a spec.
fn traversal_config(spec: &QuerySpec, deadline: Option<Instant>) -> TraversalConfig {
    let base = match spec.algorithm {
        Algorithm::ITraversal | Algorithm::Large => TraversalConfig::itraversal(spec.k),
        Algorithm::ITraversalNoExclusion => TraversalConfig::itraversal_no_exclusion(spec.k),
        Algorithm::LeftAnchoredOnly => TraversalConfig::itraversal_left_anchored_only(spec.k),
        Algorithm::BTraversal => TraversalConfig::btraversal(spec.k),
        Algorithm::Asym | Algorithm::BruteForce => unreachable!("not traversal algorithms"),
    };
    let base = match spec.anchor {
        Some(anchor) => base.with_anchor(anchor),
        None => base,
    };
    base.with_enum_kind(spec.enum_kind)
        .with_emit(spec.emit_mode)
        .with_thresholds(spec.theta_left, spec.theta_right)
        .with_order(spec.order)
        .with_deadline(deadline)
        .with_kernel(spec.kernel)
}

/// Builds the parallel configuration of a spec.
fn parallel_config(spec: &QuerySpec) -> ParallelConfig {
    let engine = match spec.engine {
        Engine::WorkSteal => ParallelEngine::WorkSteal,
        Engine::GlobalQueue => ParallelEngine::GlobalQueue,
        Engine::Sequential => unreachable!("sequential runs never build a ParallelConfig"),
    };
    ParallelConfig::new(spec.k)
        .with_threads(spec.threads)
        .with_enum_kind(spec.enum_kind)
        .with_thresholds(spec.theta_left, spec.theta_right)
        .with_order(spec.order)
        .with_engine(engine)
        .with_seen_segments(spec.seen_segments)
        .with_steal_adaptive(spec.steal_adaptive)
        .with_kernel(spec.kernel)
}

/// Runs a validated spec to completion. Infallible: every configuration
/// error was caught by [`Enumerator::validate`].
///
/// `incremental` selects how the parallel engines deliver: `true` streams
/// every solution through the gate as it is discovered (required for
/// [`Enumerator::stream`] and whenever a limit or time budget must be able
/// to cancel the workers mid-run); `false` lets the engines keep their
/// batched result hand-off (one lock per `result_batch` solutions instead
/// of one gate lock per solution) and feeds the collected set through the
/// gate afterwards — the fast path for full enumerations.
fn execute(
    g: &BipartiteGraph,
    spec: &QuerySpec,
    sink: &mut (dyn SolutionSink + Send),
    cancel: &AtomicBool,
    undelivered: Option<&AtomicBool>,
    incremental: bool,
) -> RunReport {
    let deadline = spec.time_budget.map(|budget| Instant::now() + budget);
    let gate = Gate::new(sink, spec.limit, deadline, cancel, undelivered);
    let start = Instant::now();

    let (stats, reduced) = match (spec.algorithm, spec.engine) {
        (Algorithm::Asym, _) => {
            let kp = spec.k_pair.unwrap_or(KPair::symmetric(spec.k));
            // The asymmetric engine has no in-search size pruning; the
            // thresholds post-filter (still consulting the stopping rules
            // for dropped solutions so budgets fire on schedule).
            let mut filter = |b: &Biplex| {
                if b.left.len() >= spec.theta_left && b.right.len() >= spec.theta_right {
                    gate.offer(b)
                } else {
                    gate.check()
                }
            };
            let stats = run_asym(g, kp, &mut filter);
            (EngineStats::Asym(stats), None)
        }
        (Algorithm::BruteForce, _) => {
            for b in brute_force_mbps(g, spec.k) {
                let verdict =
                    if b.left.len() >= spec.theta_left && b.right.len() >= spec.theta_right {
                        gate.offer(&b)
                    } else {
                        gate.check()
                    };
                if verdict == Control::Stop {
                    break;
                }
            }
            (EngineStats::Oracle, None)
        }
        (Algorithm::Large, Engine::Sequential) => {
            let params = large_params(spec);
            let mut sink_fn = |b: &Biplex| gate.offer(b);
            let report = run_large(g, &params, &traversal_config(spec, deadline), &mut sink_fn);
            (
                EngineStats::Sequential(report.stats),
                Some(reduced_info(report.reduced_size, report.reduced_edges)),
            )
        }
        (Algorithm::Large, _) => {
            let params = large_params(spec);
            let emit = |b: &Biplex| gate.offer(b);
            let rt = parallel_runtime(incremental, &emit, cancel, deadline);
            let (collected, report) = par_run_large(g, &params, &parallel_config(spec), &rt);
            feed_collected(&gate, &collected);
            (
                EngineStats::Parallel(report.stats),
                Some(reduced_info(report.reduced_size, report.reduced_edges)),
            )
        }
        (_, Engine::Sequential) => {
            let mut sink_fn = |b: &Biplex| gate.offer(b);
            let stats = traverse(g, &traversal_config(spec, deadline), &mut sink_fn);
            (EngineStats::Sequential(stats), None)
        }
        (_, _) => {
            let emit = |b: &Biplex| gate.offer(b);
            let rt = parallel_runtime(incremental, &emit, cancel, deadline);
            let (collected, stats) = par_run(g, &parallel_config(spec), &rt);
            feed_collected(&gate, &collected);
            (EngineStats::Parallel(stats), None)
        }
    };

    let elapsed = start.elapsed();
    let (delivered, reason) = gate.finish();
    let stop = reason.unwrap_or_else(|| {
        // The gate never decided a stop, but the engine may still have been
        // cut short at a scheduling boundary without any delivery passing
        // through the gate afterwards (e.g. thresholds filtered everything
        // out of a budgeted run, or a stream was dropped mid-run).
        let engine_stopped = match &stats {
            EngineStats::Parallel(s) => s.stopped_early,
            EngineStats::Sequential(s) => s.stopped_early,
            EngineStats::Asym(_) | EngineStats::Oracle => false,
        };
        if !engine_stopped {
            StopReason::Exhausted
        } else if deadline.is_some_and(|d| Instant::now() >= d) {
            StopReason::TimeBudget
        } else {
            StopReason::Cancelled
        }
    });
    RunReport { solutions: delivered, stop, elapsed, stats, reduced }
}

fn large_params(spec: &QuerySpec) -> LargeMbpParams {
    LargeMbpParams {
        k: spec.k,
        theta_left: spec.theta_left,
        theta_right: spec.theta_right,
        core_reduction: spec.core_reduction.unwrap_or(true),
    }
}

fn reduced_info(size: (u32, u32), edges: u64) -> ReducedGraph {
    ReducedGraph { left: size.0, right: size.1, edges }
}

/// Builds the engine-side runtime of a parallel run. Incremental runs (a
/// limit, a time budget or a stream) deliver through the gate and poll the
/// shared flag and the deadline at scheduling boundaries; plain full
/// enumerations pass no hooks at all, keeping the engines' batched result
/// hand-off and (on the global queue) the blocking condvar wait.
fn parallel_runtime<'a>(
    incremental: bool,
    emit: &'a (dyn Fn(&Biplex) -> Control + Sync),
    cancel: &'a AtomicBool,
    deadline: Option<Instant>,
) -> ParRuntime<'a> {
    if incremental {
        ParRuntime { emit: Some(emit), cancel: Some(cancel), deadline }
    } else {
        ParRuntime::default()
    }
}

/// Feeds a collect-mode result set through the gate (no-op for the empty
/// vector an emit-mode run returns). A sink stop ends the feed early.
fn feed_collected(gate: &Gate<'_>, collected: &[Biplex]) {
    for b in collected {
        if gate.offer(b) == Control::Stop {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::biplex::is_maximal_k_biplex;
    use crate::sink::{CollectSink, CountingSink};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_graph(nl: u32, nr: u32, p: f64, seed: u64) -> BipartiteGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut edges = Vec::new();
        for v in 0..nl {
            for u in 0..nr {
                if rng.gen_bool(p) {
                    edges.push((v, u));
                }
            }
        }
        BipartiteGraph::from_edges(nl, nr, &edges).unwrap()
    }

    fn collect(e: &Enumerator<'_>) -> Vec<Biplex> {
        e.collect().unwrap()
    }

    #[test]
    fn every_algorithm_engine_combination_agrees() {
        let g = random_graph(6, 6, 0.5, 1);
        let k = 1;
        let expected = collect(&Enumerator::new(&g).k(k));
        assert!(!expected.is_empty());
        for algorithm in [
            Algorithm::ITraversal,
            Algorithm::ITraversalNoExclusion,
            Algorithm::LeftAnchoredOnly,
            Algorithm::BTraversal,
            Algorithm::Asym,
            Algorithm::BruteForce,
        ] {
            let got = collect(&Enumerator::new(&g).k(k).algorithm(algorithm));
            assert_eq!(got, expected, "{algorithm}");
        }
        for engine in [Engine::WorkSteal, Engine::GlobalQueue] {
            for algorithm in [Algorithm::ITraversal, Algorithm::ITraversalNoExclusion] {
                let got = collect(
                    &Enumerator::new(&g).k(k).algorithm(algorithm).engine(engine).threads(3),
                );
                assert_eq!(got, expected, "{algorithm} on {engine}");
            }
        }
    }

    #[test]
    fn limit_is_exact_on_every_engine() {
        let g = random_graph(7, 7, 0.5, 3);
        let k = 1;
        let total = collect(&Enumerator::new(&g).k(k)).len() as u64;
        assert!(total > 4);
        for engine in [Engine::Sequential, Engine::WorkSteal, Engine::GlobalQueue] {
            for limit in [0u64, 1, 3] {
                let mut sink = CollectSink::new();
                let e = Enumerator::new(&g).k(k).engine(engine).limit(limit);
                let e = if engine == Engine::Sequential { e } else { e.threads(3) };
                let report = e.run(&mut sink).unwrap();
                assert_eq!(sink.solutions.len() as u64, limit, "{engine} limit {limit}");
                assert_eq!(report.solutions, limit, "{engine} limit {limit}");
                assert_eq!(report.stop, StopReason::LimitReached, "{engine} limit {limit}");
                for b in &sink.solutions {
                    assert!(is_maximal_k_biplex(&g, &b.left, &b.right, k));
                }
                if let EngineStats::Parallel(stats) = &report.stats {
                    assert!(stats.stopped_early, "{engine} limit {limit}");
                }
            }
        }
    }

    #[test]
    fn time_budget_zero_stops_immediately() {
        let g = random_graph(7, 7, 0.5, 5);
        for engine in [Engine::Sequential, Engine::WorkSteal] {
            let mut sink = CountingSink::new();
            let e = Enumerator::new(&g).time_budget(Duration::ZERO).engine(engine);
            let e = if engine == Engine::Sequential { e } else { e.threads(2) };
            let report = e.run(&mut sink).unwrap();
            assert_eq!(report.stop, StopReason::TimeBudget, "{engine}");
            assert_eq!(sink.count, 0, "{engine}");
        }
    }

    #[test]
    fn budget_reported_even_when_thresholds_filter_every_delivery() {
        // Thresholds no solution can meet: nothing ever reaches the gate,
        // so the stop reason must come from the engine-side deadline — the
        // sequential engine polls it at DFS steps, the parallel workers at
        // steal/expand boundaries.
        let g = random_graph(7, 7, 0.5, 17);
        for engine in [Engine::Sequential, Engine::WorkSteal] {
            let mut sink = CountingSink::new();
            let e = Enumerator::new(&g)
                .k(1)
                .thresholds(100, 100)
                .time_budget(Duration::ZERO)
                .engine(engine);
            let e = if engine == Engine::Sequential { e } else { e.threads(2) };
            let report = e.run(&mut sink).unwrap();
            assert_eq!(sink.count, 0, "{engine}");
            assert_eq!(report.stop, StopReason::TimeBudget, "{engine}");
        }
    }

    #[test]
    fn stream_matches_run_and_supports_early_drop() {
        let g = random_graph(6, 6, 0.5, 7);
        let expected = collect(&Enumerator::new(&g));
        for engine in [Engine::Sequential, Engine::WorkSteal, Engine::GlobalQueue] {
            let e = Enumerator::new(&g).engine(engine);
            let e = if engine == Engine::Sequential { e } else { e.threads(2) };
            let mut got: Vec<Biplex> = e.stream().unwrap().collect();
            got.sort();
            assert_eq!(got, expected, "{engine}");

            // Taking a prefix and dropping the stream cancels the run.
            let taken: Vec<Biplex> = e.stream().unwrap().take(2).collect();
            assert_eq!(taken.len(), 2, "{engine}");
        }
    }

    #[test]
    fn early_stream_finish_reports_cancelled_not_sink_stopped() {
        // 7×7 at p=0.5 has far more solutions than the 2-slot buffer, so
        // the producer is still mid-run when the stream is abandoned.
        let g = random_graph(7, 7, 0.5, 13);
        let mut stream = Enumerator::new(&g).stream_buffer(2).stream().unwrap();
        let _first = stream.next().expect("at least one solution");
        let report = stream.finish();
        assert_eq!(report.stop, StopReason::Cancelled);
    }

    #[test]
    fn stream_finish_reports_stop_reason() {
        let g = random_graph(6, 6, 0.5, 9);
        let mut stream = Enumerator::new(&g).limit(3).stream().unwrap();
        let mut n = 0;
        while stream.next().is_some() {
            n += 1;
        }
        assert_eq!(n, 3);
        let report = stream.finish();
        assert_eq!(report.stop, StopReason::LimitReached);
        assert_eq!(report.solutions, 3);
    }

    #[test]
    fn invalid_combinations_are_rejected() {
        let g = random_graph(4, 4, 0.5, 0);
        let err = |e: Enumerator<'_>| e.run(&mut CountingSink::new()).unwrap_err();
        assert!(matches!(
            err(Enumerator::new(&g).algorithm(Algorithm::Asym).engine(Engine::WorkSteal)),
            ApiError::Unsupported(_)
        ));
        assert!(matches!(
            err(Enumerator::new(&g).algorithm(Algorithm::BTraversal).engine(Engine::GlobalQueue)),
            ApiError::Unsupported(_)
        ));
        assert!(matches!(
            err(Enumerator::new(&g).k_pair(KPair::new(1, 2))),
            ApiError::InvalidConfig(_)
        ));
        assert!(matches!(
            err(Enumerator::new(&g).algorithm(Algorithm::Asym).order(VertexOrder::Degree)),
            ApiError::Unsupported(_)
        ));
        assert!(matches!(err(Enumerator::new(&g).threads(2)), ApiError::InvalidConfig(_)));
        assert!(matches!(err(Enumerator::new(&g).seen_segments(2)), ApiError::InvalidConfig(_)));
        assert!(matches!(
            err(Enumerator::new(&g).steal_adaptive(false).engine(Engine::GlobalQueue)),
            ApiError::InvalidConfig(_)
        ));
        assert!(matches!(
            err(Enumerator::new(&g).core_reduction(false)),
            ApiError::InvalidConfig(_)
        ));
        let big = BipartiteGraph::from_edges(20, 20, &[(0, 0)]).unwrap();
        assert!(matches!(
            err(Enumerator::new(&big).algorithm(Algorithm::BruteForce)),
            ApiError::InvalidConfig(_)
        ));
        // Errors render.
        let msg = format!("{}", err(Enumerator::new(&g).threads(2)));
        assert!(msg.contains("threads"));
    }

    #[test]
    fn parsing_and_display_round_trip() {
        for algorithm in [
            Algorithm::ITraversal,
            Algorithm::ITraversalNoExclusion,
            Algorithm::LeftAnchoredOnly,
            Algorithm::BTraversal,
            Algorithm::Large,
            Algorithm::Asym,
            Algorithm::BruteForce,
        ] {
            assert_eq!(algorithm.to_string().parse::<Algorithm>().unwrap(), algorithm);
        }
        for engine in [Engine::Sequential, Engine::GlobalQueue, Engine::WorkSteal] {
            assert_eq!(engine.to_string().parse::<Engine>().unwrap(), engine);
        }
        assert!("quantum".parse::<Algorithm>().is_err());
        assert!("quantum".parse::<Engine>().is_err());
        assert_eq!(StopReason::LimitReached.to_string(), "limit-reached");
    }

    #[test]
    fn large_pipeline_reports_reduction() {
        let g = random_graph(8, 8, 0.4, 11);
        let mut sink = CollectSink::new();
        let report = Enumerator::new(&g)
            .algorithm(Algorithm::Large)
            .thresholds(2, 2)
            .run(&mut sink)
            .unwrap();
        let reduced = report.reduced.expect("large runs report the reduction");
        assert!(reduced.left <= g.num_left());
        let expected = collect(
            &Enumerator::new(&g).algorithm(Algorithm::Large).thresholds(2, 2).core_reduction(false),
        );
        assert_eq!(sink.into_sorted(), expected);
    }
}
