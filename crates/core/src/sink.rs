//! Solution sinks: where enumerated MBPs go.
//!
//! Every enumeration entry point takes a [`SolutionSink`]; this decouples
//! the algorithms from what the caller wants to do with the output
//! (count it, collect it, stop after the first N as in the paper's
//! experiments, record inter-solution delays, …).

use std::time::{Duration, Instant};

use crate::biplex::Biplex;

/// Whether the enumeration should continue after a solution was delivered.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Control {
    /// Keep enumerating.
    Continue,
    /// Stop as soon as possible (used for "first N results" experiments).
    Stop,
}

/// Receives maximal k-biplexes as they are produced.
pub trait SolutionSink {
    /// Called once per reported solution.
    fn on_solution(&mut self, solution: &Biplex) -> Control;
}

impl<F: FnMut(&Biplex) -> Control> SolutionSink for F {
    fn on_solution(&mut self, solution: &Biplex) -> Control {
        self(solution)
    }
}

/// Counts solutions without storing them.
#[derive(Debug, Default)]
pub struct CountingSink {
    /// Number of solutions seen so far.
    pub count: u64,
}

impl CountingSink {
    /// New counting sink.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SolutionSink for CountingSink {
    fn on_solution(&mut self, _solution: &Biplex) -> Control {
        self.count += 1;
        Control::Continue
    }
}

/// Collects every solution into a vector.
#[derive(Debug, Default)]
pub struct CollectSink {
    /// The collected solutions, in the order they were reported.
    pub solutions: Vec<Biplex>,
}

impl CollectSink {
    /// New collecting sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the sink, returning the solutions sorted canonically (handy
    /// for comparisons in tests). Defensively de-duplicates by canonical
    /// order — in *every* build profile — so that collecting from a stream
    /// and from a legacy entry point agree byte-for-byte even if an engine
    /// ever delivered a duplicate. A duplicate would still be an engine bug,
    /// but the sink's contract is to absorb it, not to panic on it (a
    /// `debug_assert` here used to make the defensive path untestable).
    pub fn into_sorted(mut self) -> Vec<Biplex> {
        self.solutions.sort();
        self.solutions.dedup();
        self.solutions
    }
}

impl SolutionSink for CollectSink {
    fn on_solution(&mut self, solution: &Biplex) -> Control {
        self.solutions.push(solution.clone());
        Control::Continue
    }
}

/// Collects at most `limit` solutions and then stops the enumeration — the
/// "return the first 1,000 MBPs" setting of the paper's experiments.
#[derive(Debug)]
pub struct FirstN {
    /// The collected solutions (at most `limit`).
    pub solutions: Vec<Biplex>,
    limit: usize,
}

impl FirstN {
    /// Stops after `limit` solutions.
    pub fn new(limit: usize) -> Self {
        FirstN { solutions: Vec::new(), limit }
    }

    /// Number of solutions collected.
    pub fn len(&self) -> usize {
        self.solutions.len()
    }

    /// `true` when nothing has been collected.
    pub fn is_empty(&self) -> bool {
        self.solutions.is_empty()
    }
}

impl SolutionSink for FirstN {
    fn on_solution(&mut self, solution: &Biplex) -> Control {
        if self.solutions.len() < self.limit {
            self.solutions.push(solution.clone());
        }
        if self.solutions.len() >= self.limit {
            Control::Stop
        } else {
            Control::Continue
        }
    }
}

/// Records the arrival time of every solution, from which the *delay* of the
/// enumeration (the paper's Figure 8 metric) is derived: the maximum of the
/// time to the first solution, the gaps between consecutive solutions, and
/// the time from the last solution to termination.
#[derive(Debug)]
pub struct DelayRecorder {
    start: Instant,
    arrivals: Vec<Duration>,
    count: u64,
}

impl Default for DelayRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl DelayRecorder {
    /// Starts the clock now.
    pub fn new() -> Self {
        DelayRecorder { start: Instant::now(), arrivals: Vec::new(), count: 0 }
    }

    /// Number of solutions observed.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Finishes the measurement and returns the delay statistics. Call this
    /// immediately after the enumeration returns.
    pub fn finish(self) -> DelayReport {
        let end = self.start.elapsed();
        let mut max_gap = Duration::ZERO;
        let mut prev = Duration::ZERO;
        for &t in &self.arrivals {
            max_gap = max_gap.max(t.saturating_sub(prev));
            prev = t;
        }
        max_gap = max_gap.max(end.saturating_sub(prev));
        let mean_gap =
            if self.arrivals.is_empty() { end } else { end / (self.arrivals.len() as u32 + 1) };
        DelayReport { solutions: self.count, total: end, max_delay: max_gap, mean_delay: mean_gap }
    }
}

impl SolutionSink for DelayRecorder {
    fn on_solution(&mut self, _solution: &Biplex) -> Control {
        self.count += 1;
        self.arrivals.push(self.start.elapsed());
        Control::Continue
    }
}

/// Delay statistics produced by [`DelayRecorder::finish`].
#[derive(Clone, Copy, Debug)]
pub struct DelayReport {
    /// Number of solutions reported.
    pub solutions: u64,
    /// Total running time.
    pub total: Duration,
    /// Maximum delay (the paper's metric).
    pub max_delay: Duration,
    /// Average time per solution (total / (#solutions + 1)).
    pub mean_delay: Duration,
}

/// Wraps another sink and only forwards solutions whose sides meet minimum
/// size thresholds — post-filtering used by baselines that cannot push the
/// size constraint into the search itself.
#[derive(Debug)]
pub struct SizeFilter<S> {
    inner: S,
    min_left: usize,
    min_right: usize,
    /// How many solutions were dropped by the filter.
    pub filtered_out: u64,
}

impl<S: SolutionSink> SizeFilter<S> {
    /// Forwards only solutions with `|L| ≥ min_left` and `|R| ≥ min_right`.
    pub fn new(inner: S, min_left: usize, min_right: usize) -> Self {
        SizeFilter { inner, min_left, min_right, filtered_out: 0 }
    }

    /// Returns the wrapped sink.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// Access to the wrapped sink.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: SolutionSink> SolutionSink for SizeFilter<S> {
    fn on_solution(&mut self, solution: &Biplex) -> Control {
        if solution.left.len() >= self.min_left && solution.right.len() >= self.min_right {
            self.inner.on_solution(solution)
        } else {
            self.filtered_out += 1;
            Control::Continue
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize) -> Vec<Biplex> {
        (0..n as u32).map(|i| Biplex::new(vec![i], vec![i, i + 1])).collect()
    }

    #[test]
    fn counting_sink_counts() {
        let mut sink = CountingSink::new();
        for b in sample(5) {
            assert_eq!(sink.on_solution(&b), Control::Continue);
        }
        assert_eq!(sink.count, 5);
    }

    #[test]
    fn collect_sink_collects_in_order() {
        let mut sink = CollectSink::new();
        for b in sample(3) {
            sink.on_solution(&b);
        }
        assert_eq!(sink.solutions.len(), 3);
        assert_eq!(sink.solutions[0].left, vec![0]);
        let sorted = sink.into_sorted();
        assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn collect_sink_dedups_duplicate_delivery() {
        // Regression: a duplicate delivered through the sink must be folded
        // away by `into_sorted` instead of tripping an assertion — the
        // defensive dedup has to be exercisable in test builds too.
        let mut sink = CollectSink::new();
        let dup = Biplex::new(vec![1, 2], vec![3]);
        sink.on_solution(&dup);
        sink.on_solution(&Biplex::new(vec![0], vec![1]));
        sink.on_solution(&dup);
        let sorted = sink.into_sorted();
        assert_eq!(sorted.len(), 2);
        assert!(sorted.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn first_n_stops() {
        let mut sink = FirstN::new(2);
        let items = sample(5);
        assert_eq!(sink.on_solution(&items[0]), Control::Continue);
        assert_eq!(sink.on_solution(&items[1]), Control::Stop);
        assert_eq!(sink.len(), 2);
        assert!(!sink.is_empty());
        // Delivering more keeps signalling stop and does not grow the buffer.
        assert_eq!(sink.on_solution(&items[2]), Control::Stop);
        assert_eq!(sink.len(), 2);
    }

    #[test]
    fn first_zero_immediately_stops() {
        let mut sink = FirstN::new(0);
        assert_eq!(sink.on_solution(&sample(1)[0]), Control::Stop);
        assert!(sink.is_empty());
    }

    #[test]
    fn delay_recorder_reports_gaps() {
        let mut rec = DelayRecorder::new();
        for b in sample(3) {
            rec.on_solution(&b);
        }
        assert_eq!(rec.count(), 3);
        let report = rec.finish();
        assert_eq!(report.solutions, 3);
        assert!(report.max_delay <= report.total);
        assert!(report.mean_delay <= report.total);
    }

    #[test]
    fn delay_recorder_with_no_solutions() {
        let rec = DelayRecorder::new();
        let report = rec.finish();
        assert_eq!(report.solutions, 0);
        assert_eq!(report.max_delay, report.total);
    }

    #[test]
    fn size_filter_forwards_only_large() {
        let mut sink = SizeFilter::new(CollectSink::new(), 1, 2);
        sink.on_solution(&Biplex::new(vec![1], vec![1, 2]));
        sink.on_solution(&Biplex::new(vec![1], vec![1]));
        sink.on_solution(&Biplex::new(vec![], vec![1, 2, 3]));
        assert_eq!(sink.filtered_out, 2);
        assert_eq!(sink.inner().solutions.len(), 1);
        assert_eq!(sink.into_inner().solutions[0].right, vec![1, 2]);
    }

    #[test]
    fn closures_are_sinks() {
        let mut seen = 0;
        let mut sink = |_: &Biplex| {
            seen += 1;
            Control::Continue
        };
        for b in sample(4) {
            SolutionSink::on_solution(&mut sink, &b);
        }
        assert_eq!(seen, 4);
    }
}
