//! The `EnumAlmostSat` procedure (Section 4 of the paper).
//!
//! Given a solution `H = (L, R)` (a k-biplex) and a new left vertex
//! `v ∉ L`, the *almost-satisfying graph* is `G[L ∪ {v} ∪ R]`. The
//! procedure enumerates every *local solution*: a k-biplex that contains
//! `v` and is maximal **within the almost-satisfying graph** (it may or may
//! not be maximal within `G`).
//!
//! Five implementations are provided, matching the paper's Figure 12:
//!
//! * the refined enumerations `L1.0/R1.0`, `L1.0/R2.0`, `L2.0/R1.0`,
//!   `L2.0/R2.0` (Sections 4.1–4.4), implemented in [`refined`];
//! * `Inflation`, which inflates the almost-satisfying graph and enumerates
//!   maximal (k+1)-plexes containing `v` with the `kplex` crate — the
//!   implementation the paper attributes to the original `bTraversal`.
//!
//! New vertices on the *right* side (needed by `bTraversal`, which forms
//! almost-satisfying graphs from both sides) are handled by the caller via
//! the transposed graph and [`PartialBiplex::flipped`]
//! (see `traversal::Engine`).

pub mod inflation;
pub mod refined;

use bigraph::BipartiteGraph;

use crate::biplex::{Biplex, PartialBiplex};

/// Which `EnumAlmostSat` implementation to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EnumKind {
    /// Refined enumeration on `L` 1.0 + on `R` 1.0 (no Lemma 4.2 pruning,
    /// no superset pruning).
    L1R1,
    /// `L` 1.0 + `R` 2.0 (Lemma 4.2 pruning on the right side).
    L1R2,
    /// `L` 2.0 + `R` 1.0 (superset pruning on the left side).
    L2R1,
    /// `L` 2.0 + `R` 2.0 — the algorithm the paper ships (Algorithm 3).
    L2R2,
    /// Graph inflation + local maximal (k+1)-plex enumeration.
    Inflation,
}

impl EnumKind {
    /// All variants, in the order used by the Figure 12 experiment.
    pub const ALL: [EnumKind; 5] =
        [EnumKind::L1R1, EnumKind::L1R2, EnumKind::L2R1, EnumKind::L2R2, EnumKind::Inflation];

    /// Human-readable label matching the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            EnumKind::L1R1 => "L1.0+R1.0",
            EnumKind::L1R2 => "L1.0+R2.0",
            EnumKind::L2R1 => "L2.0+R1.0",
            EnumKind::L2R2 => "L2.0+R2.0",
            EnumKind::Inflation => "Inflation",
        }
    }
}

impl std::fmt::Display for EnumKind {
    /// Stable lowercase wire code (the figure-style [`EnumKind::label`] is
    /// kept for display in benches and plots).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            EnumKind::L1R1 => "l1r1",
            EnumKind::L1R2 => "l1r2",
            EnumKind::L2R1 => "l2r1",
            EnumKind::L2R2 => "l2r2",
            EnumKind::Inflation => "inflation",
        })
    }
}

impl std::str::FromStr for EnumKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "l1r1" => Ok(EnumKind::L1R1),
            "l1r2" => Ok(EnumKind::L1R2),
            "l2r1" => Ok(EnumKind::L2R1),
            "l2r2" => Ok(EnumKind::L2R2),
            "inflation" => Ok(EnumKind::Inflation),
            other => Err(format!(
                "unknown enum-almost-sat kind {other:?} (expected l1r1, l1r2, l2r1, l2r2 or inflation)"
            )),
        }
    }
}

/// Work counters for one `EnumAlmostSat` invocation (accumulated across a
/// traversal by [`crate::stats::TraversalStats`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AlmostSatStats {
    /// Subsets `R''` of `R_enum` examined.
    pub r_combinations: u64,
    /// Removal sets `L̄'` examined.
    pub l_candidates: u64,
    /// Local solutions reported.
    pub local_solutions: u64,
}

impl AlmostSatStats {
    /// Accumulates another invocation's counters.
    pub fn absorb(&mut self, other: &AlmostSatStats) {
        self.r_combinations += other.r_combinations;
        self.l_candidates += other.l_candidates;
        self.local_solutions += other.local_solutions;
    }
}

/// Enumerates the local solutions of the almost-satisfying graph
/// `(host.left ∪ {v}, host.right)` where `v` is a **left** vertex of `g`
/// not contained in `host.left`, and `host` is a k-biplex of `g`.
///
/// Each local solution is passed to `emit` (its left side contains `v`).
/// `emit` returns `false` to stop the enumeration early (propagating the
/// caller's "first N results" cut-off into the innermost loops, which is
/// what keeps the delay small in practice).
///
/// Returns the per-invocation statistics.
pub fn enum_almost_sat<F>(
    g: &BipartiteGraph,
    k: usize,
    kind: EnumKind,
    host: &PartialBiplex,
    v: u32,
    emit: F,
) -> AlmostSatStats
where
    F: FnMut(Biplex) -> bool,
{
    debug_assert!(!host.contains_left(v), "v must be outside the host solution");
    debug_assert!(host.is_k_biplex(k), "the host must be a k-biplex");
    match kind {
        EnumKind::Inflation => inflation::enumerate(g, k, host, v, emit),
        _ => refined::enumerate(g, k, kind, host, v, emit),
    }
}

/// Collects the local solutions into a vector (convenience for tests and
/// small harness utilities).
pub fn collect_local_solutions(
    g: &BipartiteGraph,
    k: usize,
    kind: EnumKind,
    host: &PartialBiplex,
    v: u32,
) -> (Vec<Biplex>, AlmostSatStats) {
    let mut out = Vec::new();
    let stats = enum_almost_sat(g, k, kind, host, v, |b| {
        out.push(b);
        true
    });
    (out, stats)
}

/// Reference implementation used by tests: checks whether `(left, right)`
/// is a local solution of the almost-satisfying graph
/// `(host_left ∪ {v}, host_right)` — i.e. a k-biplex containing `v` that is
/// maximal with respect to adding any vertex of the almost-satisfying graph.
pub fn is_local_solution(
    g: &BipartiteGraph,
    k: usize,
    host_left: &[u32],
    host_right: &[u32],
    v: u32,
    left: &[u32],
    right: &[u32],
) -> bool {
    if !left.contains(&v) {
        return false;
    }
    if !crate::biplex::is_k_biplex(g, left, right, k) {
        return false;
    }
    let partial = PartialBiplex::from_sets(g, left, right);
    // Maximality within the almost-satisfying universe.
    for &w in host_left.iter().chain(std::iter::once(&v)) {
        if !partial.contains_left(w) && partial.can_add_left(g, w, k) {
            return false;
        }
    }
    for &u in host_right {
        if !partial.contains_right(u) && partial.can_add_right(g, u, k) {
            return false;
        }
    }
    true
}

/// Brute-force local enumeration used as a test oracle: enumerates every
/// subset pair of the almost-satisfying graph (exponential — only for tiny
/// hosts) and keeps the local solutions.
pub fn brute_force_local_solutions(
    g: &BipartiteGraph,
    k: usize,
    host_left: &[u32],
    host_right: &[u32],
    v: u32,
) -> Vec<Biplex> {
    assert!(host_left.len() <= 12 && host_right.len() <= 12);
    let mut out = Vec::new();
    for lmask in 0u32..(1 << host_left.len()) {
        let mut left: Vec<u32> = host_left
            .iter()
            .enumerate()
            .filter_map(|(i, &w)| (lmask & (1 << i) != 0).then_some(w))
            .collect();
        left.push(v);
        left.sort_unstable();
        for rmask in 0u32..(1 << host_right.len()) {
            let right: Vec<u32> = host_right
                .iter()
                .enumerate()
                .filter_map(|(i, &u)| (rmask & (1 << i) != 0).then_some(u))
                .collect();
            if is_local_solution(g, k, host_left, host_right, v, &left, &right) {
                out.push(Biplex::new(left.clone(), right));
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigraph::BipartiteGraph;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_graph(nl: u32, nr: u32, p: f64, seed: u64) -> BipartiteGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut edges = Vec::new();
        for v in 0..nl {
            for u in 0..nr {
                if rng.gen_bool(p) {
                    edges.push((v, u));
                }
            }
        }
        BipartiteGraph::from_edges(nl, nr, &edges).unwrap()
    }

    /// Builds a random host solution: a maximal k-biplex of the graph.
    fn random_host(g: &BipartiteGraph, k: usize, seed: u64) -> PartialBiplex {
        use crate::extend::{extend_to_maximal, ExtendMode};
        let mut rng = StdRng::seed_from_u64(seed);
        let v = rng.gen_range(0..g.num_left());
        let u = rng.gen_range(0..g.num_right());
        let mut p = if g.has_edge(v, u) || k >= 1 {
            PartialBiplex::from_sets(g, &[v], &[u])
        } else {
            PartialBiplex::from_sets(g, &[v], &[])
        };
        extend_to_maximal(g, &mut p, k, ExtendMode::BothSides);
        p
    }

    #[test]
    fn every_refined_variant_matches_the_brute_force_oracle() {
        for seed in 0..25u64 {
            let g = random_graph(6, 6, 0.55, seed);
            for k in 0..=2usize {
                let host = random_host(&g, k, seed * 31 + k as u64);
                // Pick a left vertex outside the host, if any.
                let v = (0..g.num_left()).find(|&v| !host.contains_left(v));
                let Some(v) = v else { continue };
                let expected = brute_force_local_solutions(&g, k, host.left(), host.right(), v);
                for kind in EnumKind::ALL {
                    let (mut got, _) = collect_local_solutions(&g, k, kind, &host, v);
                    got.sort();
                    got.dedup();
                    assert_eq!(
                        got,
                        expected,
                        "seed {seed} k {k} kind {kind:?} host=({:?},{:?}) v={v}",
                        host.left(),
                        host.right()
                    );
                }
            }
        }
    }

    #[test]
    fn emitted_solutions_are_local_solutions() {
        for seed in 100..110u64 {
            let g = random_graph(8, 8, 0.5, seed);
            let k = 1;
            let host = random_host(&g, k, seed);
            let Some(v) = (0..g.num_left()).find(|&v| !host.contains_left(v)) else {
                continue;
            };
            let (got, stats) = collect_local_solutions(&g, k, EnumKind::L2R2, &host, v);
            assert_eq!(stats.local_solutions as usize, got.len());
            for sol in got {
                assert!(sol.contains_left(v));
                assert!(is_local_solution(
                    &g,
                    k,
                    host.left(),
                    host.right(),
                    v,
                    &sol.left,
                    &sol.right
                ));
            }
        }
    }

    #[test]
    fn early_stop_propagates() {
        let g = random_graph(8, 8, 0.5, 7);
        let k = 2;
        let host = random_host(&g, k, 7);
        let Some(v) = (0..g.num_left()).find(|&v| !host.contains_left(v)) else {
            return;
        };
        let mut seen = 0;
        enum_almost_sat(&g, k, EnumKind::L2R2, &host, v, |_| {
            seen += 1;
            seen < 2
        });
        assert!(seen <= 2);
    }

    #[test]
    fn pruned_variants_do_no_more_work() {
        // R2.0 must examine at most as many R'' combinations as R1.0, and
        // L2.0 at most as many removal sets as L1.0.
        for seed in 0..10u64 {
            let g = random_graph(7, 7, 0.5, seed);
            let k = 2;
            let host = random_host(&g, k, seed + 99);
            let Some(v) = (0..g.num_left()).find(|&v| !host.contains_left(v)) else {
                continue;
            };
            let (_, s11) = collect_local_solutions(&g, k, EnumKind::L1R1, &host, v);
            let (_, s12) = collect_local_solutions(&g, k, EnumKind::L1R2, &host, v);
            let (_, s21) = collect_local_solutions(&g, k, EnumKind::L2R1, &host, v);
            let (_, s22) = collect_local_solutions(&g, k, EnumKind::L2R2, &host, v);
            assert!(s12.r_combinations <= s11.r_combinations, "seed {seed}");
            assert!(s22.r_combinations <= s21.r_combinations, "seed {seed}");
            assert!(s21.l_candidates <= s11.l_candidates, "seed {seed}");
            assert!(s22.l_candidates <= s12.l_candidates, "seed {seed}");
            assert_eq!(s11.local_solutions, s22.local_solutions, "seed {seed}");
        }
    }

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::HashSet<&str> =
            EnumKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), EnumKind::ALL.len());
    }

    #[test]
    fn stats_absorb_accumulates() {
        let mut a = AlmostSatStats { r_combinations: 1, l_candidates: 2, local_solutions: 3 };
        let b = AlmostSatStats { r_combinations: 10, l_candidates: 20, local_solutions: 30 };
        a.absorb(&b);
        assert_eq!(a.r_combinations, 11);
        assert_eq!(a.l_candidates, 22);
        assert_eq!(a.local_solutions, 33);
    }
}
