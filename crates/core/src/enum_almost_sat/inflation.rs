//! Inflation-based implementation of `EnumAlmostSat`.
//!
//! This is the implementation the paper attributes to the original
//! `bTraversal`: the almost-satisfying graph `(L ∪ {v}, R)` is inflated
//! into a general graph (same-side vertices become mutually adjacent) and
//! the maximal (k+1)-plexes containing `v` are enumerated with the `kplex`
//! crate; those are exactly the local solutions. It serves as the baseline
//! in the Figure 12 comparison of `EnumAlmostSat` implementations.

use bigraph::general::GraphView;
use bigraph::BipartiteGraph;

use crate::biplex::{Biplex, PartialBiplex};

use super::AlmostSatStats;

/// Implicit inflated view of one almost-satisfying graph. Vertex ids:
/// `0..|L|` are the host's left vertices, `|L|` is the new vertex `v`, and
/// `|L|+1..` are the host's right vertices.
struct LocalInflatedView<'a> {
    g: &'a BipartiteGraph,
    left: &'a [u32],
    right: &'a [u32],
    v: u32,
}

impl LocalInflatedView<'_> {
    /// Maps a local id to the original graph: `(is_left, original_id)`.
    #[inline]
    fn original(&self, id: u32) -> (bool, u32) {
        let id = id as usize;
        if id < self.left.len() {
            (true, self.left[id])
        } else if id == self.left.len() {
            (true, self.v)
        } else {
            (false, self.right[id - self.left.len() - 1])
        }
    }
}

impl GraphView for LocalInflatedView<'_> {
    fn num_vertices(&self) -> usize {
        self.left.len() + 1 + self.right.len()
    }

    fn adjacent(&self, a: u32, b: u32) -> bool {
        if a == b {
            return false;
        }
        let (al, ao) = self.original(a);
        let (bl, bo) = self.original(b);
        if al == bl {
            // Same side of the bipartition: adjacent in the inflation
            // (distinct original vertices; v never collides with host.left).
            true
        } else if al {
            self.g.has_edge(ao, bo)
        } else {
            self.g.has_edge(bo, ao)
        }
    }

    fn degree(&self, a: u32) -> usize {
        (0..self.num_vertices() as u32).filter(|&b| b != a && self.adjacent(a, b)).count()
    }

    fn neighbors_into(&self, a: u32, out: &mut Vec<u32>) {
        out.clear();
        for b in 0..self.num_vertices() as u32 {
            if b != a && self.adjacent(a, b) {
                out.push(b);
            }
        }
    }
}

/// Enumerates the local solutions via inflation + seeded maximal
/// (k+1)-plex enumeration.
pub(super) fn enumerate<F>(
    g: &BipartiteGraph,
    k: usize,
    host: &PartialBiplex,
    v: u32,
    mut emit: F,
) -> AlmostSatStats
where
    F: FnMut(Biplex) -> bool,
{
    let view = LocalInflatedView { g, left: host.left(), right: host.right(), v };
    let seed = host.left().len() as u32; // local id of `v`
    let config = kplex::PlexConfig::new(k + 1).with_must_include(seed);

    let mut stats = AlmostSatStats::default();
    let plex_stats = kplex::enumerate_maximal_plexes(&view, &config, |plex| {
        let mut left = Vec::new();
        let mut right = Vec::new();
        for &id in plex {
            let (is_left, orig) = view.original(id);
            if is_left {
                left.push(orig);
            } else {
                right.push(orig);
            }
        }
        stats.local_solutions += 1;
        emit(Biplex::new(left, right))
    });
    // The search-tree size plays the role of the "combinations examined"
    // counter so that Figure 12 can compare work across implementations.
    stats.r_combinations = plex_stats.nodes;
    stats.l_candidates = plex_stats.nodes;
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enum_almost_sat::{brute_force_local_solutions, EnumKind};

    impl LocalInflatedView<'_> {
        /// Number of left vertices of the local view, `|L| + 1` (the host's
        /// left side plus the new vertex `v`). Only the tests need this;
        /// production code works through the `LocalGraph` trait.
        fn left_count(&self) -> usize {
            self.left.len() + 1
        }
    }

    #[test]
    fn inflation_matches_brute_force() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        for seed in 0..15u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut edges = Vec::new();
            for v in 0u32..6 {
                for u in 0u32..6 {
                    if rng.gen_bool(0.5) {
                        edges.push((v, u));
                    }
                }
            }
            let g = BipartiteGraph::from_edges(6, 6, &edges).unwrap();
            for k in 1..=2usize {
                let mut host = PartialBiplex::from_sets(&g, &[0], &[]);
                crate::extend::extend_to_maximal(
                    &g,
                    &mut host,
                    k,
                    crate::extend::ExtendMode::BothSides,
                );
                let Some(v) = (0..g.num_left()).find(|&x| !host.contains_left(x)) else {
                    continue;
                };
                let expected = brute_force_local_solutions(&g, k, host.left(), host.right(), v);
                let (mut got, _) = crate::enum_almost_sat::collect_local_solutions(
                    &g,
                    k,
                    EnumKind::Inflation,
                    &host,
                    v,
                );
                got.sort();
                got.dedup();
                assert_eq!(got, expected, "seed {seed} k {k}");
            }
        }
    }

    #[test]
    fn local_view_adjacency() {
        let g = BipartiteGraph::from_edges(3, 3, &[(0, 0), (1, 1), (2, 2), (0, 1)]).unwrap();
        let host = PartialBiplex::from_sets(&g, &[0, 1], &[0, 1]);
        let view = LocalInflatedView { g: &g, left: host.left(), right: host.right(), v: 2 };
        assert_eq!(view.num_vertices(), 5);
        // ids: 0 -> left0, 1 -> left1, 2 -> v(=left2), 3 -> right0, 4 -> right1
        assert!(view.adjacent(0, 1));
        assert!(view.adjacent(0, 2));
        assert!(view.adjacent(3, 4));
        assert!(view.adjacent(0, 3)); // (0,0) edge
        assert!(view.adjacent(0, 4)); // (0,1) edge
        assert!(!view.adjacent(1, 3)); // (1,0) missing
        assert!(!view.adjacent(2, 3)); // (2,0) missing
        assert!(!view.adjacent(2, 2));
        assert_eq!(view.left_count(), 3);
        assert_eq!(view.degree(2), 2); // adjacent to the two left vertices only
        let mut out = Vec::new();
        view.neighbors_into(2, &mut out);
        assert_eq!(out, vec![0, 1]);
    }
}
