//! The refined `EnumAlmostSat` enumerations of Sections 4.1–4.4
//! (Algorithm 3), parameterized by the four `L{1,2}.0 + R{1,2}.0` variants.
//!
//! Outline (new vertex `v` on the left, host solution `(L, R)`):
//!
//! 1. `R` is split into `R_keep` (neighbours of `v`; in every local solution
//!    by Lemma 4.1) and `R_enum` (non-neighbours of `v`).
//! 2. Subsets `R'' ⊆ R_enum` with `|R''| ≤ k` are enumerated. The R2.0
//!    refinement partitions `R_enum` into `R¹` (`δ̄(u,L) ≤ k−1`) and `R²`
//!    (`δ̄(u,L) = k`) and skips — by Lemma 4.2 — every combination with
//!    `|R''| < k` that does not contain the whole of `R¹`.
//! 3. For each `R' = R_keep ∪ R''`, the only vertices violating the
//!    k-biplex condition in `(L ∪ {v}, R')` are the `R²`-members of `R''`
//!    (Lemma 4.3); they are repaired by removing a set `L̄'` of at most
//!    `|R'' ∩ R²|` vertices chosen from `L_remo` (the vertices missing at
//!    least one violator). The L2.0 refinement prunes supersets of removal
//!    sets that already produced a local solution.
//! 4. Each candidate `(L \ L̄' ∪ {v}, R')` is kept iff it is a *local
//!    solution*; the checks below exploit the structure of the
//!    almost-satisfying graph so that each candidate costs `O(k²)` after an
//!    `O(Σ deg)` per-invocation precomputation (rather than the naive
//!    `O(|L|·|R|)` bound used in the paper's analysis).

use bigraph::BipartiteGraph;

use crate::biplex::{Biplex, PartialBiplex};

use super::{AlmostSatStats, EnumKind};

/// Runs the refined enumeration. See the module documentation.
pub(super) fn enumerate<F>(
    g: &BipartiteGraph,
    k: usize,
    kind: EnumKind,
    host: &PartialBiplex,
    v: u32,
    mut emit: F,
) -> AlmostSatStats
where
    F: FnMut(Biplex) -> bool,
{
    let l2 = matches!(kind, EnumKind::L2R1 | EnumKind::L2R2);
    let r2_refined = matches!(kind, EnumKind::L1R2 | EnumKind::L2R2);
    let mut stats = AlmostSatStats::default();

    // ---- Step 1: partition R into R_keep / R_enum -------------------------
    let nbrs = g.left_neighbors(v);
    let mut r_keep: Vec<u32> = Vec::new();
    let mut r_enum: Vec<(u32, u32)> = Vec::new(); // (vertex, δ̄(u, L))
    let mut ni = 0;
    for (idx, &u) in host.right().iter().enumerate() {
        while ni < nbrs.len() && nbrs[ni] < u {
            ni += 1;
        }
        if ni < nbrs.len() && nbrs[ni] == u {
            r_keep.push(u);
        } else {
            r_enum.push((u, host.right_miss(idx)));
        }
    }

    // R¹ (slack remaining) and R² (saturated) within R_enum.
    let r1: Vec<u32> = r_enum.iter().filter(|&&(_, m)| (m as usize) < k).map(|&(u, _)| u).collect();
    let r2: Vec<u32> = r_enum.iter().filter(|&&(_, m)| m as usize == k).map(|&(u, _)| u).collect();

    // Precompute |N(w) ∩ R²| for every host-left vertex `w` (by position in
    // host.left()). Used by the O(k²) right-maximality test.
    let mut adj_r2 = vec![0u32; host.left().len()];
    for &u in &r2 {
        for &w in g.right_neighbors(u) {
            if let Ok(pos) = host.left().binary_search(&w) {
                adj_r2[pos] += 1;
            }
        }
    }

    let ctx = ComboContext {
        g,
        k,
        l2,
        host,
        v,
        r_keep: &r_keep,
        r1_len: r1.len(),
        r2_all: &r2,
        adj_r2: &adj_r2,
    };

    // ---- Step 2: enumerate R'' combinations --------------------------------
    let mut stopped = false;
    if r2_refined {
        // Case A: R''₁ = R¹ entirely (possible only when |R¹| ≤ k), any
        // R''₂ with |R¹| + |R''₂| ≤ k.
        if r1.len() <= k && !stopped {
            let budget = k - r1.len();
            for s2 in 0..=budget.min(r2.len()) {
                if stopped {
                    break;
                }
                for_each_subset(&r2, s2, &mut |r2_part| {
                    let cont = ctx.process_combo(&r1, r2_part, &mut stats, &mut emit);
                    if !cont {
                        stopped = true;
                    }
                    cont
                });
            }
        }
        // Case B: |R''| = k with a proper subset of R¹.
        for t1 in 0..=k.min(r1.len()) {
            if stopped {
                break;
            }
            if t1 == r1.len() && r1.len() <= k {
                continue; // covered by case A
            }
            let s2 = k - t1;
            if s2 > r2.len() {
                continue;
            }
            for_each_subset(&r1, t1, &mut |r1_part| {
                let mut keep_going = true;
                for_each_subset(&r2, s2, &mut |r2_part| {
                    let cont = ctx.process_combo(r1_part, r2_part, &mut stats, &mut emit);
                    if !cont {
                        stopped = true;
                        keep_going = false;
                    }
                    cont
                });
                keep_going && !stopped
            });
        }
    } else {
        // R1.0: every subset of R_enum with at most k vertices, split into
        // its R¹ / R² parts for the downstream processing.
        let all: Vec<u32> = r_enum.iter().map(|&(u, _)| u).collect();
        let is_r2: std::collections::HashSet<u32> = r2.iter().copied().collect();
        for size in 0..=k.min(all.len()) {
            if stopped {
                break;
            }
            for_each_subset(&all, size, &mut |subset| {
                let mut r1_part = Vec::with_capacity(subset.len());
                let mut r2_part = Vec::with_capacity(subset.len());
                for &u in subset {
                    if is_r2.contains(&u) {
                        r2_part.push(u);
                    } else {
                        r1_part.push(u);
                    }
                }
                let cont = ctx.process_combo(&r1_part, &r2_part, &mut stats, &mut emit);
                if !cont {
                    stopped = true;
                }
                cont
            });
        }
    }

    stats
}

/// Shared, read-only context for processing one `R''` combination.
struct ComboContext<'a> {
    g: &'a BipartiteGraph,
    k: usize,
    l2: bool,
    host: &'a PartialBiplex,
    v: u32,
    r_keep: &'a [u32],
    r1_len: usize,
    r2_all: &'a [u32],
    adj_r2: &'a [u32],
}

impl ComboContext<'_> {
    /// Processes one combination `R'' = r1_part ∪ r2_part`. Returns `false`
    /// if the caller asked to stop.
    fn process_combo<F>(
        &self,
        r1_part: &[u32],
        r2_part: &[u32],
        stats: &mut AlmostSatStats,
        emit: &mut F,
    ) -> bool
    where
        F: FnMut(Biplex) -> bool,
    {
        let g = self.g;
        let k = self.k;
        stats.r_combinations += 1;

        let total = r1_part.len() + r2_part.len();
        debug_assert!(total <= k);
        // Lemma 4.2: if |R''| < k and some R¹ vertex is left out, that
        // vertex can always be added to any candidate, so no local solution
        // exists for this R'. The R2.0 generation never produces such
        // combinations; under R1.0 they are produced and every candidate is
        // rejected below (reflecting the extra work R1.0 performs).
        let doomed = total < k && r1_part.len() < self.r1_len;

        // Violators (Lemma 4.3) and the removal pool.
        let v2 = r2_part;
        let l_remo: Vec<u32> = if v2.is_empty() {
            Vec::new()
        } else {
            self.host
                .left()
                .iter()
                .copied()
                .filter(|&w| v2.iter().any(|&u| !g.has_edge(w, u)))
                .collect()
        };

        // R' = R_keep ∪ R'' (sorted).
        let mut r_prime: Vec<u32> =
            Vec::with_capacity(self.r_keep.len() + r1_part.len() + r2_part.len());
        r_prime.extend_from_slice(self.r_keep);
        r_prime.extend_from_slice(r1_part);
        r_prime.extend_from_slice(r2_part);
        r_prime.sort_unstable();

        // ---- Steps 3 & 4: enumerate removal sets ---------------------------
        let mut successes: Vec<Vec<u32>> = Vec::new();
        let mut keep_going = true;
        for size in 0..=v2.len().min(l_remo.len()) {
            if !keep_going {
                break;
            }
            for_each_subset(&l_remo, size, &mut |removal| {
                stats.l_candidates += 1;
                if doomed {
                    return true;
                }
                // L2.0 superset pruning: a superset of a successful removal
                // set yields a strictly smaller left side with the same R',
                // hence cannot be maximal.
                if self.l2 && successes.iter().any(|s| s.iter().all(|x| removal.contains(x))) {
                    return true;
                }
                if !self.candidate_is_local_solution(total, v2, removal) {
                    return true;
                }
                stats.local_solutions += 1;
                if self.l2 {
                    successes.push(removal.to_vec());
                }
                // Assemble the local solution (host.left \ removal ∪ {v}, R').
                let mut left: Vec<u32> =
                    self.host.left().iter().copied().filter(|w| !removal.contains(w)).collect();
                let pos = left.binary_search(&self.v).unwrap_or_else(|p| p);
                left.insert(pos, self.v);
                if !emit(Biplex { left, right: r_prime.clone() }) {
                    keep_going = false;
                    return false;
                }
                true
            });
        }
        keep_going
    }

    /// Exact check that `(host.left \ removal ∪ {v}, R_keep ∪ R'')` is a
    /// local solution, using the structural facts derived from the host
    /// being a k-biplex (see the module documentation). `O(k²)` per call.
    /// `total` is `|R''|`.
    fn candidate_is_local_solution(&self, total: usize, v2: &[u32], removal: &[u32]) -> bool {
        let g = self.g;
        let k = self.k;

        // (a) Validity: every violator must lose at least one non-neighbour.
        for &u in v2 {
            if !removal.iter().any(|&w| !g.has_edge(w, u)) {
                return false;
            }
        }

        // (b) Left maximality: every removed vertex must be blocked from
        // re-insertion, i.e. some violator u misses w and no *other* removed
        // vertex (u stays saturated at k once w returns).
        for &w in removal {
            let blocked = v2.iter().any(|&u| {
                !g.has_edge(w, u) && removal.iter().all(|&w2| w2 == w || g.has_edge(w2, u))
            });
            if !blocked {
                return false;
            }
        }

        // (c) Right maximality. When |R''| = k, the new vertex v is
        // saturated and no further right vertex fits. Otherwise (|R''| < k)
        // a left-out R¹ vertex is always addable (handled by the caller via
        // `doomed`), and a left-out R² vertex is addable iff one of its
        // non-neighbours was removed.
        if total < k {
            for &w in removal {
                let Ok(pos) = self.host.left().binary_search(&w) else {
                    unreachable!("removal vertices come from the host left side")
                };
                // non-neighbours of w inside R² \ R''₂
                let miss_in_r2_all = self.r2_all.len() as u32 - self.adj_r2[pos];
                let miss_in_r2_part = v2.iter().filter(|&&u| !g.has_edge(w, u)).count() as u32;
                if miss_in_r2_all > miss_in_r2_part {
                    // Some outside saturated vertex regained slack: addable.
                    return false;
                }
            }
        }
        true
    }
}

/// Calls `f` for every subset of `items` with exactly `size` elements, in
/// lexicographic order of indices. `f` returns `false` to stop; the function
/// then returns `false` as well.
pub(crate) fn for_each_subset<F>(items: &[u32], size: usize, f: &mut F) -> bool
where
    F: FnMut(&[u32]) -> bool,
{
    fn rec<F: FnMut(&[u32]) -> bool>(
        items: &[u32],
        size: usize,
        start: usize,
        scratch: &mut Vec<u32>,
        f: &mut F,
    ) -> bool {
        if scratch.len() == size {
            return f(scratch);
        }
        let remaining = size - scratch.len();
        let mut i = start;
        while i + remaining <= items.len() {
            scratch.push(items[i]);
            let cont = rec(items, size, i + 1, scratch, f);
            scratch.pop();
            if !cont {
                return false;
            }
            i += 1;
        }
        true
    }
    if size > items.len() {
        return true;
    }
    let mut scratch = Vec::with_capacity(size);
    rec(items, size, 0, &mut scratch, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subsets_of_each_size() {
        let items = [10u32, 20, 30, 40];
        let mut all = Vec::new();
        for size in 0..=4 {
            for_each_subset(&items, size, &mut |s| {
                all.push(s.to_vec());
                true
            });
        }
        assert_eq!(all.len(), 16);
        assert!(all.contains(&vec![]));
        assert!(all.contains(&vec![10, 30, 40]));
        assert!(all.contains(&vec![10, 20, 30, 40]));
    }

    #[test]
    fn subsets_respect_early_stop() {
        let items = [1u32, 2, 3, 4, 5];
        let mut count = 0;
        let finished = for_each_subset(&items, 2, &mut |_| {
            count += 1;
            count < 3
        });
        assert!(!finished);
        assert_eq!(count, 3);
    }

    #[test]
    fn oversized_subset_request_is_empty() {
        let items = [1u32, 2];
        let mut count = 0;
        assert!(for_each_subset(&items, 5, &mut |_| {
            count += 1;
            true
        }));
        assert_eq!(count, 0);
    }
}
