//! The reverse-search traversal engine.
//!
//! One engine implements both frameworks of the paper:
//!
//! * **bTraversal** (Algorithm 1): arbitrary initial solution, candidate
//!   vertices from both sides, both-side extension, no pruning of the
//!   solution graph.
//! * **iTraversal** (Algorithm 2): designated initial solution
//!   `H0 = (L0, R)`, left-anchored traversal, right-shrinking traversal and
//!   the exclusion strategy, each individually toggleable so that the
//!   ablation variants of Figure 11 (`iTraversal-ES`, `iTraversal-ES-RS`)
//!   fall out of the same code path.
//!
//! The DFS over the implicit solution graph is driven by an explicit stack
//! (no recursion), so arbitrarily deep solution graphs cannot overflow the
//! call stack. Size thresholds for *large MBP* enumeration (Section 5) are
//! applied inside the engine: almost-satisfying-graph pruning,
//! local-solution pruning, solution pruning and the exclusion-based
//! left-side pruning.

use std::time::Instant;

use bigraph::intersect::{intersects, set_thread_kernel, Kernel};
use bigraph::order::{Relabeling, VertexOrder};
use bigraph::{BipartiteGraph, Side, VertexRef};

use crate::biplex::{sorted_intersection_len, Biplex, PartialBiplex};
use crate::enum_almost_sat::{enum_almost_sat, EnumKind};
use crate::extend::{extend_to_maximal, right_extension_candidates, ExtendMode};
use crate::initial::{initial_arbitrary, initial_left_anchored};
use crate::sink::{Control, SolutionSink};
use crate::stats::TraversalStats;
use crate::store::{HashStore, SolutionStore};

/// Which designated initial solution the traversal starts from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Anchor {
    /// `H0 = (L0, R)` — the left-anchored proposal of Section 3.2.
    Left,
    /// `H0 = (L, R0)` — the symmetric proposal, evaluated in Section 6.2.
    Right,
    /// Any maximal k-biplex (greedy extension of the empty subgraph) — what
    /// `bTraversal` uses.
    Arbitrary,
}

impl std::fmt::Display for Anchor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Anchor::Left => "left",
            Anchor::Right => "right",
            Anchor::Arbitrary => "arbitrary",
        })
    }
}

impl std::str::FromStr for Anchor {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "left" => Ok(Anchor::Left),
            "right" => Ok(Anchor::Right),
            "arbitrary" => Ok(Anchor::Arbitrary),
            other => Err(format!("unknown anchor {other:?} (expected left, right or arbitrary)")),
        }
    }
}

/// When solutions are handed to the sink.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EmitMode {
    /// As soon as a solution is discovered (best practical delay, and the
    /// mode required for early-stopping "first N" runs).
    Immediate,
    /// The alternating pre/post-order output trick of Takeaki Uno used in
    /// the paper's delay analysis: a solution is emitted when its DFS frame
    /// is *pushed* on even depths and when it is *popped* on odd depths,
    /// which guarantees at least one output every two recursive calls.
    Alternating,
}

impl std::fmt::Display for EmitMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            EmitMode::Immediate => "immediate",
            EmitMode::Alternating => "alternating",
        })
    }
}

impl std::str::FromStr for EmitMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "immediate" => Ok(EmitMode::Immediate),
            "alternating" => Ok(EmitMode::Alternating),
            other => {
                Err(format!("unknown emit mode {other:?} (expected immediate or alternating)"))
            }
        }
    }
}

/// Full configuration of a traversal run.
#[derive(Clone, Debug)]
pub struct TraversalConfig {
    /// The `k` of the k-biplex definition.
    pub k: usize,
    /// Which `EnumAlmostSat` implementation to use (Figure 12 knob).
    pub enum_kind: EnumKind,
    /// Restrict candidate vertices to the left side (left-anchored
    /// traversal, Section 3.3).
    pub left_anchored: bool,
    /// Keep only right-shrinking links (Section 3.4).
    pub right_shrinking: bool,
    /// Enable the exclusion strategy (Section 3.5).
    pub exclusion: bool,
    /// Initial solution.
    pub anchor: Anchor,
    /// Output timing.
    pub emit: EmitMode,
    /// Minimum left-side size of reported MBPs (`0` disables — Section 5).
    pub theta_left: usize,
    /// Minimum right-side size of reported MBPs (`0` disables — Section 5).
    pub theta_right: usize,
    /// Vertex relabeling applied before the run; solutions are mapped back
    /// to the input ids, so the reported set is unchanged.
    pub order: VertexOrder,
    /// Wall-clock deadline checked at every DFS step (how the facade's
    /// `time_budget` reaches a run whose deliveries are sparse or filtered).
    /// `None` disables the check.
    pub deadline: Option<Instant>,
    /// Intersection kernel installed for the run ([`Kernel::Auto`] applies
    /// the measured crossover heuristic; the rest force one kernel for A/B
    /// comparisons — the CLI's `--kernel`).
    pub kernel: Kernel,
}

impl TraversalConfig {
    /// The full `iTraversal` configuration (left-anchored + right-shrinking
    /// + exclusion strategy, `L2.0+R2.0` local enumeration).
    pub fn itraversal(k: usize) -> Self {
        TraversalConfig {
            k,
            enum_kind: EnumKind::L2R2,
            left_anchored: true,
            right_shrinking: true,
            exclusion: true,
            anchor: Anchor::Left,
            emit: EmitMode::Immediate,
            theta_left: 0,
            theta_right: 0,
            order: VertexOrder::Input,
            deadline: None,
            kernel: Kernel::Auto,
        }
    }

    /// `iTraversal-ES`: the full version *without* the exclusion strategy.
    pub fn itraversal_no_exclusion(k: usize) -> Self {
        TraversalConfig { exclusion: false, ..Self::itraversal(k) }
    }

    /// `iTraversal-ES-RS`: left-anchored traversal only (no right-shrinking,
    /// no exclusion strategy).
    pub fn itraversal_left_anchored_only(k: usize) -> Self {
        TraversalConfig { exclusion: false, right_shrinking: false, ..Self::itraversal(k) }
    }

    /// The conventional `bTraversal` framework (Algorithm 1).
    pub fn btraversal(k: usize) -> Self {
        TraversalConfig {
            k,
            enum_kind: EnumKind::L2R2,
            left_anchored: false,
            right_shrinking: false,
            exclusion: false,
            anchor: Anchor::Arbitrary,
            emit: EmitMode::Immediate,
            theta_left: 0,
            theta_right: 0,
            order: VertexOrder::Input,
            deadline: None,
            kernel: Kernel::Auto,
        }
    }

    /// Selects the `EnumAlmostSat` implementation.
    pub fn with_enum_kind(mut self, kind: EnumKind) -> Self {
        self.enum_kind = kind;
        self
    }

    /// Selects the anchor (initial solution).
    pub fn with_anchor(mut self, anchor: Anchor) -> Self {
        self.anchor = anchor;
        self
    }

    /// Selects the emission mode.
    pub fn with_emit(mut self, emit: EmitMode) -> Self {
        self.emit = emit;
        self
    }

    /// Sets the large-MBP size thresholds (`0` disables a side).
    pub fn with_thresholds(mut self, theta_left: usize, theta_right: usize) -> Self {
        self.theta_left = theta_left;
        self.theta_right = theta_right;
        self
    }

    /// Selects the vertex relabeling pass.
    pub fn with_order(mut self, order: VertexOrder) -> Self {
        self.order = order;
        self
    }

    /// Sets the wall-clock deadline (`None` disables).
    pub fn with_deadline(mut self, deadline: Option<Instant>) -> Self {
        self.deadline = deadline;
        self
    }

    /// Selects the intersection kernel (default [`Kernel::Auto`]).
    pub fn with_kernel(mut self, kernel: Kernel) -> Self {
        self.kernel = kernel;
        self
    }
}

/// The sequential reverse-search engine behind the
/// [`crate::api::Enumerator`] facade. Enumerates maximal k-biplexes of `g`
/// under `config`, delivering them to `sink`, and returns the run
/// statistics.
pub(crate) fn traverse<S: SolutionSink + ?Sized>(
    g: &BipartiteGraph,
    config: &TraversalConfig,
    sink: &mut S,
) -> TraversalStats {
    // A relabeling pass runs the engine on the permuted graph and maps
    // solutions back to the input ids; the canonical solution set is a
    // property of the graph, so it is unchanged.
    if config.order != VertexOrder::Input {
        let relab = Relabeling::compute(g, config.order);
        let rg = relab.apply(g);
        let cfg = TraversalConfig { order: VertexOrder::Input, ..config.clone() };
        let mut map_sink = |b: &Biplex| sink.on_solution(&b.map_back(&relab));
        return traverse(&rg, &cfg, &mut map_sink as &mut dyn SolutionSink);
    }

    // The right-anchored variant is the left-anchored variant on the
    // transposed graph; solutions are flipped back on the way out.
    if config.anchor == Anchor::Right {
        let t = g.transpose();
        let mut cfg = config.clone();
        cfg.anchor = Anchor::Left;
        std::mem::swap(&mut cfg.theta_left, &mut cfg.theta_right);
        let mut flip_sink = |b: &Biplex| sink.on_solution(&b.clone().transpose());
        // Coerce to a trait object so the recursive call does not create an
        // unbounded chain of closure instantiations.
        return traverse(&t, &cfg, &mut flip_sink as &mut dyn SolutionSink);
    }

    // Install the configured intersection kernel for the run; the guard
    // restores the caller's choice so nested/sequential runs with different
    // configs do not leak into each other.
    let _kernel = set_thread_kernel(config.kernel);

    let mut engine = Engine {
        g,
        gt: if config.left_anchored { None } else { Some(g.transpose()) },
        config,
        store: HashStore::new(),
        stats: TraversalStats::default(),
        sink,
        stop: false,
    };
    let initial = match config.anchor {
        Anchor::Left => initial_left_anchored(g, config.k),
        Anchor::Arbitrary => initial_arbitrary(g, config.k),
        Anchor::Right => unreachable!("handled above"),
    };
    engine.run(initial);
    engine.stats
}

/// Crate-internal test helpers shared by the unit-test modules of other
/// files.
#[cfg(test)]
pub(crate) mod tests_support {
    use super::*;

    /// All MBPs under the default `iTraversal`, sorted canonically.
    pub(crate) fn enumerate_all(g: &BipartiteGraph, k: usize) -> Vec<Biplex> {
        let mut sink = crate::sink::CollectSink::new();
        traverse(g, &TraversalConfig::itraversal(k), &mut sink);
        sink.into_sorted()
    }
}

struct Frame {
    partial: PartialBiplex,
    /// Snapshot + growth of the exclusion set ℰ(H) (sorted left ids).
    exclusion: Vec<u32>,
    /// Next candidate position in the combined order (left ids, then —
    /// for bTraversal — right ids shifted by `num_left`).
    next_candidate: u64,
    /// Candidate currently being processed (left ids only are recorded for
    /// the exclusion strategy).
    current_candidate: Option<Option<u32>>,
    /// New solutions found under the current candidate, awaiting DFS
    /// descent.
    current_children: Vec<Biplex>,
    depth: usize,
}

struct Engine<'a, S: SolutionSink + ?Sized> {
    g: &'a BipartiteGraph,
    /// Transposed graph, present only when right-side candidates are needed
    /// (bTraversal).
    gt: Option<BipartiteGraph>,
    config: &'a TraversalConfig,
    store: HashStore,
    stats: TraversalStats,
    sink: &'a mut S,
    stop: bool,
}

impl<S: SolutionSink + ?Sized> Engine<'_, S> {
    fn run(&mut self, initial: Biplex) {
        self.store.insert(&initial);
        self.stats.solutions = 1;
        if self.config.emit == EmitMode::Immediate {
            self.emit(&initial);
        }
        let mut stack: Vec<Frame> = Vec::new();
        if let Some(frame) = self.make_frame(initial, Vec::new(), 0) {
            stack.push(frame);
        }

        while !self.stop {
            // Deadline boundary: a budgeted run winds down here even when
            // no solution ever reaches the sink (e.g. thresholds filter
            // everything out).
            if self.config.deadline.is_some_and(|d| Instant::now() >= d) {
                self.stats.stopped_early = true;
                break;
            }
            let Some(mut frame) = stack.pop() else { break };

            // 1. Descend into a pending child.
            if let Some(child) = frame.current_children.pop() {
                let exclusion = frame.exclusion.clone();
                let depth = frame.depth + 1;
                stack.push(frame);
                if let Some(child_frame) = self.make_frame(child, exclusion, depth) {
                    stack.push(child_frame);
                }
                continue;
            }

            // 2. Close out the candidate whose branch just completed.
            if let Some(done) = frame.current_candidate.take() {
                if let Some(v) = done {
                    if self.config.exclusion {
                        if let Err(pos) = frame.exclusion.binary_search(&v) {
                            frame.exclusion.insert(pos, v);
                        }
                    }
                }
                stack.push(frame);
                continue;
            }

            // 3. Move on to the next candidate vertex (or finish the frame).
            match self.next_candidate(&mut frame) {
                Some(cand) => {
                    frame.current_candidate = Some(match cand.side {
                        Side::Left => Some(cand.id),
                        Side::Right => None,
                    });
                    self.process_candidate(&mut frame, cand);
                    stack.push(frame);
                }
                None => {
                    // Frame exhausted: post-order emission point.
                    if self.config.emit == EmitMode::Alternating && frame.depth % 2 == 1 {
                        self.emit(&frame.partial.to_biplex());
                    }
                }
            }
        }
    }

    /// Reports a solution to the sink, applying the size filter.
    fn emit(&mut self, solution: &Biplex) {
        if solution.left.len() >= self.config.theta_left
            && solution.right.len() >= self.config.theta_right
        {
            self.stats.reported += 1;
            if self.sink.on_solution(solution) == Control::Stop {
                self.stop = true;
                self.stats.stopped_early = true;
            }
        }
    }

    /// Builds the DFS frame for a newly discovered solution, applying the
    /// recursion-pruning rules of Section 5. Returns `None` when the
    /// recursion from this solution is pruned (the solution itself has
    /// already been reported).
    fn make_frame(&mut self, solution: Biplex, exclusion: Vec<u32>, depth: usize) -> Option<Frame> {
        let cfg = self.config;
        // Solution pruning: with right-shrinking traversal every descendant
        // has a right side no larger than this one.
        if cfg.theta_right > 0 && cfg.right_shrinking && solution.right.len() < cfg.theta_right {
            self.stats.pruned_size += 1;
            if cfg.emit == EmitMode::Alternating {
                self.emit(&solution);
            }
            return None;
        }
        // Left-side pruning via the exclusion set.
        if cfg.theta_left > 0
            && cfg.exclusion
            && (self.g.num_left() as usize).saturating_sub(exclusion.len()) < cfg.theta_left
        {
            self.stats.pruned_size += 1;
            if cfg.emit == EmitMode::Alternating {
                self.emit(&solution);
            }
            return None;
        }
        if cfg.emit == EmitMode::Alternating && depth % 2 == 0 {
            self.emit(&solution);
            if self.stop {
                return None;
            }
        }
        self.stats.max_depth = self.stats.max_depth.max(depth);
        Some(Frame {
            partial: PartialBiplex::from_sets(self.g, &solution.left, &solution.right),
            exclusion,
            next_candidate: 0,
            current_candidate: None,
            current_children: Vec::new(),
            depth,
        })
    }

    /// Advances to the next candidate vertex of the frame, applying the
    /// left-anchored restriction, the exclusion strategy and the
    /// almost-satisfying-graph pruning of Section 5.
    fn next_candidate(&mut self, frame: &mut Frame) -> Option<VertexRef> {
        let num_left = self.g.num_left() as u64;
        let num_right = self.g.num_right() as u64;
        let limit = if self.config.left_anchored { num_left } else { num_left + num_right };
        while frame.next_candidate < limit {
            let pos = frame.next_candidate;
            frame.next_candidate += 1;
            if pos < num_left {
                let v = pos as u32;
                if frame.partial.contains_left(v) {
                    continue;
                }
                if self.config.exclusion && frame.exclusion.binary_search(&v).is_ok() {
                    self.stats.pruned_exclusion += 1;
                    continue;
                }
                // Almost-satisfying-graph pruning: every solution reached
                // through v keeps v on its left side and (under
                // right-shrinking) a right side within N(v, R_H) plus at
                // most k non-neighbours.
                if self.config.theta_right > 0 && self.config.right_shrinking {
                    let deg_in_r =
                        sorted_intersection_len(self.g.left_neighbors(v), frame.partial.right());
                    if deg_in_r + self.config.k < self.config.theta_right {
                        self.stats.pruned_size += 1;
                        continue;
                    }
                }
                return Some(VertexRef::left(v));
            } else {
                let u = (pos - num_left) as u32;
                if frame.partial.contains_right(u) {
                    continue;
                }
                return Some(VertexRef::right(u));
            }
        }
        None
    }

    /// Runs `EnumAlmostSat` for one candidate vertex and handles every local
    /// solution: pruning rules, extension to a real MBP, de-duplication,
    /// emission and scheduling of the DFS descent.
    fn process_candidate(&mut self, frame: &mut Frame, cand: VertexRef) {
        self.stats.almost_sat_graphs += 1;

        let Engine { g, gt, config, store, stats, sink, stop } = self;
        let g: &BipartiteGraph = g;
        let cfg: &TraversalConfig = config;
        let k = cfg.k;

        let exclusion = &frame.exclusion;
        let children = &mut frame.current_children;
        let host = &frame.partial;

        // For right-side candidates (bTraversal only) the left-oriented
        // EnumAlmostSat runs on the transposed graph with the flipped host.
        let (enum_graph, enum_host, flip): (&BipartiteGraph, PartialBiplex, bool) = match cand.side
        {
            Side::Left => (g, host.clone(), false),
            Side::Right => {
                let Some(gt) = gt.as_ref() else {
                    unreachable!("transpose is built when right candidates are enabled")
                };
                (gt, host.flipped(), true)
            }
        };

        let theta_filter_left = cfg.theta_left;
        let theta_filter_right = cfg.theta_right;

        let almost_stats = enum_almost_sat(
            enum_graph,
            k,
            cfg.enum_kind,
            &enum_host,
            cand.id,
            |local: Biplex| -> bool {
                if *stop {
                    return false;
                }
                let local = if flip { local.transpose() } else { local };
                stats.local_solutions += 1;

                // Exclusion strategy: discard local solutions containing an
                // excluded vertex.
                if cfg.exclusion && intersects(&local.left, exclusion) {
                    stats.pruned_exclusion += 1;
                    return true;
                }

                // Local-solution pruning (Section 5): under right-shrinking
                // the final right side equals the local one.
                if cfg.theta_right > 0 && cfg.right_shrinking && local.right.len() < cfg.theta_right
                {
                    stats.pruned_size += 1;
                    return true;
                }

                let mut partial = PartialBiplex::from_sets(g, &local.left, &local.right);

                // Right-shrinking traversal (Algorithm 2 line 7): discard
                // the local solution if any right vertex of G outside it can
                // be added.
                if cfg.right_shrinking && exists_addable_right_outside(g, &partial, host, k) {
                    stats.pruned_right_shrinking += 1;
                    return true;
                }

                // Step 3: extend to a maximal k-biplex of G.
                let mode =
                    if cfg.right_shrinking { ExtendMode::LeftOnly } else { ExtendMode::BothSides };
                extend_to_maximal(g, &mut partial, k, mode);
                let solution = partial.to_biplex();

                // Exclusion strategy on the extended solution: prune links
                // towards solutions containing an excluded vertex.
                if cfg.exclusion && intersects(&solution.left, exclusion) {
                    stats.pruned_exclusion += 1;
                    return true;
                }

                stats.links += 1;
                if store.insert(&solution) {
                    stats.solutions += 1;
                    if cfg.emit == EmitMode::Immediate
                        && solution.left.len() >= theta_filter_left
                        && solution.right.len() >= theta_filter_right
                    {
                        stats.reported += 1;
                        if sink.on_solution(&solution) == Control::Stop {
                            *stop = true;
                            stats.stopped_early = true;
                            return false;
                        }
                    }
                    children.push(solution);
                } else {
                    stats.duplicate_links += 1;
                }
                true
            },
        );
        self.stats.almost_sat.absorb(&almost_stats);
    }
}

/// `true` iff some right vertex of `G` outside both the local solution and
/// the host solution can be added to `partial` while keeping the k-biplex
/// property (the right-shrinking test of Algorithm 2 line 7; right vertices
/// of the host outside the local solution need not be tested because the
/// local solution is maximal within the almost-satisfying graph).
fn exists_addable_right_outside(
    g: &BipartiteGraph,
    partial: &PartialBiplex,
    host: &PartialBiplex,
    k: usize,
) -> bool {
    if g.num_right() as usize == partial.right().len() {
        return false;
    }
    // A saturated left vertex (miss count = k) only tolerates additions
    // adjacent to it, so its adjacency list bounds the candidates.
    let saturated = (0..partial.left().len()).find(|&i| partial.left_miss(i) as usize >= k);
    match saturated {
        Some(i) => {
            let anchor = partial.left()[i];
            for &u in g.left_neighbors(anchor) {
                if !partial.contains_right(u)
                    && !host.contains_right(u)
                    && partial.can_add_right(g, u, k)
                {
                    return true;
                }
            }
            false
        }
        None => {
            if partial.left().len() <= k {
                // No left vertex is saturated and every left vertex tolerates
                // at least |L| ≤ k misses, so *any* right vertex outside the
                // local solution can be added — and one exists by the size
                // check at the top of this function.
                true
            } else {
                let cands = right_extension_candidates(g, partial.left(), k);
                for u in cands {
                    if !partial.contains_right(u)
                        && !host.contains_right(u)
                        && partial.can_add_right(g, u, k)
                    {
                        return true;
                    }
                }
                false
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bruteforce::brute_force_mbps;
    use crate::sink::{CollectSink, CountingSink, FirstN};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_graph(nl: u32, nr: u32, p: f64, seed: u64) -> BipartiteGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut edges = Vec::new();
        for v in 0..nl {
            for u in 0..nr {
                if rng.gen_bool(p) {
                    edges.push((v, u));
                }
            }
        }
        BipartiteGraph::from_edges(nl, nr, &edges).unwrap()
    }

    fn run_sorted(g: &BipartiteGraph, cfg: &TraversalConfig) -> Vec<Biplex> {
        let mut sink = CollectSink::new();
        traverse(g, cfg, &mut sink);
        sink.into_sorted()
    }

    fn all_configs(k: usize) -> Vec<(&'static str, TraversalConfig)> {
        vec![
            ("iTraversal", TraversalConfig::itraversal(k)),
            ("iTraversal-ES", TraversalConfig::itraversal_no_exclusion(k)),
            ("iTraversal-ES-RS", TraversalConfig::itraversal_left_anchored_only(k)),
            ("bTraversal", TraversalConfig::btraversal(k)),
            ("right-anchored", TraversalConfig::itraversal(k).with_anchor(Anchor::Right)),
        ]
    }

    #[test]
    fn every_configuration_matches_brute_force_on_random_graphs() {
        for seed in 0..20u64 {
            let nl = 4 + (seed % 3) as u32;
            let nr = 4 + (seed % 4) as u32;
            let g = random_graph(nl, nr, 0.5, seed);
            for k in 0..=2usize {
                let expected = brute_force_mbps(&g, k);
                for (name, cfg) in all_configs(k) {
                    let got = run_sorted(&g, &cfg);
                    assert_eq!(
                        got, expected,
                        "{name} differs from brute force (seed {seed}, k {k}, |L|={nl}, |R|={nr})"
                    );
                }
            }
        }
    }

    #[test]
    fn denser_and_sparser_random_graphs() {
        for &p in &[0.25, 0.75] {
            for seed in 100..108u64 {
                let g = random_graph(5, 5, p, seed);
                for k in 1..=2usize {
                    let expected = brute_force_mbps(&g, k);
                    for (name, cfg) in all_configs(k) {
                        let got = run_sorted(&g, &cfg);
                        assert_eq!(got, expected, "{name} seed {seed} k {k} p {p}");
                    }
                }
            }
        }
    }

    #[test]
    fn relabeling_orders_report_the_same_set() {
        for seed in 0..6u64 {
            let g = random_graph(6, 5, 0.5, seed);
            for k in 1..=2usize {
                let expected = run_sorted(&g, &TraversalConfig::itraversal(k));
                for order in [VertexOrder::Degree, VertexOrder::Degeneracy] {
                    let cfg = TraversalConfig::itraversal(k).with_order(order);
                    assert_eq!(run_sorted(&g, &cfg), expected, "seed {seed} k {k} order {order}");
                    let cfg = TraversalConfig::btraversal(k).with_order(order);
                    assert_eq!(
                        run_sorted(&g, &cfg),
                        expected,
                        "bTraversal seed {seed} k {k} order {order}"
                    );
                }
            }
        }
    }

    #[test]
    fn relabeling_composes_with_early_stop_and_thresholds() {
        let g = random_graph(7, 7, 0.5, 2);
        let k = 1;
        let cfg = TraversalConfig::itraversal(k).with_order(VertexOrder::Degeneracy);
        let mut sink = FirstN::new(3);
        let stats = traverse(&g, &cfg, &mut sink);
        assert_eq!(sink.len(), 3);
        assert!(stats.stopped_early);
        for b in &sink.solutions {
            assert!(crate::biplex::is_maximal_k_biplex(&g, &b.left, &b.right, k));
        }

        let all = tests_support::enumerate_all(&g, k);
        let mut expected: Vec<Biplex> =
            all.into_iter().filter(|b| b.left.len() >= 2 && b.right.len() >= 2).collect();
        expected.sort();
        let cfg = cfg.with_thresholds(2, 2);
        assert_eq!(run_sorted(&g, &cfg), expected);
    }

    #[test]
    fn alternating_emission_reports_the_same_set() {
        for seed in 0..6u64 {
            let g = random_graph(5, 5, 0.5, seed);
            let k = 1;
            let immediate = run_sorted(&g, &TraversalConfig::itraversal(k));
            let alternating =
                run_sorted(&g, &TraversalConfig::itraversal(k).with_emit(EmitMode::Alternating));
            assert_eq!(immediate, alternating, "seed {seed}");
        }
    }

    #[test]
    fn every_enum_kind_gives_the_same_answer() {
        let g = random_graph(6, 6, 0.5, 3);
        let k = 1;
        let expected = brute_force_mbps(&g, k);
        for kind in EnumKind::ALL {
            let cfg = TraversalConfig::itraversal(k).with_enum_kind(kind);
            assert_eq!(run_sorted(&g, &cfg), expected, "kind {kind:?}");
        }
        for kind in EnumKind::ALL {
            let cfg = TraversalConfig::btraversal(k).with_enum_kind(kind);
            assert_eq!(run_sorted(&g, &cfg), expected, "bTraversal kind {kind:?}");
        }
    }

    #[test]
    fn first_n_stops_early() {
        let g = random_graph(7, 7, 0.5, 11);
        let k = 1;
        let all = tests_support::enumerate_all(&g, k);
        assert!(all.len() > 3, "fixture should have enough solutions");
        let mut sink = FirstN::new(3);
        let stats = traverse(&g, &TraversalConfig::itraversal(k), &mut sink);
        assert_eq!(sink.len(), 3);
        assert!(stats.stopped_early);
        assert!(stats.solutions >= 3);
        // Everything returned is a genuine MBP.
        for b in &sink.solutions {
            assert!(crate::biplex::is_maximal_k_biplex(&g, &b.left, &b.right, k));
        }
    }

    #[test]
    fn sparser_solution_graphs_for_stronger_pruning() {
        // The paper's Figure 11: iTraversal's solution graph has no more
        // links than its ablations, which have no more than bTraversal.
        for seed in 0..8u64 {
            let g = random_graph(6, 6, 0.5, seed);
            let k = 1;
            let count = |cfg: &TraversalConfig| {
                let mut sink = CountingSink::new();
                let stats = traverse(&g, cfg, &mut sink);
                (stats.links, sink.count)
            };
            let (full, n_full) = count(&TraversalConfig::itraversal(k));
            let (no_es, n_no_es) = count(&TraversalConfig::itraversal_no_exclusion(k));
            let (la_only, n_la) = count(&TraversalConfig::itraversal_left_anchored_only(k));
            let (btrav, n_b) = count(&TraversalConfig::btraversal(k));
            assert_eq!(n_full, n_no_es);
            assert_eq!(n_full, n_la);
            assert_eq!(n_full, n_b);
            assert!(full <= no_es, "seed {seed}: ES must not add links");
            assert!(no_es <= la_only, "seed {seed}: RS must not add links");
            assert!(la_only <= btrav, "seed {seed}: left-anchoring must not add links");
        }
    }

    #[test]
    fn stats_are_consistent() {
        let g = random_graph(6, 6, 0.5, 5);
        let mut sink = CountingSink::new();
        let stats = traverse(&g, &TraversalConfig::itraversal(1), &mut sink);
        assert_eq!(stats.solutions, sink.count);
        assert_eq!(stats.reported, sink.count);
        assert_eq!(stats.links, stats.tree_links() + stats.duplicate_links);
        assert!(stats.local_solutions >= stats.links);
        assert!(!stats.stopped_early);
        assert!(stats.almost_sat.local_solutions >= stats.local_solutions);
    }

    #[test]
    fn empty_and_degenerate_graphs() {
        // Graph with no edges: for k = 1 the MBPs pair every right vertex
        // with at most one left vertex etc.; just check against brute force.
        let g = BipartiteGraph::from_edges(3, 3, &[]).unwrap();
        for k in 0..=2usize {
            let expected = brute_force_mbps(&g, k);
            assert_eq!(run_sorted(&g, &TraversalConfig::itraversal(k)), expected, "k {k}");
        }
        // Single-vertex sides.
        let g = BipartiteGraph::from_edges(1, 1, &[(0, 0)]).unwrap();
        let got = run_sorted(&g, &TraversalConfig::itraversal(1));
        assert_eq!(got, vec![Biplex::new(vec![0], vec![0])]);
        // Empty graph.
        let g = BipartiteGraph::from_edges(0, 0, &[]).unwrap();
        let got = run_sorted(&g, &TraversalConfig::itraversal(1));
        assert_eq!(got.len(), 1);
        assert!(got[0].is_empty());
    }

    #[test]
    fn complete_bipartite_graph_has_one_mbp() {
        let mut edges = Vec::new();
        for v in 0u32..4 {
            for u in 0u32..5 {
                edges.push((v, u));
            }
        }
        let g = BipartiteGraph::from_edges(4, 5, &edges).unwrap();
        for k in 0..=2usize {
            let got = run_sorted(&g, &TraversalConfig::itraversal(k));
            assert_eq!(got.len(), 1);
            assert_eq!(got[0].left.len(), 4);
            assert_eq!(got[0].right.len(), 5);
        }
    }

    #[test]
    fn size_thresholds_match_post_filtering() {
        for seed in 0..10u64 {
            let g = random_graph(6, 6, 0.6, seed);
            let k = 1;
            for (tl, tr) in [(2, 2), (3, 2), (2, 3), (3, 3)] {
                let all = tests_support::enumerate_all(&g, k);
                let mut expected: Vec<Biplex> =
                    all.into_iter().filter(|b| b.left.len() >= tl && b.right.len() >= tr).collect();
                expected.sort();
                let cfg = TraversalConfig::itraversal(k).with_thresholds(tl, tr);
                let got = run_sorted(&g, &cfg);
                assert_eq!(got, expected, "seed {seed} θ=({tl},{tr})");
            }
        }
    }
}
